//! # noisy-oracle — facade crate
//!
//! A production-quality Rust reproduction of *How to Design Robust Algorithms
//! using Noisy Comparison Oracle* (Addanki, Galhotra, Saha — PVLDB 14(9),
//! 2021), behind one dependency and one front door.
//!
//! ## The `Session` front door
//!
//! [`Session`] is the typed, budgeted entry point: a [`SessionBuilder`]
//! captures the data source, noise model, confidence, caching, parallelism,
//! seed and query budget once; [`Session::run`] executes any [`Task`]
//! through the matching theorem-backed engine and returns an [`Outcome`]
//! (answer + [`RunReport`] cost accounting) or a typed [`NcoError`].
//!
//! ```
//! use noisy_oracle::{Noise, NcoError, Session, Task};
//!
//! // Hidden values; the algorithms only see noisy comparisons.
//! let values: Vec<f64> = (1..=100).map(f64::from).collect();
//!
//! let session = Session::builder()
//!     .values(values)
//!     .noise(Noise::Adversarial { mu: 0.5 }) // worst-case liar in the band
//!     .confidence(0.05)                      // Theorem 3.6 parameters
//!     .seed(7)
//!     .build()?;
//!
//! // Theorem 3.6: within (1 + mu)^3 of the true maximum w.p. 0.95.
//! let outcome = session.run(Task::Max)?;
//! let best = outcome.answer.item().unwrap();
//! assert!(best as f64 + 1.0 >= 100.0 / 1.5f64.powi(3));
//! println!("{} oracle queries", outcome.report.queries);
//!
//! // A hard query budget fails typed — no panic, no overspend.
//! let capped = Session::builder()
//!     .values((1..=100).map(f64::from).collect())
//!     .budget(50)
//!     .build()?;
//! assert!(matches!(
//!     capped.run(Task::Max),
//!     Err(NcoError::BudgetExceeded { budget: 50, .. })
//! ));
//! # Ok::<(), NcoError>(())
//! ```
//!
//! Value sessions also answer the ordering tasks —
//! `Task::Sort` (the full descending ranking), `Task::Select { k }`
//! (the k-th largest) and `Task::Partition { k }` (the top-k / rest
//! split). Metric-space tasks run the same way over points, a metric,
//! or a generated [`data`] set —
//! `Task::{Nearest, Farthest, KCenter, Hierarchy}` — and one immutable
//! [`Engine`] can serve many concurrent sessions over the same corpus,
//! sharing its distance cache ([`SessionBuilder::engine`]).
//!
//! ## The workspace underneath
//!
//! The low-level crates stay fully public for callers that need to wire
//! their own pipelines (every engine, oracle and comparator the session
//! layer dispatches to):
//!
//! * [`oracle`] — comparison/quadruplet oracles; adversarial,
//!   probabilistic (persistent) and crowd noise models; counting, budget
//!   and memoisation wrappers;
//! * [`metric`] — the hidden metric spaces the oracles compare over,
//!   including the shared lock-free distance cache;
//! * [`data`] — seeded synthetic analogues of the paper's five datasets;
//! * [`core`] — the paper's algorithms: robust maximum/minimum, top-k,
//!   noisy sort/select/partition, farthest and nearest neighbour,
//!   k-center clustering, agglomerative hierarchical clustering, and all
//!   evaluation baselines;
//! * [`eval`] — pair-counting F-score, k-center objective, rank metrics
//!   and the experiment harness used by the benchmark suite.

#![deny(missing_docs)]

pub use nco_core as core;
pub use nco_data as data;
pub use nco_eval as eval;
pub use nco_metric as metric;
pub use nco_oracle as oracle;

mod error;
mod report;
mod serve;
mod session;
mod task;

pub use error::NcoError;
pub use nco_oracle::fault::{FaultPlan, FaultStats, QueryFault, RetryPolicy};
pub use nco_oracle::{NoiseEstimate, ProbeStats};
pub use report::{Outcome, RunReport};
pub use serve::{Request, ServeStats, Server, ServerBuilder, TaskHandle};
pub use session::{AdaptPolicy, CancelToken, Engine, Noise, Session, SessionBuilder};
pub use task::{Answer, PartialOutcome, Task};
