//! # noisy-oracle — facade crate
//!
//! A production-quality Rust reproduction of *How to Design Robust Algorithms
//! using Noisy Comparison Oracle* (Addanki, Galhotra, Saha — PVLDB 14(9),
//! 2021). This crate re-exports the whole workspace behind one dependency:
//!
//! * [`oracle`] — comparison/quadruplet oracles and the adversarial,
//!   probabilistic (persistent) and crowd noise models;
//! * [`metric`] — the hidden metric spaces the oracles compare over;
//! * [`data`] — seeded synthetic analogues of the paper's five datasets;
//! * [`core`] — the paper's algorithms: robust maximum/minimum, farthest and
//!   nearest neighbour, k-center clustering, agglomerative hierarchical
//!   clustering, and all evaluation baselines;
//! * [`eval`] — pair-counting F-score, k-center objective, rank metrics and
//!   the experiment harness used by the benchmark suite.
//!
//! ## Quickstart
//!
//! ```
//! use noisy_oracle::core::maxfind::{count_max, max_adv, AdvParams};
//! use noisy_oracle::core::comparator::ValueCmp;
//! use noisy_oracle::oracle::adversarial::{AdversarialValueOracle, InvertAdversary};
//! use rand::SeedableRng;
//!
//! // Hidden values; the algorithm only sees noisy comparisons.
//! let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
//! let mut oracle = AdversarialValueOracle::new(values, 0.5, InvertAdversary);
//! let items: Vec<usize> = (0..100).collect();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let best = max_adv(
//!     &items,
//!     &AdvParams::with_confidence(0.05),
//!     &mut ValueCmp::new(&mut oracle),
//!     &mut rng,
//! )
//! .unwrap();
//!
//! // Theorem 3.6: within (1 + mu)^3 of the true maximum (here w.h.p.).
//! assert!(best as f64 + 1.0 >= 100.0 / 1.5f64.powi(3));
//! # let _ = count_max(&items, &mut ValueCmp::new(&mut oracle));
//! ```

pub use nco_core as core;
pub use nco_data as data;
pub use nco_eval as eval;
pub use nco_metric as metric;
pub use nco_oracle as oracle;
