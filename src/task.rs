//! Typed task requests and answers for the `Session` front door.
//!
//! Each [`Task`] variant names one of the paper's problems; running it
//! through [`crate::Session::run`] picks the matching theorem-backed
//! engine for the session's noise model and returns the matching
//! [`Answer`] variant.

use nco_core::hier::{Dendrogram, Linkage, Merge};
use nco_core::kcenter::Clustering;

/// A typed request against a [`crate::Session`].
///
/// | Variant | Problem | Engines (by noise model) |
/// |---|---|---|
/// | [`Task::Max`] | robust maximum over hidden values | Max-Adv (Thm 3.6) / Count-Max-Prob (Thm 3.7) |
/// | [`Task::TopK`] | top-k by iterated extraction | iterated Max-Adv / Count-Max-Prob |
/// | [`Task::Nearest`] | nearest neighbour of record `q` | Alg. 15 / core-routed PairwiseComp (Thm 3.10) |
/// | [`Task::Farthest`] | farthest neighbour of record `q` | Alg. 13 / core-routed PairwiseComp (Thm 3.10) |
/// | [`Task::KCenter`] | k-center clustering | Alg. 6 (Thm 4.2) / Alg. 7 (Thm 4.4) |
/// | [`Task::Hierarchy`] | agglomerative hierarchy | Alg. 11 (Thm 5.2) |
/// | [`Task::Sort`] | full noisy sort, best first | skeleton insertion + polish (Gu–Xu style) |
/// | [`Task::Select`] | the k-th largest value | sample–score–narrow (Braverman–Mao–Weinberg style) |
/// | [`Task::Partition`] | top-k / rest split | sample–score–narrow (Braverman–Mao–Weinberg style) |
///
/// `Max`, `TopK`, `Sort`, `Select`, and `Partition` need a session built
/// over raw values; the other four need a session built over a metric /
/// dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Task {
    /// Robust maximum of the hidden values.
    Max,
    /// The top `k` hidden values by iterated extraction, best first.
    TopK {
        /// Number of items to extract (`1 <= k <= n`).
        k: usize,
    },
    /// Nearest record to the query record `q`.
    Nearest {
        /// The query record (`q < n`).
        q: usize,
    },
    /// Farthest record from the query record `q`.
    Farthest {
        /// The query record (`q < n`).
        q: usize,
    },
    /// Greedy k-center clustering.
    KCenter {
        /// Number of clusters (`1 <= k <= n`).
        k: usize,
    },
    /// Full agglomerative hierarchy.
    Hierarchy {
        /// Single or complete linkage.
        linkage: Linkage,
    },
    /// Full descending sort of the hidden values, best first.
    Sort,
    /// The k-th largest hidden value (`k = 1` is [`Task::Max`]'s problem).
    Select {
        /// Rank to select (`1 <= k <= n`).
        k: usize,
    },
    /// Split into the top `k` values and the rest, without a full sort.
    Partition {
        /// Size of the top class (`1 <= k <= n`).
        k: usize,
    },
}

impl Task {
    /// `true` for tasks that run over hidden scalar values (comparison
    /// oracles); `false` for metric-space tasks (quadruplet oracles).
    pub fn needs_values(&self) -> bool {
        matches!(
            self,
            Task::Max
                | Task::TopK { .. }
                | Task::Sort
                | Task::Select { .. }
                | Task::Partition { .. }
        )
    }
}

/// The typed result of a [`crate::Session::run`], one variant per task
/// family.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Answer {
    /// A single record index ([`Task::Max`], [`Task::Nearest`],
    /// [`Task::Farthest`]).
    Item(usize),
    /// Record indices, best first ([`Task::TopK`]).
    Items(Vec<usize>),
    /// Centers plus assignment ([`Task::KCenter`]).
    Clustering(Clustering),
    /// The full merge tree ([`Task::Hierarchy`]).
    Dendrogram(Dendrogram),
    /// Every record index in descending value order, best first
    /// ([`Task::Sort`]).
    Ranking(Vec<usize>),
    /// Top-`k` / rest split ([`Task::Partition`]): `top` in confirmation
    /// order with the k-th (boundary) item last, `rest` in elimination
    /// order.
    Partition {
        /// The `k` records classified as the top class.
        top: Vec<usize>,
        /// The remaining records.
        rest: Vec<usize>,
    },
}

impl Answer {
    /// The single record index, if this answer is one.
    pub fn item(&self) -> Option<usize> {
        match self {
            Self::Item(i) => Some(*i),
            _ => None,
        }
    }

    /// The ranked record list, if this answer is one.
    pub fn items(&self) -> Option<&[usize]> {
        match self {
            Self::Items(v) => Some(v),
            _ => None,
        }
    }

    /// The clustering, if this answer is one.
    pub fn clustering(&self) -> Option<&Clustering> {
        match self {
            Self::Clustering(c) => Some(c),
            _ => None,
        }
    }

    /// The dendrogram, if this answer is one.
    pub fn dendrogram(&self) -> Option<&Dendrogram> {
        match self {
            Self::Dendrogram(d) => Some(d),
            _ => None,
        }
    }

    /// The full descending ranking, if this answer is one.
    pub fn ranking(&self) -> Option<&[usize]> {
        match self {
            Self::Ranking(v) => Some(v),
            _ => None,
        }
    }

    /// The `(top, rest)` split, if this answer is one.
    pub fn partition(&self) -> Option<(&[usize], &[usize])> {
        match self {
            Self::Partition { top, rest } => Some((top, rest)),
            _ => None,
        }
    }
}

/// The best-effort partial answer a killed run managed to commit before
/// its budget, deadline, or cancel token stopped it.
///
/// Attached to [`crate::NcoError::BudgetExceeded`] and
/// [`crate::NcoError::DeadlineExceeded`] alongside the partial
/// [`crate::RunReport`]. Every variant is built exclusively from
/// *clean progress* — work the engine committed while the oracle was
/// still returning real answers (before the budget/deadline/cancel
/// latch tripped and the oracle degraded to refusal constants). Because
/// the latch only flips at query boundaries, a partial is always a
/// true prefix of what the same run would have produced with more
/// budget.
///
/// Budget kills are deterministic (the latch trips at an exact query
/// count), so their partials are reproducible; deadline and cancel
/// kills depend on wall-clock timing and yield best-effort partials
/// whose *shape* is guaranteed but whose length varies run to run.
///
/// [`Task::Nearest`] and [`Task::Farthest`] runs carry no partial —
/// a single-winner search has no meaningful intermediate commitment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartialOutcome {
    /// [`Task::Max`]: the tournament leader when the run was stopped —
    /// the best candidate the engine had committed on real answers.
    /// `None` when the run was killed before any round completed.
    Leader {
        /// Current best candidate, if any round completed cleanly.
        candidate: Option<usize>,
    },
    /// [`Task::TopK`]: the ranked prefix extracted on real answers.
    TopPrefix {
        /// Extracted items, best first; `items.len() <= requested`.
        items: Vec<usize>,
        /// The `k` the run was asked for.
        requested: usize,
    },
    /// [`Task::KCenter`]: the committee of centers committed so far.
    Committee {
        /// Centers chosen (and, for the probabilistic engine, cored)
        /// on real answers, in selection order.
        centers: Vec<usize>,
        /// The `k` the run was asked for.
        requested: usize,
    },
    /// [`Task::Hierarchy`]: the prefix of the merge sequence committed
    /// on real answers. Replaying these merges gives the exact same
    /// partial forest a completed run would have passed through.
    DendrogramPrefix {
        /// Number of leaves (records).
        n: usize,
        /// Clean merge prefix; `merges.len() <= expected`.
        merges: Vec<Merge>,
        /// Merges a complete agglomeration would hold (`n - 1`).
        expected: usize,
    },
    /// [`Task::Sort`]: the prefix of the final ranking committed by the
    /// polish/emit sweep on real answers — bit-identical to the same
    /// prefix of the completed run's [`Answer::Ranking`]. Empty when the
    /// run was killed before the sweep started emitting.
    SortedPrefix {
        /// Committed ranking prefix, best first; `items.len() <= n`.
        items: Vec<usize>,
        /// Total number of records being sorted.
        n: usize,
    },
    /// [`Task::Select`] / [`Task::Partition`]: the narrowing loop's
    /// committed state — `confirmed` is a true prefix of the completed
    /// run's top class, and `candidate` is the current boundary (k-th
    /// item) estimate, which, like [`PartialOutcome::Leader`], may still
    /// change late in the run.
    PivotCandidate {
        /// Current boundary (k-th item) estimate, if any clean
        /// narrowing iteration completed.
        candidate: Option<usize>,
        /// Top-class items confirmed on real answers, in confirmation
        /// order; `confirmed.len() <= requested`.
        confirmed: Vec<usize>,
        /// The `k` the run was asked for.
        requested: usize,
    },
}

impl PartialOutcome {
    /// Fraction of the task completed, in `[0, 1]` — a coarse progress
    /// gauge for dashboards (`Leader` reports 0 or 1 candidate-known).
    pub fn progress(&self) -> f64 {
        match self {
            Self::Leader { candidate } => {
                if candidate.is_some() {
                    1.0
                } else {
                    0.0
                }
            }
            Self::TopPrefix { items, requested } => items.len() as f64 / (*requested).max(1) as f64,
            Self::Committee { centers, requested } => {
                centers.len() as f64 / (*requested).max(1) as f64
            }
            Self::DendrogramPrefix {
                merges, expected, ..
            } => merges.len() as f64 / (*expected).max(1) as f64,
            Self::SortedPrefix { items, n } => items.len() as f64 / (*n).max(1) as f64,
            Self::PivotCandidate {
                confirmed,
                requested,
                ..
            } => confirmed.len() as f64 / (*requested).max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_progress_is_a_ratio() {
        let p = PartialOutcome::TopPrefix {
            items: vec![4, 2],
            requested: 4,
        };
        assert_eq!(p.progress(), 0.5);
        let p = PartialOutcome::Leader { candidate: None };
        assert_eq!(p.progress(), 0.0);
        let p = PartialOutcome::DendrogramPrefix {
            n: 5,
            merges: Vec::new(),
            expected: 4,
        };
        assert_eq!(p.progress(), 0.0);
        let p = PartialOutcome::SortedPrefix {
            items: vec![2],
            n: 4,
        };
        assert_eq!(p.progress(), 0.25);
        let p = PartialOutcome::PivotCandidate {
            candidate: Some(3),
            confirmed: vec![1, 3],
            requested: 8,
        };
        assert_eq!(p.progress(), 0.25);
    }

    #[test]
    fn task_data_requirements() {
        assert!(Task::Max.needs_values());
        assert!(Task::TopK { k: 3 }.needs_values());
        assert!(!Task::Nearest { q: 0 }.needs_values());
        assert!(!Task::Farthest { q: 0 }.needs_values());
        assert!(!Task::KCenter { k: 2 }.needs_values());
        assert!(!Task::Hierarchy {
            linkage: Linkage::Single
        }
        .needs_values());
        assert!(Task::Sort.needs_values());
        assert!(Task::Select { k: 2 }.needs_values());
        assert!(Task::Partition { k: 2 }.needs_values());
    }

    #[test]
    fn answer_accessors_are_exclusive() {
        let a = Answer::Item(7);
        assert_eq!(a.item(), Some(7));
        assert!(a.items().is_none());
        let a = Answer::Items(vec![3, 1]);
        assert_eq!(a.items(), Some(&[3usize, 1][..]));
        assert!(a.item().is_none());
        assert!(a.clustering().is_none());
        assert!(a.dendrogram().is_none());
        assert!(a.ranking().is_none());
        assert!(a.partition().is_none());
        let a = Answer::Ranking(vec![2, 0, 1]);
        assert_eq!(a.ranking(), Some(&[2usize, 0, 1][..]));
        assert!(a.items().is_none());
        let a = Answer::Partition {
            top: vec![2],
            rest: vec![0, 1],
        };
        assert_eq!(a.partition(), Some((&[2usize][..], &[0usize, 1][..])));
        assert!(a.ranking().is_none());
    }
}
