//! Typed task requests and answers for the `Session` front door.
//!
//! Each [`Task`] variant names one of the paper's problems; running it
//! through [`crate::Session::run`] picks the matching theorem-backed
//! engine for the session's noise model and returns the matching
//! [`Answer`] variant.

use nco_core::hier::{Dendrogram, Linkage};
use nco_core::kcenter::Clustering;

/// A typed request against a [`crate::Session`].
///
/// | Variant | Problem | Engines (by noise model) |
/// |---|---|---|
/// | [`Task::Max`] | robust maximum over hidden values | Max-Adv (Thm 3.6) / Count-Max-Prob (Thm 3.7) |
/// | [`Task::TopK`] | top-k by iterated extraction | iterated Max-Adv / Count-Max-Prob |
/// | [`Task::Nearest`] | nearest neighbour of record `q` | Alg. 15 / core-routed PairwiseComp (Thm 3.10) |
/// | [`Task::Farthest`] | farthest neighbour of record `q` | Alg. 13 / core-routed PairwiseComp (Thm 3.10) |
/// | [`Task::KCenter`] | k-center clustering | Alg. 6 (Thm 4.2) / Alg. 7 (Thm 4.4) |
/// | [`Task::Hierarchy`] | agglomerative hierarchy | Alg. 11 (Thm 5.2) |
///
/// `Max` and `TopK` need a session built over raw values; the other four
/// need a session built over a metric / dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Task {
    /// Robust maximum of the hidden values.
    Max,
    /// The top `k` hidden values by iterated extraction, best first.
    TopK {
        /// Number of items to extract (`1 <= k <= n`).
        k: usize,
    },
    /// Nearest record to the query record `q`.
    Nearest {
        /// The query record (`q < n`).
        q: usize,
    },
    /// Farthest record from the query record `q`.
    Farthest {
        /// The query record (`q < n`).
        q: usize,
    },
    /// Greedy k-center clustering.
    KCenter {
        /// Number of clusters (`1 <= k <= n`).
        k: usize,
    },
    /// Full agglomerative hierarchy.
    Hierarchy {
        /// Single or complete linkage.
        linkage: Linkage,
    },
}

impl Task {
    /// `true` for tasks that run over hidden scalar values (comparison
    /// oracles); `false` for metric-space tasks (quadruplet oracles).
    pub fn needs_values(&self) -> bool {
        matches!(self, Task::Max | Task::TopK { .. })
    }
}

/// The typed result of a [`crate::Session::run`], one variant per task
/// family.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Answer {
    /// A single record index ([`Task::Max`], [`Task::Nearest`],
    /// [`Task::Farthest`]).
    Item(usize),
    /// Record indices, best first ([`Task::TopK`]).
    Items(Vec<usize>),
    /// Centers plus assignment ([`Task::KCenter`]).
    Clustering(Clustering),
    /// The full merge tree ([`Task::Hierarchy`]).
    Dendrogram(Dendrogram),
}

impl Answer {
    /// The single record index, if this answer is one.
    pub fn item(&self) -> Option<usize> {
        match self {
            Self::Item(i) => Some(*i),
            _ => None,
        }
    }

    /// The ranked record list, if this answer is one.
    pub fn items(&self) -> Option<&[usize]> {
        match self {
            Self::Items(v) => Some(v),
            _ => None,
        }
    }

    /// The clustering, if this answer is one.
    pub fn clustering(&self) -> Option<&Clustering> {
        match self {
            Self::Clustering(c) => Some(c),
            _ => None,
        }
    }

    /// The dendrogram, if this answer is one.
    pub fn dendrogram(&self) -> Option<&Dendrogram> {
        match self {
            Self::Dendrogram(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_data_requirements() {
        assert!(Task::Max.needs_values());
        assert!(Task::TopK { k: 3 }.needs_values());
        assert!(!Task::Nearest { q: 0 }.needs_values());
        assert!(!Task::Farthest { q: 0 }.needs_values());
        assert!(!Task::KCenter { k: 2 }.needs_values());
        assert!(!Task::Hierarchy {
            linkage: Linkage::Single
        }
        .needs_values());
    }

    #[test]
    fn answer_accessors_are_exclusive() {
        let a = Answer::Item(7);
        assert_eq!(a.item(), Some(7));
        assert!(a.items().is_none());
        let a = Answer::Items(vec![3, 1]);
        assert_eq!(a.items(), Some(&[3usize, 1][..]));
        assert!(a.item().is_none());
        assert!(a.clustering().is_none());
        assert!(a.dendrogram().is_none());
    }
}
