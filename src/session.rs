//! The `Session` front door: one typed, budgeted entry point for every
//! algorithm in the reproduction.
//!
//! The paper's pipelines all share one shape — *pick a noise model, wire
//! an oracle, wire a comparator, pick theorem parameters, pass an rng* —
//! and before this module every caller re-built that chain by hand.
//! [`SessionBuilder`] captures the choices once; [`Session::run`] executes
//! any [`Task`] through the matching theorem-backed engine and returns a
//! [`Outcome`] (answer + [`RunReport`] cost accounting) or a typed
//! [`NcoError`].
//!
//! ## Architecture
//!
//! ```text
//! SessionBuilder ──build()──▶ Session ──run(Task)──▶ Result<Outcome, NcoError>
//!        │                      │
//!        │ owns/shares          │ per run: oracle chain
//!        ▼                      ▼
//!     Arc<Engine>     Budgeted(MemoOracle?(noise oracle(&engine data)))
//!  (values | metric        │
//!   [+ DistCache])         └─ nco-core engines (Max-Adv, Count-Max-Prob,
//!                             Alg. 6/7/11, core-routed searches)
//! ```
//!
//! The [`Engine`] is immutable and `Sync`: many sessions — across threads
//! — can share one engine over the same dataset, amortising its
//! `DistCache` exactly like the batched query plane does in the perf
//! suite. Oracles are built per run from shared references, so `run`
//! takes `&self` and a `Session` can be cloned freely.
//!
//! ## Determinism
//!
//! A run is a pure function of (engine data, configuration, task): the
//! rng is seeded from [`SessionBuilder::seed`] at every `run`, noise is
//! persistent (seeded in [`Noise`]), and the wiring is bit-identical to
//! the hand-assembled low-level calls — pinned, answer and query count,
//! in `tests/session_equivalence.rs`.
//!
//! ## Budgets
//!
//! [`SessionBuilder::budget`] sets a hard cap on oracle queries. Billing
//! is deterministic and in algorithm order; the first query past the cap
//! stops all further access to the underlying oracle (no distance
//! evaluation, no noise coin) and the run returns
//! [`NcoError::BudgetExceeded`] instead of an answer. A run that stays
//! within budget is bit-identical to the same run without a budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nco_core::comparator::ValueCmp;
use nco_core::hier::{hier_oracle_par_stats, hier_oracle_stats, HierParams, MergePlaneStats};
use nco_core::kcenter::{
    kcenter_adv_with_progress, kcenter_prob_with_progress, KCenterAdvParams, KCenterProbParams,
};
use nco_core::maxfind::{
    max_adv_with_progress, max_prob_with_progress, top_k_adv_with_progress,
    top_k_prob_with_progress, AdvParams, ProbParams,
};
use nco_core::neighbor::{farthest_adv, farthest_prob, nearest_adv, nearest_prob};
use nco_core::order::{
    partition_adv_with_progress, partition_prob_with_progress, sort_adv_with_progress,
    sort_prob_with_progress, OrderAdvParams, OrderProbParams,
};
use nco_data::{AnyMetric, Dataset};
use nco_metric::{CachedMetric, DistCache, EuclideanMetric, Metric};
use nco_oracle::adversarial::{AdversarialQuadOracle, AdversarialValueOracle, InvertAdversary};
use nco_oracle::budget::{Budgeted, SharedBudgeted};
use nco_oracle::crowd::{AccuracyProfile, CrowdQuadOracle, CrowdValueOracle};
use nco_oracle::fault::{FaultPlan, FaultyOracle, RetryPolicy, Retrying};
use nco_oracle::persistent::{PersistentNoise, SharedQuadrupletOracle};
use nco_oracle::probabilistic::{ProbQuadOracle, ProbValueOracle};
use nco_oracle::{
    ComparisonOracle, MemoOracle, NoiseEstimate, ProbeOracle, ProbePlan, QuadrupletOracle,
    TrueQuadOracle, TrueValueOracle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::NcoError;
use crate::report::{Outcome, RunReport};
use crate::task::{Answer, PartialOutcome, Task};

/// Salt XORed into the session seed to derive the probe plane's own
/// deterministic stream, so probes and the engine rng stay decoupled.
const PROBE_SEED_XOR: u64 = 0x7072_6F62_656E_636F; // "probenco"

/// Ceiling on the re-derived flip rate an [`AdaptPolicy::Escalate`]
/// re-run plans for: the repetition scale `1/(1-2p)^2` diverges at
/// `p = 1/2`, so the CI upper bound is clamped here before scaling.
const ADAPT_RATE_CAP: f64 = 0.45;

/// Repetition scale factor `1/(1-2p)^2` for a flip rate `p` — the
/// classic noisy-comparison sample-complexity dependence (the paper's
/// bounds carry the same `(1-2p)^-2` factor through their Chernoff
/// arguments). `p = 0` maps to `1.0`: assuming no noise changes nothing.
fn noise_scale_for(p: f64) -> f64 {
    let margin = 1.0 - 2.0 * p;
    1.0 / (margin * margin)
}

/// The noise model a session's oracle answers under (Section 2.2 of the
/// paper, plus the Section 6.2 crowd simulation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum Noise {
    /// Always-correct answers — the `mu = 0` / `p = 0` degenerate case.
    #[default]
    Exact,
    /// Adversarial multiplicative-band noise answered by the worst-case
    /// liar (`InvertAdversary`) — the model every approximation bound
    /// must survive.
    Adversarial {
        /// Band parameter `mu >= 0`: queries within a `(1 + mu)` ratio
        /// may be answered arbitrarily.
        mu: f64,
    },
    /// Persistent probabilistic noise: each distinct query is wrong with
    /// probability `p`, and repeating it returns the same answer.
    Probabilistic {
        /// Per-query error probability, `0 <= p < 0.5`.
        p: f64,
        /// Seed of the persistent error pattern.
        seed: u64,
    },
    /// Simulated crowd workers: per-query accuracy follows an
    /// [`AccuracyProfile`] over the ratio of the compared quantities,
    /// decided by majority over `workers` persistent annotators.
    Crowd {
        /// Accuracy-vs-ratio curve (Fig. 4 of the paper).
        profile: AccuracyProfile,
        /// Odd number of annotators per query (3 in the user study;
        /// 1 models the trained classifier).
        workers: u32,
        /// Seed of the simulated worker pool.
        seed: u64,
    },
}

impl Noise {
    /// `true` for the models routed through the probabilistic engines
    /// (Count-Max-Prob, core-routed neighbour searches, Algorithm 7):
    /// persistent statistical errors, where repetition cannot boost
    /// confidence. Exact and adversarial noise route through the
    /// adversarial engines (Max-Adv, Algorithm 6) instead.
    pub fn is_statistical(&self) -> bool {
        matches!(self, Noise::Probabilistic { .. } | Noise::Crowd { .. })
    }
}

/// How a probing session responds when the online flip-rate estimate
/// contradicts the noise rate its repetition parameters were derived
/// for (see [`SessionBuilder::adapt_noise`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdaptPolicy {
    /// Fail the run with [`NcoError::NoiseMisspecified`] — the default
    /// guard behaviour whenever probing is enabled, named here so it
    /// can be requested explicitly.
    FailFast,
    /// Re-derive the repetition parameters for the *observed* rate (the
    /// probe CI upper bound, clamped at `0.45`) and re-run the engine
    /// once on the remaining budget. Query/round meters accumulate
    /// across both attempts and [`RunReport::adaptations`] records the
    /// re-run; the escalated attempt is not re-guarded.
    Escalate,
}

/// What a session's distances are computed against.
#[derive(Debug)]
enum MetricStore {
    /// Every distance recomputed on demand.
    Plain(AnyMetric),
    /// Lazy distances memoised in a lock-free [`DistCache`], shared by
    /// every session (and thread) on the engine.
    Cached(CachedMetric<AnyMetric>),
}

impl MetricStore {
    fn len(&self) -> usize {
        match self {
            Self::Plain(m) => m.len(),
            Self::Cached(c) => c.len(),
        }
    }
}

/// The immutable data plane shared by sessions: the hidden ground truth
/// (raw values or a metric space) plus the engine-level distance cache.
///
/// An `Engine` is `Sync` and designed to be shared behind an [`Arc`]:
/// build it once per corpus, then attach any number of concurrent
/// sessions via [`SessionBuilder::engine`]. Sessions never mutate the
/// engine — the distance cache is lock-free and insert-only.
#[derive(Debug)]
pub struct Engine {
    source: Source,
}

#[derive(Debug)]
enum Source {
    Values(Vec<f64>),
    Metric(MetricStore),
}

impl Engine {
    /// An engine over raw hidden values (for [`Task::Max`] /
    /// [`Task::TopK`] sessions).
    pub fn from_values(values: Vec<f64>) -> Arc<Self> {
        Arc::new(Self {
            source: Source::Values(values),
        })
    }

    /// An engine over a metric space (for neighbour / clustering /
    /// hierarchy sessions). `cache_distances` wraps the metric in a
    /// shared [`DistCache`] so each distinct pair distance is evaluated
    /// at most once across every session on this engine.
    pub fn from_metric(metric: AnyMetric, cache_distances: bool) -> Arc<Self> {
        let store = if cache_distances {
            MetricStore::Cached(CachedMetric::new(metric))
        } else {
            MetricStore::Plain(metric)
        };
        Arc::new(Self {
            source: Source::Metric(store),
        })
    }

    /// An engine over a generated dataset's metric.
    pub fn from_dataset(dataset: &Dataset, cache_distances: bool) -> Arc<Self> {
        Self::from_metric(dataset.metric.clone(), cache_distances)
    }

    /// Number of records in the engine's ground truth.
    pub fn n(&self) -> usize {
        match &self.source {
            Source::Values(v) => v.len(),
            Source::Metric(m) => m.len(),
        }
    }

    /// `true` when the engine holds raw values (value tasks runnable).
    pub fn has_values(&self) -> bool {
        matches!(self.source, Source::Values(_))
    }

    /// `true` when the engine holds a metric (metric tasks runnable).
    pub fn has_metric(&self) -> bool {
        matches!(self.source, Source::Metric(_))
    }

    /// Distinct distances currently materialised in the engine's shared
    /// cache (`None` when distance caching is off or the engine holds
    /// raw values).
    pub fn cache_entries(&self) -> Option<u64> {
        match &self.source {
            Source::Metric(MetricStore::Cached(c)) => Some(c.cache().filled() as u64),
            _ => None,
        }
    }

    fn cache(&self) -> Option<&DistCache> {
        match &self.source {
            Source::Metric(MetricStore::Cached(c)) => Some(c.cache()),
            _ => None,
        }
    }

    pub(crate) fn values(&self) -> Option<&[f64]> {
        match &self.source {
            Source::Values(v) => Some(v),
            Source::Metric(_) => None,
        }
    }
}

/// A cheap, clonable [`Metric`] view of a (metric) engine's distances —
/// the handle the serving plane's shared backend oracle is built over, so
/// one `'static` oracle can outlive any particular request while still
/// hitting the engine's `DistCache`.
#[derive(Debug, Clone)]
pub(crate) struct EngineMetric(Arc<Engine>);

impl EngineMetric {
    /// A metric view of `engine`. Panics (via [`Metric::dist`]) if the
    /// engine holds raw values; callers gate on [`Engine::has_metric`].
    pub(crate) fn new(engine: Arc<Engine>) -> Self {
        Self(engine)
    }
}

impl Metric for EngineMetric {
    fn len(&self) -> usize {
        self.0.n()
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        match &self.0.source {
            Source::Metric(MetricStore::Plain(m)) => m.dist(i, j),
            Source::Metric(MetricStore::Cached(c)) => c.dist(i, j),
            Source::Values(_) => unreachable!("value engines expose no metric"),
        }
    }
}

/// A clonable cooperative cancellation handle for in-flight runs.
///
/// Hand a token to [`SessionBuilder::cancel_token`], keep a clone, and
/// call [`CancelToken::cancel`] from any thread: every run attached to
/// the token stops issuing oracle queries at its next query or round
/// boundary and returns [`NcoError::DeadlineExceeded`] with the partial
/// [`RunReport`] — cancellation is cooperative, so a distance evaluation
/// already in flight is never interrupted midway.
///
/// Cancellation is sticky: once cancelled, every later run on a session
/// holding the token is killed at its first boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every run holding a clone of this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`Self::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// The raw flag the oracle chain polls at kill boundaries.
    pub(crate) fn flag(&self) -> Arc<AtomicBool> {
        self.0.clone()
    }
}

/// Configures and builds a [`Session`].
///
/// | knob | default | effect |
/// |---|---|---|
/// | [`values`](Self::values) / [`points`](Self::points) / [`metric`](Self::metric) / [`dataset`](Self::dataset) / [`engine`](Self::engine) | — (required) | the data source |
/// | [`noise`](Self::noise) | [`Noise::Exact`] | oracle noise model |
/// | [`confidence`](Self::confidence) | experimental params | theorem-grade failure probability `delta` |
/// | [`cache_distances`](Self::cache_distances) | `false` | engine-level [`DistCache`] |
/// | [`memoize`](Self::memoize) | `false` | exact answer memo ([`MemoOracle`]) |
/// | [`threads`](Self::threads) | `1` | worker fan-out (hierarchy tasks) |
/// | [`seed`](Self::seed) | `0` | rng stream of each run |
/// | [`budget`](Self::budget) | unlimited | hard cap on oracle queries |
/// | [`min_cluster_promise`](Self::min_cluster_promise) | `n / 2k` | Algorithm 7's `m` |
/// | [`fault_plan`](Self::fault_plan) | none | deterministic fault injection ([`FaultPlan`]) |
/// | [`retry_policy`](Self::retry_policy) | 4 attempts | bounded retry over injected faults |
/// | [`deadline`](Self::deadline) | none | wall-clock kill switch per run |
/// | [`cancel_token`](Self::cancel_token) | none | cooperative cancellation handle |
/// | [`probe_noise`](Self::probe_noise) | off | billed online flip-rate probing ([`ProbeOracle`]) |
/// | [`assume_noise_rate`](Self::assume_noise_rate) | none | scale repetitions for an assumed flip rate |
/// | [`adapt_noise`](Self::adapt_noise) | fail fast | response to a misspecified noise rate |
/// | [`scaffold_search`](Self::scaffold_search) | off | shared-scaffold plane for hierarchy searches |
#[derive(Debug, Default)]
#[must_use = "a builder does nothing until build() is called"]
pub struct SessionBuilder {
    engine: Option<Arc<Engine>>,
    values: Option<Vec<f64>>,
    metric: Option<AnyMetric>,
    cache_distances: bool,
    noise: Noise,
    delta: Option<f64>,
    memo: bool,
    threads: usize,
    seed: u64,
    budget: Option<u64>,
    min_cluster_promise: Option<usize>,
    first_center: Option<usize>,
    fault_plan: Option<FaultPlan>,
    retry: Option<RetryPolicy>,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    probe_rate: Option<f64>,
    assumed_noise: Option<f64>,
    adapt: Option<AdaptPolicy>,
    scaffold: bool,
    /// A typed rejection recorded by a data-source method (degenerate
    /// points), surfaced by [`Self::build`] — builder methods return
    /// `Self`, so they cannot fail in place.
    deferred: Option<NcoError>,
}

impl SessionBuilder {
    /// A fresh builder with every knob at its default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hidden scalar values for [`Task::Max`] / [`Task::TopK`] sessions.
    pub fn values(mut self, values: Vec<f64>) -> Self {
        self.values = Some(values);
        self
    }

    /// Euclidean points as the hidden metric space.
    ///
    /// Degenerate input — NaN/infinite coordinates or inconsistent
    /// dimensions — is remembered and surfaced as a typed
    /// [`NcoError::InvalidParams`] by [`Self::build`] instead of
    /// panicking; an empty slice builds an `n = 0` corpus that every
    /// task rejects typed at run time.
    pub fn points(mut self, points: &[Vec<f64>]) -> Self {
        if points.is_empty() {
            return self.metric(AnyMetric::Euclidean(EuclideanMetric::from_flat(
                Vec::new(),
                1,
            )));
        }
        let dim = points[0].len();
        if dim == 0 {
            self.deferred = Some(NcoError::invalid(
                "points need at least one coordinate each",
            ));
            return self;
        }
        if let Some((i, p)) = points.iter().enumerate().find(|(_, p)| p.len() != dim) {
            self.deferred = Some(NcoError::invalid(format!(
                "inconsistent point dimensions: point 0 has {dim} coordinates, \
                 point {i} has {}",
                p.len()
            )));
            return self;
        }
        if let Some(i) = points.iter().position(|p| p.iter().any(|x| !x.is_finite())) {
            self.deferred = Some(NcoError::invalid(format!(
                "point {i} has a non-finite (NaN or infinite) coordinate: \
                 the hidden metric must be finite"
            )));
            return self;
        }
        self.metric(AnyMetric::Euclidean(EuclideanMetric::from_points(points)))
    }

    /// An explicit hidden metric space.
    pub fn metric(mut self, metric: AnyMetric) -> Self {
        self.metric = Some(metric);
        self
    }

    /// A generated dataset: its metric becomes the hidden space and its
    /// minimum ground-truth cluster size seeds Algorithm 7's `m` promise.
    pub fn dataset(mut self, dataset: &Dataset) -> Self {
        self.min_cluster_promise = Some(dataset.min_cluster_size);
        self.metric(dataset.metric.clone())
    }

    /// Attach an existing (shared) engine instead of building one. The
    /// engine determines the data source *and* the distance-caching
    /// choice; [`Self::cache_distances`] is ignored in this mode.
    pub fn engine(mut self, engine: Arc<Engine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// The oracle noise model (default: [`Noise::Exact`]).
    pub fn noise(mut self, noise: Noise) -> Self {
        self.noise = noise;
        self
    }

    /// Run with theorem-grade parameters at failure probability `delta`
    /// (each engine's `with_confidence` configuration). Without this, the
    /// paper's lean Section 6.1 experimental parameters are used.
    pub fn confidence(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Memoise lazy distance evaluations in an engine-level
    /// [`DistCache`] shared across all sessions on the engine.
    pub fn cache_distances(mut self, on: bool) -> Self {
        self.cache_distances = on;
        self
    }

    /// Memoise oracle *answers* in an exact [`MemoOracle`] (persistent
    /// noise makes repeats free). Per run, serial tasks only.
    pub fn memoize(mut self, on: bool) -> Self {
        self.memo = on;
        self
    }

    /// Worker threads for fan-out-capable engines. With `threads >= 2`,
    /// [`Task::Hierarchy`] runs the counter-stream SLINK engine
    /// (`hier_oracle_par`), whose output is bit-identical at any worker
    /// count; other tasks currently run serially regardless.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Seed of the rng stream each [`Session::run`] draws from. Runs are
    /// a pure function of (engine, configuration, task), so re-running
    /// the same task returns the same answer.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Hard cap on oracle queries per run; exceeding it aborts the run
    /// with [`NcoError::BudgetExceeded`] without issuing a single query
    /// past the cap.
    pub fn budget(mut self, max_queries: u64) -> Self {
        self.budget = Some(max_queries);
        self
    }

    /// Algorithm 7's minimum optimal-cluster-size promise `m` for
    /// probabilistic k-center (default: `max(1, n / 2k)`, the balanced
    /// heuristic; [`Self::dataset`] sets it from ground truth).
    pub fn min_cluster_promise(mut self, m: usize) -> Self {
        self.min_cluster_promise = Some(m);
        self
    }

    /// Inject deterministic oracle faults (transient failures, outage
    /// bursts, latency stalls, stuck workers) into every run, as
    /// described by a seeded [`FaultPlan`]. Faults are injected *under*
    /// the query meter and masked by the session's [`RetryPolicy`]
    /// (see [`Self::retry_policy`]): a fully masked plan returns answers
    /// **bit-identical** to the fault-free run — noise persistence means
    /// a re-asked query re-reads the same noisy belief — while the
    /// retries still show up in [`RunReport::queries`]. A fault that
    /// outlives the policy fails the run with [`NcoError::OracleFailed`].
    ///
    /// Serial runs only: combined with [`Self::threads`] `>= 2` the
    /// build is rejected, like [`Self::memoize`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Bounded-retry recovery over injected faults (default:
    /// [`RetryPolicy::default`], 4 attempts per query). Every retry is
    /// billed as a real query — budgets and [`RunReport::queries`] stay
    /// honest — and deterministic backoff is accounted as latency debt
    /// rather than slept.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Wall-clock deadline per [`Session::run`], measured from the
    /// moment `run` is called and checked cooperatively at query and
    /// round boundaries (an oracle call already in flight is never
    /// interrupted midway). A run that outlives its deadline stops
    /// issuing oracle queries and returns [`NcoError::DeadlineExceeded`]
    /// carrying the partial [`RunReport`]: the answer is gone, the bill
    /// is not.
    ///
    /// # Examples
    ///
    /// ```
    /// use noisy_oracle::{NcoError, Session, Task};
    /// use std::time::Duration;
    ///
    /// let session = Session::builder()
    ///     .values((0..32).map(f64::from).collect())
    ///     .deadline(Duration::from_secs(30))
    ///     .build()?;
    /// // A generous deadline never fires; the answer is unchanged.
    /// let outcome = session.run(Task::Max)?;
    /// assert_eq!(outcome.answer.item(), Some(31));
    ///
    /// // An already-expired deadline kills the run at its first query
    /// // boundary, preserving the (empty) cost accounting.
    /// let doomed = Session::builder()
    ///     .values((0..32).map(f64::from).collect())
    ///     .deadline(Duration::ZERO)
    ///     .build()?;
    /// match doomed.run(Task::Max) {
    ///     Err(NcoError::DeadlineExceeded { report, .. }) => assert_eq!(report.queries, 0),
    ///     other => panic!("expected a deadline kill, got {other:?}"),
    /// }
    /// # Ok::<(), NcoError>(())
    /// ```
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cooperative [`CancelToken`]: calling
    /// [`CancelToken::cancel`] on any clone kills in-flight (and future)
    /// runs of this session at their next query or round boundary with
    /// [`NcoError::DeadlineExceeded`], partial accounting preserved.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Pin the greedy k-center's first center to a specific record
    /// (default: the paper's "arbitrary point", drawn from the run's
    /// seeded rng). Useful for comparing runs against a fixed reference.
    pub fn first_center(mut self, record: usize) -> Self {
        self.first_center = Some(record);
        self
    }

    /// Enable the online noise probe plane: inject seeded transitivity
    /// triangles into the live query stream at `rate` (the probability,
    /// per real oracle ask, that a three-query probe triangle is issued
    /// first). Probes are **billed** — they pass through the same
    /// budget/deadline/fault chain as real queries and show up in
    /// [`RunReport::queries`] and [`RunReport::probes`] — and
    /// deterministic: the probe stream is a pure function of the
    /// session seed, so replaying a session replays its probes.
    ///
    /// Probing feeds [`RunReport::observed_flip_rate`] and arms the
    /// misspecification guard: a run whose observed rate's confidence
    /// interval sits entirely above the assumed rate
    /// ([`Self::assume_noise_rate`], or the model `p` of
    /// [`Noise::Probabilistic`]) fails with
    /// [`NcoError::NoiseMisspecified`] unless
    /// [`Self::adapt_noise`] escalates instead.
    ///
    /// Probes never change answers: noise is persistent, so the extra
    /// asks cannot move any belief a real query reads. `rate` must lie
    /// in `[0, 1]`; serial runs only (like [`Self::memoize`]).
    pub fn probe_noise(mut self, rate: f64) -> Self {
        self.probe_rate = Some(rate);
        self
    }

    /// Derive the engines' repetition parameters for an assumed flip
    /// rate `p` instead of the defaults: sampling/round counts scale by
    /// `1/(1-2p)^2`, the standard noisy-comparison dependence. `p` must
    /// lie in `[0, 0.5)`; `0` is a no-op. With probing enabled this is
    /// also the rate the misspecification guard defends.
    pub fn assume_noise_rate(mut self, p: f64) -> Self {
        self.assumed_noise = Some(p);
        self
    }

    /// What to do when the probe plane's flip-rate estimate says the
    /// assumed noise rate is too low (its CI lower bound exceeds the
    /// assumed rate). Requires [`Self::probe_noise`].
    pub fn adapt_noise(mut self, policy: AdaptPolicy) -> Self {
        self.adapt = Some(policy);
        self
    }

    /// Run [`Task::Hierarchy`] searches over the shared-scaffold search
    /// plane (`HierParams::scaffolded`): one Max-Adv scaffold amortised
    /// across all initial-pointer and pointer-repair searches — strictly
    /// fewer queries, identical guarantees, decision-identical to its
    /// from-scratch reference. Off by default because it changes the
    /// randomness schedule, so enabling it changes which (equally valid)
    /// dendrogram a given seed produces. No effect on other tasks.
    pub fn scaffold_search(mut self, on: bool) -> Self {
        self.scaffold = on;
        self
    }

    /// Validates the configuration and builds the session (constructing
    /// the engine unless one was attached).
    pub fn build(self) -> Result<Session, NcoError> {
        // A data-source method already rejected its input; surface that
        // first — the other checks would mask it with a confusing
        // "configure exactly one data source".
        if let Some(err) = self.deferred {
            return Err(err);
        }
        match self.noise {
            Noise::Adversarial { mu } => {
                if !(mu >= 0.0 && mu.is_finite()) {
                    return Err(NcoError::invalid(format!(
                        "adversarial band mu = {mu} must be a finite non-negative constant"
                    )));
                }
            }
            Noise::Probabilistic { p, .. } => {
                if !(0.0..0.5).contains(&p) {
                    return Err(NcoError::invalid(format!(
                        "error probability p = {p} must lie in [0, 0.5)"
                    )));
                }
            }
            Noise::Crowd { workers, .. } => {
                if workers % 2 == 0 {
                    return Err(NcoError::invalid(format!(
                        "crowd majority needs an odd number of workers, got {workers}"
                    )));
                }
            }
            Noise::Exact => {}
        }
        if let Some(delta) = self.delta {
            if !(delta > 0.0 && delta < 1.0) {
                return Err(NcoError::invalid(format!(
                    "confidence delta = {delta} must lie in (0, 1)"
                )));
            }
        }
        let sources =
            self.engine.is_some() as u8 + self.values.is_some() as u8 + self.metric.is_some() as u8;
        if sources != 1 {
            return Err(NcoError::invalid(
                "configure exactly one data source: values(), points()/metric()/dataset(), \
                 or engine()",
            ));
        }
        if let Some(metric) = &self.metric {
            // Degenerate coordinates (NaN/∞) poison every downstream
            // comparison — Euclidean self-distances turn NaN — and the
            // engines' threshold machinery misbehaves on unordered
            // floats. Reject them up front with a typed error: the O(n)
            // self-distance sweep is free next to any task's query work
            // and runs before the metric is wrapped in the engine, so
            // it never pollutes the shared distance cache.
            for i in 0..metric.len() {
                if !metric.dist(i, i).is_finite() {
                    return Err(NcoError::invalid(format!(
                        "record {i} has a non-finite self-distance — NaN or infinite \
                         coordinates? The hidden metric must be finite"
                    )));
                }
            }
        }
        let engine = if let Some(engine) = self.engine {
            engine
        } else if let Some(values) = self.values {
            Engine::from_values(values)
        } else {
            Engine::from_metric(
                self.metric.expect("one source present"),
                self.cache_distances,
            )
        };
        // Value checks run against the *resolved* engine so that sessions
        // attached to a shared `Engine::from_values` engine get the same
        // typed rejection as builder-owned values (the oracle constructors
        // would otherwise panic at run time).
        if let Some(values) = engine.values() {
            if values.iter().any(|v| !v.is_finite()) {
                return Err(NcoError::invalid("hidden values must be finite"));
            }
            let needs_magnitudes =
                matches!(self.noise, Noise::Adversarial { .. } | Noise::Crowd { .. });
            if needs_magnitudes && values.iter().any(|v| *v < 0.0) {
                return Err(NcoError::invalid(
                    "adversarial / crowd noise compares magnitude ratios: \
                     hidden values must be non-negative",
                ));
            }
        }
        if let Some(first) = self.first_center {
            if first >= engine.n() {
                return Err(NcoError::invalid(format!(
                    "first center {first} out of range (n = {})",
                    engine.n()
                )));
            }
        }
        if self.min_cluster_promise == Some(0) {
            return Err(NcoError::invalid(
                "minimum cluster-size promise m must be positive",
            ));
        }
        if self.memo {
            if engine.n() > (1 << 16) {
                return Err(NcoError::invalid(format!(
                    "answer memoisation is capped at n = 65536 records (n = {}): quadruplet \
                     keys pack indices into 16 bits and the comparison pair table is \
                     n(n-1)/4 bytes",
                    engine.n()
                )));
            }
            if self.threads >= 2 {
                return Err(NcoError::invalid(
                    "answer memoisation is serial-only; drop memoize(true) or threads(>= 2)",
                ));
            }
        }
        if self.fault_plan.is_some_and(|p| p.is_active()) && self.threads >= 2 {
            return Err(NcoError::invalid(
                "fault injection is serial-only; drop fault_plan() or threads(>= 2)",
            ));
        }
        if let Some(rate) = self.probe_rate {
            if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                return Err(NcoError::invalid(format!(
                    "probe rate {rate} must lie in [0, 1]"
                )));
            }
            if rate > 0.0 && self.threads >= 2 {
                return Err(NcoError::invalid(
                    "noise probing is serial-only; drop probe_noise() or threads(>= 2)",
                ));
            }
        }
        if let Some(p) = self.assumed_noise {
            if !(p.is_finite() && (0.0..0.5).contains(&p)) {
                return Err(NcoError::invalid(format!(
                    "assumed noise rate {p} must lie in [0, 0.5)"
                )));
            }
        }
        if self.adapt.is_some() && !self.probe_rate.is_some_and(|r| r > 0.0) {
            return Err(NcoError::invalid(
                "adapt_noise() needs the probe plane: set probe_noise(rate) with rate > 0",
            ));
        }
        Ok(Session {
            engine,
            cfg: Config {
                noise: self.noise,
                delta: self.delta,
                memo: self.memo,
                threads: self.threads.max(1),
                seed: self.seed,
                budget: self.budget,
                min_cluster_promise: self.min_cluster_promise,
                first_center: self.first_center,
                fault_plan: self.fault_plan,
                retry: self.retry,
                deadline: self.deadline,
                cancel: self.cancel,
                probe_rate: self.probe_rate,
                assumed_noise: self.assumed_noise,
                adapt: self.adapt,
                scaffold: self.scaffold,
            },
        })
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Config {
    pub(crate) noise: Noise,
    pub(crate) delta: Option<f64>,
    pub(crate) memo: bool,
    pub(crate) threads: usize,
    pub(crate) seed: u64,
    pub(crate) budget: Option<u64>,
    pub(crate) min_cluster_promise: Option<usize>,
    pub(crate) first_center: Option<usize>,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) retry: Option<RetryPolicy>,
    pub(crate) deadline: Option<Duration>,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) probe_rate: Option<f64>,
    pub(crate) assumed_noise: Option<f64>,
    pub(crate) adapt: Option<AdaptPolicy>,
    pub(crate) scaffold: bool,
}

/// Per-run bookkeeping captured when `run` starts, threaded through to
/// [`Session::finish`] so the report can attribute per-run deltas
/// (wall clock, distance-cache growth) on top of engine-level totals.
#[derive(Debug, Clone, Copy)]
struct RunCtx {
    start: Instant,
    /// Engine distance-cache fill when the run started (`None` when
    /// caching is off).
    cache_start: Option<u64>,
}

impl RunCtx {
    fn begin(engine: &Engine) -> Self {
        Self {
            start: Instant::now(),
            cache_start: engine.cache_entries(),
        }
    }
}

/// A configured, reusable handle for running [`Task`]s against an
/// [`Engine`] — see the crate-level docs for the architecture sketch.
///
/// `run` takes `&self`: sessions are cheap to clone and safe to share
/// across threads (the engine is immutable, oracles are built per run).
#[derive(Debug, Clone)]
pub struct Session {
    engine: Arc<Engine>,
    cfg: Config,
}

impl Session {
    /// Starts a fresh [`SessionBuilder`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The shared engine this session runs against — attach it to another
    /// builder ([`SessionBuilder::engine`]) to serve more sessions over
    /// the same data (and the same distance cache).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Runs a task through the engine matching this session's noise
    /// model, returning the typed answer plus cost accounting.
    ///
    /// The wiring is bit-identical — same answers, same query counts — to
    /// hand-assembling the oracle, comparator, parameters and rng around
    /// the low-level APIs (`tests/session_equivalence.rs` pins this for
    /// every task under every noise model).
    pub fn run(&self, task: Task) -> Result<Outcome, NcoError> {
        let ctx = RunCtx::begin(&self.engine);
        self.validate(task)?;
        match &self.engine.source {
            Source::Values(values) => self.run_value(task, values, ctx),
            Source::Metric(MetricStore::Plain(m)) => self.run_metric(task, m, ctx),
            Source::Metric(MetricStore::Cached(c)) => self.run_metric(task, c, ctx),
        }
    }

    /// This session's resolved configuration (for the serving plane).
    pub(crate) fn cfg(&self) -> &Config {
        &self.cfg
    }

    /// A clone of this session with a different rng seed — how the
    /// serving plane derives per-request sessions from one template.
    pub(crate) fn with_seed(&self, seed: u64) -> Session {
        let mut cloned = self.clone();
        cloned.cfg.seed = seed;
        cloned
    }

    /// Task/source compatibility and parameter-range checks, up front so
    /// the dispatch below cannot panic.
    pub(crate) fn validate(&self, task: Task) -> Result<(), NcoError> {
        let n = self.engine.n();
        if task.needs_values() && !self.engine.has_values() {
            return Err(NcoError::invalid(
                "value tasks (Max / TopK / Sort / Select / Partition) need a session built over raw values",
            ));
        }
        if !task.needs_values() && !self.engine.has_metric() {
            return Err(NcoError::invalid(
                "metric-space tasks need a session built over points, a metric or a dataset",
            ));
        }
        match task {
            Task::Max => {
                if n == 0 {
                    return Err(NcoError::empty("cannot take the maximum of zero values"));
                }
            }
            Task::TopK { k } => {
                if n == 0 {
                    return Err(NcoError::empty("cannot select from zero values"));
                }
                if k == 0 || k > n {
                    return Err(NcoError::invalid(format!(
                        "top-k needs 1 <= k <= n (k = {k}, n = {n})"
                    )));
                }
            }
            Task::Nearest { q } | Task::Farthest { q } => {
                if n < 2 {
                    return Err(NcoError::empty(format!(
                        "neighbour search needs at least 2 records (n = {n})"
                    )));
                }
                if q >= n {
                    return Err(NcoError::invalid(format!(
                        "query record q = {q} out of range (n = {n})"
                    )));
                }
            }
            Task::KCenter { k } => {
                if n == 0 {
                    return Err(NcoError::empty("cannot cluster zero records"));
                }
                if k == 0 || k > n {
                    return Err(NcoError::invalid(format!(
                        "k-center needs 1 <= k <= n (k = {k}, n = {n})"
                    )));
                }
            }
            Task::Hierarchy { .. } => {
                if n < 2 {
                    return Err(NcoError::empty(format!(
                        "agglomeration needs at least 2 records (n = {n})"
                    )));
                }
            }
            Task::Sort => {
                if n == 0 {
                    return Err(NcoError::empty("cannot sort zero values"));
                }
            }
            Task::Select { k } => {
                if n == 0 {
                    return Err(NcoError::empty("cannot select from zero values"));
                }
                if k == 0 || k > n {
                    return Err(NcoError::invalid(format!(
                        "select needs 1 <= k <= n (k = {k}, n = {n})"
                    )));
                }
            }
            Task::Partition { k } => {
                if n == 0 {
                    return Err(NcoError::empty("cannot partition zero values"));
                }
                if k == 0 || k > n {
                    return Err(NcoError::invalid(format!(
                        "partition needs 1 <= k <= n (k = {k}, n = {n})"
                    )));
                }
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Value tasks (comparison oracles).
    //
    // The value oracles own their Vec<f64>, so each run copies the
    // engine's values once — O(n), dwarfed by the O(n polylog) query
    // work of every value task. (The quadruplet oracles are generic
    // over `M: Metric` and borrow instead; giving the value oracles
    // the same shape is the clean fix if value corpora ever grow past
    // the point where the copy shows up.)
    // -----------------------------------------------------------------

    fn run_value(&self, task: Task, values: &[f64], ctx: RunCtx) -> Result<Outcome, NcoError> {
        // Oracle *factories*, not oracles: an adaptive session may run
        // the engine twice (see `drive_value`), and persistence makes a
        // rebuilt oracle answer identically to the first.
        match self.cfg.noise {
            Noise::Exact => self.drive_value(task, || TrueValueOracle::new(values.to_vec()), ctx),
            Noise::Adversarial { mu } => self.drive_value(
                task,
                || AdversarialValueOracle::new(values.to_vec(), mu, InvertAdversary),
                ctx,
            ),
            Noise::Probabilistic { p, seed } => {
                self.drive_value(task, || ProbValueOracle::new(values.to_vec(), p, seed), ctx)
            }
            Noise::Crowd {
                profile,
                workers,
                seed,
            } => self.drive_value(
                task,
                || CrowdValueOracle::new(values.to_vec(), profile, workers, seed),
                ctx,
            ),
        }
    }

    /// The same noise-model dispatch as [`Self::run_value`], but boxed
    /// and owning its data — the `'static` backend oracle the serving
    /// plane shares (behind its own memo/meter chain) across requests.
    pub(crate) fn boxed_cmp_backend(&self) -> Box<dyn ComparisonOracle + Send> {
        let values = self
            .engine
            .values()
            .expect("caller gated on Engine::has_values")
            .to_vec();
        match self.cfg.noise {
            Noise::Exact => Box::new(TrueValueOracle::new(values)),
            Noise::Adversarial { mu } => {
                Box::new(AdversarialValueOracle::new(values, mu, InvertAdversary))
            }
            Noise::Probabilistic { p, seed } => Box::new(ProbValueOracle::new(values, p, seed)),
            Noise::Crowd {
                profile,
                workers,
                seed,
            } => Box::new(CrowdValueOracle::new(values, profile, workers, seed)),
        }
    }

    /// Quadruplet twin of [`Self::boxed_cmp_backend`], built over an
    /// [`EngineMetric`] handle so it hits the engine's `DistCache`.
    pub(crate) fn boxed_quad_backend(&self) -> Box<dyn QuadrupletOracle + Send> {
        let metric = EngineMetric::new(self.engine.clone());
        match self.cfg.noise {
            Noise::Exact => Box::new(TrueQuadOracle::new(metric)),
            Noise::Adversarial { mu } => {
                Box::new(AdversarialQuadOracle::new(metric, mu, InvertAdversary))
            }
            Noise::Probabilistic { p, seed } => Box::new(ProbQuadOracle::new(metric, p, seed)),
            Noise::Crowd {
                profile,
                workers,
                seed,
            } => Box::new(CrowdQuadOracle::new(metric, profile, workers, seed)),
        }
    }

    /// The per-run oracle chain, inside out: faults are injected right
    /// on the raw oracle, the budget/deadline meter bills every ask
    /// (faulted or not), the optional answer memo serves repeats for
    /// free, retry re-enters the meter on every re-ask of a faulted
    /// lane, and the probe plane sits outermost so its probe triangles
    /// are billed, budgeted and fault-masked like real queries. With no
    /// fault plan and no probing the chain is fully transparent —
    /// bit-identical answers and meters to wiring the budget alone.
    ///
    /// With [`AdaptPolicy::Escalate`], a clean first attempt whose probe
    /// estimate trips the misspecification guard is discarded and the
    /// engine re-runs (fresh chain from `make_raw`, same rng seed) with
    /// parameters re-derived for the observed rate, on whatever budget
    /// the first attempt left. Meters accumulate across both attempts.
    fn drive_value<O, F>(&self, task: Task, make_raw: F, ctx: RunCtx) -> Result<Outcome, NcoError>
    where
        O: ComparisonOracle + PersistentNoise,
        F: Fn() -> O,
    {
        let (answer, m, partial) =
            self.value_attempt(task, make_raw(), self.base_scale(), self.cfg.budget, &ctx)?;
        match self.escalation(&m) {
            None => self.finish(answer, m, ctx, partial, 0, true),
            Some((scale, remaining)) => {
                let (answer, m2, partial) =
                    self.value_attempt(task, make_raw(), scale, remaining, &ctx)?;
                self.finish(answer, Meters::accumulated(m, m2), ctx, partial, 1, false)
            }
        }
    }

    /// One engine pass over a fresh oracle chain; returns the answer
    /// plus the chain's meter readings and the clean-progress partial.
    fn value_attempt<O>(
        &self,
        task: Task,
        raw: O,
        scale: f64,
        budget: Option<u64>,
        ctx: &RunCtx,
    ) -> Result<(Answer, Meters, Option<PartialOutcome>), NcoError>
    where
        O: ComparisonOracle + PersistentNoise,
    {
        let plan = self.cfg.fault_plan.unwrap_or_else(FaultPlan::none);
        let policy = self.cfg.retry.unwrap_or_default();
        let probe = self.probe_plan();
        let budgeted = Budgeted::new(FaultyOracle::new(raw, plan), budget)
            .with_deadline(self.cfg.deadline.map(|d| ctx.start + d))
            .with_cancel(self.cfg.cancel.as_ref().map(CancelToken::flag));
        let mut partial = None;
        if self.cfg.memo {
            // Memo outside the budget: hits are free, only queries that
            // reach the real oracle bill. (A probe colliding with an
            // earlier query is served by the memo, hence unbilled —
            // the probe plane still counts it toward its estimate.)
            let mut oracle =
                ProbeOracle::new(Retrying::new(MemoOracle::new(budgeted), policy), probe);
            let answer = self.value_task(task, &mut oracle, scale, &mut partial)?;
            let estimate = oracle.estimate();
            let probes = probe.is_active().then(|| oracle.stats().probes);
            let retrying = oracle.inner();
            let failed = retrying.failed();
            let memo = retrying.inner();
            let inner = memo.inner();
            let m = Meters {
                queries: inner.queries(),
                rounds: inner.rounds(),
                exceeded: inner.exceeded(),
                killed: inner.killed(),
                failed,
                memo_hits: Some(memo.hits()),
                estimate,
                probes,
                merge_plane: None,
            };
            Ok((answer, m, partial))
        } else {
            let mut oracle = ProbeOracle::new(Retrying::new(budgeted, policy), probe);
            let answer = self.value_task(task, &mut oracle, scale, &mut partial)?;
            let estimate = oracle.estimate();
            let probes = probe.is_active().then(|| oracle.stats().probes);
            let retrying = oracle.inner();
            let failed = retrying.failed();
            let inner = retrying.inner();
            let m = Meters {
                queries: inner.queries(),
                rounds: inner.rounds(),
                exceeded: inner.exceeded(),
                killed: inner.killed(),
                failed,
                memo_hits: None,
                estimate,
                probes,
                merge_plane: None,
            };
            Ok((answer, m, partial))
        }
    }

    pub(crate) fn value_task<O: ComparisonOracle>(
        &self,
        task: Task,
        oracle: &mut O,
        scale: f64,
        partial: &mut Option<PartialOutcome>,
    ) -> Result<Answer, NcoError> {
        let items: Vec<usize> = (0..oracle.n()).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut cmp = ValueCmp::new(oracle);
        match task {
            Task::Max => {
                let mut leader = None;
                let best = if self.cfg.noise.is_statistical() {
                    max_prob_with_progress(
                        &items,
                        &self.prob_params(scale),
                        &mut cmp,
                        &mut rng,
                        &mut leader,
                    )
                } else {
                    max_adv_with_progress(
                        &items,
                        &self.adv_params(scale),
                        &mut cmp,
                        &mut rng,
                        &mut leader,
                    )
                };
                *partial = Some(PartialOutcome::Leader { candidate: leader });
                best.map(Answer::Item)
                    .ok_or_else(|| NcoError::empty("no values"))
            }
            Task::TopK { k } => {
                let mut clean = 0;
                let top = if self.cfg.noise.is_statistical() {
                    top_k_prob_with_progress(
                        &items,
                        k,
                        &self.prob_params(scale),
                        &mut cmp,
                        &mut rng,
                        &mut clean,
                    )
                } else {
                    top_k_adv_with_progress(
                        &items,
                        k,
                        &self.adv_params(scale),
                        &mut cmp,
                        &mut rng,
                        &mut clean,
                    )
                };
                *partial = Some(PartialOutcome::TopPrefix {
                    items: top[..clean].to_vec(),
                    requested: k,
                });
                Ok(Answer::Items(top))
            }
            Task::Sort => {
                let mut clean = 0;
                let order = if self.cfg.noise.is_statistical() {
                    sort_prob_with_progress(
                        &items,
                        &self.order_prob_params(scale),
                        &mut cmp,
                        &mut clean,
                    )
                } else {
                    sort_adv_with_progress(
                        &items,
                        &self.order_adv_params(scale),
                        &mut cmp,
                        &mut clean,
                    )
                };
                *partial = Some(PartialOutcome::SortedPrefix {
                    items: order[..clean].to_vec(),
                    n: order.len(),
                });
                Ok(Answer::Ranking(order))
            }
            // Select and Partition share the narrowing engine: a select
            // is a partition whose boundary item is the answer, so both
            // run the same queries and carry the same partial.
            Task::Select { k } | Task::Partition { k } => {
                let mut clean = 0;
                let mut candidate = None;
                let split = if self.cfg.noise.is_statistical() {
                    partition_prob_with_progress(
                        &items,
                        k,
                        &self.order_prob_params(scale),
                        &mut cmp,
                        &mut rng,
                        &mut clean,
                        &mut candidate,
                    )
                } else {
                    partition_adv_with_progress(
                        &items,
                        k,
                        &self.order_adv_params(scale),
                        &mut cmp,
                        &mut rng,
                        &mut clean,
                        &mut candidate,
                    )
                };
                *partial = Some(PartialOutcome::PivotCandidate {
                    candidate,
                    confirmed: split.top[..clean].to_vec(),
                    requested: k,
                });
                match task {
                    Task::Select { .. } => Ok(Answer::Item(split.top[k - 1])),
                    _ => Ok(Answer::Partition {
                        top: split.top,
                        rest: split.rest,
                    }),
                }
            }
            // validate() routed metric tasks away from value sessions.
            _ => Err(NcoError::invalid("not a value task")),
        }
    }

    // -----------------------------------------------------------------
    // Metric tasks (quadruplet oracles).
    // -----------------------------------------------------------------

    fn run_metric<M>(&self, task: Task, metric: M, ctx: RunCtx) -> Result<Outcome, NcoError>
    where
        M: Metric + Sync + Copy,
    {
        // Factories for the same reason as `run_value`: adaptive
        // sessions may rebuild the (persistent, hence identical) chain.
        match self.cfg.noise {
            Noise::Exact => self.drive_quad(task, || TrueQuadOracle::new(metric), ctx),
            Noise::Adversarial { mu } => self.drive_quad(
                task,
                || AdversarialQuadOracle::new(metric, mu, InvertAdversary),
                ctx,
            ),
            Noise::Probabilistic { p, seed } => {
                self.drive_quad(task, || ProbQuadOracle::new(metric, p, seed), ctx)
            }
            Noise::Crowd {
                profile,
                workers,
                seed,
            } => self.drive_quad(
                task,
                || CrowdQuadOracle::new(metric, profile, workers, seed),
                ctx,
            ),
        }
    }

    /// Quadruplet twin of [`Self::drive_value`] — same chain shape and
    /// the same adaptive re-run, plus the threaded hierarchy branch,
    /// which runs fault- and probe-free ([`build`] rejects an active
    /// plan or probing with `threads >= 2`) but still honours deadline
    /// and cancellation through the shared meter.
    ///
    /// [`build`]: SessionBuilder::build
    fn drive_quad<O, F>(&self, task: Task, make_raw: F, ctx: RunCtx) -> Result<Outcome, NcoError>
    where
        O: SharedQuadrupletOracle + PersistentNoise,
        F: Fn() -> O,
    {
        if self.cfg.threads >= 2 && !self.cfg.memo && matches!(task, Task::Hierarchy { .. }) {
            // Counter-stream SLINK: bit-identical at any worker count.
            let Task::Hierarchy { linkage } = task else {
                unreachable!("matched above");
            };
            let deadline = self.cfg.deadline.map(|d| ctx.start + d);
            let cancel = self.cfg.cancel.as_ref().map(CancelToken::flag);
            let mut oracle = SharedBudgeted::new(make_raw(), self.cfg.budget)
                .with_deadline(deadline)
                .with_cancel(cancel);
            let mut rng = StdRng::seed_from_u64(self.cfg.seed);
            let (dend, plane) = hier_oracle_par_stats(
                &self.hier_params(linkage, self.base_scale()),
                &mut oracle,
                &mut rng,
                self.cfg.threads,
            );
            let n = dend.n;
            let partial = Some(PartialOutcome::DendrogramPrefix {
                n,
                merges: dend.merges[..plane.clean_merges as usize].to_vec(),
                expected: n.saturating_sub(1),
            });
            let m = Meters {
                queries: oracle.queries(),
                rounds: oracle.rounds(),
                exceeded: oracle.exceeded(),
                killed: oracle.killed(),
                failed: None,
                memo_hits: None,
                estimate: None,
                probes: None,
                merge_plane: Some(plane),
            };
            return self.finish(Answer::Dendrogram(dend), m, ctx, partial, 0, true);
        }
        let (answer, m, partial) =
            self.quad_attempt(task, make_raw(), self.base_scale(), self.cfg.budget, &ctx)?;
        match self.escalation(&m) {
            None => self.finish(answer, m, ctx, partial, 0, true),
            Some((scale, remaining)) => {
                let (answer, m2, partial) =
                    self.quad_attempt(task, make_raw(), scale, remaining, &ctx)?;
                self.finish(answer, Meters::accumulated(m, m2), ctx, partial, 1, false)
            }
        }
    }

    /// One engine pass over a fresh quadruplet chain — see
    /// [`Self::value_attempt`].
    fn quad_attempt<O>(
        &self,
        task: Task,
        raw: O,
        scale: f64,
        budget: Option<u64>,
        ctx: &RunCtx,
    ) -> Result<(Answer, Meters, Option<PartialOutcome>), NcoError>
    where
        O: SharedQuadrupletOracle + PersistentNoise,
    {
        let plan = self.cfg.fault_plan.unwrap_or_else(FaultPlan::none);
        let policy = self.cfg.retry.unwrap_or_default();
        let probe = self.probe_plan();
        let deadline = self.cfg.deadline.map(|d| ctx.start + d);
        let cancel = self.cfg.cancel.as_ref().map(CancelToken::flag);
        let budgeted = Budgeted::new(FaultyOracle::new(raw, plan), budget)
            .with_deadline(deadline)
            .with_cancel(cancel);
        let mut plane = None;
        let mut partial = None;
        if self.cfg.memo {
            // Memo outside the budget: hits are free, only queries that
            // reach the real oracle bill.
            let mut oracle =
                ProbeOracle::new(Retrying::new(MemoOracle::new(budgeted), policy), probe);
            let answer = self.quad_task(task, &mut oracle, scale, &mut plane, &mut partial)?;
            let estimate = oracle.estimate();
            let probes = probe.is_active().then(|| oracle.stats().probes);
            let retrying = oracle.inner();
            let failed = retrying.failed();
            let memo = retrying.inner();
            let inner = memo.inner();
            let m = Meters {
                queries: inner.queries(),
                rounds: inner.rounds(),
                exceeded: inner.exceeded(),
                killed: inner.killed(),
                failed,
                memo_hits: Some(memo.hits()),
                estimate,
                probes,
                merge_plane: plane,
            };
            Ok((answer, m, partial))
        } else {
            let mut oracle = ProbeOracle::new(Retrying::new(budgeted, policy), probe);
            let answer = self.quad_task(task, &mut oracle, scale, &mut plane, &mut partial)?;
            let estimate = oracle.estimate();
            let probes = probe.is_active().then(|| oracle.stats().probes);
            let retrying = oracle.inner();
            let failed = retrying.failed();
            let inner = retrying.inner();
            let m = Meters {
                queries: inner.queries(),
                rounds: inner.rounds(),
                exceeded: inner.exceeded(),
                killed: inner.killed(),
                failed,
                memo_hits: None,
                estimate,
                probes,
                merge_plane: plane,
            };
            Ok((answer, m, partial))
        }
    }

    pub(crate) fn quad_task<O: QuadrupletOracle + nco_oracle::PersistentNoise>(
        &self,
        task: Task,
        oracle: &mut O,
        scale: f64,
        plane: &mut Option<MergePlaneStats>,
        partial: &mut Option<PartialOutcome>,
    ) -> Result<Answer, NcoError> {
        let n = oracle.n();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let statistical = self.cfg.noise.is_statistical();
        match task {
            Task::Farthest { q } => {
                // No partial: a single-winner search over one candidate
                // set has no meaningful intermediate commitment.
                let far = if statistical {
                    farthest_prob(
                        oracle,
                        q,
                        self.delta_eff(),
                        &self.adv_params(scale),
                        &mut rng,
                    )
                } else {
                    farthest_adv(oracle, q, &self.adv_params(scale), &mut rng)
                };
                far.map(Answer::Item)
                    .ok_or_else(|| NcoError::empty("no candidates"))
            }
            Task::Nearest { q } => {
                let near = if statistical {
                    nearest_prob(
                        oracle,
                        q,
                        self.delta_eff(),
                        &self.adv_params(scale),
                        &mut rng,
                    )
                } else {
                    nearest_adv(oracle, q, &self.adv_params(scale), &mut rng)
                };
                near.map(Answer::Item)
                    .ok_or_else(|| NcoError::empty("no candidates"))
            }
            Task::KCenter { k } => {
                let mut clean = 0;
                let clustering = if statistical {
                    kcenter_prob_with_progress(
                        &self.kcenter_prob_params(k, n, scale),
                        oracle,
                        &mut rng,
                        &mut clean,
                    )
                } else {
                    kcenter_adv_with_progress(
                        &self.kcenter_adv_params(k, scale),
                        oracle,
                        &mut rng,
                        &mut clean,
                    )
                };
                *partial = Some(PartialOutcome::Committee {
                    centers: clustering.centers[..clean].to_vec(),
                    requested: k,
                });
                Ok(Answer::Clustering(clustering))
            }
            Task::Hierarchy { linkage } => {
                let (dend, stats) =
                    hier_oracle_stats(&self.hier_params(linkage, scale), oracle, &mut rng);
                *partial = Some(PartialOutcome::DendrogramPrefix {
                    n,
                    merges: dend.merges[..stats.clean_merges as usize].to_vec(),
                    expected: n.saturating_sub(1),
                });
                *plane = Some(stats);
                Ok(Answer::Dendrogram(dend))
            }
            // validate() routed value tasks away from metric sessions.
            _ => Err(NcoError::invalid("not a metric task")),
        }
    }

    // -----------------------------------------------------------------
    // Parameter resolution: `confidence(delta)` picks the theorem-grade
    // configuration, otherwise the paper's experimental one.
    // -----------------------------------------------------------------

    fn delta_eff(&self) -> f64 {
        self.cfg.delta.unwrap_or(0.1)
    }

    /// The probe plane of every run in this session — inert (and fully
    /// transparent) unless [`SessionBuilder::probe_noise`] was set.
    pub(crate) fn probe_plan(&self) -> ProbePlan {
        match self.cfg.probe_rate {
            Some(rate) => ProbePlan::new(self.cfg.seed ^ PROBE_SEED_XOR, rate),
            None => ProbePlan::none(),
        }
    }

    /// The session's baseline repetition scale: `1/(1-2p)^2` when an
    /// assumed noise rate was configured, `1.0` (a strict no-op on
    /// every parameter) otherwise.
    pub(crate) fn base_scale(&self) -> f64 {
        self.cfg.assumed_noise.map(noise_scale_for).unwrap_or(1.0)
    }

    /// The flip rate the misspecification guard defends: the explicit
    /// [`SessionBuilder::assume_noise_rate`], falling back to the model
    /// `p` of [`Noise::Probabilistic`]. `None` (no guard) for other
    /// noise models without an explicit assumption.
    pub(crate) fn assumed_rate(&self) -> Option<f64> {
        self.cfg.assumed_noise.or(match self.cfg.noise {
            Noise::Probabilistic { p, .. } => Some(p),
            _ => None,
        })
    }

    /// `Some(estimate)` when probing measured a flip rate whose CI
    /// lower bound exceeds the assumed rate — the misspecification
    /// trigger shared by the guard and the escalation path.
    pub(crate) fn misspecified(&self, estimate: &Option<NoiseEstimate>) -> Option<NoiseEstimate> {
        let assumed = self.assumed_rate()?;
        let est = (*estimate)?;
        (est.p_lo > assumed).then_some(est)
    }

    /// The re-derived repetition scale a clean-but-misspecified attempt
    /// escalates to — `None` unless the session adapts
    /// ([`AdaptPolicy::Escalate`]) and the trigger tripped. Planning is
    /// for the worst rate the probes still deem plausible (the CI upper
    /// bound), capped away from the `1/2` singularity. Shared with the
    /// serving plane, which meters its requests itself.
    pub(crate) fn escalation_scale(&self, estimate: &Option<NoiseEstimate>) -> Option<f64> {
        if self.cfg.adapt != Some(AdaptPolicy::Escalate) {
            return None;
        }
        let est = self.misspecified(estimate)?;
        let p_adapt = est.p_hi.min(ADAPT_RATE_CAP);
        Some(noise_scale_for(p_adapt))
    }

    /// Decides whether a finished first attempt must be escalated:
    /// requires [`AdaptPolicy::Escalate`], a *clean* attempt (a failed,
    /// killed or over-budget run surfaces its own error instead), and a
    /// tripped misspecification trigger. Returns the re-derived scale
    /// and the budget the second attempt may still spend.
    fn escalation(&self, m: &Meters) -> Option<(f64, Option<u64>)> {
        if m.failed.is_some() || m.killed || m.exceeded {
            return None;
        }
        let scale = self.escalation_scale(&m.estimate)?;
        let remaining = self.cfg.budget.map(|b| b.saturating_sub(m.queries));
        Some((scale, remaining))
    }

    fn adv_params(&self, scale: f64) -> AdvParams {
        let mut params = self
            .cfg
            .delta
            .map(AdvParams::with_confidence)
            .unwrap_or_default();
        params.rounds = scale_rounds(params.rounds, scale);
        params
    }

    fn prob_params(&self, scale: f64) -> ProbParams {
        let mut params = self
            .cfg
            .delta
            .map(ProbParams::with_confidence)
            .unwrap_or_default();
        params.sample_coeff *= scale;
        params
    }

    fn order_adv_params(&self, scale: f64) -> OrderAdvParams {
        let mut params = self
            .cfg
            .delta
            .map(OrderAdvParams::with_confidence)
            .unwrap_or_default();
        params.vote_coeff *= scale;
        params.sample_coeff *= scale;
        params
    }

    fn order_prob_params(&self, scale: f64) -> OrderProbParams {
        let mut params = self
            .cfg
            .delta
            .map(OrderProbParams::with_confidence)
            .unwrap_or_default();
        params.vote_coeff *= scale;
        params.sample_coeff *= scale;
        params
    }

    fn kcenter_adv_params(&self, k: usize, scale: f64) -> KCenterAdvParams {
        let mut params = match self.cfg.delta {
            Some(delta) => KCenterAdvParams::with_confidence(k, delta),
            None => KCenterAdvParams::experimental(k),
        };
        params.first_center = self.cfg.first_center;
        params.farthest.rounds = scale_rounds(params.farthest.rounds, scale);
        params
    }

    fn kcenter_prob_params(&self, k: usize, n: usize, scale: f64) -> KCenterProbParams {
        let m = self
            .cfg
            .min_cluster_promise
            .unwrap_or_else(|| (n / (2 * k)).max(1));
        let mut params = match self.cfg.delta {
            Some(delta) => KCenterProbParams::with_confidence(k, m, delta),
            None => KCenterProbParams::experimental(k, m),
        };
        params.first_center = self.cfg.first_center;
        params.gamma *= scale;
        params
    }

    fn hier_params(&self, linkage: nco_core::hier::Linkage, scale: f64) -> HierParams {
        let mut params = match self.cfg.delta {
            Some(delta) => HierParams::with_confidence(linkage, self.engine.n(), delta),
            None => HierParams::experimental(linkage),
        };
        params.search.rounds = scale_rounds(params.search.rounds, scale);
        params.scaffold = self.cfg.scaffold;
        params
    }

    fn finish(
        &self,
        answer: Answer,
        m: Meters,
        ctx: RunCtx,
        partial: Option<PartialOutcome>,
        adaptations: u32,
        guard: bool,
    ) -> Result<Outcome, NcoError> {
        // Failure precedence: a fault that outlived the retry policy
        // trumps the kill flag (the oracle was broken, not merely slow),
        // a kill trumps the budget flag (whichever fired first, the
        // kill is what stopped the run from recovering), and both trump
        // the misspecification guard (a killed run's estimate is
        // incidental; its real failure is the kill).
        if let Some(attempts) = m.failed {
            return Err(NcoError::OracleFailed {
                queries_spent: m.queries,
                attempts,
            });
        }
        let cache_entries = self.engine.cache().map(|c| c.filled() as u64);
        let report = RunReport {
            queries: m.queries,
            rounds: m.rounds,
            memo_hits: m.memo_hits,
            cache_entries,
            // The run's own contribution: end-of-run fill minus the
            // fill captured when the run started. (On an engine with
            // concurrent sessions the window can attribute a racing
            // insert to whichever run read the counter later — the
            // counts still sum to the engine total.)
            cache_added: cache_entries.map(|e| e.saturating_sub(ctx.cache_start.unwrap_or(0))),
            wall: ctx.start.elapsed(),
            budget: self.cfg.budget,
            merge_plane: m.merge_plane,
            observed_flip_rate: m.estimate.map(|e| e.p_hat),
            probes: m.probes,
            adaptations,
        };
        if m.killed {
            return Err(NcoError::DeadlineExceeded {
                report: Box::new(report),
                partial,
            });
        }
        if m.exceeded {
            return Err(NcoError::BudgetExceeded {
                budget: self.cfg.budget.expect("exceeded implies a budget"),
                report: Box::new(report),
                partial,
            });
        }
        if guard {
            if let Some(est) = self.misspecified(&m.estimate) {
                return Err(NcoError::NoiseMisspecified {
                    assumed: self.assumed_rate().expect("trigger implies an assumption"),
                    observed: est.p_hat,
                    probes: m.probes.unwrap_or(0),
                    report: Box::new(report),
                });
            }
        }
        Ok(Outcome::new(answer, report))
    }
}

/// `ceil(rounds * scale)`, never below the unscaled count — how an
/// assumed/adapted noise rate escalates integer repetition knobs.
fn scale_rounds(rounds: usize, scale: f64) -> usize {
    if scale <= 1.0 {
        return rounds;
    }
    ((rounds as f64 * scale).ceil() as usize).max(rounds)
}

/// End-of-run meter readings from the per-run oracle chain, gathered by
/// the drive paths and folded into a [`RunReport`] (or a typed failure)
/// by [`Session::finish`].
struct Meters {
    queries: u64,
    rounds: u64,
    exceeded: bool,
    killed: bool,
    /// `Some(attempt bound)` when a fault outlived the retry policy.
    failed: Option<u32>,
    memo_hits: Option<u64>,
    /// The probe plane's flip-rate estimate, when probing completed at
    /// least one triangle.
    estimate: Option<NoiseEstimate>,
    /// Billed probe queries (`Some` iff probing was enabled).
    probes: Option<u64>,
    merge_plane: Option<MergePlaneStats>,
}

impl Meters {
    /// Folds an escalated re-run's meters onto the discarded first
    /// attempt's: spend accumulates, state (kill/budget/fault flags,
    /// merge plane) comes from the attempt that produced the answer,
    /// and the estimate prefers the re-run's fresher probes.
    fn accumulated(first: Meters, second: Meters) -> Meters {
        Meters {
            queries: first.queries + second.queries,
            rounds: first.rounds + second.rounds,
            exceeded: second.exceeded,
            killed: second.killed,
            failed: second.failed,
            memo_hits: match (first.memo_hits, second.memo_hits) {
                (Some(a), Some(b)) => Some(a + b),
                (a, b) => a.or(b),
            },
            estimate: second.estimate.or(first.estimate),
            probes: match (first.probes, second.probes) {
                (Some(a), Some(b)) => Some(a + b),
                (a, b) => a.or(b),
            },
            merge_plane: second.merge_plane,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_core::hier::Linkage;

    fn square_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i % 8) as f64, (i / 8) as f64 * 1.3])
            .collect()
    }

    #[test]
    fn builder_requires_exactly_one_source() {
        let err = Session::builder().build().unwrap_err();
        assert!(matches!(err, NcoError::InvalidParams { .. }));
        let err = Session::builder()
            .values(vec![1.0])
            .points(&square_points(4))
            .build()
            .unwrap_err();
        assert!(matches!(err, NcoError::InvalidParams { .. }));
    }

    #[test]
    fn builder_validates_noise_and_delta() {
        let base = || Session::builder().values(vec![1.0, 2.0]);
        assert!(base()
            .noise(Noise::Probabilistic { p: 0.5, seed: 0 })
            .build()
            .is_err());
        assert!(base()
            .noise(Noise::Adversarial { mu: -1.0 })
            .build()
            .is_err());
        assert!(base()
            .noise(Noise::Crowd {
                profile: AccuracyProfile::amazon_like(),
                workers: 2,
                seed: 0
            })
            .build()
            .is_err());
        assert!(base().confidence(0.0).build().is_err());
        assert!(base().confidence(1.0).build().is_err());
        assert!(base().confidence(0.05).build().is_ok());
    }

    #[test]
    fn builder_rejects_bad_values_for_band_models() {
        let err = Session::builder()
            .values(vec![1.0, -2.0])
            .noise(Noise::Adversarial { mu: 0.5 })
            .build()
            .unwrap_err();
        assert!(matches!(err, NcoError::InvalidParams { .. }));
        // Probabilistic noise has no magnitude requirement.
        assert!(Session::builder()
            .values(vec![1.0, -2.0])
            .noise(Noise::Probabilistic { p: 0.1, seed: 0 })
            .build()
            .is_ok());
        assert!(Session::builder()
            .values(vec![1.0, f64::NAN])
            .build()
            .is_err());
    }

    #[test]
    fn task_source_mismatch_is_an_error() {
        let s = Session::builder().values(vec![1.0, 2.0]).build().unwrap();
        assert!(matches!(
            s.run(Task::KCenter { k: 1 }),
            Err(NcoError::InvalidParams { .. })
        ));
        let s = Session::builder()
            .points(&square_points(4))
            .build()
            .unwrap();
        assert!(matches!(
            s.run(Task::Max),
            Err(NcoError::InvalidParams { .. })
        ));
    }

    #[test]
    fn range_validation_catches_bad_tasks() {
        let s = Session::builder()
            .points(&square_points(8))
            .build()
            .unwrap();
        assert!(matches!(
            s.run(Task::Nearest { q: 8 }),
            Err(NcoError::InvalidParams { .. })
        ));
        assert!(matches!(
            s.run(Task::KCenter { k: 0 }),
            Err(NcoError::InvalidParams { .. })
        ));
        assert!(matches!(
            s.run(Task::KCenter { k: 9 }),
            Err(NcoError::InvalidParams { .. })
        ));
        let s = Session::builder().values(vec![]).build().unwrap();
        assert!(matches!(s.run(Task::Max), Err(NcoError::EmptyInput { .. })));
        let s = Session::builder().values(vec![1.0, 2.0]).build().unwrap();
        assert!(matches!(
            s.run(Task::TopK { k: 3 }),
            Err(NcoError::InvalidParams { .. })
        ));
    }

    #[test]
    fn exact_session_answers_every_task() {
        let s = Session::builder()
            .points(&square_points(24))
            .seed(7)
            .build()
            .unwrap();
        let far = s.run(Task::Farthest { q: 0 }).unwrap();
        assert!(far.answer.item().is_some());
        assert!(far.report.queries > 0);
        let near = s.run(Task::Nearest { q: 0 }).unwrap();
        assert_ne!(near.answer.item(), far.answer.item());
        let kc = s.run(Task::KCenter { k: 3 }).unwrap();
        assert_eq!(kc.answer.clustering().unwrap().k(), 3);
        let h = s
            .run(Task::Hierarchy {
                linkage: Linkage::Single,
            })
            .unwrap();
        assert_eq!(h.answer.dendrogram().unwrap().merges.len(), 23);

        let v = Session::builder()
            .values((0..64).map(f64::from).collect())
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(v.run(Task::Max).unwrap().answer.item(), Some(63));
        let top = v.run(Task::TopK { k: 4 }).unwrap();
        assert_eq!(top.answer.items().unwrap(), &[63, 62, 61, 60]);
    }

    #[test]
    fn runs_are_deterministic() {
        let s = Session::builder()
            .points(&square_points(32))
            .noise(Noise::Probabilistic { p: 0.2, seed: 9 })
            .seed(11)
            .build()
            .unwrap();
        let a = s.run(Task::KCenter { k: 4 }).unwrap();
        let b = s.run(Task::KCenter { k: 4 }).unwrap();
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.report.queries, b.report.queries);
        assert_eq!(a.report.rounds, b.report.rounds);
    }

    #[test]
    fn shared_engine_serves_concurrent_sessions() {
        let engine = Engine::from_metric(
            AnyMetric::Euclidean(EuclideanMetric::from_points(&square_points(40))),
            true,
        );
        let serial: Vec<Option<usize>> = (0..4u64)
            .map(|seed| {
                Session::builder()
                    .engine(engine.clone())
                    .noise(Noise::Probabilistic { p: 0.1, seed })
                    .seed(seed)
                    .build()
                    .unwrap()
                    .run(Task::Farthest { q: seed as usize })
                    .unwrap()
                    .answer
                    .item()
            })
            .collect();
        let concurrent: Vec<Option<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|seed| {
                    let engine = engine.clone();
                    scope.spawn(move || {
                        Session::builder()
                            .engine(engine)
                            .noise(Noise::Probabilistic { p: 0.1, seed })
                            .seed(seed)
                            .build()
                            .unwrap()
                            .run(Task::Farthest { q: seed as usize })
                            .unwrap()
                            .answer
                            .item()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(serial, concurrent);
        assert!(engine.cache_entries().unwrap() > 0);
    }

    #[test]
    fn engine_attached_value_sessions_are_validated_too() {
        // The same rejections as builder-owned values — no run-time
        // panic from the oracle constructors.
        let bad = Engine::from_values(vec![1.0, -2.0]);
        let err = Session::builder()
            .engine(bad.clone())
            .noise(Noise::Adversarial { mu: 0.5 })
            .build()
            .unwrap_err();
        assert!(matches!(err, NcoError::InvalidParams { .. }));
        // Probabilistic noise accepts negatives…
        assert!(Session::builder()
            .engine(bad)
            .noise(Noise::Probabilistic { p: 0.1, seed: 0 })
            .build()
            .is_ok());
        // …but non-finite values are rejected under every model.
        let nan = Engine::from_values(vec![1.0, f64::NAN]);
        assert!(Session::builder().engine(nan).build().is_err());
    }

    #[test]
    fn kcenter_knobs_are_range_validated_at_build() {
        let err = Session::builder()
            .points(&square_points(16))
            .first_center(99)
            .build()
            .unwrap_err();
        assert!(matches!(err, NcoError::InvalidParams { .. }));
        let err = Session::builder()
            .points(&square_points(16))
            .min_cluster_promise(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, NcoError::InvalidParams { .. }));
        assert!(Session::builder()
            .points(&square_points(16))
            .first_center(3)
            .min_cluster_promise(2)
            .build()
            .is_ok());
    }

    #[test]
    fn memo_size_cap_applies_to_value_sessions() {
        let err = Session::builder()
            .values(vec![0.0; (1 << 16) + 1])
            .memoize(true)
            .build()
            .unwrap_err();
        assert!(matches!(err, NcoError::InvalidParams { .. }));
        assert!(Session::builder()
            .values(vec![0.0; 64])
            .memoize(true)
            .build()
            .is_ok());
    }

    #[test]
    fn memo_and_threads_are_mutually_exclusive() {
        let err = Session::builder()
            .points(&square_points(8))
            .memoize(true)
            .threads(4)
            .build()
            .unwrap_err();
        assert!(matches!(err, NcoError::InvalidParams { .. }));
    }

    #[test]
    fn budget_exceeded_is_an_error_not_a_panic() {
        let s = Session::builder()
            .points(&square_points(32))
            .budget(10)
            .build()
            .unwrap();
        match s.run(Task::KCenter { k: 4 }) {
            Err(NcoError::BudgetExceeded { budget, .. }) => assert_eq!(budget, 10),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_fails_typed_with_partial_report() {
        let s = Session::builder()
            .points(&square_points(24))
            .deadline(Duration::ZERO)
            .budget(1000)
            .build()
            .unwrap();
        match s.run(Task::KCenter { k: 3 }) {
            Err(NcoError::DeadlineExceeded { report, .. }) => {
                // Killed before the first query boundary: nothing billed,
                // but the accounting fields are all present.
                assert_eq!(report.queries, 0);
                assert_eq!(report.budget, Some(1000));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let run = |deadline: Option<Duration>| {
            let mut b = Session::builder()
                .points(&square_points(24))
                .noise(Noise::Probabilistic { p: 0.1, seed: 3 })
                .seed(5);
            if let Some(d) = deadline {
                b = b.deadline(d);
            }
            b.build().unwrap().run(Task::KCenter { k: 3 }).unwrap()
        };
        let clean = run(None);
        let timed = run(Some(Duration::from_secs(3600)));
        assert_eq!(clean.answer, timed.answer);
        assert_eq!(clean.report.queries, timed.report.queries);
    }

    #[test]
    fn cancel_token_kills_runs_cooperatively() {
        let token = CancelToken::new();
        let s = Session::builder()
            .points(&square_points(24))
            .cancel_token(token.clone())
            .build()
            .unwrap();
        // Not cancelled: runs normally.
        assert!(s.run(Task::Nearest { q: 0 }).is_ok());
        assert!(!token.is_cancelled());
        // Cancelled (from a clone): every later run is killed at its
        // first boundary, with the partial accounting preserved.
        token.clone().cancel();
        assert!(token.is_cancelled());
        match s.run(Task::Nearest { q: 0 }) {
            Err(NcoError::DeadlineExceeded { report, .. }) => assert_eq!(report.queries, 0),
            other => panic!("expected a cancel kill, got {other:?}"),
        }
    }

    #[test]
    fn active_fault_plan_is_serial_only() {
        let err = Session::builder()
            .points(&square_points(8))
            .fault_plan(FaultPlan::new(1).transient(0.1))
            .threads(4)
            .build()
            .unwrap_err();
        assert!(matches!(err, NcoError::InvalidParams { .. }));
        // An inactive plan (or no plan) is fine with threads.
        assert!(Session::builder()
            .points(&square_points(8))
            .fault_plan(FaultPlan::none())
            .threads(4)
            .build()
            .is_ok());
    }

    #[test]
    fn masked_faults_keep_answers_and_bill_retries() {
        let run = |plan: Option<FaultPlan>| {
            let mut b = Session::builder()
                .points(&square_points(24))
                .noise(Noise::Probabilistic { p: 0.2, seed: 7 })
                .seed(9);
            if let Some(p) = plan {
                b = b.fault_plan(p).retry_policy(RetryPolicy::new(12));
            }
            b.build().unwrap().run(Task::KCenter { k: 3 }).unwrap()
        };
        let clean = run(None);
        let faulty = run(Some(FaultPlan::new(40).transient(0.08).stalls(0.05, 200)));
        // Persistence makes masked faults answer-invariant; the retries
        // still show up in the bill.
        assert_eq!(clean.answer, faulty.answer);
        assert!(faulty.report.queries > clean.report.queries);
    }

    #[test]
    fn unmasked_fault_fails_typed_with_spend_preserved() {
        // An outage burst longer than the retry policy's attempt bound
        // can never be masked.
        let s = Session::builder()
            .points(&square_points(24))
            .fault_plan(FaultPlan::new(3).outages(8, 6))
            .retry_policy(RetryPolicy::new(2))
            .build()
            .unwrap();
        match s.run(Task::KCenter { k: 3 }) {
            Err(NcoError::OracleFailed {
                queries_spent,
                attempts,
            }) => {
                assert!(queries_spent > 0);
                assert_eq!(attempts, 2);
            }
            other => panic!("expected OracleFailed, got {other:?}"),
        }
    }

    #[test]
    fn flip_rate_is_reported_only_with_probing_on() {
        let run = |probe: Option<f64>| {
            let mut b = Session::builder()
                .points(&square_points(24))
                .noise(Noise::Probabilistic { p: 0.3, seed: 2 })
                .memoize(true);
            if let Some(rate) = probe {
                b = b.probe_noise(rate);
            }
            b.build()
                .unwrap()
                .run(Task::Hierarchy {
                    linkage: Linkage::Single,
                })
                .unwrap()
        };
        // Without the probe plane nothing in the chain can observe the
        // flip rate: the shipped models hold one persistent belief per
        // canonical comparison, so repeats and mirrors carry no signal.
        let quiet = run(None).report;
        assert_eq!(quiet.observed_flip_rate, None);
        assert_eq!(quiet.probes, None);
        // With probing the estimate exists, is billed, and lands in
        // (0, 0.5) — a real measurement, not the memo-era constant 0.
        let probed = run(Some(0.05)).report;
        let flip = probed.observed_flip_rate.expect("probing ran");
        assert!(flip > 0.0 && flip < 0.5, "estimate {flip} out of range");
        let probes = probed.probes.expect("probing ran");
        assert!(probes > 0, "probes must be billed");
        assert!(
            probed.queries >= quiet.queries,
            "probe queries bill on top of engine spend"
        );
    }

    #[test]
    fn probing_off_is_bit_identical_and_probing_is_deterministic() {
        let run = |probe: Option<f64>, seed: u64| {
            let mut b = Session::builder()
                .values((0..64).map(|v| (v * 37 % 64) as f64).collect())
                .noise(Noise::Probabilistic { p: 0.2, seed: 9 })
                .seed(seed);
            if let Some(rate) = probe {
                b = b.probe_noise(rate);
            }
            b.build().unwrap().run(Task::Max).unwrap()
        };
        for seed in 0..5 {
            let plain = run(None, seed);
            let probed = run(Some(0.1), seed);
            // Probes never change the answer (persistent noise), only
            // the meters; and replaying the probed session replays the
            // exact same probe stream.
            assert_eq!(plain.answer, probed.answer, "seed {seed}");
            assert!(probed.report.queries > plain.report.queries);
            let again = run(Some(0.1), seed);
            assert_eq!(probed.report.queries, again.report.queries);
            assert_eq!(probed.report.probes, again.report.probes);
            assert_eq!(
                probed.report.observed_flip_rate,
                again.report.observed_flip_rate
            );
        }
    }

    #[test]
    fn probe_and_adapt_knobs_are_validated() {
        let base = || Session::builder().values(vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            base().probe_noise(1.5).build(),
            Err(NcoError::InvalidParams { .. })
        ));
        assert!(matches!(
            base().assume_noise_rate(0.5).build(),
            Err(NcoError::InvalidParams { .. })
        ));
        assert!(matches!(
            base().adapt_noise(AdaptPolicy::Escalate).build(),
            Err(NcoError::InvalidParams { .. })
        ));
        let err = Session::builder()
            .points(&square_points(8))
            .probe_noise(0.1)
            .threads(4)
            .build();
        assert!(matches!(err, Err(NcoError::InvalidParams { .. })));
        assert!(base()
            .probe_noise(0.1)
            .assume_noise_rate(0.2)
            .adapt_noise(AdaptPolicy::Escalate)
            .build()
            .is_ok());
    }

    #[test]
    fn assumed_noise_rate_escalates_repetition_parameters() {
        // scale 1.0 when the knob is absent (bit-compat with older
        // sessions); g(p) = 1/(1-2p)^2 when set.
        let plain = Session::builder()
            .values((0..32).map(f64::from).collect())
            .noise(Noise::Probabilistic { p: 0.25, seed: 1 })
            .build()
            .unwrap()
            .run(Task::Max)
            .unwrap();
        let assumed = Session::builder()
            .values((0..32).map(f64::from).collect())
            .noise(Noise::Probabilistic { p: 0.25, seed: 1 })
            .assume_noise_rate(0.25)
            .build()
            .unwrap()
            .run(Task::Max)
            .unwrap();
        // g(0.25) = 4: the scaled session must spend strictly more.
        assert!(
            assumed.report.queries > plain.report.queries,
            "assumed-rate session spent {} <= plain {}",
            assumed.report.queries,
            plain.report.queries
        );
    }
}
