//! Run accounting: what a `Session::run` cost.
//!
//! The paper's central cost measure is *query complexity* — each oracle
//! call simulates a crowd worker or classifier invocation — so every
//! successful run returns its exact tally alongside the answer, plus the
//! batching/caching/wall-clock context needed to reason about serving
//! cost.

use std::time::Duration;

use crate::task::Answer;
use nco_core::hier::MergePlaneStats;

/// Cost accounting for one [`crate::Session::run`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct RunReport {
    /// Oracle queries issued — exactly the tally a
    /// [`nco_oracle::Counting`] wrapper around the same hand-wired call
    /// would report.
    pub queries: u64,
    /// Batched oracle rounds issued by the engine — one per `le_batch`
    /// call (or per fanned-out round on a threaded hierarchy run); the
    /// remaining queries went through the scalar path. The count is
    /// exact under every configuration: the answer memo forwards each
    /// outer round as one (deduplicated) inner round, and the merge
    /// plane's fan-out wrapper bills each shared-path round it answers,
    /// so memoised and threaded runs report the same rounds as their
    /// plain serial counterparts.
    pub rounds: u64,
    /// Answer-cache hits when memoisation was enabled (`None` otherwise):
    /// repeated queries served from the exact memo without touching the
    /// oracle. These do **not** count into `queries`.
    pub memo_hits: Option<u64>,
    /// Distinct distances materialised in the engine's shared `DistCache`
    /// by the end of this run (`None` when distance caching is off).
    /// Cumulative across runs sharing the engine, by design: the cache is
    /// the engine-level resource concurrent sessions amortise into. For
    /// this run's own contribution see [`Self::cache_added`].
    pub cache_entries: Option<u64>,
    /// Distances **this run** added to the engine's shared `DistCache`
    /// (`None` when distance caching is off): the end-of-run
    /// [`Self::cache_entries`] minus the entries already materialised
    /// when the run started. Per-request attributable, unlike the
    /// engine-level total.
    pub cache_added: Option<u64>,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// The configured query budget, if any.
    pub budget: Option<u64>,
    /// Incremental merge-plane counters of the hierarchy engine (`None`
    /// for every other task): merges, full closest-pair sweeps vs dirty
    /// re-contests, pointer repairs, bucket replays and pool duels — the
    /// cost anatomy behind [`Self::queries`] for `Task::Hierarchy` runs.
    pub merge_plane: Option<MergePlaneStats>,
    /// Online point estimate of the oracle's flip probability from the
    /// session's probe plane (`None` unless probing was enabled with
    /// [`crate::SessionBuilder::probe_noise`] **and** at least one probe
    /// triangle completed). The estimator injects seeded transitivity
    /// triangles into the live query stream and inverts the cyclic-vote
    /// rate `p(1-p)` — a construction that is robust to persistent
    /// (canonical-coin) noise, where naive repeat-or-mirror estimators
    /// measure exactly `0.0`. See [`nco_oracle::ProbeOracle`] for the
    /// estimator and its confidence interval.
    pub observed_flip_rate: Option<f64>,
    /// Oracle queries spent on noise probing, already included in
    /// [`Self::queries`] — probes are billed like any other query
    /// (`None` when probing is off). Subtract to recover the engine's
    /// own spend.
    pub probes: Option<u64>,
    /// Times the session re-derived its repetition parameters and
    /// re-ran the engine after the probe plane flagged the configured
    /// noise rate as misspecified (see
    /// [`crate::SessionBuilder::adapt_noise`]). `0` on every
    /// non-adaptive run; query/round tallies are cumulative across the
    /// adaptation.
    pub adaptations: u32,
}

/// A successful run: the typed answer plus its cost accounting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Outcome {
    /// The task's answer.
    pub answer: Answer,
    /// What the answer cost.
    pub report: RunReport,
}

impl Outcome {
    pub(crate) fn new(answer: Answer, report: RunReport) -> Self {
        Self { answer, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_carries_answer_and_report() {
        let o = Outcome::new(
            Answer::Item(3),
            RunReport {
                queries: 10,
                rounds: 2,
                memo_hits: None,
                cache_entries: Some(5),
                cache_added: Some(2),
                wall: Duration::from_millis(1),
                budget: Some(100),
                merge_plane: None,
                observed_flip_rate: None,
                probes: None,
                adaptations: 0,
            },
        );
        assert_eq!(o.answer.item(), Some(3));
        assert_eq!(o.report.queries, 10);
        assert_eq!(o.report.budget, Some(100));
    }
}
