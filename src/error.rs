//! The unified error type of the `Session` front door.
//!
//! Every way a [`crate::Session`] run can fail — a blown query budget, a
//! parameter the paper's algorithms cannot accept, an input too small to
//! ask anything about, an oracle fault that outlived the retry policy, a
//! missed deadline, a panicking backend — surfaces as one [`NcoError`]
//! variant instead of the bare `Option`s and panics of the low-level
//! APIs.

use crate::report::RunReport;
use crate::task::PartialOutcome;
use std::fmt;

/// Unified error type for the [`crate::Session`] engine API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NcoError {
    /// The run needed more oracle queries than the configured hard budget.
    ///
    /// Enforcement is deterministic: queries are billed in algorithm
    /// order, the first query past the cap trips the flag, and no query
    /// beyond the cap ever reaches the underlying oracle (no distance is
    /// evaluated, no noise coin drawn).
    BudgetExceeded {
        /// The configured budget that was exhausted.
        budget: u64,
        /// Accounting up to the kill point — the spend is preserved
        /// even though the answer is gone.
        report: Box<RunReport>,
        /// Best-effort partial answer committed on real oracle answers
        /// before the budget latch tripped. Deterministic: the latch
        /// trips at an exact query count, so the same session replays
        /// to the same partial. `None` for tasks with no meaningful
        /// intermediate commitment (nearest/farthest).
        partial: Option<PartialOutcome>,
    },
    /// A configuration or task parameter is outside its valid range, or
    /// the task does not fit the session's data source (e.g. `Task::Max`
    /// on a metric-only session).
    InvalidParams {
        /// Human-readable explanation of the rejected parameter.
        reason: String,
    },
    /// The data source has too few records for the requested task (e.g.
    /// a maximum over zero values, a hierarchy over one record).
    EmptyInput {
        /// Human-readable explanation of what was missing.
        reason: String,
    },
    /// The serving plane shed this request instead of queueing it
    /// unboundedly: the submission queue was full, or the server was
    /// shutting down. Unlike [`Self::BudgetExceeded`] the request
    /// consumed no oracle queries — resubmitting later is safe and
    /// deterministic.
    Overloaded {
        /// Human-readable explanation of what was saturated.
        reason: String,
    },
    /// An oracle fault outlived the retry policy: some query was re-asked
    /// up to the policy's attempt bound and never got a usable answer.
    /// The run's spend up to that point is preserved for billing — every
    /// attempt, including the failed ones, was metered — but the partial
    /// answer is discarded, exactly like a blown budget.
    OracleFailed {
        /// Oracle queries spent (retries included) before the run failed.
        queries_spent: u64,
        /// The retry policy's attempt bound that the fault exhausted.
        attempts: u32,
    },
    /// The run was killed by its deadline or cancel token at a query or
    /// round boundary. The partial cost accounting is preserved: the
    /// answer is gone, the bill is not.
    DeadlineExceeded {
        /// Accounting up to the kill point (the `queries`/`rounds` spent
        /// before the deadline hit; the answer-bearing fields of a
        /// successful report are absent by construction).
        report: Box<RunReport>,
        /// Best-effort partial answer committed on real oracle answers
        /// before the kill. Unlike a budget kill the cut point depends
        /// on wall-clock timing, so the partial's length varies run to
        /// run; its shape (a clean prefix) does not.
        partial: Option<PartialOutcome>,
    },
    /// The configured noise rate is misspecified: online probing
    /// measured a flip rate whose confidence-interval *lower* bound
    /// exceeds the rate the session's repetition counts were derived
    /// for, so the theorem-backed success guarantees no longer hold.
    ///
    /// Only raised when probing is enabled
    /// ([`crate::SessionBuilder::probe_noise`]) and the session is not
    /// adapting ([`crate::SessionBuilder::adapt_noise`] with
    /// [`crate::AdaptPolicy::Escalate`] re-derives parameters instead
    /// of failing). The guard is conservative — it fires on the CI
    /// lower bound, not the point estimate — and the run's spend is
    /// preserved in `report`.
    NoiseMisspecified {
        /// The flip rate the session's parameters assumed.
        assumed: f64,
        /// The probe point estimate of the actual flip rate.
        observed: f64,
        /// Billed probe queries behind the estimate.
        probes: u64,
        /// Accounting for the completed-but-unreliable run.
        report: Box<RunReport>,
    },
    /// The request panicked inside a serving worker. The panic was
    /// contained by the worker's `catch_unwind` isolation: the worker
    /// rejoined the pool and other in-flight requests were unaffected.
    Panicked {
        /// The panic payload, when it carried a message.
        reason: String,
    },
}

impl NcoError {
    pub(crate) fn invalid(reason: impl Into<String>) -> Self {
        Self::InvalidParams {
            reason: reason.into(),
        }
    }

    pub(crate) fn empty(reason: impl Into<String>) -> Self {
        Self::EmptyInput {
            reason: reason.into(),
        }
    }

    pub(crate) fn overloaded(reason: impl Into<String>) -> Self {
        Self::Overloaded {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for NcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BudgetExceeded { budget, .. } => {
                write!(f, "query budget of {budget} oracle queries exceeded")
            }
            Self::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
            Self::EmptyInput { reason } => write!(f, "empty input: {reason}"),
            Self::Overloaded { reason } => write!(f, "overloaded: {reason}"),
            Self::OracleFailed {
                queries_spent,
                attempts,
            } => write!(
                f,
                "oracle failed: a query faulted through all {attempts} retry attempts \
                 ({queries_spent} queries spent)"
            ),
            Self::DeadlineExceeded { report, .. } => write!(
                f,
                "deadline exceeded after {} queries in {} rounds",
                report.queries, report.rounds
            ),
            Self::NoiseMisspecified {
                assumed,
                observed,
                probes,
                ..
            } => write!(
                f,
                "noise misspecified: session assumed flip rate {assumed}, \
                 {probes} probes observed {observed}"
            ),
            Self::Panicked { reason } => write!(f, "request panicked: {reason}"),
        }
    }
}

impl std::error::Error for NcoError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> RunReport {
        use std::time::Duration;
        RunReport {
            queries: 0,
            rounds: 0,
            memo_hits: None,
            cache_entries: None,
            cache_added: None,
            wall: Duration::ZERO,
            budget: None,
            merge_plane: None,
            observed_flip_rate: None,
            probes: None,
            adaptations: 0,
        }
    }

    #[test]
    fn display_is_informative() {
        let e = NcoError::BudgetExceeded {
            budget: 42,
            report: Box::new(empty_report()),
            partial: None,
        };
        assert!(e.to_string().contains("42"));
        let e = NcoError::invalid("k = 0");
        assert!(e.to_string().contains("k = 0"));
        let e = NcoError::empty("no records");
        assert!(e.to_string().contains("no records"));
        let e = NcoError::OracleFailed {
            queries_spent: 17,
            attempts: 4,
        };
        assert!(e.to_string().contains("17") && e.to_string().contains('4'));
        let e = NcoError::Panicked {
            reason: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("index out of bounds"));
        let e = NcoError::NoiseMisspecified {
            assumed: 0.15,
            observed: 0.31,
            probes: 200,
            report: Box::new(empty_report()),
        };
        let s = e.to_string();
        assert!(s.contains("0.15") && s.contains("0.31") && s.contains("200"));
    }

    #[test]
    fn deadline_error_preserves_partial_accounting() {
        use std::time::Duration;
        let mut report = empty_report();
        report.queries = 9;
        report.rounds = 3;
        report.wall = Duration::from_millis(2);
        report.budget = Some(100);
        let e = NcoError::DeadlineExceeded {
            report: Box::new(report),
            partial: Some(PartialOutcome::Leader { candidate: Some(4) }),
        };
        let NcoError::DeadlineExceeded { report, partial } = &e else {
            panic!("wrong variant");
        };
        assert_eq!(report.queries, 9);
        assert_eq!(
            partial,
            &Some(PartialOutcome::Leader { candidate: Some(4) })
        );
        assert!(e.to_string().contains("9 queries"));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(NcoError::BudgetExceeded {
            budget: 1,
            report: Box::new(empty_report()),
            partial: None,
        });
        assert!(e.source().is_none());
    }
}
