//! The unified error type of the `Session` front door.
//!
//! Every way a [`crate::Session`] run can fail — a blown query budget, a
//! parameter the paper's algorithms cannot accept, an input too small to
//! ask anything about — surfaces as one [`NcoError`] variant instead of
//! the bare `Option`s and panics of the low-level APIs.

use std::fmt;

/// Unified error type for the [`crate::Session`] engine API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NcoError {
    /// The run needed more oracle queries than the configured hard budget.
    ///
    /// Enforcement is deterministic: queries are billed in algorithm
    /// order, the first query past the cap trips the flag, and no query
    /// beyond the cap ever reaches the underlying oracle (no distance is
    /// evaluated, no noise coin drawn).
    BudgetExceeded {
        /// The configured budget that was exhausted.
        budget: u64,
    },
    /// A configuration or task parameter is outside its valid range, or
    /// the task does not fit the session's data source (e.g. `Task::Max`
    /// on a metric-only session).
    InvalidParams {
        /// Human-readable explanation of the rejected parameter.
        reason: String,
    },
    /// The data source has too few records for the requested task (e.g.
    /// a maximum over zero values, a hierarchy over one record).
    EmptyInput {
        /// Human-readable explanation of what was missing.
        reason: String,
    },
    /// The serving plane shed this request instead of queueing it
    /// unboundedly: the submission queue was full, or the server was
    /// shutting down. Unlike [`Self::BudgetExceeded`] the request
    /// consumed no oracle queries — resubmitting later is safe and
    /// deterministic.
    Overloaded {
        /// Human-readable explanation of what was saturated.
        reason: String,
    },
}

impl NcoError {
    pub(crate) fn invalid(reason: impl Into<String>) -> Self {
        Self::InvalidParams {
            reason: reason.into(),
        }
    }

    pub(crate) fn empty(reason: impl Into<String>) -> Self {
        Self::EmptyInput {
            reason: reason.into(),
        }
    }

    pub(crate) fn overloaded(reason: impl Into<String>) -> Self {
        Self::Overloaded {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for NcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BudgetExceeded { budget } => {
                write!(f, "query budget of {budget} oracle queries exceeded")
            }
            Self::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
            Self::EmptyInput { reason } => write!(f, "empty input: {reason}"),
            Self::Overloaded { reason } => write!(f, "overloaded: {reason}"),
        }
    }
}

impl std::error::Error for NcoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NcoError::BudgetExceeded { budget: 42 };
        assert!(e.to_string().contains("42"));
        let e = NcoError::invalid("k = 0");
        assert!(e.to_string().contains("k = 0"));
        let e = NcoError::empty("no records");
        assert!(e.to_string().contains("no records"));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(NcoError::BudgetExceeded { budget: 1 });
        assert!(e.source().is_none());
    }
}
