//! The concurrent serving plane: one engine, many in-flight requests.
//!
//! A [`Server`] is an async-style front door over an immutable
//! [`crate::Engine`]: callers [`submit`](Server::submit) typed
//! [`Request`]s and get [`TaskHandle`]s back; a small worker pool drains
//! the queue. Three mechanisms make concurrent serving cheaper than
//! running the same requests one by one:
//!
//! * **Cross-request batching** — every worker routes its oracle rounds
//!   through a group-commit [`Coalescer`]: rounds from *different*
//!   concurrent requests are combined into one `le_batch` call against a
//!   single shared backend oracle, instead of each run amortising only
//!   its own rounds.
//! * **A shared exact answer memo** — the backend is a
//!   [`MemoOracle`] over the session's (persistent) noise model, so a
//!   query any request has asked before is answered for free, across
//!   requests. Per-request accounting is unchanged: each request bills
//!   the queries and rounds *it issued*, exactly as a solo
//!   [`crate::Session::run`] would (pinned in `tests/serve_plane.rs`).
//! * **Budget pooling with admission control** — an optional
//!   [`BudgetPool`] caps the total queries the server will issue across
//!   all requests. Admission is all-or-nothing per round: a refused
//!   round spends nothing, and the starved request fails typed with
//!   [`NcoError::BudgetExceeded`] instead of dragging the pool negative.
//!   A full submission queue sheds with [`NcoError::Overloaded`] rather
//!   than queueing unboundedly.
//!
//! The plane is also fault-isolated. The shared backend carries the
//! template's [`FaultPlan`] under a [`Retrying`] recovery layer, so
//! injected oracle faults are masked (and billed) at the backend without
//! per-request involvement; a fault that outlives the policy fails the
//! affected requests typed with [`NcoError::OracleFailed`]. Each worker
//! runs its request under `catch_unwind`: a panicking request returns
//! [`NcoError::Panicked`] to its submitter while the worker rejoins the
//! pool, the coalescer aborts and re-runs any round whose leader died,
//! and every shared lock recovers from poisoning. Per-request deadlines
//! ([`crate::SessionBuilder::deadline`] on the template) kill overdue
//! requests with [`NcoError::DeadlineExceeded`], partial accounting
//! preserved.
//!
//! The plane inherits the session layer's adaptive noise surface: when
//! the template enables [`crate::SessionBuilder::probe_noise`], every
//! request carries its own billed probe plane (seeded per request) and
//! applies the same misspecification guard — and, under
//! [`crate::SessionBuilder::adapt_noise`] with
//! [`crate::AdaptPolicy::Escalate`], the same parameter-escalating
//! re-run — that a solo session would. With
//! [`ServerBuilder::degrade_to_partials`], a request killed by its
//! deadline, its budget, or the pool degrades to a best-effort
//! [`crate::PartialOutcome`] inside its typed error instead of
//! shedding plain.
//!
//! ```
//! use noisy_oracle::{Noise, Request, Server, Session, Task};
//!
//! let template = Session::builder()
//!     .values((1..=64).map(f64::from).collect())
//!     .noise(Noise::Probabilistic { p: 0.1, seed: 5 })
//!     .build()?;
//! let server = Server::builder(template).workers(2).build()?;
//!
//! let handles: Vec<_> = (0..4)
//!     .map(|seed| server.submit(Request { task: Task::Max, seed }).unwrap())
//!     .collect();
//! for h in handles {
//!     let outcome = h.join()?;
//!     assert!(outcome.answer.item().is_some());
//! }
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 4);
//! # Ok::<(), noisy_oracle::NcoError>(())
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use nco_core::hier::MergePlaneStats;
use nco_oracle::budget::{BudgetPool, Budgeted, OVER_BUDGET_ANSWER};
use nco_oracle::fault::{FaultPlan, FaultyOracle, QueryFault, Retrying};
use nco_oracle::persistent::PersistentNoise;
use nco_oracle::{
    ComparisonOracle, Counting, MemoOracle, NoiseEstimate, ProbeOracle, QuadrupletOracle,
};

use crate::error::NcoError;
use crate::report::{Outcome, RunReport};
use crate::session::{CancelToken, Session};
use crate::task::{Answer, PartialOutcome, Task};

/// Locks a mutex, recovering from poisoning: a request that panicked
/// while holding a shared lock must not wedge the rest of the plane. The
/// guarded structures keep their invariants on unwind — the memo fills
/// its cache only after the inner oracle returns, and the meters at
/// worst undercount the aborted round — so the data is safe to reuse.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort human-readable panic payload for [`NcoError::Panicked`].
fn panic_reason(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

// ---------------------------------------------------------------------
// Boxed backend oracles.
//
// The shared backend must be `'static` (it outlives any request), so the
// session's noise oracle is built boxed over an engine handle. The
// manual `PersistentNoise` impls are sound because the boxes only ever
// hold the shipped persistent models (`Session::boxed_*_backend`).
// ---------------------------------------------------------------------

struct BoxedQuad(Box<dyn QuadrupletOracle + Send>);

impl QuadrupletOracle for BoxedQuad {
    fn n(&self) -> usize {
        self.0.n()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.0.le(a, b, c, d)
    }

    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        self.0.le_batch(queries, out);
    }

    fn try_le(&mut self, a: usize, b: usize, c: usize, d: usize) -> Result<bool, QueryFault> {
        self.0.try_le(a, b, c, d)
    }

    fn try_le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<Result<bool, QueryFault>>) {
        self.0.try_le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.0.doomed()
    }
}

impl PersistentNoise for BoxedQuad {}

struct BoxedCmp(Box<dyn ComparisonOracle + Send>);

impl ComparisonOracle for BoxedCmp {
    fn n(&self) -> usize {
        self.0.n()
    }

    fn le(&mut self, i: usize, j: usize) -> bool {
        self.0.le(i, j)
    }

    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        self.0.le_batch(queries, out);
    }

    fn try_le(&mut self, i: usize, j: usize) -> Result<bool, QueryFault> {
        self.0.try_le(i, j)
    }

    fn try_le_batch(
        &mut self,
        queries: &[(usize, usize)],
        out: &mut Vec<Result<bool, QueryFault>>,
    ) {
        self.0.try_le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.0.doomed()
    }
}

impl PersistentNoise for BoxedCmp {}

// ---------------------------------------------------------------------
// The group-commit round coalescer.
// ---------------------------------------------------------------------

/// Combines oracle rounds submitted by concurrent requests into shared
/// backend `le_batch` calls (group commit): the first submitter becomes
/// the round leader and drains *every* pending submission — including
/// those that arrive while it is executing — until the queue is empty;
/// followers just wait for their slice of the answers.
///
/// Correctness does not depend on which submissions share a backend
/// round: the backend is an exact memo over persistent noise, so answers
/// are a pure function of the query, and the backend's *query* tally
/// (first occurrence of each distinct query) is the same for every
/// possible grouping.
struct Coalescer<Q> {
    state: Mutex<CoalState<Q>>,
    /// Backend rounds executed.
    rounds: AtomicU64,
    /// Backend rounds that combined two or more submissions.
    coalesced: AtomicU64,
}

/// Sent to every waiter of a round whose leader panicked mid-execution:
/// the round never produced answers and must be resubmitted.
struct RoundAborted;

/// A waiter's reply channel: its slice of the round's answers, or the
/// abort marker telling it to resubmit.
type RoundReply = Sender<Result<Vec<bool>, RoundAborted>>;

struct CoalState<Q> {
    pending: Vec<(Vec<Q>, RoundReply)>,
    leader: bool,
}

/// How many aborted rounds a follower re-submits before giving up. Fault
/// plans panic at most once per configured attempt, so in practice a
/// single retry succeeds; the bound only guards against a backend that
/// panics unconditionally.
const MAX_ABORTED_ROUNDS: u32 = 32;

impl<Q: Copy> Coalescer<Q> {
    fn new() -> Self {
        Self {
            state: Mutex::new(CoalState {
                pending: Vec::new(),
                leader: false,
            }),
            rounds: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Submits one round; blocks until a leader (possibly this caller)
    /// has executed it against the backend via `exec`. If the leader
    /// panics inside `exec`, every waiter of the aborted round is woken
    /// and resubmits (bounded); the panic propagates out of the leader's
    /// own call only, so exactly the request that hit the panic dies.
    fn submit(&self, queries: &[Q], exec: &dyn Fn(&[Q], &mut Vec<bool>)) -> Vec<bool> {
        for _ in 0..MAX_ABORTED_ROUNDS {
            match self.submit_once(queries, exec) {
                Ok(answers) => return answers,
                Err(RoundAborted) => continue,
            }
        }
        panic!("coalesced round aborted {MAX_ABORTED_ROUNDS} times in a row");
    }

    fn submit_once(
        &self,
        queries: &[Q],
        exec: &dyn Fn(&[Q], &mut Vec<bool>),
    ) -> Result<Vec<bool>, RoundAborted> {
        let (tx, rx) = mpsc::channel();
        let mut st = relock(&self.state);
        st.pending.push((queries.to_vec(), tx));
        if !st.leader {
            st.leader = true;
            while !st.pending.is_empty() {
                let batch = std::mem::take(&mut st.pending);
                drop(st);
                let total = batch.iter().map(|(q, _)| q.len()).sum();
                let mut combined = Vec::with_capacity(total);
                for (q, _) in &batch {
                    combined.extend_from_slice(q);
                }
                let mut answers = Vec::with_capacity(total);
                if let Err(payload) =
                    catch_unwind(AssertUnwindSafe(|| exec(&combined, &mut answers)))
                {
                    // The leader dies with its own request, but first it
                    // aborts the round cleanly: every waiter — batch and
                    // later arrivals alike — is told to resubmit, and
                    // leadership is released so one of them (or a fresh
                    // submitter) can take over. Nobody is left waiting
                    // on a leader that no longer exists.
                    let mut st = relock(&self.state);
                    for (_, reply) in batch {
                        let _ = reply.send(Err(RoundAborted));
                    }
                    for (_, reply) in st.pending.drain(..) {
                        let _ = reply.send(Err(RoundAborted));
                    }
                    st.leader = false;
                    drop(st);
                    resume_unwind(payload);
                }
                self.rounds.fetch_add(1, Ordering::Relaxed);
                if batch.len() > 1 {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                let mut offset = 0;
                for (q, reply) in batch {
                    let slice = answers[offset..offset + q.len()].to_vec();
                    offset += q.len();
                    // A follower that gave up (channel dropped) is fine.
                    let _ = reply.send(Ok(slice));
                }
                st = relock(&self.state);
            }
            // Leadership is released under the lock with the queue empty,
            // so every submission either saw `leader == true` and has a
            // leader committed to draining it, or becomes the next leader.
            st.leader = false;
        }
        drop(st);
        rx.recv().unwrap_or(Err(RoundAborted))
    }
}

// ---------------------------------------------------------------------
// Per-request oracle adapters.
// ---------------------------------------------------------------------

// The shared backend chain, inside out: the template's fault plan wraps
// the raw boxed oracle, the counter bills every ask (retries included),
// the retry layer masks faults the policy can absorb, and the memo
// dedups across requests — so a memo hit never spends a retry and a
// faulted lane is never cached.
type QuadBackend = MemoOracle<Retrying<Counting<FaultyOracle<BoxedQuad>>>>;
type CmpBackend = MemoOracle<Retrying<Counting<FaultyOracle<BoxedCmp>>>>;

/// The quadruplet-oracle view one request has of the shared plane:
/// rounds go pool-admission → coalescer → shared memoised backend.
/// Wrapped in a per-request [`Budgeted`] by the worker, so the request's
/// own meters tick exactly as in a solo run.
struct ServedQuad {
    n: usize,
    backend: Arc<Mutex<QuadBackend>>,
    coalescer: Arc<Coalescer<[usize; 4]>>,
    pool: Arc<BudgetPool>,
    /// Set once the pool refused this request a reservation; from then
    /// on the request is doomed (reported as `BudgetExceeded`) and its
    /// remaining queries get the constant refusal bit.
    starved: bool,
}

impl QuadrupletOracle for ServedQuad {
    fn n(&self) -> usize {
        self.n
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        if self.starved || !self.pool.try_reserve(1) {
            self.starved = true;
            return OVER_BUDGET_ANSWER;
        }
        // Scalar queries skip the coalescer: nothing to combine with.
        relock(&self.backend).le(a, b, c, d)
    }

    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        if queries.is_empty() {
            return;
        }
        if self.starved || !self.pool.try_reserve(queries.len() as u64) {
            self.starved = true;
            out.extend(std::iter::repeat_n(OVER_BUDGET_ANSWER, queries.len()));
            return;
        }
        let backend = Arc::clone(&self.backend);
        let answers = self.coalescer.submit(queries, &move |qs, res| {
            relock(&backend).le_batch(qs, res);
        });
        out.extend(answers);
    }

    fn doomed(&self) -> bool {
        // Pool starvation latches at a query boundary like every other
        // kill vector, so the engines' clean-progress watermarks stop
        // advancing and the eventual partial stays a true prefix.
        self.starved
    }
}

/// The backend answers are a pure function of the query (exact memo over
/// a persistent model); the pool's refusal bit can diverge, but only on
/// requests already doomed to fail typed — the same doomed-run argument
/// as [`Budgeted`]'s `PersistentNoise` impl. Masked backend faults keep
/// the purity: retries re-read the same persistent belief.
impl PersistentNoise for ServedQuad {}

/// Comparison twin of [`ServedQuad`] for value engines.
struct ServedCmp {
    n: usize,
    backend: Arc<Mutex<CmpBackend>>,
    coalescer: Arc<Coalescer<(usize, usize)>>,
    pool: Arc<BudgetPool>,
    starved: bool,
}

impl ComparisonOracle for ServedCmp {
    fn n(&self) -> usize {
        self.n
    }

    fn le(&mut self, i: usize, j: usize) -> bool {
        if self.starved || !self.pool.try_reserve(1) {
            self.starved = true;
            return OVER_BUDGET_ANSWER;
        }
        relock(&self.backend).le(i, j)
    }

    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        if queries.is_empty() {
            return;
        }
        if self.starved || !self.pool.try_reserve(queries.len() as u64) {
            self.starved = true;
            out.extend(std::iter::repeat_n(OVER_BUDGET_ANSWER, queries.len()));
            return;
        }
        let backend = Arc::clone(&self.backend);
        let answers = self.coalescer.submit(queries, &move |qs, res| {
            relock(&backend).le_batch(qs, res);
        });
        out.extend(answers);
    }

    fn doomed(&self) -> bool {
        // See [`ServedQuad::doomed`].
        self.starved
    }
}

/// See [`ServedQuad`]'s impl for the argument.
impl PersistentNoise for ServedCmp {}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// One unit of work for the serving plane: which [`Task`] to run and the
/// rng seed of the per-request session derived from the server's
/// template (everything else — noise, confidence, per-request budget —
/// comes from the template).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The task to run.
    pub task: Task,
    /// Seed of the request's rng stream ([`crate::SessionBuilder::seed`]).
    pub seed: u64,
}

/// A pending request's receipt: [`join`](TaskHandle::join) blocks until
/// the worker pool has produced the result.
#[derive(Debug)]
pub struct TaskHandle {
    rx: Receiver<Result<Outcome, NcoError>>,
}

impl TaskHandle {
    /// Waits for the request to finish and returns its outcome — exactly
    /// what a solo [`crate::Session::run`] of the same task would return
    /// (same answer, same per-request query and round tallies), or a
    /// typed error.
    pub fn join(self) -> Result<Outcome, NcoError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(NcoError::overloaded(
                "server shut down before the request completed",
            ))
        })
    }
}

struct Job {
    request: Request,
    reply: Sender<Result<Outcome, NcoError>>,
}

struct ServerQueue {
    jobs: VecDeque<Job>,
    open: bool,
}

struct ServerShared {
    template: Session,
    queue: Mutex<ServerQueue>,
    work_ready: Condvar,
    queue_cap: usize,
    pool: Arc<BudgetPool>,
    quad_backend: Option<Arc<Mutex<QuadBackend>>>,
    quad_coalescer: Arc<Coalescer<[usize; 4]>>,
    cmp_backend: Option<Arc<Mutex<CmpBackend>>>,
    cmp_coalescer: Arc<Coalescer<(usize, usize)>>,
    /// Attach best-effort partial answers to killed requests' typed
    /// errors ([`ServerBuilder::degrade_to_partials`]).
    degrade: bool,
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    deadline_kills: AtomicU64,
    panics: AtomicU64,
    probes: AtomicU64,
    adaptations: AtomicU64,
    misspecifications: AtomicU64,
    partial_completions: AtomicU64,
}

/// One engine attempt's per-request meter readings — the serve-plane
/// analogue of the session layer's internal meters.
struct AttemptMeters {
    queries: u64,
    rounds: u64,
    exceeded: bool,
    killed: bool,
    starved: bool,
    estimate: Option<NoiseEstimate>,
    probes: Option<u64>,
}

impl AttemptMeters {
    /// Folds an escalated re-run onto the discarded first attempt:
    /// spend and probes accumulate, the kill flags come from the
    /// attempt that produced the answer, and the estimate prefers the
    /// re-run's fresher probes.
    fn accumulated(first: Self, second: Self) -> Self {
        Self {
            queries: first.queries + second.queries,
            rounds: first.rounds + second.rounds,
            exceeded: second.exceeded,
            killed: second.killed,
            starved: second.starved,
            estimate: second.estimate.or(first.estimate),
            probes: match (first.probes, second.probes) {
                (Some(a), Some(b)) => Some(a + b),
                (a, b) => a.or(b),
            },
        }
    }
}

impl ServerShared {
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = relock(&self.queue);
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if !q.open {
                        return;
                    }
                    q = self
                        .work_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Panic isolation: a request that panics (injected fault or
            // engine bug) is converted to a typed error for its own
            // submitter; this worker thread survives and rejoins the
            // pool, and every other in-flight request is unaffected.
            let result = catch_unwind(AssertUnwindSafe(|| self.execute(&job.request)))
                .unwrap_or_else(|payload| {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    Err(NcoError::Panicked {
                        reason: panic_reason(payload.as_ref()),
                    })
                });
            self.completed.fetch_add(1, Ordering::Relaxed);
            // The submitter may have dropped its handle; that's fine.
            let _ = job.reply.send(result);
        }
    }

    /// `Some(attempt bound)` once any request drove the shared backend's
    /// retry layer to exhaustion. The latch is sticky and server-wide:
    /// from that point the backend returns constants, so every request
    /// that finishes after it (racing finishers included — conservative
    /// by design) is failed typed rather than given poisoned answers.
    fn backend_failed(&self) -> Option<u32> {
        if let Some(b) = &self.quad_backend {
            relock(b).inner().failed()
        } else if let Some(b) = &self.cmp_backend {
            relock(b).inner().failed()
        } else {
            unreachable!("every engine has exactly one backend plane")
        }
    }

    /// Runs one engine attempt for `task` over a fresh per-request
    /// oracle chain: served backend view (pool admission → coalescer →
    /// shared memoised backend) → per-request [`Budgeted`]
    /// (budget/deadline/cancel) → outermost [`ProbeOracle`] injecting
    /// the session's per-seed probe plan into the live stream. Probes
    /// are billed like every other query — through the request's
    /// budget, the pool, and the shared backend alike.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        session: &Session,
        task: Task,
        n: usize,
        scale: f64,
        budget: Option<u64>,
        deadline: Option<Instant>,
        cancel: Option<Arc<AtomicBool>>,
        partial: &mut Option<PartialOutcome>,
        plane: &mut Option<MergePlaneStats>,
    ) -> Result<(Answer, AttemptMeters), NcoError> {
        let probe_plan = session.probe_plan();
        let probing = probe_plan.is_active();
        if task.needs_values() {
            let backend = self
                .cmp_backend
                .as_ref()
                .expect("validate() gated value tasks on a value engine");
            let served = ServedCmp {
                n,
                backend: Arc::clone(backend),
                coalescer: Arc::clone(&self.cmp_coalescer),
                pool: Arc::clone(&self.pool),
                starved: false,
            };
            let mut oracle = ProbeOracle::new(
                Budgeted::new(served, budget)
                    .with_deadline(deadline)
                    .with_cancel(cancel),
                probe_plan,
            );
            let answer = session.value_task(task, &mut oracle, scale, partial)?;
            let estimate = oracle.estimate();
            let probes = probing.then(|| oracle.stats().probes);
            let budgeted = oracle.inner();
            Ok((
                answer,
                AttemptMeters {
                    queries: budgeted.queries(),
                    rounds: budgeted.rounds(),
                    exceeded: budgeted.exceeded(),
                    killed: budgeted.killed(),
                    starved: budgeted.inner().starved,
                    estimate,
                    probes,
                },
            ))
        } else {
            let backend = self
                .quad_backend
                .as_ref()
                .expect("validate() gated metric tasks on a metric engine");
            let served = ServedQuad {
                n,
                backend: Arc::clone(backend),
                coalescer: Arc::clone(&self.quad_coalescer),
                pool: Arc::clone(&self.pool),
                starved: false,
            };
            let mut oracle = ProbeOracle::new(
                Budgeted::new(served, budget)
                    .with_deadline(deadline)
                    .with_cancel(cancel),
                probe_plan,
            );
            let answer = session.quad_task(task, &mut oracle, scale, plane, partial)?;
            let estimate = oracle.estimate();
            let probes = probing.then(|| oracle.stats().probes);
            let budgeted = oracle.inner();
            Ok((
                answer,
                AttemptMeters {
                    queries: budgeted.queries(),
                    rounds: budgeted.rounds(),
                    exceeded: budgeted.exceeded(),
                    killed: budgeted.killed(),
                    starved: budgeted.inner().starved,
                    estimate,
                    probes,
                },
            ))
        }
    }

    fn execute(&self, request: &Request) -> Result<Outcome, NcoError> {
        let session = self.template.with_seed(request.seed);
        session.validate(request.task)?;
        let engine = Arc::clone(session.engine());
        let start = Instant::now();
        let cache_start = engine.cache_entries();
        let budget = session.cfg().budget;
        // Per-request deadline/cancellation, measured from the moment a
        // worker picks the request up (queue wait is not billed against
        // the deadline — admission control already bounds the queue).
        let deadline = session.cfg().deadline.map(|d| start + d);
        let cancel = session.cfg().cancel.as_ref().map(CancelToken::flag);

        let mut partial = None;
        let mut merge_plane = None;
        let (mut answer, mut m) = self.attempt(
            &session,
            request.task,
            engine.n(),
            session.base_scale(),
            budget,
            deadline,
            cancel.clone(),
            &mut partial,
            &mut merge_plane,
        )?;
        let mut adaptations = 0u32;
        // Adaptive escalation, exactly as in a solo run: a *clean*
        // first attempt whose probes flagged the assumed noise rate is
        // re-run with re-derived parameters on the request's remaining
        // budget. The shared backend is persistent and memoised, so the
        // re-run resumes the same noise beliefs a solo escalation would.
        if !m.exceeded && !m.killed && !m.starved && self.backend_failed().is_none() {
            if let Some(scale) = session.escalation_scale(&m.estimate) {
                let remaining = budget.map(|b| b.saturating_sub(m.queries));
                let mut partial2 = None;
                let mut plane2 = None;
                let (answer2, m2) = self.attempt(
                    &session,
                    request.task,
                    engine.n(),
                    scale,
                    remaining,
                    deadline,
                    cancel,
                    &mut partial2,
                    &mut plane2,
                )?;
                answer = answer2;
                partial = partial2;
                merge_plane = plane2;
                m = AttemptMeters::accumulated(m, m2);
                adaptations = 1;
                self.adaptations.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(p) = m.probes {
            self.probes.fetch_add(p, Ordering::Relaxed);
        }

        // Same failure precedence as a solo `Session::run`: a backend
        // fault that outlived the retry policy trumps everything, then
        // the deadline kill, then budget exhaustion (pooled or
        // per-request), then the misspecification guard.
        if let Some(attempts) = self.backend_failed() {
            return Err(NcoError::OracleFailed {
                queries_spent: m.queries,
                attempts,
            });
        }
        let cache_entries = engine.cache_entries();
        let report = RunReport {
            queries: m.queries,
            rounds: m.rounds,
            // The backend memo is a server-level resource; its hit tally
            // is aggregate, not per request (the hits live in
            // `ServeStats`).
            memo_hits: None,
            cache_entries,
            cache_added: cache_entries.map(|e| e.saturating_sub(cache_start.unwrap_or(0))),
            wall: start.elapsed(),
            budget,
            merge_plane,
            observed_flip_rate: m.estimate.map(|e| e.p_hat),
            probes: m.probes,
            adaptations,
        };
        // Killed requests carry their best-effort partials only when
        // the plane opted into graceful degradation; the default sheds
        // plain, keeping error payloads lean under load.
        let partial = if self.degrade { partial } else { None };
        if (m.killed || m.starved || m.exceeded) && partial.is_some() {
            self.partial_completions.fetch_add(1, Ordering::Relaxed);
        }
        if m.killed {
            self.deadline_kills.fetch_add(1, Ordering::Relaxed);
            return Err(NcoError::DeadlineExceeded {
                report: Box::new(report),
                partial,
            });
        }
        if m.starved {
            // The *pooled* budget ran dry mid-request: shed this request
            // without unwinding the others.
            return Err(NcoError::BudgetExceeded {
                budget: self.pool.cap(),
                report: Box::new(report),
                partial,
            });
        }
        if m.exceeded {
            return Err(NcoError::BudgetExceeded {
                budget: budget.expect("exceeded implies a budget"),
                report: Box::new(report),
                partial,
            });
        }
        // The misspecification guard fires last, and never on an
        // adapted request — the escalated re-run already answered the
        // misspecification, exactly as in a solo session.
        if adaptations == 0 {
            if let Some(est) = session.misspecified(&m.estimate) {
                self.misspecifications.fetch_add(1, Ordering::Relaxed);
                return Err(NcoError::NoiseMisspecified {
                    assumed: session
                        .assumed_rate()
                        .expect("trigger implies an assumption"),
                    observed: est.p_hat,
                    probes: m.probes.unwrap_or(0),
                    report: Box::new(report),
                });
            }
        }
        Ok(Outcome::new(answer, report))
    }

    fn stats(&self) -> ServeStats {
        let (backend_queries, memo_hits, retries, faults_masked) =
            if let Some(b) = &self.quad_backend {
                let b = relock(b);
                (
                    b.inner().inner().queries(),
                    b.hits(),
                    b.inner().retries(),
                    b.inner().faults_masked(),
                )
            } else if let Some(b) = &self.cmp_backend {
                let b = relock(b);
                (
                    b.inner().inner().queries(),
                    b.hits(),
                    b.inner().retries(),
                    b.inner().faults_masked(),
                )
            } else {
                unreachable!("every engine has exactly one backend plane")
            };
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            backend_queries,
            memo_hits,
            backend_rounds: self.quad_coalescer.rounds.load(Ordering::Relaxed)
                + self.cmp_coalescer.rounds.load(Ordering::Relaxed),
            coalesced_rounds: self.quad_coalescer.coalesced.load(Ordering::Relaxed)
                + self.cmp_coalescer.coalesced.load(Ordering::Relaxed),
            pool_spent: self.pool.spent(),
            pool_cap: self.pool.cap(),
            retries,
            faults_masked,
            deadline_kills: self.deadline_kills.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            adaptations: self.adaptations.load(Ordering::Relaxed),
            misspecifications: self.misspecifications.load(Ordering::Relaxed),
            partial_completions: self.partial_completions.load(Ordering::Relaxed),
        }
    }
}

/// Configures and spawns a [`Server`].
#[derive(Debug)]
#[must_use = "a builder does nothing until build() is called"]
pub struct ServerBuilder {
    template: Session,
    workers: usize,
    queue_cap: usize,
    pool_budget: Option<u64>,
    degrade: bool,
}

impl ServerBuilder {
    /// Worker threads draining the queue (default 4).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Maximum queued (not yet running) requests before
    /// [`Server::submit`] sheds with [`NcoError::Overloaded`]
    /// (default 64).
    pub fn queue(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Pooled cap on the total oracle queries the server may issue
    /// across all requests (default unlimited). A request the pool can
    /// no longer cover fails with [`NcoError::BudgetExceeded`]; admission
    /// is all-or-nothing per round, so a refused round spends nothing.
    pub fn pool_budget(mut self, max_queries: u64) -> Self {
        self.pool_budget = Some(max_queries);
        self
    }

    /// Opt the plane into graceful degradation (default `false`): a
    /// request killed by its deadline, its per-request budget, or the
    /// pooled budget carries its best-effort [`crate::PartialOutcome`]
    /// inside the typed error instead of shedding plain. Budget-kill
    /// partials are deterministic for a given request seed; see
    /// [`crate::PartialOutcome`] for the clean-prefix contract.
    pub fn degrade_to_partials(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }

    /// Validates the configuration and spawns the worker pool.
    pub fn build(self) -> Result<Server, NcoError> {
        if self.workers == 0 {
            return Err(NcoError::invalid("a server needs at least one worker"));
        }
        if self.queue_cap == 0 {
            return Err(NcoError::invalid("queue capacity must be positive"));
        }
        let cfg = self.template.cfg();
        if cfg.memo {
            return Err(NcoError::invalid(
                "the serving backend is always memoised; build the template without \
                 memoize(true) — per-request accounting mirrors a plain solo run",
            ));
        }
        if cfg.threads >= 2 {
            return Err(NcoError::invalid(
                "served requests run serially per worker; drop threads(>= 2) from the \
                 template",
            ));
        }
        let engine = self.template.engine();
        if engine.n() > (1 << 16) {
            return Err(NcoError::invalid(format!(
                "the serving backend memoises answers, capped at n = 65536 records \
                 (n = {})",
                engine.n()
            )));
        }
        let plan = cfg.fault_plan.unwrap_or_else(FaultPlan::none);
        let policy = cfg.retry.unwrap_or_default();
        let quad_backend = engine.has_metric().then(|| {
            Arc::new(Mutex::new(MemoOracle::new(Retrying::new(
                Counting::new(FaultyOracle::new(
                    BoxedQuad(self.template.boxed_quad_backend()),
                    plan,
                )),
                policy,
            ))))
        });
        let cmp_backend = engine.has_values().then(|| {
            Arc::new(Mutex::new(MemoOracle::new(Retrying::new(
                Counting::new(FaultyOracle::new(
                    BoxedCmp(self.template.boxed_cmp_backend()),
                    plan,
                )),
                policy,
            ))))
        });
        let shared = Arc::new(ServerShared {
            template: self.template,
            queue: Mutex::new(ServerQueue {
                jobs: VecDeque::new(),
                open: true,
            }),
            work_ready: Condvar::new(),
            queue_cap: self.queue_cap,
            pool: Arc::new(BudgetPool::new(self.pool_budget)),
            quad_backend,
            quad_coalescer: Arc::new(Coalescer::new()),
            cmp_backend,
            cmp_coalescer: Arc::new(Coalescer::new()),
            degrade: self.degrade,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_kills: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            adaptations: AtomicU64::new(0),
            misspecifications: AtomicU64::new(0),
            partial_completions: AtomicU64::new(0),
        });
        let workers = (0..self.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();
        Ok(Server {
            shared,
            workers: Mutex::new(workers),
        })
    }
}

/// Aggregate serving-plane counters (see [`Server::stats`]). Per-request
/// accounting lives in each request's [`RunReport`]; these are the
/// server-level totals behind it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests a worker finished (successfully or with a typed error).
    pub completed: u64,
    /// Submissions refused with [`NcoError::Overloaded`] (queue full or
    /// server shutting down).
    pub shed: u64,
    /// Queries that reached the real noise oracle — after the shared
    /// memo deduplicated repeats across requests. The cross-request
    /// amortisation win is `sum of per-request queries - backend_queries`.
    /// Deterministic for a given request set: under persistent noise the
    /// memo admits each distinct query exactly once, whichever request
    /// asks it first, so the total is interleaving-independent.
    pub backend_queries: u64,
    /// Cross-request memo hits at the shared backend (total lookups
    /// minus first occurrences — interleaving-independent, like
    /// [`Self::backend_queries`]).
    pub memo_hits: u64,
    /// Backend `le_batch` rounds executed by the coalescer. Unlike the
    /// query counters this is scheduling-dependent: a drain that merges
    /// several concurrent rounds executes them as one.
    pub backend_rounds: u64,
    /// Backend rounds that combined two or more concurrent requests —
    /// scheduling-dependent like [`Self::backend_rounds`]: it records
    /// how often concurrent rounds happened to overlap, not a property
    /// of the request set.
    pub coalesced_rounds: u64,
    /// Queries reserved from the pooled budget.
    pub pool_spent: u64,
    /// The pooled budget cap (`u64::MAX` = unlimited).
    pub pool_cap: u64,
    /// Backend queries that were retries of a faulted ask (billed into
    /// [`Self::backend_queries`] too — retries are real asks).
    pub retries: u64,
    /// Injected faults the retry layer absorbed: queries that faulted at
    /// least once but returned a usable (persistent, bit-identical)
    /// answer within the policy's attempt bound.
    pub faults_masked: u64,
    /// Requests killed by their per-request deadline or cancel token
    /// ([`NcoError::DeadlineExceeded`]).
    pub deadline_kills: u64,
    /// Requests that panicked inside a worker and were converted to
    /// [`NcoError::Panicked`] — each one was contained: the worker
    /// rejoined the pool and no other in-flight request was lost.
    pub panics: u64,
    /// Billed noise-probe queries injected across all requests (already
    /// counted into each request's own `queries` tally; `0` unless the
    /// template enables [`crate::SessionBuilder::probe_noise`]).
    pub probes: u64,
    /// Requests that re-derived their repetition parameters and re-ran
    /// after their probe plane flagged the template's noise rate as
    /// misspecified ([`crate::SessionBuilder::adapt_noise`] with
    /// [`crate::AdaptPolicy::Escalate`]).
    pub adaptations: u64,
    /// Requests failed typed with [`NcoError::NoiseMisspecified`]: the
    /// probe plane's confidence interval excluded the assumed rate and
    /// the template was not adapting.
    pub misspecifications: u64,
    /// Killed requests whose typed error carried a best-effort partial
    /// answer — only possible with
    /// [`ServerBuilder::degrade_to_partials`] enabled.
    pub partial_completions: u64,
}

/// The concurrent serving plane over one engine: a worker pool behind
/// [`Server::submit`], a shared memoised backend, cross-request round
/// coalescing, and optional pooled admission control — built from a
/// template [`crate::Session`] via [`Server::builder`].
pub struct Server {
    shared: Arc<ServerShared>,
    /// The worker pool, behind a mutex so shutdown can be called from
    /// `&self` (idempotently, from any number of threads).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &relock(&self.workers).len())
            .field("queue_cap", &self.shared.queue_cap)
            .field("stats", &self.shared.stats())
            .finish()
    }
}

impl Server {
    /// Starts a [`ServerBuilder`] from a template session: every request
    /// runs with the template's engine, noise model, confidence and
    /// per-request budget, re-seeded per request.
    pub fn builder(template: Session) -> ServerBuilder {
        ServerBuilder {
            template,
            workers: 4,
            queue_cap: 64,
            pool_budget: None,
            degrade: false,
        }
    }

    /// Enqueues a request. Fails fast with [`NcoError::Overloaded`] —
    /// without consuming any budget — when the queue is at capacity or
    /// the server is shutting down.
    pub fn submit(&self, request: Request) -> Result<TaskHandle, NcoError> {
        let (tx, rx) = mpsc::channel();
        let mut q = relock(&self.shared.queue);
        if !q.open {
            self.shared.shed.fetch_add(1, Ordering::Relaxed);
            return Err(NcoError::overloaded("server is shutting down"));
        }
        if q.jobs.len() >= self.shared.queue_cap {
            self.shared.shed.fetch_add(1, Ordering::Relaxed);
            return Err(NcoError::overloaded(format!(
                "submission queue full ({} pending)",
                q.jobs.len()
            )));
        }
        q.jobs.push_back(Job { request, reply: tx });
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        drop(q);
        self.shared.work_ready.notify_one();
        Ok(TaskHandle { rx })
    }

    /// A snapshot of the aggregate serving counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Graceful shutdown: refuses new submissions, lets the workers
    /// drain every already-queued request, joins them, and returns the
    /// final counters. Dropping a `Server` does the same minus the
    /// stats.
    ///
    /// Idempotent and race-free: call it any number of times, from any
    /// number of threads. Every call — concurrent or repeated — returns
    /// only after the worker pool has fully drained and exited (later
    /// calls find nothing left to join and just re-read the counters),
    /// and submissions racing a shutdown either complete normally or
    /// shed with [`NcoError::Overloaded`], never hang.
    pub fn shutdown(&self) -> ServeStats {
        self.close_and_join();
        self.shared.stats()
    }

    fn close_and_join(&self) {
        {
            let mut q = relock(&self.shared.queue);
            q.open = false;
        }
        self.shared.work_ready.notify_all();
        // The handles are drained and joined while the pool lock is
        // held, so a concurrent shutdown blocks here until the first
        // caller has fully joined the pool — both calls return with the
        // workers gone. (Workers never touch this lock: no deadlock.)
        let mut workers = relock(&self.workers);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}
