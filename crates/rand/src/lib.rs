//! # rand (offline shim)
//!
//! The build environment for this workspace has no access to a cargo
//! registry, so this path crate stands in for the upstream `rand` 0.9
//! crate. It implements exactly the API subset the workspace uses, with
//! the upstream names and semantics:
//!
//! * [`RngCore`] / [`Rng`] with `random`, `random_range`, `random_bool`;
//! * [`SeedableRng`] with `seed_from_u64` (and `from_seed`);
//! * [`rngs::StdRng`] — here a xoshiro256\*\* generator seeded through
//!   splitmix64 (upstream uses ChaCha12; any stream is allowed, upstream
//!   explicitly does not promise portability of `StdRng` streams);
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates, matching upstream's
//!   `O(n)` in-place shuffle.
//!
//! Everything is deterministic in the seed, which is what the workspace's
//! reproducibility guarantees rely on. If the real `rand` becomes
//! available, deleting this crate and pointing the workspace manifests at
//! the registry version should be a drop-in swap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s (subset of upstream `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing random value generation (subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::standard(self)
    }

    /// Samples uniformly from a half-open `lo..hi` or inclusive `lo..=hi`
    /// range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool: p = {p} not in [0, 1]"
        );
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution (upstream's
/// `StandardUniform` distribution, exposed here as a bound on
/// [`Rng::random`]).
pub trait StandardUniform: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges [`Rng::random_range`] can sample from (upstream's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Scalar types with a uniform-over-interval sampler (upstream's
/// `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased uniform draw from `[0, n)` via Lemire's widening-multiply
/// method with rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection zone: draws whose low product word falls below
    // `2^64 mod n` would bias the high word; redraw them.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let wide = (x as u128) * (n as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every 64-bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range {lo}..{hi}");
                let u = <$t as StandardUniform>::standard(rng);
                let x = lo + (hi - lo) * u;
                // `lo + span * u` can round up to `hi` when the range is a
                // few ULPs wide; the half-open contract excludes `hi`.
                if x >= hi { hi.next_down() } else { x }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
                let u = <$t as StandardUniform>::standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f64, f32);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Deterministically seedable generators (subset of upstream
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed material for [`SeedableRng::from_seed`].
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded through splitmix64
    /// (upstream's documented expansion for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generator types (subset of upstream `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A **counter-mode** generator: output `i` is a pure function of
    /// `(seed, stream, i)`, with no sequential state dependency.
    ///
    /// This is the substrate for deterministic parallelism: a fan-out of
    /// `k` workers gives worker `w` the stream [`CounterRng::stream`]`(w)`
    /// and every worker draws an identical sequence regardless of
    /// scheduling, core count, or whether the fan-out runs serially.
    /// Today the workspace's `parallel` feature keeps its fan-out regions
    /// RNG-free (all randomness is drawn serially before spawning), so
    /// this type is the *reserved* mechanism for any future in-worker
    /// randomness — not what currently keeps serial and parallel runs
    /// bit-identical. The perf suite uses it to derive per-rep seeds.
    ///
    /// Each output is one splitmix64 finalisation of the 64-bit counter
    /// XOR-folded with the (seed, stream) key — the same BigCrush-passing
    /// mixer as `StdRng`'s seeding path.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CounterRng {
        key: u64,
        ctr: u64,
    }

    fn mix1(x: u64) -> u64 {
        let mut s = x;
        super::splitmix64(&mut s)
    }

    impl CounterRng {
        /// Builds the generator for a (seed, stream) pair.
        pub fn new(seed: u64, stream: u64) -> Self {
            // Decorrelate seed and stream through one mixing round each so
            // (seed=1, stream=0) and (seed=0, stream=1) share no structure.
            let key = mix1(seed ^ 0x9e37_79b9_7f4a_7c15)
                ^ mix1(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
            Self { key, ctr: 0 }
        }

        /// A derived generator for substream `w` of the same seed: the
        /// per-worker stream of a parallel fan-out.
        pub fn stream(&self, w: u64) -> Self {
            Self {
                key: mix1(self.key ^ w.wrapping_mul(0x94d0_49bb_1331_11eb)),
                ctr: 0,
            }
        }

        /// Repositions the counter (outputs are a pure function of it).
        pub fn set_counter(&mut self, ctr: u64) {
            self.ctr = ctr;
        }

        /// The current counter value.
        pub fn counter(&self) -> u64 {
            self.ctr
        }
    }

    impl RngCore for CounterRng {
        fn next_u64(&mut self) -> u64 {
            let out = super::splitmix64(&mut (self.key ^ self.ctr));
            self.ctr = self.ctr.wrapping_add(1);
            out
        }
    }

    impl SeedableRng for CounterRng {
        type Seed = [u8; 16];

        fn from_seed(seed: Self::Seed) -> Self {
            let lo = u64::from_le_bytes(seed[..8].try_into().unwrap());
            let hi = u64::from_le_bytes(seed[8..].try_into().unwrap());
            Self::new(lo, hi)
        }
    }

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// Upstream's `StdRng` is ChaCha12; upstream explicitly reserves the
    /// right to change the algorithm, so no code may depend on the exact
    /// stream — only on determinism in the seed, which holds here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro requires a nonzero state; an all-zero seed would
            // otherwise emit a constant stream.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers (subset of upstream `rand::seq`).
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Extension methods on slices (subset of upstream `SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates, `O(n)`).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_half_open(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        let zs: Vec<u64> = (0..32).map(|_| c.random()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_and_bool_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut heads = 0usize;
        for _ in 0..20_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            if rng.random_bool(0.3) {
                heads += 1;
            }
        }
        let rate = heads as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "p=0.3 coin came up {rate}");
    }

    #[test]
    fn ranges_respect_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let k = rng.random_range(0..5usize);
            seen[k] = true;
            let x = rng.random_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&x));
            let inc = rng.random_range(3..=4u32);
            assert!(inc == 3 || inc == 4);
        }
        assert!(seen.iter().all(|&s| s), "0..5 not fully covered: {seen:?}");
    }

    #[test]
    fn uniformity_is_roughly_flat() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0usize; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let p = c as f64 / draws as f64;
            assert!((p - 0.1).abs() < 0.01, "bucket {k} has mass {p}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut w: Vec<usize> = (0..50).collect();
        let mut rng2 = StdRng::seed_from_u64(5);
        w.shuffle(&mut rng2);
        assert_eq!(v, w);
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50-element shuffle left input in order"
        );
    }

    #[test]
    fn float_half_open_excludes_upper_bound_even_at_ulp_width() {
        // A range a few ULPs wide: `lo + span * u` rounds up to `hi` for
        // large u, which the half-open contract must never return.
        let lo = 1.0e16f64;
        let hi = lo.next_up();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..1_000 {
            let x = rng.random_range(lo..hi);
            assert!(x >= lo && x < hi, "{x} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn counter_rng_streams_are_deterministic_and_independent() {
        use super::rngs::CounterRng;
        use super::RngCore;
        fn take(mut r: CounterRng, n: usize) -> Vec<u64> {
            (0..n).map(|_| r.next_u64()).collect()
        }
        let base = CounterRng::new(42, 0);
        // Same (seed, stream) -> identical sequence.
        let a = take(base.stream(3), 16);
        let b = take(base.stream(3), 16);
        assert_eq!(a, b);
        // Different streams -> different sequences.
        let c = take(base.stream(4), 16);
        assert_ne!(a, c);
        // Different seeds -> different sequences.
        let d = take(CounterRng::new(43, 0).stream(3), 16);
        assert_ne!(a, d);
        // Counter repositioning replays the exact same outputs.
        let mut r = base.stream(3);
        let first: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        r.set_counter(0);
        let replay: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(first, replay);
        assert_eq!(r.counter(), 8);
    }

    #[test]
    fn counter_rng_is_roughly_uniform() {
        use super::rngs::CounterRng;
        let mut rng = CounterRng::new(7, 1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let p = c as f64 / 80_000.0;
            assert!((p - 0.125).abs() < 0.01, "bucket {k} has mass {p}");
        }
    }

    #[test]
    fn counter_rng_seedable_from_bytes() {
        use super::rngs::CounterRng;
        use super::RngCore;
        let mut seed = [0u8; 16];
        seed[0] = 9;
        let mut a = CounterRng::from_seed(seed);
        let mut b = CounterRng::new(9, 0);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forwarding_through_mut_refs() {
        fn takes_rng(rng: &mut impl Rng) -> usize {
            rng.random_range(0..100usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let a = takes_rng(&mut rng);
        let b = takes_rng(&mut &mut rng);
        assert!(a < 100 && b < 100);
        assert!([0usize; 0].choose(&mut rng).is_none());
    }
}
