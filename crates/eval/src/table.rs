//! Fixed-width table rendering for the experiment binaries that regenerate
//! the paper's tables and figures (plus CSV export for plotting).

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for building a row out of display-able cells.
    pub fn row_of(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let rendered: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&rendered)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// CSV rendering (headers + rows, comma-separated, no quoting — cells
    /// in this workspace never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "== {} ==", self.title)?;
        }
        let render = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            writeln!(f, "{line}")
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            render(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2.5".into()]);
        let s = format!("{t}");
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        // All data lines have the same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn row_of_renders_display() {
        let mut t = Table::new("", &["k", "objective"]);
        t.row_of(&[&10usize, &3.25f64]);
        assert_eq!(t.to_csv(), "k,objective\n10,3.25\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
