//! Noise-model estimation from a validation set — the Section 6 procedure
//! ("we ran a user study ... to estimate the noise in oracle answers over a
//! small sample of the dataset") that decides *which* algorithm variant to
//! run.
//!
//! Given ground-truth distances on a validation sample and oracle access,
//! we measure answer accuracy as a function of the ratio between the two
//! compared distances and then:
//!
//! * if accuracy reaches (near-)certainty beyond some ratio `r*` — the
//!   sharp decline the paper observes for `caltech`/`cities`/`monuments`
//!   (Fig. 4a) — the **adversarial** model fits, with `mu_hat = r* - 1`;
//! * otherwise — substantial noise at all ranges, the `amazon` shape
//!   (Fig. 4b) — the **probabilistic** model fits, with `p_hat` the overall
//!   error rate.

use nco_metric::Metric;
use nco_oracle::QuadrupletOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which noise model a validation sample supports, with the fitted
/// parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FittedModel {
    /// Sharp cliff: answers reliable beyond ratio `1 + mu_hat`.
    Adversarial {
        /// Estimated band parameter.
        mu_hat: f64,
    },
    /// Flat noise: answers wrong at rate `p_hat` at every ratio.
    Probabilistic {
        /// Estimated per-query error probability.
        p_hat: f64,
    },
}

/// The full fit: per-ratio-bucket accuracies plus the model call.
#[derive(Debug, Clone)]
pub struct NoiseFit {
    /// Lower edge of each ratio bucket (the last bucket is open-ended).
    pub ratio_edges: Vec<f64>,
    /// Measured accuracy per bucket (`None` = no mass in the sample).
    pub bucket_accuracy: Vec<Option<f64>>,
    /// Accuracy over the whole sample.
    pub overall_accuracy: f64,
    /// The fitted model.
    pub model: FittedModel,
}

/// Accuracy a bucket must reach to count as "reliable" for the cliff fit.
pub const RELIABLE_ACCURACY: f64 = 0.95;

/// Fits the noise model from `budget` random validation quadruplets.
///
/// `metric` is the validation ground truth (the paper's curated sample);
/// `oracle` is the noisy answerer under test.
///
/// # Panics
/// Panics if the metric has fewer than 4 records or `budget == 0`.
pub fn fit_noise<M: Metric, O: QuadrupletOracle>(
    metric: &M,
    oracle: &mut O,
    budget: usize,
    seed: u64,
) -> NoiseFit {
    let n = metric.len();
    assert!(n >= 4, "validation set needs at least 4 records");
    assert!(budget > 0, "need a positive query budget");

    // Ratio buckets: [1, 1.05), [1.05, 1.1), ... [1.95, 2.0), [2.0, inf).
    let ratio_edges: Vec<f64> = (0..21).map(|i| 1.0 + 0.05 * i as f64).collect();
    let buckets = ratio_edges.len();
    let mut hits = vec![0usize; buckets];
    let mut total = vec![0usize; buckets];
    let mut rng = StdRng::seed_from_u64(seed);

    let mut asked = 0usize;
    while asked < budget {
        let (a, b) = (rng.random_range(0..n), rng.random_range(0..n));
        let (c, d) = (rng.random_range(0..n), rng.random_range(0..n));
        if a == b || c == d || (a.min(b), a.max(b)) == (c.min(d), c.max(d)) {
            continue;
        }
        let d1 = metric.dist(a, b);
        let d2 = metric.dist(c, d);
        if d1 <= 0.0 || d2 <= 0.0 {
            continue;
        }
        asked += 1;
        let rho = d1.max(d2) / d1.min(d2);
        let bucket = ratio_edges
            .iter()
            .rposition(|&e| rho >= e)
            .unwrap_or(0)
            .min(buckets - 1);
        total[bucket] += 1;
        if oracle.le(a, b, c, d) == (d1 <= d2) {
            hits[bucket] += 1;
        }
    }

    let bucket_accuracy: Vec<Option<f64>> = (0..buckets)
        .map(|i| (total[i] >= 10).then(|| hits[i] as f64 / total[i] as f64))
        .collect();
    let overall_accuracy =
        hits.iter().sum::<usize>() as f64 / total.iter().sum::<usize>().max(1) as f64;

    // Cliff fit: the smallest edge from which every populated bucket is
    // reliable. The cliff must arrive before the open-ended bucket for the
    // adversarial call; otherwise the noise persists at all ranges.
    let mut cliff: Option<usize> = None;
    for start in (0..buckets).rev() {
        let all_reliable = (start..buckets)
            .filter_map(|i| bucket_accuracy[i])
            .all(|a| a >= RELIABLE_ACCURACY);
        let populated = (start..buckets).any(|i| bucket_accuracy[i].is_some());
        if all_reliable && populated {
            cliff = Some(start);
        } else {
            break;
        }
    }
    let model = match cliff {
        Some(c) if c + 1 < buckets => FittedModel::Adversarial {
            mu_hat: ratio_edges[c] - 1.0,
        },
        _ => FittedModel::Probabilistic {
            p_hat: 1.0 - overall_accuracy,
        },
    };

    NoiseFit {
        ratio_edges,
        bucket_accuracy,
        overall_accuracy,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;
    use nco_oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
    use nco_oracle::probabilistic::ProbQuadOracle;
    use nco_oracle::TrueQuadOracle;

    fn validation_metric() -> EuclideanMetric {
        // A spread of distances producing ratios across all buckets.
        EuclideanMetric::from_points(&(0..80).map(|i| vec![1.02f64.powi(i)]).collect::<Vec<_>>())
    }

    #[test]
    fn perfect_oracle_fits_adversarial_with_zero_mu() {
        let m = validation_metric();
        let mut o = TrueQuadOracle::new(m.clone());
        let fit = fit_noise(&m, &mut o, 4000, 1);
        match fit.model {
            FittedModel::Adversarial { mu_hat } => assert!(mu_hat <= 0.01, "mu_hat {mu_hat}"),
            other => panic!("expected adversarial fit, got {other:?}"),
        }
        assert!(fit.overall_accuracy > 0.999);
    }

    #[test]
    fn cliff_crowd_fits_adversarial_near_the_true_cliff() {
        let m = validation_metric();
        let mut o = CrowdQuadOracle::new(m.clone(), AccuracyProfile::caltech_like(), 3, 5);
        let fit = fit_noise(&m, &mut o, 30_000, 2);
        match fit.model {
            FittedModel::Adversarial { mu_hat } => {
                // True cliff at ratio 1.45 (mu = 0.45); majority voting pulls
                // the reliable region a bit earlier.
                assert!(
                    (0.1..=0.5).contains(&mu_hat),
                    "mu_hat {mu_hat} should sit near the 1.45 cliff"
                );
            }
            other => panic!("expected adversarial fit, got {other:?}"),
        }
    }

    #[test]
    fn flat_crowd_fits_probabilistic_near_true_error_rate() {
        let m = validation_metric();
        let mut o = CrowdQuadOracle::new(m.clone(), AccuracyProfile::amazon_like(), 3, 7);
        let fit = fit_noise(&m, &mut o, 30_000, 3);
        match fit.model {
            FittedModel::Probabilistic { p_hat } => {
                // Majority-of-3 at single-worker accuracy 0.83 errs at
                // ~0.078.
                assert!((0.04..=0.13).contains(&p_hat), "p_hat {p_hat}");
            }
            other => panic!("expected probabilistic fit, got {other:?}"),
        }
    }

    #[test]
    fn persistent_probabilistic_oracle_fits_probabilistic() {
        let m = validation_metric();
        let mut o = ProbQuadOracle::new(m.clone(), 0.2, 9);
        let fit = fit_noise(&m, &mut o, 30_000, 4);
        match fit.model {
            FittedModel::Probabilistic { p_hat } => {
                assert!((0.15..=0.25).contains(&p_hat), "p_hat {p_hat}");
            }
            other => panic!("expected probabilistic fit, got {other:?}"),
        }
    }

    #[test]
    fn bucket_shapes_are_well_formed() {
        let m = validation_metric();
        let mut o = TrueQuadOracle::new(m.clone());
        let fit = fit_noise(&m, &mut o, 2000, 5);
        assert_eq!(fit.ratio_edges.len(), fit.bucket_accuracy.len());
        assert!(fit.ratio_edges.windows(2).all(|w| w[0] < w[1]));
        for acc in fit.bucket_accuracy.iter().flatten() {
            assert!((0.0..=1.0).contains(acc));
        }
    }
}
