//! Seeded repetition runner — the paper averages every reported number
//! over (up to) 100 randomly seeded runs; this module is that loop, with
//! wall-clock timing attached.

use std::time::Instant;

/// Mean / standard deviation / extremes of a repeated measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of repetitions aggregated.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single repetition).
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Aggregates a slice of observations.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarise zero observations");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std)
    }
}

/// One timed repetition's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepOutcome {
    /// The measured metric value.
    pub value: f64,
    /// Oracle queries the repetition issued (0 when not applicable).
    pub queries: u64,
}

/// Aggregated outcome of [`run_reps`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Summary of the metric values.
    pub value: Summary,
    /// Mean queries per repetition.
    pub mean_queries: f64,
    /// Total wall-clock seconds across the repetitions.
    pub total_secs: f64,
}

/// Runs `reps` seeded repetitions of `f` (seeds `seed_base`,
/// `seed_base + 1`, ...), timing the whole batch.
///
/// # Panics
/// Panics if `reps == 0`.
pub fn run_reps(reps: usize, seed_base: u64, mut f: impl FnMut(u64) -> RepOutcome) -> RunStats {
    assert!(reps > 0, "need at least one repetition");
    let started = Instant::now();
    let mut values = Vec::with_capacity(reps);
    let mut queries = 0u128;
    for r in 0..reps {
        let out = f(seed_base + r as u64);
        values.push(out.value);
        queries += out.queries as u128;
    }
    RunStats {
        value: Summary::of(&values),
        mean_queries: queries as f64 / reps as f64,
        total_secs: started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn single_observation_has_zero_std() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn run_reps_feeds_sequential_seeds() {
        let mut seen = Vec::new();
        let stats = run_reps(5, 100, |seed| {
            seen.push(seed);
            RepOutcome {
                value: seed as f64,
                queries: 10,
            }
        });
        assert_eq!(seen, vec![100, 101, 102, 103, 104]);
        assert!((stats.value.mean - 102.0).abs() < 1e-12);
        assert!((stats.mean_queries - 10.0).abs() < 1e-12);
        assert!(stats.total_secs >= 0.0);
    }

    #[test]
    fn display_format() {
        let s = Summary::of(&[1.0, 1.0]);
        assert_eq!(format!("{s}"), "1.0000 ± 0.0000");
    }
}
