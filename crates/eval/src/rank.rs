//! Ranks of returned elements in the true order — the quality measure of
//! Theorems 3.7 / Lemma 8.9 ("rank(u, V) denotes the index of u in the
//! non-increasing sorted order").

/// 1-based rank of `chosen` in the **non-increasing** order of `values`
/// (rank 1 = a true maximum). Ties resolve in `chosen`'s favour.
///
/// # Panics
/// Panics if `chosen` is out of range.
pub fn max_rank(values: &[f64], chosen: usize) -> usize {
    let v = values[chosen];
    values.iter().filter(|&&x| x > v).count() + 1
}

/// 1-based rank of `chosen` in the **non-decreasing** order of `values`
/// (rank 1 = a true minimum). Ties resolve in `chosen`'s favour.
pub fn min_rank(values: &[f64], chosen: usize) -> usize {
    let v = values[chosen];
    values.iter().filter(|&&x| x < v).count() + 1
}

/// Approximation ratio of a returned maximum: `max(values) / values[chosen]`
/// (`>= 1`, exactly 1 when the true maximum was found).
///
/// # Panics
/// Panics if the chosen value is not strictly positive.
pub fn max_approx_ratio(values: &[f64], chosen: usize) -> f64 {
    let best = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(values[chosen] > 0.0, "ratio needs positive values");
    best / values[chosen]
}

/// [`max_rank`] of every element of a returned top-k list, in list order —
/// the quality readout for iterated-extraction selections (a perfect
/// selection reads `[1, 2, ..., k]` up to ties).
///
/// # Panics
/// Panics if any chosen index is out of range.
pub fn max_ranks(values: &[f64], chosen: &[usize]) -> Vec<usize> {
    chosen.iter().map(|&c| max_rank(values, c)).collect()
}

/// Per-position dislocation of a claimed **descending** ranking: the
/// absolute distance between each item's position in `order` and its
/// position in the true non-increasing order (0-based; ties resolve in
/// the item's favour, so a correctly sorted run of ties scores 0). This
/// is the quality measure noisy-sorting bounds are stated in (dislocation
/// `O(sqrt(n log n))` w.h.p. and friends).
///
/// # Panics
/// Panics if any index in `order` is out of range.
pub fn dislocation(values: &[f64], order: &[usize]) -> Vec<usize> {
    order
        .iter()
        .enumerate()
        .map(|(pos, &item)| {
            let v = values[item];
            // The item's admissible position interval in the true
            // descending order: anywhere within its tie class.
            let first = values.iter().filter(|&&x| x > v).count();
            let last = first + values.iter().filter(|&&x| x == v).count() - 1;
            if pos < first {
                first - pos
            } else {
                pos.saturating_sub(last)
            }
        })
        .collect()
}

/// Maximum entry of [`dislocation`] — 0 iff every item sits within its
/// tie class of the true descending order. Empty rankings score 0.
pub fn max_dislocation(values: &[f64], order: &[usize]) -> usize {
    dislocation(values, order).into_iter().max().unwrap_or(0)
}

/// Kendall-tau distance of a claimed **descending** ranking: the number
/// of discordant pairs — positions `i < j` in `order` whose items are
/// strictly *increasing* in value. 0 for a perfectly sorted ranking;
/// ties are never discordant. `O(len^2)`, meant for evaluation, not for
/// hot paths.
///
/// # Panics
/// Panics if any index in `order` is out of range.
pub fn kendall_tau(values: &[f64], order: &[usize]) -> u64 {
    let mut discordant = 0u64;
    for i in 0..order.len() {
        for j in i + 1..order.len() {
            if values[order[i]] < values[order[j]] {
                discordant += 1;
            }
        }
    }
    discordant
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_on_a_permutation() {
        let values = [3.0, 9.0, 1.0, 7.0];
        assert_eq!(max_rank(&values, 1), 1);
        assert_eq!(max_rank(&values, 3), 2);
        assert_eq!(max_rank(&values, 2), 4);
        assert_eq!(min_rank(&values, 2), 1);
        assert_eq!(min_rank(&values, 1), 4);
    }

    #[test]
    fn ties_favor_the_chosen() {
        let values = [5.0, 5.0, 5.0];
        assert_eq!(max_rank(&values, 2), 1);
        assert_eq!(min_rank(&values, 0), 1);
    }

    #[test]
    fn approx_ratio() {
        let values = [2.0, 8.0, 4.0];
        assert_eq!(max_approx_ratio(&values, 1), 1.0);
        assert_eq!(max_approx_ratio(&values, 0), 4.0);
    }

    #[test]
    fn top_k_ranks_in_list_order() {
        let values = [3.0, 9.0, 1.0, 7.0];
        assert_eq!(max_ranks(&values, &[1, 3, 0]), vec![1, 2, 3]);
        assert_eq!(max_ranks(&values, &[0, 1]), vec![3, 1]);
    }

    #[test]
    fn dislocation_of_a_perfect_and_a_shifted_ranking() {
        let values = [3.0, 9.0, 1.0, 7.0];
        assert_eq!(dislocation(&values, &[1, 3, 0, 2]), vec![0, 0, 0, 0]);
        assert_eq!(max_dislocation(&values, &[1, 3, 0, 2]), 0);
        // Swap the middle two: both are off by one.
        assert_eq!(dislocation(&values, &[1, 0, 3, 2]), vec![0, 1, 1, 0]);
        assert_eq!(max_dislocation(&values, &[1, 0, 3, 2]), 1);
        // Fully reversed: the extremes travel the whole way.
        assert_eq!(max_dislocation(&values, &[2, 0, 3, 1]), 3);
        assert_eq!(max_dislocation(&values, &[]), 0);
    }

    #[test]
    fn dislocation_forgives_ties() {
        let values = [5.0, 5.0, 7.0];
        assert_eq!(max_dislocation(&values, &[2, 0, 1]), 0);
        assert_eq!(max_dislocation(&values, &[2, 1, 0]), 0);
    }

    #[test]
    fn kendall_tau_counts_discordant_pairs() {
        let values = [3.0, 9.0, 1.0, 7.0];
        assert_eq!(kendall_tau(&values, &[1, 3, 0, 2]), 0);
        assert_eq!(kendall_tau(&values, &[1, 0, 3, 2]), 1);
        assert_eq!(kendall_tau(&values, &[2, 0, 3, 1]), 6);
        // Ties are never discordant.
        let tied = [4.0, 4.0];
        assert_eq!(kendall_tau(&tied, &[0, 1]), 0);
        assert_eq!(kendall_tau(&tied, &[1, 0]), 0);
    }
}
