//! Ranks of returned elements in the true order — the quality measure of
//! Theorems 3.7 / Lemma 8.9 ("rank(u, V) denotes the index of u in the
//! non-increasing sorted order").

/// 1-based rank of `chosen` in the **non-increasing** order of `values`
/// (rank 1 = a true maximum). Ties resolve in `chosen`'s favour.
///
/// # Panics
/// Panics if `chosen` is out of range.
pub fn max_rank(values: &[f64], chosen: usize) -> usize {
    let v = values[chosen];
    values.iter().filter(|&&x| x > v).count() + 1
}

/// 1-based rank of `chosen` in the **non-decreasing** order of `values`
/// (rank 1 = a true minimum). Ties resolve in `chosen`'s favour.
pub fn min_rank(values: &[f64], chosen: usize) -> usize {
    let v = values[chosen];
    values.iter().filter(|&&x| x < v).count() + 1
}

/// Approximation ratio of a returned maximum: `max(values) / values[chosen]`
/// (`>= 1`, exactly 1 when the true maximum was found).
///
/// # Panics
/// Panics if the chosen value is not strictly positive.
pub fn max_approx_ratio(values: &[f64], chosen: usize) -> f64 {
    let best = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(values[chosen] > 0.0, "ratio needs positive values");
    best / values[chosen]
}

/// [`max_rank`] of every element of a returned top-k list, in list order —
/// the quality readout for iterated-extraction selections (a perfect
/// selection reads `[1, 2, ..., k]` up to ties).
///
/// # Panics
/// Panics if any chosen index is out of range.
pub fn max_ranks(values: &[f64], chosen: &[usize]) -> Vec<usize> {
    chosen.iter().map(|&c| max_rank(values, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_on_a_permutation() {
        let values = [3.0, 9.0, 1.0, 7.0];
        assert_eq!(max_rank(&values, 1), 1);
        assert_eq!(max_rank(&values, 3), 2);
        assert_eq!(max_rank(&values, 2), 4);
        assert_eq!(min_rank(&values, 2), 1);
        assert_eq!(min_rank(&values, 1), 4);
    }

    #[test]
    fn ties_favor_the_chosen() {
        let values = [5.0, 5.0, 5.0];
        assert_eq!(max_rank(&values, 2), 1);
        assert_eq!(min_rank(&values, 0), 1);
    }

    #[test]
    fn approx_ratio() {
        let values = [2.0, 8.0, 4.0];
        assert_eq!(max_approx_ratio(&values, 1), 1.0);
        assert_eq!(max_approx_ratio(&values, 0), 4.0);
    }

    #[test]
    fn top_k_ranks_in_list_order() {
        let values = [3.0, 9.0, 1.0, 7.0];
        assert_eq!(max_ranks(&values, &[1, 3, 0]), vec![1, 2, 3]);
        assert_eq!(max_ranks(&values, &[0, 1]), vec![3, 1]);
    }
}
