//! Pair-counting F-score over intra-cluster pairs — the clustering quality
//! metric of Table 1 ("we use F-score over intra-cluster pairs", §6.1).
//!
//! A *pair* is a positive iff its two records share a cluster. Predicted
//! positives are pairs co-clustered by the algorithm; true positives are
//! pairs co-clustered in both the prediction and the ground truth.
//! Computed in O(n + |pred clusters| * |true clusters|) via the
//! contingency table, so it scales to every dataset size we run.

/// Precision / recall / F1 over intra-cluster pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairScore {
    /// Fraction of predicted co-clustered pairs that are truly together.
    pub precision: f64,
    /// Fraction of truly co-clustered pairs that were predicted together.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

fn comb2(x: u64) -> u64 {
    x * x.saturating_sub(1) / 2
}

/// Computes the pair-counting score of `predicted` against `truth`.
///
/// Labels may use arbitrary (not necessarily contiguous) ids; only
/// equality matters. Degenerate cases follow the usual convention:
/// a metric with an empty denominator counts as 1.0 (perfect vacuously).
///
/// # Panics
/// Panics if the two label vectors have different lengths or are empty.
pub fn pair_f_score(predicted: &[usize], truth: &[usize]) -> PairScore {
    assert_eq!(predicted.len(), truth.len(), "label vectors must align");
    assert!(!predicted.is_empty(), "need at least one record");

    let compact = |labels: &[usize]| -> Vec<usize> {
        let mut map = std::collections::HashMap::new();
        labels
            .iter()
            .map(|&l| {
                let next = map.len();
                *map.entry(l).or_insert(next)
            })
            .collect()
    };
    let p = compact(predicted);
    let t = compact(truth);
    let kp = p.iter().max().unwrap() + 1;
    let kt = t.iter().max().unwrap() + 1;

    // Contingency table: n_ij = |cluster_p(i) ∩ cluster_t(j)|.
    let mut table = vec![0u64; kp * kt];
    let mut p_sizes = vec![0u64; kp];
    let mut t_sizes = vec![0u64; kt];
    for idx in 0..p.len() {
        table[p[idx] * kt + t[idx]] += 1;
        p_sizes[p[idx]] += 1;
        t_sizes[t[idx]] += 1;
    }

    let true_positive: u64 = table.iter().map(|&c| comb2(c)).sum();
    let predicted_positive: u64 = p_sizes.iter().map(|&c| comb2(c)).sum();
    let actual_positive: u64 = t_sizes.iter().map(|&c| comb2(c)).sum();

    let precision = if predicted_positive == 0 {
        1.0
    } else {
        true_positive as f64 / predicted_positive as f64
    };
    let recall = if actual_positive == 0 {
        1.0
    } else {
        true_positive as f64 / actual_positive as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairScore {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_partitions_score_one() {
        let labels = vec![0, 0, 1, 1, 2, 2, 2];
        let s = pair_f_score(&labels, &labels);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn relabelling_does_not_change_the_score() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![5, 5, 9, 9, 1, 1];
        assert_eq!(pair_f_score(&pred, &truth).f1, 1.0);
    }

    #[test]
    fn all_singletons_has_perfect_precision_zero_recall() {
        let truth = vec![0, 0, 0, 0];
        let pred = vec![0, 1, 2, 3];
        let s = pair_f_score(&pred, &truth);
        assert_eq!(s.precision, 1.0); // vacuous: no predicted pairs
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn one_big_cluster_has_perfect_recall_low_precision() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 0];
        let s = pair_f_score(&pred, &truth);
        assert_eq!(s.recall, 1.0);
        assert!((s.precision - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_mixed_case() {
        // truth: {0,1,2}, {3,4}; pred: {0,1}, {2,3}, {4}.
        let truth = vec![0, 0, 0, 1, 1];
        let pred = vec![0, 0, 1, 1, 2];
        let s = pair_f_score(&pred, &truth);
        // predicted pairs: (0,1), (2,3) -> tp = 1 ((0,1)).
        // actual pairs: (0,1),(0,2),(1,2),(3,4) -> 4.
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.25).abs() < 1e-12);
        assert!((s.f1 - 2.0 * 0.5 * 0.25 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_uncorrelated_partition() {
        // truth: two blocks {0..3}, {4..7}; pred: evens vs odds — a
        // partition carrying no information about the truth.
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let pred = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let s = pair_f_score(&pred, &truth);
        // Predicted pairs: 2 * C(4,2) = 12, of which (0,2), (4,6), (1,3),
        // (5,7) also share a truth block -> tp = 4. Actual pairs: 12.
        assert!((s.precision - 4.0 / 12.0).abs() < 1e-12);
        assert!((s.recall - 4.0 / 12.0).abs() < 1e-12);
        assert!((s.f1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_cluster_against_itself_is_perfect() {
        let one = vec![3usize; 9];
        let s = pair_f_score(&one, &one);
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
    }

    // Seeded-loop replacements for the original proptest properties (the
    // offline build has no proptest; 256 random cases per property, fixed
    // seed, so failures are reproducible).
    #[test]
    fn score_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(0xF5C0);
        for _ in 0..256 {
            let n = rng.random_range(2..80usize);
            let pred: Vec<usize> = (0..n).map(|_| rng.random_range(0..5usize)).collect();
            let truth: Vec<usize> = (0..n).map(|_| rng.random_range(0..5usize)).collect();
            let s = pair_f_score(&pred, &truth);
            assert!((0.0..=1.0).contains(&s.precision), "precision {s:?}");
            assert!((0.0..=1.0).contains(&s.recall), "recall {s:?}");
            assert!((0.0..=1.0).contains(&s.f1), "f1 {s:?}");
            assert!(s.f1 <= s.precision.max(s.recall) + 1e-12, "{s:?}");
        }
    }

    #[test]
    fn identical_random_partitions_score_one() {
        let mut rng = StdRng::seed_from_u64(0xF5C1);
        for _ in 0..256 {
            let n = rng.random_range(2..60usize);
            let labels: Vec<usize> = (0..n).map(|_| rng.random_range(0..6usize)).collect();
            assert_eq!(pair_f_score(&labels, &labels).f1, 1.0);
        }
    }
}
