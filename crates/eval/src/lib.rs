//! # nco-eval — evaluation metrics and the experiment harness
//!
//! Everything the paper's Section 6 measures, implemented once and shared
//! by the benchmark suite, the integration tests and the examples:
//!
//! * [`fscore`] — pair-counting precision / recall / F-score over
//!   intra-cluster pairs (the Table 1 metric, following Galhotra et al.);
//! * [`rank`] — ranks of returned elements in the true order (the
//!   Theorem 3.7 quality measure), plus dislocation and Kendall-tau
//!   helpers for full rankings (the noisy-sorting quality measures);
//! * [`hier_eval`] — per-merge true linkage distances of a dendrogram and
//!   the normalised mean-merge-distance series of Figure 7;
//! * [`noise_fit`] — the Section 6 validation-set procedure estimating
//!   `mu` / `p` and classifying which noise model a dataset follows;
//! * [`experiment`] — seeded repetition runner with wall-clock timing,
//!   query counting and mean/std aggregation;
//! * [`table`] — fixed-width table rendering (and CSV) for the bench
//!   binaries that regenerate the paper's tables and figures.

pub mod experiment;
pub mod fscore;
pub mod hier_eval;
pub mod noise_fit;
pub mod rank;
pub mod table;

pub use experiment::{run_reps, Summary};
pub use fscore::{pair_f_score, PairScore};
pub use table::Table;
