//! Dendrogram quality: true linkage distances of every merge — the
//! Figure 7 measure ("we compute the pairs of clusters merged in every
//! iteration and compare the average true distance between these
//! clusters"), evaluated on the hidden metric.

use nco_core::hier::{Dendrogram, Linkage};
use nco_metric::Metric;

/// True linkage distance (min for single, max for complete) between the
/// two clusters of every merge, in merge order.
///
/// Replays the dendrogram maintaining member lists; total work is
/// `O(sum |C_a| * |C_b|) = O(n^2)`.
///
/// # Panics
/// Panics if the dendrogram refers to records outside the metric.
pub fn merge_linkage_distances<M: Metric>(
    dendrogram: &Dendrogram,
    metric: &M,
    linkage: Linkage,
) -> Vec<f64> {
    assert!(
        dendrogram.n <= metric.len(),
        "dendrogram exceeds the metric"
    );
    let mut members: Vec<Vec<usize>> = (0..dendrogram.n).map(|i| vec![i]).collect();
    let mut out = Vec::with_capacity(dendrogram.merges.len());
    for m in &dendrogram.merges {
        let (a, b) = (&members[m.a], &members[m.b]);
        let mut best = match linkage {
            Linkage::Single => f64::INFINITY,
            Linkage::Complete => f64::NEG_INFINITY,
        };
        for &x in a {
            for &y in b {
                let d = metric.dist(x, y);
                best = match linkage {
                    Linkage::Single => best.min(d),
                    Linkage::Complete => best.max(d),
                };
            }
        }
        out.push(best);
        let mut merged = members[m.a].clone();
        merged.extend_from_slice(&members[m.b]);
        members.push(merged);
    }
    out
}

/// Mean of the per-merge true linkage distances — the scalar plotted in
/// Figure 7 (normalised against the `TDist` baseline by the harness).
pub fn mean_merge_distance<M: Metric>(
    dendrogram: &Dendrogram,
    metric: &M,
    linkage: Linkage,
) -> f64 {
    let ds = merge_linkage_distances(dendrogram, metric, linkage);
    if ds.is_empty() {
        return 0.0;
    }
    ds.iter().sum::<f64>() / ds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_core::hier::hier_exact;
    use nco_metric::EuclideanMetric;

    fn line() -> EuclideanMetric {
        EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![3.0], vec![7.0]])
    }

    #[test]
    fn single_linkage_distances_match_gaps() {
        let m = line();
        let d = hier_exact(&m, Linkage::Single);
        let ds = merge_linkage_distances(&d, &m, Linkage::Single);
        assert_eq!(ds, vec![1.0, 2.0, 4.0]);
        assert!((mean_merge_distance(&d, &m, Linkage::Single) - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn complete_linkage_distances_are_maxima() {
        let m = line();
        let d = hier_exact(&m, Linkage::Complete);
        let ds = merge_linkage_distances(&d, &m, Linkage::Complete);
        // Exact CL merges (0,1) at 1, then {0,1}+{3} at CL distance
        // max(3,2) = 3 (cheaper than pair (3,7) at 4), then +{7} at 7.
        assert_eq!(ds, vec![1.0, 3.0, 7.0]);
    }

    #[test]
    fn exact_single_linkage_minimises_mean_merge_distance() {
        // Against a deliberately bad merge order on the same metric.
        use nco_core::hier::Merge;
        let m = line();
        let exact = hier_exact(&m, Linkage::Single);
        let bad = Dendrogram {
            n: 4,
            merges: vec![
                Merge {
                    a: 0,
                    b: 3,
                    merged: 4,
                    rep: (0, 3),
                },
                Merge {
                    a: 1,
                    b: 2,
                    merged: 5,
                    rep: (1, 2),
                },
                Merge {
                    a: 4,
                    b: 5,
                    merged: 6,
                    rep: (0, 1),
                },
            ],
        };
        let e = mean_merge_distance(&exact, &m, Linkage::Single);
        let b = mean_merge_distance(&bad, &m, Linkage::Single);
        assert!(e < b, "exact {e} vs bad {b}");
    }
}
