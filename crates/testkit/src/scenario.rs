//! Seeded scenario builders: hidden ground truth plus one-line oracle
//! factories for every noise model the paper studies.

use nco_data::Dataset;
use nco_metric::{EuclideanMetric, Metric};
use nco_oracle::adversarial::{
    AdversarialQuadOracle, AdversarialValueOracle, Adversary, InvertAdversary,
    PersistentRandomAdversary,
};
use nco_oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
use nco_oracle::probabilistic::{ProbQuadOracle, ProbValueOracle};
use nco_oracle::{TrueQuadOracle, TrueValueOracle};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A hidden-value instance (the substrate of Problems 2.1/3.x): `n`
/// records with scalar values the algorithms may only compare through an
/// oracle.
#[derive(Debug, Clone)]
pub struct ValueScenario {
    /// The hidden values, indexed by record id.
    pub values: Vec<f64>,
    /// All record ids, `0..n` — the usual `items` argument.
    pub items: Vec<usize>,
}

impl ValueScenario {
    /// Builds a scenario from explicit values.
    pub fn from_values(values: Vec<f64>) -> Self {
        let items = (0..values.len()).collect();
        Self { values, items }
    }

    /// Distinct values `1..=n` assigned to record ids in a seeded random
    /// order (so record id never correlates with rank).
    pub fn shuffled_linear(n: usize, seed: u64) -> Self {
        let mut values: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        values.shuffle(&mut StdRng::seed_from_u64(seed));
        Self::from_values(values)
    }

    /// Geometric values `base^0 .. base^(n-1)` in seeded random record
    /// order — every adjacent pair sits inside a `(1 + mu)` band when
    /// `base <= 1 + mu`, the adversary's favourite terrain.
    pub fn shuffled_geometric(n: usize, base: f64, seed: u64) -> Self {
        assert!(base > 1.0, "geometric base must exceed 1");
        let mut values: Vec<f64> = (0..n).map(|i| base.powi(i as i32)).collect();
        values.shuffle(&mut StdRng::seed_from_u64(seed));
        Self::from_values(values)
    }

    /// Number of records.
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// The true maximum value.
    pub fn true_max(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Record id of the true maximum.
    pub fn argmax(&self) -> usize {
        (0..self.n())
            .max_by(|&a, &b| self.values[a].total_cmp(&self.values[b]))
            .unwrap()
    }

    /// Rank of `chosen` in the descending value order (1 = true maximum).
    pub fn max_rank(&self, chosen: usize) -> usize {
        1 + self
            .values
            .iter()
            .filter(|&&v| v > self.values[chosen])
            .count()
    }

    /// Noiseless oracle (`mu = 0` / `p = 0`).
    pub fn exact_oracle(&self) -> TrueValueOracle {
        TrueValueOracle::new(self.values.clone())
    }

    /// Adversarial oracle with the worst-case in-band strategy
    /// (`InvertAdversary` flips every in-band answer).
    pub fn adversarial_oracle(&self, mu: f64) -> AdversarialValueOracle<InvertAdversary> {
        AdversarialValueOracle::new(self.values.clone(), mu, InvertAdversary)
    }

    /// Adversarial oracle with a seeded persistent random in-band strategy.
    pub fn adversarial_random_oracle(
        &self,
        mu: f64,
        seed: u64,
    ) -> AdversarialValueOracle<PersistentRandomAdversary> {
        AdversarialValueOracle::new(
            self.values.clone(),
            mu,
            PersistentRandomAdversary::new(seed),
        )
    }

    /// Custom in-band strategy.
    pub fn adversarial_oracle_with<A: Adversary>(
        &self,
        mu: f64,
        adversary: A,
    ) -> AdversarialValueOracle<A> {
        AdversarialValueOracle::new(self.values.clone(), mu, adversary)
    }

    /// Probabilistic persistent oracle: every distinct query is wrong with
    /// probability `p`, identically on repetition.
    pub fn probabilistic_oracle(&self, p: f64, seed: u64) -> ProbValueOracle {
        ProbValueOracle::new(self.values.clone(), p, seed)
    }
}

/// A hidden-metric instance (the substrate of Problems 2.3/4.x/5.x):
/// points the algorithms may only relate through quadruplet comparisons.
#[derive(Debug, Clone)]
pub struct MetricScenario {
    /// The hidden metric.
    pub metric: EuclideanMetric,
    /// Ground-truth cluster labels, one per point.
    pub labels: Vec<usize>,
    /// Size of the smallest ground-truth cluster (Algorithm 7's `m`).
    pub min_cluster_size: usize,
}

impl MetricScenario {
    /// `k` well-separated blobs of `per` points each on a circle of radius
    /// `spread`, intra-blob scatter `+-2` — separation/scatter ratio is
    /// `O(spread)`, so guarantees are easy to state exactly.
    pub fn separated_blobs(k: usize, per: usize, spread: f64, seed: u64) -> Self {
        assert!(k >= 1 && per >= 1);
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::with_capacity(k * per);
        let mut labels = Vec::with_capacity(k * per);
        for c in 0..k {
            let angle = c as f64 / k as f64 * std::f64::consts::TAU;
            let (cx, cy) = (spread * angle.cos(), spread * angle.sin());
            for _ in 0..per {
                let dx = rng.random_range(-2.0..2.0);
                let dy = rng.random_range(-2.0..2.0);
                pts.push(vec![cx + dx, cy + dy]);
                labels.push(c);
            }
        }
        Self {
            metric: EuclideanMetric::from_points(&pts),
            labels,
            min_cluster_size: per,
        }
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.metric.len()
    }

    /// Number of ground-truth clusters.
    pub fn k(&self) -> usize {
        let mut l = self.labels.clone();
        l.sort_unstable();
        l.dedup();
        l.len()
    }

    /// Noiseless quadruplet oracle.
    pub fn exact_oracle(&self) -> TrueQuadOracle<EuclideanMetric> {
        TrueQuadOracle::new(self.metric.clone())
    }

    /// Adversarial quadruplet oracle (worst-case in-band inversion).
    pub fn adversarial_oracle(
        &self,
        mu: f64,
    ) -> AdversarialQuadOracle<EuclideanMetric, InvertAdversary> {
        AdversarialQuadOracle::new(self.metric.clone(), mu, InvertAdversary)
    }

    /// Probabilistic persistent quadruplet oracle.
    pub fn probabilistic_oracle(&self, p: f64, seed: u64) -> ProbQuadOracle<EuclideanMetric> {
        ProbQuadOracle::new(self.metric.clone(), p, seed)
    }

    /// Crowd oracle (3-worker majority, the paper's AMT setup) with the
    /// given accuracy profile.
    pub fn crowd_oracle(
        &self,
        profile: AccuracyProfile,
        seed: u64,
    ) -> CrowdQuadOracle<EuclideanMetric> {
        CrowdQuadOracle::new(self.metric.clone(), profile, 3, seed)
    }

    /// True distance from `q` to its farthest point.
    pub fn true_farthest_dist(&self, q: usize) -> f64 {
        (0..self.n())
            .filter(|&v| v != q)
            .map(|v| self.metric.dist(q, v))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// True distance from `q` to its nearest other point.
    pub fn true_nearest_dist(&self, q: usize) -> f64 {
        (0..self.n())
            .filter(|&v| v != q)
            .map(|v| self.metric.dist(q, v))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Seeded instances of the five paper-dataset analogues, for tests that
/// want realistic (skewed / hierarchical) distance structure. Thin wrapper
/// over `nco_data` with the testkit's fixed-seed convention.
pub fn dataset(name: &str, n: usize, seed: u64) -> Dataset {
    match name {
        "cities" => nco_data::cities(n, seed),
        "caltech" => nco_data::caltech(n, seed),
        "amazon" => nco_data::amazon(n, seed),
        "monuments" => nco_data::monuments(n, seed),
        "dblp" => nco_data::dblp(n, seed),
        other => panic!("unknown dataset analogue {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_linear_covers_ranks() {
        let s = ValueScenario::shuffled_linear(50, 3);
        assert_eq!(s.n(), 50);
        assert_eq!(s.true_max(), 50.0);
        assert_eq!(s.max_rank(s.argmax()), 1);
        let mut sorted = s.values.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, (1..=50).map(|i| i as f64).collect::<Vec<_>>());
        // Seeded: identical rebuild.
        assert_eq!(s.values, ValueScenario::shuffled_linear(50, 3).values);
        assert_ne!(s.values, ValueScenario::shuffled_linear(50, 4).values);
    }

    #[test]
    fn geometric_is_geometric() {
        let s = ValueScenario::shuffled_geometric(10, 1.5, 1);
        let mut sorted = s.values.clone();
        sorted.sort_by(f64::total_cmp);
        for w in sorted.windows(2) {
            assert!((w[1] / w[0] - 1.5).abs() < 1e-9);
        }
    }

    #[test]
    fn blobs_are_separated_and_labeled() {
        let s = MetricScenario::separated_blobs(4, 25, 60.0, 9);
        assert_eq!(s.n(), 100);
        assert_eq!(s.k(), 4);
        assert_eq!(s.min_cluster_size, 25);
        // Intra-blob diameter is < 8; inter-blob gap is > 20 at spread 60.
        for i in 0..s.n() {
            for j in (i + 1)..s.n() {
                let d = s.metric.dist(i, j);
                if s.labels[i] == s.labels[j] {
                    assert!(d < 8.0, "intra {d}");
                } else {
                    assert!(d > 20.0, "inter {d}");
                }
            }
        }
    }

    #[test]
    fn dataset_analogues_resolve() {
        for name in ["cities", "caltech", "amazon", "monuments", "dblp"] {
            let d = dataset(name, 120, 5);
            assert_eq!(d.name, name);
            assert!(d.n() >= 100, "{name} too small: {}", d.n());
        }
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = dataset("imagenet", 100, 1);
    }
}
