//! `assert_guarantee`-style helpers: each one states a theorem-shaped
//! bound and panics with the measured quantity, the bound and enough
//! context to reproduce the failure.

use nco_metric::stats::kcenter_objective;
use nco_metric::Metric;

/// Asserts the multiplicative guarantee of Theorems 3.6 / 3.10: the chosen
/// record's value times `factor` must reach the true maximum. `factor` is
/// `(1 + mu)^3` for Max-Adv, `(1 + mu)^2` for plain Count-Max, etc.
///
/// # Panics
/// Panics (with values, factor and context) when the bound is violated.
#[track_caller]
pub fn assert_max_within_factor(values: &[f64], chosen: usize, factor: f64, context: &str) {
    let vmax = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let got = values[chosen];
    assert!(
        got * factor >= vmax - 1e-9,
        "{context}: guarantee violated — chose value {got} (record {chosen}), \
         but {got} * {factor} < true max {vmax}"
    );
}

/// Asserts a rank bound (the Theorem 3.7 quality measure): the chosen
/// record must be among the `bound` largest values (rank 1 = maximum).
///
/// # Panics
/// Panics when the chosen record's rank exceeds `bound`.
#[track_caller]
pub fn assert_rank_at_most(values: &[f64], chosen: usize, bound: usize, context: &str) {
    let rank = 1 + values.iter().filter(|&&v| v > values[chosen]).count();
    assert!(
        rank <= bound,
        "{context}: rank guarantee violated — record {chosen} has rank {rank} > bound {bound}"
    );
}

/// Asserts the k-center objective is within `factor` times the reference
/// objective (Theorems 4.2 / 4.4 promise an O(1) factor; callers pass the
/// Gonzalez objective, itself a 2-approximation of OPT, as the reference).
///
/// # Panics
/// Panics when the objective exceeds `factor * reference` (with a small
/// absolute floor so a zero reference cannot make the bound vacuous).
#[track_caller]
pub fn assert_kcenter_constant_factor<M: Metric>(
    metric: &M,
    centers: &[usize],
    assignment: &[usize],
    reference_objective: f64,
    factor: f64,
    context: &str,
) {
    let obj = kcenter_objective(metric, centers, assignment);
    let bound = factor * reference_objective.max(1e-9);
    assert!(
        obj <= bound,
        "{context}: k-center guarantee violated — objective {obj} > \
         {factor} * reference {reference_objective}"
    );
}

/// Fraction of `trials` seeded runs for which `trial(seed)` returns true.
/// Seeds are `seed0, seed0 + 1, ..` so a reported failure names its seed
/// exactly. Use for "holds w.p. >= 1 - delta" guarantees where a hard
/// all-seeds assertion would over-claim the theorem.
pub fn success_rate(trials: u64, seed0: u64, mut trial: impl FnMut(u64) -> bool) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let ok = (0..trials).filter(|&t| trial(seed0 + t)).count();
    ok as f64 / trials as f64
}

/// Runs `run` twice and asserts identical output — the reproducibility
/// contract: every randomized algorithm in the workspace is a pure
/// function of (instance, seed).
///
/// # Panics
/// Panics when the two runs differ.
#[track_caller]
pub fn assert_deterministic<T: PartialEq + std::fmt::Debug>(
    context: &str,
    mut run: impl FnMut() -> T,
) -> T {
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "{context}: two identically-seeded runs diverged"
    );
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;

    #[test]
    fn max_within_factor_accepts_and_rejects() {
        let values = [1.0, 4.0, 8.0];
        assert_max_within_factor(&values, 2, 1.0, "exact max");
        assert_max_within_factor(&values, 1, 2.0, "factor-2");
        let caught = std::panic::catch_unwind(|| {
            assert_max_within_factor(&values, 0, 2.0, "too far");
        });
        assert!(caught.is_err(), "1.0 * 2 < 8 must panic");
    }

    #[test]
    fn rank_bound_accepts_and_rejects() {
        let values = [5.0, 3.0, 9.0, 1.0];
        assert_rank_at_most(&values, 2, 1, "true max");
        assert_rank_at_most(&values, 0, 2, "second");
        assert!(std::panic::catch_unwind(|| {
            assert_rank_at_most(&values, 3, 3, "worst is rank 4");
        })
        .is_err());
    }

    #[test]
    fn kcenter_factor_accepts_and_rejects() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]);
        let centers = [0usize, 2];
        let assignment = [0usize, 0, 1, 1];
        // Objective is 1.0; reference 0.6 with factor 2 passes.
        assert_kcenter_constant_factor(&m, &centers, &assignment, 0.6, 2.0, "ok");
        assert!(std::panic::catch_unwind(|| {
            assert_kcenter_constant_factor(&m, &centers, &assignment, 0.4, 2.0, "tight");
        })
        .is_err());
    }

    #[test]
    fn success_rate_counts_and_seeds() {
        let mut seen = Vec::new();
        let rate = success_rate(10, 100, |seed| {
            seen.push(seed);
            seed % 2 == 0
        });
        assert_eq!(rate, 0.5);
        assert_eq!(seen, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_accepts_pure_and_rejects_impure() {
        let v = assert_deterministic("pure", || 7u32);
        assert_eq!(v, 7);
        let mut calls = 0;
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            assert_deterministic("impure", || {
                calls += 1;
                calls
            });
        }))
        .is_err());
    }
}
