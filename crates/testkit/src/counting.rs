//! Call counting at the [`Comparator`] layer.
//!
//! `nco_oracle::Counting` (re-exported from the testkit root) meters
//! *oracle* queries; [`CountingCmp`] meters *comparator* calls, which is
//! the right unit when an algorithm runs on a synthetic comparator (e.g.
//! `ExactKeyCmp`) or when a test wants the two layers separately — a
//! ClusterComp call can fan out into many oracle queries.

use nco_core::comparator::Comparator;

/// Wraps any [`Comparator`] and counts the `le` calls issued through it.
#[derive(Debug)]
pub struct CountingCmp<C> {
    inner: C,
    count: u64,
}

impl<C> CountingCmp<C> {
    /// Wraps a comparator with a zeroed counter.
    pub fn new(inner: C) -> Self {
        Self { inner, count: 0 }
    }

    /// Comparator calls so far.
    pub fn calls(&self) -> u64 {
        self.count
    }

    /// Resets the counter (e.g. between phases).
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Unwraps the comparator.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<I: Copy, C: Comparator<I>> Comparator<I> for CountingCmp<C> {
    fn le(&mut self, a: I, b: I) -> bool {
        self.count += 1;
        self.inner.le(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_core::comparator::ExactKeyCmp;
    use nco_core::maxfind::count_max;

    #[test]
    fn counts_comparator_calls() {
        let keys = [3.0, 1.0, 2.0];
        let mut cmp = CountingCmp::new(ExactKeyCmp::new(&keys));
        let items = [0usize, 1, 2];
        let best = count_max(&items, &mut cmp).unwrap();
        assert_eq!(best, 0);
        // Count-Max queries each unordered pair once: n * (n - 1) / 2.
        assert_eq!(cmp.calls(), 3);
        cmp.reset();
        assert_eq!(cmp.calls(), 0);
    }
}
