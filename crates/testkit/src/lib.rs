//! # nco-testkit — deterministic guarantee-checking harness
//!
//! The paper's value proposition is *provable* robustness: the max
//! algorithm returns an item within a `(1 + mu)^3` factor of the true
//! maximum under adversarial noise (Theorem 3.6), Count-Max-Prob returns a
//! polylog rank under persistent probabilistic noise (Theorem 3.7), the
//! k-center algorithms are O(1)-approximations (Theorems 4.2, 4.4), and so
//! on. Those statements hold *with high probability over the algorithm's
//! own coins* — which makes them exactly the kind of guarantee that decays
//! silently when a refactor nudges a threshold.
//!
//! This crate pins them down reproducibly:
//!
//! * [`scenario`] — seeded builders for value instances ([`ValueScenario`])
//!   and metric instances ([`MetricScenario`]) with one-line constructors
//!   for every noise model (exact / adversarial / probabilistic / crowd);
//! * [`counting`] — [`CountingCmp`], a [`nco_core::Comparator`]-level call counter
//!   (complementing `nco_oracle::Counting`, re-exported here), so tests can
//!   budget query complexity at either layer;
//! * [`check`] — `assert_guarantee`-style helpers that panic with the
//!   measured quantity, the bound and the scenario seed, plus
//!   [`success_rate`] for "holds in >= 1 - delta of seeded trials" checks
//!   and [`assert_deterministic`] for bit-reproducibility.
//!
//! Everything is deterministic in the seeds the caller passes; no helper
//! draws entropy from the environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod counting;
pub mod scenario;

pub use check::{
    assert_deterministic, assert_kcenter_constant_factor, assert_max_within_factor,
    assert_rank_at_most, success_rate,
};
pub use counting::CountingCmp;
pub use nco_oracle::Counting;
pub use scenario::{MetricScenario, ValueScenario};
