//! Deterministic 64-bit mixing used for persistent noise and per-pair jitter.
//!
//! The paper's probabilistic noise model is *persistent*: repeating a query
//! must return the same answer (Section 2.2). Rather than memoising every
//! query in a table, we derive each answer from a seeded hash of the
//! canonicalised query — O(1) memory, bit-for-bit reproducible, and
//! indistinguishable from a persistent random oracle for the algorithms under
//! test. The same mixer drives the deterministic per-pair jitter of
//! [`crate::TreeMetric`].
//!
//! The finaliser is splitmix64 (Steele et al., "Fast splittable pseudorandom
//! number generators"), which passes BigCrush as a 64→64 bit mixer.

/// splitmix64 finaliser: a high-quality 64→64 bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixes a seed with a sequence of words into a single 64-bit digest.
///
/// Each word is absorbed through an extra splitmix64 round, so digests of
/// different-length inputs or permuted inputs are unrelated.
#[inline]
pub fn mix(seed: u64, words: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0x6a09_e667_f3bc_c909);
    for &w in words {
        h = splitmix64(h ^ w);
    }
    h
}

/// Two-word specialisation of [`mix`]: `mix2(s, a, b) == mix(s, &[a, b])`
/// bit for bit, with the slice loop flattened out — the persistent
/// comparison-oracle coin is one of the hottest call sites in the
/// workspace.
#[inline]
pub fn mix2(seed: u64, w0: u64, w1: u64) -> u64 {
    let h = splitmix64(seed ^ 0x6a09_e667_f3bc_c909);
    splitmix64(splitmix64(h ^ w0) ^ w1)
}

/// Four-word specialisation of [`mix`] (`== mix(s, &[a, b, c, d])`), for
/// the persistent quadruplet-oracle coin.
#[inline]
pub fn mix4(seed: u64, w0: u64, w1: u64, w2: u64, w3: u64) -> u64 {
    let h = splitmix64(seed ^ 0x6a09_e667_f3bc_c909);
    splitmix64(splitmix64(splitmix64(splitmix64(h ^ w0) ^ w1) ^ w2) ^ w3)
}

/// The seed-absorption round shared by every mixer: precompute it once
/// per oracle ([`mix_seed`]) and feed [`mix2_from`] / [`mix4_from`] on the
/// per-query hot path — digests are bit-identical to [`mix2`] / [`mix4`],
/// one splitmix round cheaper per query.
#[inline]
pub fn mix_seed(seed: u64) -> u64 {
    splitmix64(seed ^ 0x6a09_e667_f3bc_c909)
}

/// [`mix2`] resuming from a precomputed [`mix_seed`] digest:
/// `mix2_from(mix_seed(s), a, b) == mix2(s, a, b)` bit for bit.
#[inline]
pub fn mix2_from(h0: u64, w0: u64, w1: u64) -> u64 {
    splitmix64(splitmix64(h0 ^ w0) ^ w1)
}

/// [`mix4`] resuming from a precomputed [`mix_seed`] digest:
/// `mix4_from(mix_seed(s), a, b, c, d) == mix4(s, a, b, c, d)` bit for bit.
#[inline]
pub fn mix4_from(h0: u64, w0: u64, w1: u64, w2: u64, w3: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(splitmix64(h0 ^ w0) ^ w1) ^ w2) ^ w3)
}

/// Maps a 64-bit digest to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    // Use the top 53 bits for a dyadic uniform in [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f64` in `[0, 1)` derived from `seed` and `words`.
#[inline]
pub fn unit_from(seed: u64, words: &[u64]) -> f64 {
    unit_f64(mix(seed, words))
}

/// A deterministic Bernoulli draw: `true` with probability `p`.
#[inline]
pub fn bernoulli(seed: u64, words: &[u64], p: f64) -> bool {
    unit_from(seed, words) < p
}

/// A splitmix64-based [`std::hash::Hasher`] for integer-keyed hot-path
/// maps (packed pair/quadruplet keys): one finaliser round per written
/// word instead of SipHash's full keyed construction. These maps are
/// internal caches — attacker-controlled keys are not a concern, and the
/// mixer's avalanche quality keeps bucket collisions at the random
/// baseline.
#[derive(Debug, Default, Clone)]
pub struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (derived Hash on structs): absorb 8-byte words.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = splitmix64(self.0 ^ u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = splitmix64(self.0 ^ x);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`MixHasher`] — plug into
/// `HashMap::with_hasher` / `HashSet::with_hasher` for integer-keyed
/// caches on query hot paths.
#[derive(Debug, Default, Clone, Copy)]
pub struct MixBuildHasher;

impl std::hash::BuildHasher for MixBuildHasher {
    type Hasher = MixHasher;

    #[inline]
    fn build_hasher(&self) -> MixHasher {
        MixHasher(0x6a09_e667_f3bc_c909)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values_are_stable() {
        // Pin the mixer so persisted-noise experiments stay reproducible
        // across refactors.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(7, &[1, 2]), mix(7, &[2, 1]));
        assert_ne!(mix(7, &[1, 2]), mix(8, &[1, 2]));
        assert_ne!(mix(7, &[1]), mix(7, &[1, 0]));
    }

    #[test]
    fn specialised_mixers_match_the_generic_mixer_bit_for_bit() {
        // The unrolled fast paths must stay digest-identical to `mix`:
        // every persisted noise pattern in the workspace depends on it.
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            for w in 0..50u64 {
                let (a, b, c, d) = (w, w.wrapping_mul(3) ^ 5, !w, w << 7);
                assert_eq!(mix2(seed, a, b), mix(seed, &[a, b]));
                assert_eq!(mix4(seed, a, b, c, d), mix(seed, &[a, b, c, d]));
                let h0 = mix_seed(seed);
                assert_eq!(mix2_from(h0, a, b), mix2(seed, a, b));
                assert_eq!(mix4_from(h0, a, b, c, d), mix4(seed, a, b, c, d));
            }
        }
    }

    #[test]
    fn unit_is_in_range_and_deterministic() {
        for i in 0..1000u64 {
            let u = unit_from(42, &[i]);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, unit_from(42, &[i]));
        }
    }

    #[test]
    fn unit_looks_uniform() {
        // Coarse uniformity check: mean of 100k draws within 1% of 0.5.
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| unit_from(9, &[i])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let n = 100_000u64;
        let hits = (0..n).filter(|&i| bernoulli(3, &[i], 0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate was {rate}");
    }
}
