//! Explicit distance matrices for tiny inputs and tests.
//!
//! The paper's Example 1.1 (six landmark photos with Google-Vision
//! similarities) and the worked adversarial examples (Example 3.2 / Fig. 2)
//! are point sets given directly by their pairwise distances; this type holds
//! them. Storage is the condensed upper triangle (`n*(n-1)/2` entries).

use crate::Metric;

/// A metric given by an explicit (condensed) distance matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixMetric {
    n: usize,
    // Condensed upper triangle, row-major: entry for (i, j) with i < j lives
    // at `i*n - i*(i+1)/2 + (j - i - 1)`.
    tri: Vec<f64>,
}

impl MatrixMetric {
    /// Builds a matrix metric by evaluating `f(i, j)` for every `i < j`.
    ///
    /// # Panics
    /// Panics if `f` returns a negative or non-finite distance.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut tri = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                assert!(
                    d.is_finite() && d >= 0.0,
                    "distance ({i},{j}) = {d} must be finite and non-negative"
                );
                tri.push(d);
            }
        }
        Self { n, tri }
    }

    /// Builds a matrix metric from a full `n x n` matrix (row-major).
    ///
    /// Validation (symmetry, zero diagonal, finite non-negative entries)
    /// and condensed-triangle construction happen in a single pass over
    /// the upper triangle — each entry is read once, not re-walked by a
    /// second builder loop.
    ///
    /// # Panics
    /// Panics if the matrix is not square/symmetric, has a non-zero diagonal,
    /// or contains negative or non-finite entries.
    pub fn from_full(full: &[f64], n: usize) -> Self {
        assert_eq!(full.len(), n * n, "matrix must be n x n");
        let mut tri = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            assert_eq!(full[i * n + i], 0.0, "diagonal must be zero");
            for j in (i + 1)..n {
                let d = full[i * n + j];
                assert_eq!(d, full[j * n + i], "matrix must be symmetric at ({i},{j})");
                assert!(
                    d.is_finite() && d >= 0.0,
                    "distance ({i},{j}) = {d} must be finite and non-negative"
                );
                tri.push(d);
            }
        }
        Self { n, tri }
    }

    /// Materialises any metric into an explicit matrix (O(n^2) memory).
    pub fn from_metric<M: Metric>(m: &M) -> Self {
        Self::from_fn(m.len(), |i, j| m.dist(i, j))
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Overwrites the distance between `i` and `j` (for hand-built examples).
    ///
    /// # Panics
    /// Panics if `i == j` or the value is negative/non-finite.
    pub fn set(&mut self, i: usize, j: usize, d: f64) {
        assert!(i != j, "cannot set the diagonal");
        assert!(d.is_finite() && d >= 0.0);
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let at = self.idx(a, b);
        self.tri[at] = d;
    }
}

impl Metric for MatrixMetric {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.tri[self.idx(a, b)]
    }
}

/// A full `n x n` distance grid — the locality-optimised materialisation
/// for **anchored** query patterns.
///
/// Twice the memory of the condensed triangle, but `dist(i, j)` is a
/// single load with no index canonicalisation, and every query anchored
/// at record `i` (nearest/farthest rows, SLINK's per-row pointer
/// searches) reads the contiguous `8n`-byte row `i`, which stays
/// L1/L2-resident across the whole search instead of hopping around a
/// multi-megabyte triangle. Each distance is evaluated once (upper
/// triangle) and mirrored, so the stored values are the source metric's
/// own `f64`s — bit-identical to lazy evaluation under every noise model.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMetric {
    n: usize,
    grid: Vec<f64>,
}

impl SquareMetric {
    /// Materialises any metric into the full grid (`O(n^2)` memory,
    /// `n (n - 1) / 2` distance evaluations).
    pub fn from_metric<M: Metric>(m: &M) -> Self {
        let n = m.len();
        let mut grid = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = m.dist(i, j);
                grid[i * n + j] = d;
                grid[j * n + i] = d;
            }
        }
        Self { n, grid }
    }
}

impl Metric for SquareMetric {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.grid[i * self.n + j]
    }
}

/// A metric that is an up-front condensed matrix, a lazily filling
/// [`crate::DistCache`] over the original implementation, or the original
/// left untouched — the return type of [`materialize_if_small`].
#[derive(Debug, Clone)]
pub enum MaterializedMetric<M> {
    /// All `n (n - 1) / 2` distances were evaluated once and stored.
    Dense(MatrixMetric),
    /// Above the eager cutoff: distances are evaluated on first touch and
    /// memoised, so only the pairs an algorithm actually queries are paid
    /// for (same table footprint as `Dense`, lazy evaluation).
    Cached(crate::CachedMetric<M>),
    /// Past [`CACHE_TAKEOVER_MAX_POINTS`] even the empty table would be
    /// prohibitive; distances stay fully lazy.
    Lazy(M),
}

impl<M: Metric> MaterializedMetric<M> {
    /// `true` when the matrix was eagerly materialised.
    pub fn is_dense(&self) -> bool {
        matches!(self, Self::Dense(_))
    }
}

impl<M: Metric> Metric for MaterializedMetric<M> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            Self::Dense(m) => m.len(),
            Self::Cached(m) => m.len(),
            Self::Lazy(m) => m.len(),
        }
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        match self {
            Self::Dense(m) => m.dist(i, j),
            Self::Cached(m) => m.dist(i, j),
            Self::Lazy(m) => m.dist(i, j),
        }
    }
}

/// Default `max_points` cutoff for [`materialize`]: the pre-PR3 callers'
/// setting (every perf-suite workload materialised eagerly at its full
/// size, the largest being `n = 2048`; a 2048-point condensed triangle is
/// ~16 MiB, a sane eager ceiling).
pub const DEFAULT_MATERIALIZE_CUTOFF: usize = 2048;

/// Largest `n` for which [`materialize_if_small`] allocates a
/// [`crate::DistCache`] above the eager cutoff: the cache pays its
/// `n (n - 1) / 2 * 8` byte table up front (16384 points ≈ 1 GiB), so
/// past this point the metric is returned untouched instead of trading a
/// slowdown for an allocation that may not fit at all.
pub const CACHE_TAKEOVER_MAX_POINTS: usize = 16_384;

/// Materialises `metric` into a condensed [`MatrixMetric`] when it has at
/// most `max_points` points, wraps it in a lazily filling
/// [`crate::DistCache`] up to [`CACHE_TAKEOVER_MAX_POINTS`], and returns
/// it unchanged beyond that.
///
/// `O(n^2)`-query algorithms (SLINK agglomeration, k-center refinement)
/// revisit every pairwise distance many times; paying each distinct
/// evaluation once and answering every subsequent oracle query with a
/// table lookup is strictly faster whenever the algorithm's query count
/// exceeds the touched-pair count. Below the cutoff the whole triangle is
/// evaluated eagerly (best constant factor); above it the `Cached` arm
/// takes over transparently, evaluating only the pairs actually queried —
/// the right shape for sub-quadratic query patterns like batched
/// neighbour searches. In both arms the stored distances are the
/// bit-exact `f64`s the lazy metric produces, so persistent-noise
/// oracles built over the result answer every query identically.
pub fn materialize_if_small<M: Metric>(metric: M, max_points: usize) -> MaterializedMetric<M> {
    if metric.len() <= max_points {
        MaterializedMetric::Dense(MatrixMetric::from_metric(&metric))
    } else if metric.len() <= CACHE_TAKEOVER_MAX_POINTS {
        MaterializedMetric::Cached(crate::CachedMetric::new(metric))
    } else {
        MaterializedMetric::Lazy(metric)
    }
}

/// [`materialize_if_small`] with the documented default cutoff
/// [`DEFAULT_MATERIALIZE_CUTOFF`].
pub fn materialize<M: Metric>(metric: M) -> MaterializedMetric<M> {
    materialize_if_small(metric, DEFAULT_MATERIALIZE_CUTOFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condensed_indexing_covers_all_pairs() {
        let n = 7;
        let m = MatrixMetric::from_fn(n, |i, j| (i * 10 + j) as f64);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    assert_eq!(m.dist(i, j), 0.0);
                } else {
                    let (a, b) = if i < j { (i, j) } else { (j, i) };
                    assert_eq!(m.dist(i, j), (a * 10 + b) as f64);
                }
            }
        }
    }

    #[test]
    fn from_full_round_trips() {
        #[rustfmt::skip]
        let full = [
            0.0, 1.0, 2.0,
            1.0, 0.0, 3.0,
            2.0, 3.0, 0.0,
        ];
        let m = MatrixMetric::from_full(&full, 3);
        assert_eq!(m.dist(0, 1), 1.0);
        assert_eq!(m.dist(2, 1), 3.0);
    }

    #[test]
    fn set_updates_both_orientations() {
        let mut m = MatrixMetric::from_fn(4, |_, _| 1.0);
        m.set(2, 0, 5.0);
        assert_eq!(m.dist(0, 2), 5.0);
        assert_eq!(m.dist(2, 0), 5.0);
    }

    #[test]
    fn from_metric_materialises() {
        let e = crate::EuclideanMetric::from_points(&[vec![0.0], vec![3.0], vec![7.0]]);
        let m = MatrixMetric::from_metric(&e);
        assert_eq!(m.dist(0, 2), 7.0);
        assert_eq!(m.dist(1, 2), 4.0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_full_rejects_asymmetry() {
        let full = [0.0, 1.0, 2.0, 0.0];
        let _ = MatrixMetric::from_full(&full, 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_full_rejects_negative_in_single_pass() {
        let full = [0.0, -1.0, -1.0, 0.0];
        let _ = MatrixMetric::from_full(&full, 2);
    }

    #[test]
    fn materialize_if_small_is_exact_and_respects_cap() {
        let e = crate::EuclideanMetric::from_points(
            &(0..10)
                .map(|i| vec![i as f64 * 0.3, (i * i) as f64 * 0.1])
                .collect::<Vec<_>>(),
        );
        let dense = materialize_if_small(e.clone(), 10);
        assert!(dense.is_dense());
        let cached = materialize_if_small(e.clone(), 9);
        assert!(!cached.is_dense());
        for i in 0..10 {
            for j in 0..10 {
                // Bit-exact agreement, not just approximate: persistent
                // noise built over the dense metric must not change.
                assert_eq!(dense.dist(i, j), e.dist(i, j));
                assert_eq!(cached.dist(i, j), e.dist(i, j));
            }
        }
        assert_eq!(dense.len(), 10);
        assert_eq!(cached.len(), 10);
        // Above the cutoff the DistCache arm took over and is now full.
        match cached {
            MaterializedMetric::Cached(c) => assert_eq!(c.cache().filled(), 45),
            _ => panic!("expected the cached arm"),
        }
    }

    /// A `Metric` whose points vastly exceed the cache-takeover bound but
    /// whose distances are cheap to fake — the `Lazy` arm must kick in
    /// without allocating a table.
    #[test]
    fn past_the_cache_bound_the_metric_stays_lazy() {
        struct Huge;
        impl Metric for Huge {
            fn len(&self) -> usize {
                CACHE_TAKEOVER_MAX_POINTS + 1
            }
            fn dist(&self, i: usize, j: usize) -> f64 {
                (i as f64 - j as f64).abs()
            }
        }
        let m = materialize_if_small(Huge, 4);
        assert!(matches!(m, MaterializedMetric::Lazy(_)));
        assert_eq!(m.dist(3, 7), 4.0);
    }

    #[test]
    fn materialize_uses_the_documented_default_cutoff() {
        let e = crate::EuclideanMetric::from_points(&[vec![0.0], vec![1.0]]);
        assert!(materialize(e).is_dense());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_fn_rejects_negative() {
        let _ = MatrixMetric::from_fn(2, |_, _| -1.0);
    }
}
