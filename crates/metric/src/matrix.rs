//! Explicit distance matrices for tiny inputs and tests.
//!
//! The paper's Example 1.1 (six landmark photos with Google-Vision
//! similarities) and the worked adversarial examples (Example 3.2 / Fig. 2)
//! are point sets given directly by their pairwise distances; this type holds
//! them. Storage is the condensed upper triangle (`n*(n-1)/2` entries).

use crate::Metric;

/// A metric given by an explicit (condensed) distance matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixMetric {
    n: usize,
    // Condensed upper triangle, row-major: entry for (i, j) with i < j lives
    // at `i*n - i*(i+1)/2 + (j - i - 1)`.
    tri: Vec<f64>,
}

impl MatrixMetric {
    /// Builds a matrix metric by evaluating `f(i, j)` for every `i < j`.
    ///
    /// # Panics
    /// Panics if `f` returns a negative or non-finite distance.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut tri = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                assert!(
                    d.is_finite() && d >= 0.0,
                    "distance ({i},{j}) = {d} must be finite and non-negative"
                );
                tri.push(d);
            }
        }
        Self { n, tri }
    }

    /// Builds a matrix metric from a full `n x n` matrix (row-major).
    ///
    /// Validation (symmetry, zero diagonal, finite non-negative entries)
    /// and condensed-triangle construction happen in a single pass over
    /// the upper triangle — each entry is read once, not re-walked by a
    /// second builder loop.
    ///
    /// # Panics
    /// Panics if the matrix is not square/symmetric, has a non-zero diagonal,
    /// or contains negative or non-finite entries.
    pub fn from_full(full: &[f64], n: usize) -> Self {
        assert_eq!(full.len(), n * n, "matrix must be n x n");
        let mut tri = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            assert_eq!(full[i * n + i], 0.0, "diagonal must be zero");
            for j in (i + 1)..n {
                let d = full[i * n + j];
                assert_eq!(d, full[j * n + i], "matrix must be symmetric at ({i},{j})");
                assert!(
                    d.is_finite() && d >= 0.0,
                    "distance ({i},{j}) = {d} must be finite and non-negative"
                );
                tri.push(d);
            }
        }
        Self { n, tri }
    }

    /// Materialises any metric into an explicit matrix (O(n^2) memory).
    pub fn from_metric<M: Metric>(m: &M) -> Self {
        Self::from_fn(m.len(), |i, j| m.dist(i, j))
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Overwrites the distance between `i` and `j` (for hand-built examples).
    ///
    /// # Panics
    /// Panics if `i == j` or the value is negative/non-finite.
    pub fn set(&mut self, i: usize, j: usize, d: f64) {
        assert!(i != j, "cannot set the diagonal");
        assert!(d.is_finite() && d >= 0.0);
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let at = self.idx(a, b);
        self.tri[at] = d;
    }
}

impl Metric for MatrixMetric {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.tri[self.idx(a, b)]
    }
}

/// A metric that is either an up-front condensed matrix or the original
/// lazy implementation — the return type of [`materialize_if_small`].
#[derive(Debug, Clone)]
pub enum MaterializedMetric<M> {
    /// All `n (n - 1) / 2` distances were evaluated once and stored.
    Dense(MatrixMetric),
    /// The instance was too large to materialise; distances stay lazy.
    Lazy(M),
}

impl<M: Metric> MaterializedMetric<M> {
    /// `true` when the matrix was materialised.
    pub fn is_dense(&self) -> bool {
        matches!(self, Self::Dense(_))
    }
}

impl<M: Metric> Metric for MaterializedMetric<M> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            Self::Dense(m) => m.len(),
            Self::Lazy(m) => m.len(),
        }
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        match self {
            Self::Dense(m) => m.dist(i, j),
            Self::Lazy(m) => m.dist(i, j),
        }
    }
}

/// Materialises `metric` into a condensed [`MatrixMetric`] when it has at
/// most `max_points` points, and returns it unchanged otherwise.
///
/// `O(n^2)`-query algorithms (SLINK agglomeration, k-center refinement)
/// revisit every pairwise distance many times; paying the `n (n - 1) / 2`
/// evaluations once and answering every subsequent oracle query with a
/// table lookup is strictly faster whenever the algorithm's query count
/// exceeds the pair count. The stored distances are the bit-exact `f64`s
/// the lazy metric produces, so persistent-noise oracles built over the
/// materialised metric answer every query identically.
pub fn materialize_if_small<M: Metric>(metric: M, max_points: usize) -> MaterializedMetric<M> {
    if metric.len() <= max_points {
        MaterializedMetric::Dense(MatrixMetric::from_metric(&metric))
    } else {
        MaterializedMetric::Lazy(metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condensed_indexing_covers_all_pairs() {
        let n = 7;
        let m = MatrixMetric::from_fn(n, |i, j| (i * 10 + j) as f64);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    assert_eq!(m.dist(i, j), 0.0);
                } else {
                    let (a, b) = if i < j { (i, j) } else { (j, i) };
                    assert_eq!(m.dist(i, j), (a * 10 + b) as f64);
                }
            }
        }
    }

    #[test]
    fn from_full_round_trips() {
        #[rustfmt::skip]
        let full = [
            0.0, 1.0, 2.0,
            1.0, 0.0, 3.0,
            2.0, 3.0, 0.0,
        ];
        let m = MatrixMetric::from_full(&full, 3);
        assert_eq!(m.dist(0, 1), 1.0);
        assert_eq!(m.dist(2, 1), 3.0);
    }

    #[test]
    fn set_updates_both_orientations() {
        let mut m = MatrixMetric::from_fn(4, |_, _| 1.0);
        m.set(2, 0, 5.0);
        assert_eq!(m.dist(0, 2), 5.0);
        assert_eq!(m.dist(2, 0), 5.0);
    }

    #[test]
    fn from_metric_materialises() {
        let e = crate::EuclideanMetric::from_points(&[vec![0.0], vec![3.0], vec![7.0]]);
        let m = MatrixMetric::from_metric(&e);
        assert_eq!(m.dist(0, 2), 7.0);
        assert_eq!(m.dist(1, 2), 4.0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_full_rejects_asymmetry() {
        let full = [0.0, 1.0, 2.0, 0.0];
        let _ = MatrixMetric::from_full(&full, 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_full_rejects_negative_in_single_pass() {
        let full = [0.0, -1.0, -1.0, 0.0];
        let _ = MatrixMetric::from_full(&full, 2);
    }

    #[test]
    fn materialize_if_small_is_exact_and_respects_cap() {
        let e = crate::EuclideanMetric::from_points(
            &(0..10)
                .map(|i| vec![i as f64 * 0.3, (i * i) as f64 * 0.1])
                .collect::<Vec<_>>(),
        );
        let dense = materialize_if_small(e.clone(), 10);
        assert!(dense.is_dense());
        let lazy = materialize_if_small(e.clone(), 9);
        assert!(!lazy.is_dense());
        for i in 0..10 {
            for j in 0..10 {
                // Bit-exact agreement, not just approximate: persistent
                // noise built over the dense metric must not change.
                assert_eq!(dense.dist(i, j), e.dist(i, j));
                assert_eq!(lazy.dist(i, j), e.dist(i, j));
            }
        }
        assert_eq!(dense.len(), 10);
        assert_eq!(lazy.len(), 10);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_fn_rejects_negative() {
        let _ = MatrixMetric::from_fn(2, |_, _| -1.0);
    }
}
