//! Dense Euclidean (L2) point sets.
//!
//! Used for the `cities` (2-D coordinates), `monuments` (clustered 2-D) and
//! `dblp` (high-dimensional embedding) dataset analogues. Points are stored
//! row-major in one flat allocation so distance evaluation is a tight loop
//! over contiguous memory.

use crate::Metric;

/// A finite set of points in `R^dim` with the Euclidean distance.
#[derive(Debug, Clone, PartialEq)]
pub struct EuclideanMetric {
    data: Vec<f64>,
    dim: usize,
    n: usize,
}

impl EuclideanMetric {
    /// Builds a metric from row-major flat coordinates.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`, or if
    /// any coordinate is non-finite.
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "data length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        assert!(
            data.iter().all(|x| x.is_finite()),
            "coordinates must be finite"
        );
        let n = data.len() / dim;
        Self { data, dim, n }
    }

    /// Builds a metric from a list of points, all of the same dimension.
    ///
    /// # Panics
    /// Panics if points are empty or have inconsistent dimensions.
    pub fn from_points(points: &[Vec<f64>]) -> Self {
        assert!(!points.is_empty(), "need at least one point");
        let dim = points[0].len();
        let mut data = Vec::with_capacity(points.len() * dim);
        for p in points {
            assert_eq!(p.len(), dim, "inconsistent point dimension");
            data.extend_from_slice(p);
        }
        Self::from_flat(data, dim)
    }

    /// The dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..i * self.dim + self.dim]
    }

    /// Squared Euclidean distance (cheaper when only comparisons are needed).
    ///
    /// The hot path of every lazily-evaluated quadruplet query: the two
    /// coordinate windows are sliced once (one bounds check each), then the
    /// inner loop runs over four independent accumulators so the adds
    /// don't serialise on FP latency and LLVM can keep the loop
    /// check-free. Dimensions `<= 4` take the plain sequential path, which
    /// keeps low-dimensional summation order identical to the naive loop.
    #[inline]
    pub fn dist_sq(&self, i: usize, j: usize) -> f64 {
        let d = self.dim;
        let a = &self.data[i * d..i * d + d];
        let b = &self.data[j * d..j * d + d];
        if d <= 4 {
            let mut acc = 0.0;
            for (x, y) in a.iter().zip(b) {
                let t = x - y;
                acc += t * t;
            }
            return acc;
        }
        let mut acc = [0.0f64; 4];
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for (wa, wb) in (&mut ca).zip(&mut cb) {
            for k in 0..4 {
                let t = wa[k] - wb[k];
                acc[k] += t * t;
            }
        }
        let mut tail = 0.0;
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            let t = x - y;
            tail += t * t;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// Squared distances from one `anchor` to many `candidates` in a
    /// single blocked pass, **appended** to `out`, **bit-identical** to
    /// calling [`Self::dist_sq`] per pair.
    ///
    /// The anchor row is sliced once and stays hot in cache across the
    /// whole batch; each candidate runs the same 4-wide blocked
    /// subtract-square accumulation as `dist_sq` (identical op order, so
    /// the outputs are the same `f64`s bit for bit — batch evaluation can
    /// feed `DistCache` tables or the oracle plane without perturbing a
    /// single persistent-noise transcript). Safe code only; the shape is
    /// what LLVM auto-vectorises.
    ///
    /// A `‖a‖² + ‖b‖² − 2a·b` variant with precomputed squared norms was
    /// measured here and **rejected**: the row scan is load-bound (two
    /// coordinate streams per dimension either way), so trading the
    /// subtract for a norm lookup saved no time on the pinned workloads —
    /// it measured ~2x slower per row — while costing the bit-equality
    /// with `dist_sq`. The `dist_kernels` criterion bench keeps the
    /// comparison honest.
    pub fn dist_sq_batch(&self, anchor: usize, candidates: &[usize], out: &mut Vec<f64>) {
        let d = self.dim;
        let a = &self.data[anchor * d..anchor * d + d];
        out.reserve(candidates.len());
        if d <= 4 {
            for &c in candidates {
                let b = &self.data[c * d..c * d + d];
                let mut acc = 0.0;
                for (x, y) in a.iter().zip(b) {
                    let t = x - y;
                    acc += t * t;
                }
                out.push(acc);
            }
            return;
        }
        for &c in candidates {
            let b = &self.data[c * d..c * d + d];
            let mut acc = [0.0f64; 4];
            let mut ca = a.chunks_exact(4);
            let mut cb = b.chunks_exact(4);
            for (wa, wb) in (&mut ca).zip(&mut cb) {
                for k in 0..4 {
                    let t = wa[k] - wb[k];
                    acc[k] += t * t;
                }
            }
            let mut tail = 0.0;
            for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
                let t = x - y;
                tail += t * t;
            }
            out.push((acc[0] + acc[1]) + (acc[2] + acc[3]) + tail);
        }
    }
}

impl Metric for EuclideanMetric {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.dist_sq(i, j).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> EuclideanMetric {
        EuclideanMetric::from_points(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ])
    }

    #[test]
    fn distances_match_geometry() {
        let m = unit_square();
        assert_eq!(m.len(), 4);
        assert_eq!(m.dim(), 2);
        assert!((m.dist(0, 1) - 1.0).abs() < 1e-12);
        assert!((m.dist(0, 3) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.dist(2, 2), 0.0);
    }

    #[test]
    fn symmetry_and_identity() {
        let m = unit_square();
        for i in 0..4 {
            assert_eq!(m.dist(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.dist(i, j), m.dist(j, i));
            }
        }
    }

    #[test]
    fn from_flat_round_trips_points() {
        let m = EuclideanMetric::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(m.len(), 2);
        assert_eq!(m.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn high_dimensional_distance_matches_naive_sum() {
        // Exercise the unrolled accumulator path (dim > 4, with and
        // without a remainder) against the naive sequential reference.
        for dim in [5usize, 8, 16, 19] {
            let pts: Vec<Vec<f64>> = (0..6)
                .map(|p| {
                    (0..dim)
                        .map(|k| ((p * 31 + k * 7) % 13) as f64 * 0.37)
                        .collect()
                })
                .collect();
            let m = EuclideanMetric::from_points(&pts);
            for i in 0..6 {
                for j in 0..6 {
                    let naive: f64 = pts[i]
                        .iter()
                        .zip(&pts[j])
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum();
                    let got = m.dist_sq(i, j);
                    assert!(
                        (got - naive).abs() <= 1e-12 * naive.max(1.0),
                        "dim {dim} ({i},{j}): {got} vs naive {naive}"
                    );
                    assert_eq!(m.dist(i, j), m.dist(j, i), "symmetry at dim {dim}");
                }
            }
        }
    }

    #[test]
    fn batch_kernel_is_bit_identical_to_scalar() {
        for dim in [1usize, 2, 3, 4, 5, 8, 16, 19, 64] {
            let pts: Vec<Vec<f64>> = (0..12)
                .map(|p| {
                    (0..dim)
                        .map(|k| 50.0 + ((p * 31 + k * 7) % 13) as f64 * 0.37)
                        .collect()
                })
                .collect();
            let m = EuclideanMetric::from_points(&pts);
            let candidates: Vec<usize> = (0..12).collect();
            let mut out = Vec::new();
            for anchor in 0..12 {
                out.clear();
                m.dist_sq_batch(anchor, &candidates, &mut out);
                assert_eq!(out.len(), 12);
                for (c, &got) in candidates.iter().zip(&out) {
                    // Same summation, same op order: exactly the scalar
                    // kernel's bits, not merely close.
                    assert_eq!(
                        got.to_bits(),
                        m.dist_sq(anchor, *c).to_bits(),
                        "dim {dim} ({anchor},{c})"
                    );
                }
                assert_eq!(out[anchor], 0.0, "self-distance must be exactly zero");
            }
        }
    }

    #[test]
    fn batch_kernel_appends_to_out() {
        let m = unit_square();
        let mut out = vec![7.0];
        m.dist_sq_batch(0, &[1, 2], &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], 7.0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged_data() {
        let _ = EuclideanMetric::from_flat(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_flat_rejects_nan() {
        let _ = EuclideanMetric::from_flat(vec![1.0, f64::NAN], 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn from_points_rejects_mixed_dims() {
        let _ = EuclideanMetric::from_points(&[vec![0.0], vec![0.0, 1.0]]);
    }
}
