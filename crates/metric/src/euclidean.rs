//! Dense Euclidean (L2) point sets.
//!
//! Used for the `cities` (2-D coordinates), `monuments` (clustered 2-D) and
//! `dblp` (high-dimensional embedding) dataset analogues. Points are stored
//! row-major in one flat allocation so distance evaluation is a tight loop
//! over contiguous memory.

use crate::Metric;

/// A finite set of points in `R^dim` with the Euclidean distance.
#[derive(Debug, Clone, PartialEq)]
pub struct EuclideanMetric {
    data: Vec<f64>,
    dim: usize,
    n: usize,
}

impl EuclideanMetric {
    /// Builds a metric from row-major flat coordinates.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`, or if
    /// any coordinate is non-finite.
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "data length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        assert!(
            data.iter().all(|x| x.is_finite()),
            "coordinates must be finite"
        );
        let n = data.len() / dim;
        Self { data, dim, n }
    }

    /// Builds a metric from a list of points, all of the same dimension.
    ///
    /// # Panics
    /// Panics if points are empty or have inconsistent dimensions.
    pub fn from_points(points: &[Vec<f64>]) -> Self {
        assert!(!points.is_empty(), "need at least one point");
        let dim = points[0].len();
        let mut data = Vec::with_capacity(points.len() * dim);
        for p in points {
            assert_eq!(p.len(), dim, "inconsistent point dimension");
            data.extend_from_slice(p);
        }
        Self::from_flat(data, dim)
    }

    /// The dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Squared Euclidean distance (cheaper when only comparisons are needed).
    pub fn dist_sq(&self, i: usize, j: usize) -> f64 {
        let a = self.point(i);
        let b = self.point(j);
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }
}

impl Metric for EuclideanMetric {
    fn len(&self) -> usize {
        self.n
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        self.dist_sq(i, j).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> EuclideanMetric {
        EuclideanMetric::from_points(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ])
    }

    #[test]
    fn distances_match_geometry() {
        let m = unit_square();
        assert_eq!(m.len(), 4);
        assert_eq!(m.dim(), 2);
        assert!((m.dist(0, 1) - 1.0).abs() < 1e-12);
        assert!((m.dist(0, 3) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.dist(2, 2), 0.0);
    }

    #[test]
    fn symmetry_and_identity() {
        let m = unit_square();
        for i in 0..4 {
            assert_eq!(m.dist(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.dist(i, j), m.dist(j, i));
            }
        }
    }

    #[test]
    fn from_flat_round_trips_points() {
        let m = EuclideanMetric::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(m.len(), 2);
        assert_eq!(m.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged_data() {
        let _ = EuclideanMetric::from_flat(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_flat_rejects_nan() {
        let _ = EuclideanMetric::from_flat(vec![1.0, f64::NAN], 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn from_points_rejects_mixed_dims() {
        let _ = EuclideanMetric::from_points(&[vec![0.0], vec![0.0, 1.0]]);
    }
}
