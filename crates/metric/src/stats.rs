//! Ground-truth helpers: exact extrema, objectives, and distance histograms.
//!
//! Everything in this module reads true distances, so it is used only by
//! (a) evaluation code that scores what the noisy algorithms returned, and
//! (b) the `TDist` baselines, which the paper defines as the same algorithms
//! run with perfect distance knowledge.

use crate::Metric;

/// Index of the exact farthest point from `q` among `candidates`, with its
/// distance. Returns `None` when `candidates` is empty (after removing `q`).
pub fn exact_farthest<M: Metric>(
    metric: &M,
    q: usize,
    candidates: impl IntoIterator<Item = usize>,
) -> Option<(usize, f64)> {
    candidates
        .into_iter()
        .filter(|&c| c != q)
        .map(|c| (c, metric.dist(q, c)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Index of the exact nearest point to `q` among `candidates`, with its
/// distance.
pub fn exact_nearest<M: Metric>(
    metric: &M,
    q: usize,
    candidates: impl IntoIterator<Item = usize>,
) -> Option<(usize, f64)> {
    candidates
        .into_iter()
        .filter(|&c| c != q)
        .map(|c| (c, metric.dist(q, c)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

/// The 1-based rank of `chosen` in the non-increasing order of distances
/// from `q` (rank 1 = true farthest). Ties count in `chosen`'s favour.
pub fn farthest_rank<M: Metric>(metric: &M, q: usize, chosen: usize) -> usize {
    let d = metric.dist(q, chosen);
    let better = (0..metric.len())
        .filter(|&v| v != q && v != chosen)
        .filter(|&v| metric.dist(q, v) > d)
        .count();
    better + 1
}

/// The 1-based rank of `chosen` in the non-decreasing order of distances
/// from `q` (rank 1 = true nearest).
pub fn nearest_rank<M: Metric>(metric: &M, q: usize, chosen: usize) -> usize {
    let d = metric.dist(q, chosen);
    let better = (0..metric.len())
        .filter(|&v| v != q && v != chosen)
        .filter(|&v| metric.dist(q, v) < d)
        .count();
    better + 1
}

/// Maximum pairwise distance over all pairs (the metric's diameter).
pub fn diameter<M: Metric>(metric: &M) -> f64 {
    let n = metric.len();
    let mut best = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            best = best.max(metric.dist(i, j));
        }
    }
    best
}

/// The k-center objective of an assignment: the maximum true distance from
/// any point to the center it was assigned to.
///
/// `assignment[v]` is an index into `centers`.
///
/// # Panics
/// Panics if `assignment.len() != metric.len()` or an assignment is out of
/// range.
pub fn kcenter_objective<M: Metric>(metric: &M, centers: &[usize], assignment: &[usize]) -> f64 {
    assert_eq!(
        assignment.len(),
        metric.len(),
        "assignment covers all points"
    );
    assignment
        .iter()
        .enumerate()
        .map(|(v, &c)| metric.dist(v, centers[c]))
        .fold(0.0f64, f64::max)
}

/// The k-center objective when every point goes to its *closest* center
/// (the best achievable assignment for a fixed center set).
pub fn kcenter_objective_best_assignment<M: Metric>(metric: &M, centers: &[usize]) -> f64 {
    assert!(!centers.is_empty());
    (0..metric.len())
        .map(|v| {
            centers
                .iter()
                .map(|&c| metric.dist(v, c))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0f64, f64::max)
}

/// Equal-width bucket edges over `[0, max]` for distance bucketisation, as
/// used by the Figure 4 user-study harness.
#[derive(Debug, Clone)]
pub struct Buckets {
    edges: Vec<f64>,
}

impl Buckets {
    /// Builds `count` equal-width buckets covering `[0, max]`.
    ///
    /// # Panics
    /// Panics if `count == 0` or `max` is not positive/finite.
    pub fn equal_width(max: f64, count: usize) -> Self {
        assert!(count > 0, "need at least one bucket");
        assert!(max.is_finite() && max > 0.0, "max must be positive");
        let edges = (0..=count).map(|i| max * i as f64 / count as f64).collect();
        Self { edges }
    }

    /// Number of buckets.
    pub fn count(&self) -> usize {
        self.edges.len() - 1
    }

    /// The bucket index of a distance (clamped into range).
    pub fn index_of(&self, d: f64) -> usize {
        let count = self.count();
        if d <= 0.0 {
            return 0;
        }
        let max = self.edges[count];
        if d >= max {
            return count - 1;
        }
        // Equal-width: direct computation, clamped for fp safety.
        ((d / max * count as f64) as usize).min(count - 1)
    }

    /// `(lo, hi)` edges of bucket `b`.
    pub fn edges_of(&self, b: usize) -> (f64, f64) {
        (self.edges[b], self.edges[b + 1])
    }

    /// Midpoint of bucket `b`.
    pub fn mid_of(&self, b: usize) -> f64 {
        let (lo, hi) = self.edges_of(b);
        (lo + hi) / 2.0
    }
}

/// Histogram of all pairwise distances into `buckets`.
pub fn distance_histogram<M: Metric>(metric: &M, buckets: &Buckets) -> Vec<usize> {
    let mut hist = vec![0usize; buckets.count()];
    let n = metric.len();
    for i in 0..n {
        for j in (i + 1)..n {
            hist[buckets.index_of(metric.dist(i, j))] += 1;
        }
    }
    hist
}

/// A cheap skewness proxy: the ratio of the 99th to the 50th percentile of a
/// sample of pairwise distances. The paper attributes Samp's failure on
/// `cities` to a skewed distance distribution; the generators assert on this.
pub fn distance_skew_sample<M: Metric>(metric: &M, sample_pairs: usize, seed: u64) -> f64 {
    let n = metric.len();
    assert!(n >= 2);
    let mut ds: Vec<f64> = (0..sample_pairs)
        .map(|t| {
            let h = crate::hashing::mix(seed, &[t as u64]);
            let i = (h % n as u64) as usize;
            let j = ((h >> 32) % n as u64) as usize;
            if i == j {
                metric.dist(i, (j + 1) % n)
            } else {
                metric.dist(i, j)
            }
        })
        .collect();
    ds.sort_by(f64::total_cmp);
    let p50 = ds[ds.len() / 2].max(f64::MIN_POSITIVE);
    let p99 = ds[(ds.len() * 99) / 100];
    p99 / p50
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EuclideanMetric;

    fn line_metric() -> EuclideanMetric {
        // Points 0, 1, 2, 10 on a line.
        EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
    }

    #[test]
    fn farthest_and_nearest_are_exact() {
        let m = line_metric();
        assert_eq!(exact_farthest(&m, 0, 0..4), Some((3, 10.0)));
        assert_eq!(exact_nearest(&m, 0, 0..4), Some((1, 1.0)));
        assert_eq!(exact_nearest(&m, 3, 0..4), Some((2, 8.0)));
        assert_eq!(exact_farthest(&m, 0, std::iter::once(0)), None);
    }

    #[test]
    fn ranks_count_strictly_better_points() {
        let m = line_metric();
        assert_eq!(farthest_rank(&m, 0, 3), 1);
        assert_eq!(farthest_rank(&m, 0, 2), 2);
        assert_eq!(farthest_rank(&m, 0, 1), 3);
        assert_eq!(nearest_rank(&m, 0, 1), 1);
        assert_eq!(nearest_rank(&m, 0, 3), 3);
    }

    #[test]
    fn diameter_is_max_pair() {
        assert_eq!(diameter(&line_metric()), 10.0);
    }

    #[test]
    fn kcenter_objectives() {
        let m = line_metric();
        // Centers at points 0 and 3; natural assignment 0,0,0,1.
        let centers = [0, 3];
        let assignment = [0, 0, 0, 1];
        assert_eq!(kcenter_objective(&m, &centers, &assignment), 2.0);
        assert_eq!(kcenter_objective_best_assignment(&m, &centers), 2.0);
        // A bad assignment is scored as-is.
        let bad = [1, 0, 0, 1];
        assert_eq!(kcenter_objective(&m, &centers, &bad), 10.0);
    }

    #[test]
    fn buckets_partition_the_range() {
        let b = Buckets::equal_width(10.0, 5);
        assert_eq!(b.count(), 5);
        assert_eq!(b.index_of(-1.0), 0);
        assert_eq!(b.index_of(0.5), 0);
        assert_eq!(b.index_of(3.9), 1);
        assert_eq!(b.index_of(9.999), 4);
        assert_eq!(b.index_of(10.0), 4);
        assert_eq!(b.index_of(99.0), 4);
        assert_eq!(b.edges_of(1), (2.0, 4.0));
        assert_eq!(b.mid_of(0), 1.0);
    }

    #[test]
    fn histogram_counts_all_pairs() {
        let m = line_metric();
        let b = Buckets::equal_width(10.0, 2);
        let h = distance_histogram(&m, &b);
        assert_eq!(h.iter().sum::<usize>(), 6);
        // Pairs (0,1)=1, (0,2)=2, (1,2)=1 in bucket 0; (0,3)=10, (1,3)=9,
        // (2,3)=8 in bucket 1.
        assert_eq!(h, vec![3, 3]);
    }

    #[test]
    fn skew_is_larger_for_skewed_data() {
        let tight =
            EuclideanMetric::from_points(&(0..50).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let mut pts: Vec<Vec<f64>> = (0..49).map(|i| vec![(i % 7) as f64 * 0.01]).collect();
        pts.push(vec![1000.0]);
        let skewed = EuclideanMetric::from_points(&pts);
        let s_tight = distance_skew_sample(&tight, 2000, 1);
        let s_skewed = distance_skew_sample(&skewed, 2000, 1);
        assert!(s_skewed > s_tight * 10.0, "{s_skewed} vs {s_tight}");
    }
}
