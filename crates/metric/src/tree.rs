//! Category-hierarchy metrics (jittered ultrametrics).
//!
//! The paper derives ground-truth distances for `caltech` from the
//! Caltech-256 hierarchical categorization and for `amazon` from Amazon's
//! catalog hierarchy: two records are closer the deeper their lowest common
//! ancestor (LCA) sits in the category tree. We model this directly: every
//! record carries a root-to-leaf category path, and the distance between two
//! records is a per-level base distance (strictly decreasing with LCA depth)
//! plus a small deterministic per-pair jitter that breaks ties without
//! breaking the metric axioms.
//!
//! ## Why the jittered ultrametric is still a metric
//!
//! The base distance `b(i, j) = level_dist[lca_depth(i, j)]` is an
//! ultrametric (`b(x,z) <= max(b(x,y), b(y,z))` because
//! `lca(x,z) >= min(lca(x,y), lca(y,z))` in depth). The jitter is drawn from
//! `[eps/2, eps]`, so for any triangle
//! `d(x,z) = b(x,z) + j(x,z) <= max(b) + eps <= b(x,y) + b(y,z) + j(x,y) +
//! j(y,z) = d(x,y) + d(y,z)` — the *weak* triangle inequality always holds.
//! Requiring `eps` smaller than the smallest gap between consecutive level
//! distances additionally preserves the hierarchy semantics (deeper LCA ⇒
//! strictly smaller distance).

use crate::hashing;
use crate::Metric;

/// Incremental builder for [`TreeMetric`].
#[derive(Debug, Clone)]
pub struct TreeMetricBuilder {
    level_dist: Vec<f64>,
    jitter: f64,
    seed: u64,
    paths: Vec<u16>,
    offsets: Vec<u32>,
}

impl TreeMetricBuilder {
    /// Starts a builder with the per-LCA-depth base distances.
    ///
    /// `level_dist[d]` is the base distance between two records whose LCA has
    /// depth `d` (`d = 0` means they already differ at the root). The final
    /// entry is the intra-leaf-category distance.
    ///
    /// # Panics
    /// Panics unless the distances are finite, strictly decreasing and
    /// strictly positive.
    pub fn new(level_dist: Vec<f64>) -> Self {
        assert!(!level_dist.is_empty(), "need at least one level distance");
        assert!(
            level_dist.iter().all(|d| d.is_finite() && *d > 0.0),
            "level distances must be positive and finite"
        );
        assert!(
            level_dist.windows(2).all(|w| w[0] > w[1]),
            "level distances must be strictly decreasing with depth"
        );
        Self {
            level_dist,
            jitter: 0.0,
            seed: 0,
            paths: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Sets the per-pair jitter amplitude `eps` (absolute, added to the base).
    ///
    /// # Panics
    /// Panics if `eps` is negative or at least the smallest gap between
    /// consecutive level distances (which would scramble the hierarchy).
    pub fn jitter(mut self, eps: f64) -> Self {
        assert!(eps >= 0.0 && eps.is_finite());
        let min_gap = self
            .level_dist
            .windows(2)
            .map(|w| w[0] - w[1])
            .fold(f64::INFINITY, f64::min);
        assert!(
            eps < min_gap || self.level_dist.len() == 1,
            "jitter {eps} must stay below the smallest level gap {min_gap}"
        );
        self.jitter = eps;
        self
    }

    /// Seeds the deterministic jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a record with the given root-to-leaf category path and returns
    /// its index.
    ///
    /// # Panics
    /// Panics if the path is longer than the configured level distances
    /// (there would be no distance for its deepest LCA).
    pub fn record(&mut self, path: &[u16]) -> usize {
        assert!(
            path.len() < self.level_dist.len(),
            "path depth {} needs level_dist of length > {}",
            path.len(),
            path.len()
        );
        self.paths.extend_from_slice(path);
        self.offsets.push(self.paths.len() as u32);
        self.offsets.len() - 2
    }

    /// Finalises the metric.
    pub fn build(self) -> TreeMetric {
        TreeMetric {
            level_dist: self.level_dist,
            jitter: self.jitter,
            seed: self.seed,
            paths: self.paths,
            offsets: self.offsets,
        }
    }
}

/// A jittered ultrametric over leaves of a category hierarchy.
#[derive(Debug, Clone)]
pub struct TreeMetric {
    level_dist: Vec<f64>,
    jitter: f64,
    seed: u64,
    paths: Vec<u16>,
    offsets: Vec<u32>,
}

impl TreeMetric {
    /// The category path of record `i`.
    pub fn path(&self, i: usize) -> &[u16] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.paths[lo..hi]
    }

    /// Depth of the lowest common ancestor of records `i` and `j`
    /// (the length of their common path prefix).
    pub fn lca_depth(&self, i: usize, j: usize) -> usize {
        self.path(i)
            .iter()
            .zip(self.path(j))
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The top-level category (first path component) of record `i`.
    pub fn root_category(&self, i: usize) -> u16 {
        self.path(i)[0]
    }
}

impl Metric for TreeMetric {
    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let depth = self.lca_depth(i, j).min(self.level_dist.len() - 1);
        let base = self.level_dist[depth];
        if self.jitter == 0.0 {
            return base;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        // Jitter in [eps/2, eps] keeps the weak triangle inequality (see
        // module docs) and never reorders levels.
        let u = hashing::unit_from(self.seed, &[a as u64, b as u64]);
        base + self.jitter * (0.5 + 0.5 * u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level_tree() -> TreeMetric {
        // 2 top categories x 2 subcategories x 2 records.
        let mut b = TreeMetricBuilder::new(vec![10.0, 4.0, 1.0])
            .jitter(0.5)
            .seed(7);
        for top in 0..2u16 {
            for sub in 0..2u16 {
                for _ in 0..2 {
                    b.record(&[top, sub]);
                }
            }
        }
        b.build()
    }

    #[test]
    fn depth_ordering_is_respected() {
        let m = two_level_tree();
        // Same leaf category (records 0,1) < same top category (0,2) <
        // different top category (0,4).
        assert!(m.dist(0, 1) < m.dist(0, 2));
        assert!(m.dist(0, 2) < m.dist(0, 4));
        assert_eq!(m.lca_depth(0, 1), 2);
        assert_eq!(m.lca_depth(0, 2), 1);
        assert_eq!(m.lca_depth(0, 4), 0);
    }

    #[test]
    fn jitter_stays_in_band_and_is_symmetric() {
        let m = two_level_tree();
        for i in 0..m.len() {
            for j in 0..m.len() {
                assert_eq!(m.dist(i, j), m.dist(j, i));
                if i != j {
                    let base = m.level_dist[m.lca_depth(i, j).min(2)];
                    let d = m.dist(i, j);
                    assert!(
                        d >= base + 0.25 && d <= base + 0.5,
                        "d = {d}, base = {base}"
                    );
                }
            }
        }
    }

    #[test]
    fn root_category_reads_first_component() {
        let m = two_level_tree();
        assert_eq!(m.root_category(0), 0);
        assert_eq!(m.root_category(7), 1);
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn builder_rejects_non_decreasing_levels() {
        let _ = TreeMetricBuilder::new(vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "smallest level gap")]
    fn builder_rejects_oversized_jitter() {
        let _ = TreeMetricBuilder::new(vec![2.0, 1.0]).jitter(1.5);
    }

    #[test]
    #[should_panic(expected = "path depth")]
    fn builder_rejects_too_deep_paths() {
        let mut b = TreeMetricBuilder::new(vec![2.0, 1.0]);
        b.record(&[0, 1]);
    }

    // Seeded-loop replacement for the original proptest property (the
    // offline build has no proptest; 64 random trees, fixed seed).
    #[test]
    fn triangle_inequality_holds() {
        let mut gen_state = 0x7EE0_0001u64;
        let mut next = move || {
            gen_state = gen_state.wrapping_add(1);
            crate::hashing::splitmix64(gen_state)
        };
        for _ in 0..64 {
            let records = 3 + (next() % 21) as usize;
            let seed = next();
            let mut b = TreeMetricBuilder::new(vec![9.0, 3.0, 1.0])
                .jitter(0.9)
                .seed(seed);
            for _ in 0..records {
                b.record(&[(next() % 3) as u16, (next() % 3) as u16]);
            }
            let m = b.build();
            let n = m.len();
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        assert!(
                            m.dist(x, z) <= m.dist(x, y) + m.dist(y, z) + 1e-12,
                            "triangle violated at ({x},{y},{z}), seed {seed}"
                        );
                    }
                }
            }
        }
    }
}
