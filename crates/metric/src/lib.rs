//! # nco-metric — hidden metric-space substrate
//!
//! The algorithms of the VLDB'21 paper *How to Design Robust Algorithms using
//! Noisy Comparison Oracle* never see coordinates or distances: all access to
//! the ground truth goes through (noisy) comparison oracles. This crate holds
//! the ground truth itself — the metric spaces that oracles compare over and
//! that evaluators measure against.
//!
//! The central abstraction is the [`Metric`] trait: a finite point set
//! `0..len()` with a pairwise distance `dist(i, j)`. Three implementations
//! cover all of the paper's datasets:
//!
//! * [`EuclideanMetric`] — dense d-dimensional points (cities, monuments,
//!   dblp-embedding analogues);
//! * [`TreeMetric`] — leaves of a category hierarchy with a level-based
//!   (jittered ultrametric) distance, matching how the paper derives ground
//!   truth for `caltech` (Caltech-256 category tree) and `amazon` (catalog
//!   hierarchy);
//! * [`MatrixMetric`] — an explicit distance matrix for tiny inputs such as
//!   the six-image example of Section 1 (Example 1.1).
//!
//! [`stats`] provides exact (ground-truth) maximum / farthest / nearest
//! helpers and distance histograms used by evaluation and by the Figure 4
//! user-study harness. [`hashing`] hosts the deterministic splitmix64 mixer
//! that both the jittered metrics and the persistent-noise oracles rely on.

pub mod cache;
pub mod euclidean;
pub mod hashing;
pub mod matrix;
pub mod stats;
pub mod tree;

pub use cache::{CachedMetric, DistCache};
pub use euclidean::EuclideanMetric;
pub use matrix::{
    materialize, materialize_if_small, MaterializedMetric, MatrixMetric, SquareMetric,
    CACHE_TAKEOVER_MAX_POINTS, DEFAULT_MATERIALIZE_CUTOFF,
};
pub use tree::{TreeMetric, TreeMetricBuilder};

/// A finite metric space over points indexed `0..len()`.
///
/// Implementations must guarantee the metric axioms for distinct indices:
/// `dist(i, i) == 0`, symmetry `dist(i, j) == dist(j, i)`, non-negativity,
/// and the triangle inequality. The property tests in this crate check them
/// for every shipped implementation.
pub trait Metric {
    /// Number of points in the space.
    fn len(&self) -> usize;

    /// Ground-truth distance between points `i` and `j`.
    ///
    /// # Panics
    /// May panic if `i` or `j` is out of bounds.
    fn dist(&self, i: usize, j: usize) -> f64;

    /// Returns `true` if the space contains no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<M: Metric + ?Sized> Metric for &M {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        (**self).dist(i, j)
    }
}

impl<M: Metric + ?Sized> Metric for Box<M> {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        (**self).dist(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_and_reference_forwarding() {
        let m = MatrixMetric::from_fn(3, |i, j| (i as f64 - j as f64).abs());
        let by_ref: &dyn Metric = &m;
        assert_eq!(by_ref.len(), 3);
        assert_eq!(by_ref.dist(0, 2), 2.0);
        let boxed: Box<dyn Metric> = Box::new(m);
        assert_eq!(boxed.len(), 3);
        assert_eq!(boxed.dist(2, 0), 2.0);
        assert!(!boxed.is_empty());
    }
}
