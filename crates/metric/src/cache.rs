//! Distance-level caching — the exact memoisation layer *below* the noise.
//!
//! PR 2's `MemoOracle` caches whole query answers; that is the right layer
//! when each query is a real crowd worker, but for simulated oracles the
//! expensive part of a quadruplet query is the two distance evaluations,
//! and one cached distance `d(i, j)` serves **every** quadruplet that
//! touches the pair `(i, j)` — across query directions, across searches,
//! and across algorithms sharing the metric. [`DistCache`] memoises at
//! that level: a condensed triangular table with one slot per unordered
//! pair, filled lazily with the wrapped metric's own `dist` output.
//!
//! Exactness is structural, not statistical: the cached value is the very
//! `f64` the lazy metric produces (distances are pure functions of the
//! pair), so persistent-noise oracles built over a [`CachedMetric`] answer
//! bit-identically to the same oracles over the raw metric — the property
//! `tests/perf_equivalence.rs` pins end to end.
//!
//! Slots are `AtomicU64` distance bit patterns (sentinel [`u64::MAX`], a
//! NaN no validated metric can produce), so a cache shared through `&self`
//! across the `parallel` feature's worker threads needs no locks: racing
//! writers store identical bits, and relaxed ordering suffices because
//! the value is determined by the key alone.

use crate::Metric;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bit pattern marking a not-yet-computed slot. A real distance is finite
/// and non-negative (every metric in this crate validates that), so its
/// bits can never collide with this all-ones NaN.
const UNSET: u64 = u64::MAX;

/// A lock-free condensed-triangle memo table for pairwise distances.
pub struct DistCache {
    n: usize,
    slots: Vec<AtomicU64>,
    /// `row_off[i] + j` = condensed index of pair `i < j`; one load
    /// replaces the two multiplies of the closed-form triangular index on
    /// the per-query hot path.
    row_off: Vec<usize>,
}

impl DistCache {
    /// An empty cache for `n` points (`n (n - 1) / 2` slots, 8 bytes each
    /// — the same footprint as a fully materialised condensed matrix, paid
    /// up front; what stays lazy is the *evaluation*).
    pub fn new(n: usize) -> Self {
        let pairs = n * n.saturating_sub(1) / 2;
        let mut slots = Vec::with_capacity(pairs);
        slots.resize_with(pairs, || AtomicU64::new(UNSET));
        let row_off = (0..n)
            .map(|i| (i * n - i * (i + 1) / 2).wrapping_sub(i + 1))
            .collect();
        Self { n, slots, row_off }
    }

    /// Number of points the cache covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Condensed index of the unordered pair `i < j`.
    #[inline]
    fn tri(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        self.row_off[i].wrapping_add(j)
    }

    /// The cached distance for `(i, j)`, computing and storing it via
    /// `compute` on first touch. `i != j` required (callers short-circuit
    /// the diagonal to `0.0`).
    ///
    /// # Panics
    /// Panics if `i == j` or either index is out of bounds.
    #[inline]
    pub fn get_or_compute(&self, i: usize, j: usize, compute: impl FnOnce() -> f64) -> f64 {
        assert!(i != j, "diagonal distances are identically zero");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let slot = &self.slots[self.tri(a, b)];
        let bits = slot.load(Ordering::Relaxed);
        if bits != UNSET {
            return f64::from_bits(bits);
        }
        let d = compute();
        debug_assert!(
            d.is_finite() && d >= 0.0,
            "metric produced an uncacheable distance {d}"
        );
        slot.store(d.to_bits(), Ordering::Relaxed);
        d
    }

    /// How many pairs have been evaluated so far (O(n²) scan; statistics
    /// and tests only).
    pub fn filled(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != UNSET)
            .count()
    }
}

impl Clone for DistCache {
    fn clone(&self) -> Self {
        let slots = self
            .slots
            .iter()
            .map(|s| AtomicU64::new(s.load(Ordering::Relaxed)))
            .collect();
        Self {
            n: self.n,
            slots,
            row_off: self.row_off.clone(),
        }
    }
}

impl std::fmt::Debug for DistCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistCache")
            .field("n", &self.n)
            .field("slots", &self.slots.len())
            .finish()
    }
}

/// A metric decorated with a [`DistCache`]: every distinct pair is
/// evaluated by the wrapped metric exactly once, then answered from the
/// table — bit-identical by construction.
#[derive(Debug, Clone)]
pub struct CachedMetric<M> {
    inner: M,
    cache: DistCache,
}

impl<M: Metric> CachedMetric<M> {
    /// Wraps `metric` with an empty distance cache.
    pub fn new(metric: M) -> Self {
        let cache = DistCache::new(metric.len());
        Self {
            inner: metric,
            cache,
        }
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The cache itself (for fill statistics).
    pub fn cache(&self) -> &DistCache {
        &self.cache
    }

    /// Unwraps the metric, dropping the cache.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: Metric> Metric for CachedMetric<M> {
    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.cache.get_or_compute(i, j, || self.inner.dist(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EuclideanMetric;

    fn metric() -> EuclideanMetric {
        EuclideanMetric::from_points(
            &(0..20)
                .map(|i| vec![(i * 13 % 17) as f64 * 0.7, i as f64 * 1.3])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn cached_distances_are_bit_identical_and_fill_once() {
        let raw = metric();
        let cached = CachedMetric::new(raw.clone());
        assert_eq!(cached.len(), raw.len());
        for round in 0..2 {
            for i in 0..raw.len() {
                for j in 0..raw.len() {
                    assert_eq!(
                        cached.dist(i, j).to_bits(),
                        raw.dist(i, j).to_bits(),
                        "round {round} ({i},{j})"
                    );
                }
            }
        }
        assert_eq!(cached.cache().filled(), 20 * 19 / 2);
    }

    #[test]
    fn fill_tracks_touched_pairs_only() {
        let cached = CachedMetric::new(metric());
        assert_eq!(cached.cache().filled(), 0);
        let _ = cached.dist(3, 7);
        let _ = cached.dist(7, 3); // same unordered pair: no new slot
        let _ = cached.dist(0, 0); // diagonal: no slot at all
        assert_eq!(cached.cache().filled(), 1);
    }

    #[test]
    fn concurrent_fill_is_consistent() {
        let raw = metric();
        let cached = CachedMetric::new(raw.clone());
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let cached = &cached;
                let raw = &raw;
                scope.spawn(move || {
                    for k in 0..100 {
                        let i = (t * 5 + k) % 20;
                        let j = (k * 7 + 1) % 20;
                        if i != j {
                            assert_eq!(cached.dist(i, j).to_bits(), raw.dist(i, j).to_bits());
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn clone_carries_the_filled_slots() {
        let cached = CachedMetric::new(metric());
        let _ = cached.dist(1, 2);
        let copy = cached.clone();
        assert_eq!(copy.cache().filled(), 1);
        assert_eq!(copy.dist(1, 2).to_bits(), cached.dist(1, 2).to_bits());
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn cache_rejects_diagonal_lookups() {
        let cache = DistCache::new(4);
        let _ = cache.get_or_compute(2, 2, || 0.0);
    }
}
