//! Top-k selection and full ranking under noisy comparisons — the
//! extension problems of the paper's related-work discussion (§1.2:
//! top-k elements, sorting under persistent errors).
//!
//! * [`top_k_adv`] — iterated Max-Adv extraction: k rounds of Theorem 3.6,
//!   each `(1+mu)^3`-approximate with respect to the remaining items, at
//!   `O(k n log^2(1/delta))` queries.
//! * [`top_k_prob`] — the probabilistic twin via Count-Max-Prob.
//! * [`rank_by_counts`] — a full ranking by Count scores. Under persistent
//!   probabilistic noise, the Hoeffding argument of Lemma 8.9 bounds each
//!   item's dislocation by `O(sqrt(n log(n/delta)))` w.h.p. — the same
//!   guarantee regime as the dislocation-sorting literature the paper
//!   cites (Geissmann et al.).

use super::adversarial::{max_adv_with_progress, AdvParams};
use super::count_max::count_scores;
use super::probabilistic::{max_prob_with_progress, ProbParams};
use crate::comparator::Comparator;
use rand::Rng;
use std::hash::Hash;

/// Top-k by iterated Max-Adv extraction, best first.
///
/// Each round removes the winner and re-runs Algorithm 4 on the remainder,
/// so round `i`'s winner is a `(1+mu)^3` approximation of the true `i`-th
/// maximum of the *remaining* set w.p. `1 - delta` each.
///
/// # Panics
/// Panics if `k > items.len()`.
pub fn top_k_adv<I, C, R>(
    items: &[I],
    k: usize,
    params: &AdvParams,
    cmp: &mut C,
    rng: &mut R,
) -> Vec<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    top_k_adv_with_progress(items, k, params, cmp, rng, &mut 0)
}

/// [`top_k_adv`] with a clean-progress watermark: `clean` is advanced to
/// the number of leading extraction rounds that completed while the
/// comparator was still returning real answers (`!cmp.doomed()`). Doom
/// latches monotonically at query boundaries, so `out[..clean]` is always
/// a prefix chosen using only real answers; the query and rng sequences
/// are exactly those of [`top_k_adv`].
///
/// # Panics
/// Panics if `k > items.len()`.
pub fn top_k_adv_with_progress<I, C, R>(
    items: &[I],
    k: usize,
    params: &AdvParams,
    cmp: &mut C,
    rng: &mut R,
    clean: &mut usize,
) -> Vec<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    assert!(k <= items.len(), "k = {k} exceeds {} items", items.len());
    let mut remaining: Vec<I> = items.to_vec();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let best = max_adv_with_progress(&remaining, params, cmp, rng, &mut None)
            .expect("remaining non-empty");
        swap_remove_item(&mut remaining, best);
        out.push(best);
        if !cmp.doomed() {
            *clean = out.len();
        }
    }
    out
}

/// Removes one occurrence of `item` in `O(n)` lookups and `O(1)` writes
/// (swap-remove pruning — the remaining order is already randomised by
/// the search's own shuffles, so preserving it buys nothing).
fn swap_remove_item<I: Copy + Eq>(items: &mut Vec<I>, item: I) {
    let pos = items
        .iter()
        .position(|&x| x == item)
        .expect("winner must come from the remaining set");
    items.swap_remove(pos);
}

/// Top-k under persistent probabilistic noise (iterated Count-Max-Prob).
///
/// # Panics
/// Panics if `k > items.len()`.
pub fn top_k_prob<I, C, R>(
    items: &[I],
    k: usize,
    params: &ProbParams,
    cmp: &mut C,
    rng: &mut R,
) -> Vec<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    top_k_prob_with_progress(items, k, params, cmp, rng, &mut 0)
}

/// [`top_k_prob`] with a clean-progress watermark; see
/// [`top_k_adv_with_progress`] for the `clean` contract.
///
/// # Panics
/// Panics if `k > items.len()`.
pub fn top_k_prob_with_progress<I, C, R>(
    items: &[I],
    k: usize,
    params: &ProbParams,
    cmp: &mut C,
    rng: &mut R,
    clean: &mut usize,
) -> Vec<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    assert!(k <= items.len(), "k = {k} exceeds {} items", items.len());
    let mut remaining: Vec<I> = items.to_vec();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let best = max_prob_with_progress(&remaining, params, cmp, rng, &mut None)
            .expect("remaining non-empty");
        swap_remove_item(&mut remaining, best);
        out.push(best);
        if !cmp.doomed() {
            *clean = out.len();
        }
    }
    out
}

/// Full ranking by Count scores, largest first (`O(n^2)` queries).
///
/// The returned order is the Count-score order: under persistent
/// probabilistic noise every item lands within `O(sqrt(n log(n/delta)))`
/// of its true position w.h.p. (the concentration argument of Lemma 8.9
/// applied to every rank), and under adversarial noise two items can only
/// be misordered if they are within `(1+mu)^2` of each other (the
/// Lemma 3.1 argument).
pub fn rank_by_counts<I, C>(items: &[I], cmp: &mut C) -> Vec<I>
where
    I: Copy,
    C: Comparator<I>,
{
    let scores = count_scores(items, cmp);
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Highest score first; index-stable on ties.
    order.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
    order.into_iter().map(|i| items[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::{ExactKeyCmp, ValueCmp};
    use nco_oracle::adversarial::{AdversarialValueOracle, InvertAdversary};
    use nco_oracle::probabilistic::ProbValueOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exact_top_k_is_the_true_top_k_in_order() {
        let keys: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let items: Vec<usize> = (0..100).collect();
        let got = top_k_adv(
            &items,
            5,
            &AdvParams::experimental(),
            &mut ExactKeyCmp::new(&keys),
            &mut rng(1),
        );
        let mut expected: Vec<usize> = (0..100).collect();
        expected.sort_by(|&a, &b| keys[b].total_cmp(&keys[a]));
        assert_eq!(got, expected[..5].to_vec());
    }

    #[test]
    fn adversarial_top_k_respects_per_round_bound() {
        let mu = 0.5f64;
        let values: Vec<f64> = (0..200).map(|i| 1.0 + (i as f64) * 0.05).collect();
        let items: Vec<usize> = (0..values.len()).collect();
        let mut oracle = AdversarialValueOracle::new(values.clone(), mu, InvertAdversary);
        let got = top_k_adv(
            &items,
            5,
            &AdvParams::with_confidence(0.05),
            &mut ValueCmp::new(&mut oracle),
            &mut rng(2),
        );
        assert_eq!(got.len(), 5);
        // Every extracted element is within (1+mu)^3 of the best element
        // still available at its round (checked against the true order).
        let mut remaining: Vec<usize> = items.clone();
        let mut ok = 0;
        for &g in &got {
            let best = remaining.iter().map(|&v| values[v]).fold(0.0, f64::max);
            if values[g] * (1.0 + mu).powi(3) >= best {
                ok += 1;
            }
            remaining.retain(|&x| x != g);
        }
        assert!(ok >= 4, "only {ok}/5 rounds within bound");
    }

    #[test]
    fn prob_top_k_has_small_rank_inflation() {
        let n = 400usize;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let items: Vec<usize> = (0..n).collect();
        let mut oracle = ProbValueOracle::new(values.clone(), 0.15, 11);
        let got = top_k_prob(
            &items,
            5,
            &ProbParams::experimental(),
            &mut ValueCmp::new(&mut oracle),
            &mut rng(3),
        );
        // All five winners rank within the top 10% of the true order.
        for &g in &got {
            let rank = n - g;
            assert!(rank <= n / 10, "element of rank {rank} in top-5");
        }
        // No duplicates.
        let mut d = got.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn exact_ranking_is_sorted_order() {
        let keys: Vec<f64> = vec![3.0, 9.0, 1.0, 7.0, 5.0];
        let items: Vec<usize> = (0..5).collect();
        let got = rank_by_counts(&items, &mut ExactKeyCmp::new(&keys));
        assert_eq!(got, vec![1, 3, 4, 0, 2]);
    }

    #[test]
    fn noisy_ranking_has_bounded_dislocation() {
        let n = 300usize;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let items: Vec<usize> = (0..n).collect();
        let mut worst = 0usize;
        for seed in 0..5u64 {
            let mut oracle = ProbValueOracle::new(values.clone(), 0.2, 100 + seed);
            let got = rank_by_counts(&items, &mut ValueCmp::new(&mut oracle));
            for (pos, &item) in got.iter().enumerate() {
                let true_pos = n - 1 - item; // descending order
                worst = worst.max(pos.abs_diff(true_pos));
            }
        }
        // O(sqrt(n log n)) ≈ sqrt(300 * 8) * c; allow a generous constant.
        let bound = (4.0 * (n as f64 * (n as f64).ln()).sqrt()) as usize;
        assert!(worst <= bound, "dislocation {worst} > bound {bound}");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn top_k_rejects_oversized_k() {
        let keys = [1.0];
        let _ = top_k_adv(
            &[0usize],
            2,
            &AdvParams::experimental(),
            &mut ExactKeyCmp::new(&keys),
            &mut rng(0),
        );
    }
}
