//! Robust maximum (and minimum) finding — Section 3 of the paper.
//!
//! * [`count_max`] — Algorithm 1: score every item by how many others it
//!   beats; `(1+mu)^2`-approximate under adversarial noise at O(n^2)
//!   queries (Lemma 3.1).
//! * [`tournament`] — Algorithm 2: a λ-ary tournament tree whose internal
//!   nodes run Count-Max; `(1+mu)^{2 log_λ n}` at O(nλ) queries (Lemma 3.3).
//! * [`tournament_partition`] — Algorithm 3: split into `l` random parts and
//!   return each part's binary-tournament winner.
//! * [`max_adv`] — Algorithm 4 (Max-Adv): a uniform sample (dense-confusion
//!   case) plus `t` rounds of Tournament-Partition (sparse-confusion case),
//!   combined by a final Count-Max; `(1+mu)^3` w.p. `1 - delta` at
//!   `O(n log^2(1/delta))` queries (Theorem 3.6).
//! * [`max_prob`] — Algorithm 12 (Count-Max-Prob): iterative sample-score-
//!   and-prune for the persistent probabilistic model; returns an item of
//!   rank `O(log^2(n/delta))` w.p. `1 - delta` at `O(n log^2(n/delta))`
//!   queries (Theorem 3.7).
//!
//! Minimum variants ([`min_adv`], [`min_prob`], [`count_min`]) reverse the
//! comparator ([`crate::comparator::Rev`]), exactly the paper's "count Yes
//! instead of No" remark in Section 3.2. [`topk`] extends the engines to
//! top-k selection and full Count-score ranking (the related problems of
//! the paper's §1.2).
//!
//! Two persistent-scaffold planes amortise Max-Adv's scaffolding across
//! *repeated* searches: [`MinContest`] across the merge-loop closest-pair
//! contests of one evolving candidate set (PR 5), and [`RowScaffold`]
//! across the many row-anchored nearest-neighbour searches of a hierarchy
//! run (PR 10) — see the [`scaffold`](self::RowScaffold) docs for why
//! persistent noise makes the reuse decision-identical.

mod adversarial;
mod count_max;
mod probabilistic;
mod scaffold;
pub mod topk;
mod tournament;

pub use adversarial::{
    max_adv, max_adv_with_progress, min_adv, min_adv_incremental, AdvParams, ContestStats,
    MinContest,
};
pub use count_max::{count_max, count_min, count_scores, count_scores_into, duel};
#[cfg(feature = "parallel")]
pub use count_max::{count_max_par, count_scores_par};
#[cfg(feature = "parallel")]
pub use probabilistic::max_prob_par;
pub use probabilistic::{max_prob, max_prob_with_progress, min_prob, ProbParams};
#[cfg(feature = "parallel")]
pub(crate) use scaffold::{sweep_row, RowState};
pub use scaffold::{RowScaffold, ScaffoldStats, SweepBuffers};
pub use topk::{
    rank_by_counts, top_k_adv, top_k_adv_with_progress, top_k_prob, top_k_prob_with_progress,
};
#[cfg(feature = "parallel")]
pub use tournament::tournament_par;
pub use tournament::{tournament, tournament_partition};

/// Deduplicates items preserving first-occurrence order (used by Max-Adv on
/// its multiset of sampled + partition-winner items).
pub(crate) fn dedup_keep_order<I: Copy + Eq + std::hash::Hash>(items: &[I]) -> Vec<I> {
    let mut seen = std::collections::HashSet::with_capacity(items.len());
    let mut out = Vec::with_capacity(items.len());
    for &it in items {
        if seen.insert(it) {
            out.push(it);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        assert_eq!(dedup_keep_order(&[3, 1, 3, 2, 1, 9]), vec![3, 1, 2, 9]);
        assert_eq!(dedup_keep_order::<usize>(&[]), Vec::<usize>::new());
    }
}
