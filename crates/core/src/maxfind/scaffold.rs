//! The shared-scaffold search plane: one Max-Adv scaffold amortised
//! across **many related minimum searches** (PR 10).
//!
//! The hierarchy engine runs `n` initial nearest-neighbour searches, one
//! per row, and then thousands of pointer-repair searches as merges
//! invalidate pointers. [`max_adv`](super::max_adv) pays its full
//! sampling/partition scaffolding per search; [`MinContest`](super::MinContest)
//! showed (PR 5) that the scaffolding can persist *across* sweeps of one
//! evolving search. [`RowScaffold`] generalises that to a whole family of
//! row-anchored searches: **one** set of random bucket deals and **one**
//! persistent topped-up sample are shared by every row, while tournament
//! winners and duel outcomes are cached per row — so a repaired row
//! re-contests only against the buckets that changed since its last
//! sweep, and a freshly merged row inherits every cached outcome whose
//! canonical query is provably unchanged.
//!
//! ## Why scaffold reuse is decision-identical
//!
//! Every shipped noise model is *persistent* (Section 2.2 of the paper):
//! an answer is a pure function of the canonical query, so re-asking
//! returns the same bit. A cached duel outcome for candidates `(u, v)` of
//! row `c` stands for the oracle bit `le(rep(c, u), rep(c, v))`, and the
//! representative pair `rep(c, x)` never changes while both clusters
//! live — merges only rewrite reps that involve the merged clusters. A
//! sweep that answers some duels from the cache therefore tallies exactly
//! the bits a full re-ask would, and picks the identical winner with the
//! identical tie-break. The from-scratch reference (`use_cache = false`)
//! replays every bucket and re-asks every duel over the *same* scaffold,
//! which is how `tests/hier_scaffold_equivalence.rs` pins the contract.

use super::adversarial::AdvParams;
use crate::comparator::Comparator;
use rand::seq::SliceRandom;
use rand::Rng;

/// Dead/absent marker in dense `u32` tables.
const ABSENT: u32 = u32::MAX;
/// Bracket-bye marker: the slot holds no live contestant.
const BYE: u32 = u32::MAX;
/// Bracket placeholder for a duel whose answer is still in flight.
const PENDING: u32 = u32::MAX - 1;

/// Cumulative cost counters of a [`RowScaffold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScaffoldStats {
    /// Row sweeps served by the plane (initial rows, union rows, repairs).
    pub row_sweeps: u64,
    /// Duels answered from a row's outcome cache instead of the oracle.
    pub scaffold_hits: u64,
    /// Repair sweeps (a previously synced row re-swept) that re-contested
    /// only the dirty buckets against the cached winner structure.
    pub repair_contests: u64,
    /// Repair sweeps that fell back to a full row sweep because a
    /// majority of buckets had changed since the row's last sync.
    pub repair_fallbacks: u64,
    /// Bracket duels asked through the oracle.
    pub bracket_duels: u64,
    /// Pool (Count-Min) duels asked through the oracle.
    pub pool_duels: u64,
}

impl ScaffoldStats {
    /// Folds another counter set into this one (used to merge per-worker
    /// tallies after a fanned initial pass).
    pub fn absorb(&mut self, other: &ScaffoldStats) {
        self.row_sweeps += other.row_sweeps;
        self.scaffold_hits += other.scaffold_hits;
        self.repair_contests += other.repair_contests;
        self.repair_fallbacks += other.repair_fallbacks;
        self.bracket_duels += other.bracket_duels;
        self.pool_duels += other.pool_duels;
    }
}

/// The shared, read-only-during-a-sweep part of the scaffold: the random
/// bucket deals (one per Tournament-Partition round), the persistent
/// sample, the liveness table and the change epochs.
///
/// Bucket member lists are **append-only**: dead candidates stay in place
/// as tombstones (skipped as byes when a bracket replays), so survivor
/// pairings — and therefore cached duels — stay stable across membership
/// churn instead of shifting one slot left after every death.
#[derive(Debug)]
pub(crate) struct ScaffoldDeal {
    rounds: usize,
    buckets_per_round: usize,
    sample_target: usize,
    id_bound: usize,
    /// Monotone structure-change clock; bumped once per merge.
    epoch: u64,
    /// Liveness by candidate id.
    alive: Vec<bool>,
    /// `bucket_of[r * id_bound + id]` = flat bucket index, or [`ABSENT`].
    bucket_of: Vec<u32>,
    /// `buckets[r * l + b]` = append-only member list (tombstoned).
    buckets: Vec<Vec<u32>>,
    /// Epoch of the last membership change per flat bucket index.
    bucket_epoch: Vec<u64>,
    /// Persistent sample: a multiset of live ids, topped back up after
    /// removals (insertion order, order-preserving removals).
    sample: Vec<u32>,
}

impl ScaffoldDeal {
    pub(crate) fn total_buckets(&self) -> usize {
        self.rounds * self.buckets_per_round
    }
}

/// Per-row cached state: the row's bucket-tournament winners and its duel
/// outcome cache, both valid for as long as the contestants live.
#[derive(Debug)]
pub(crate) struct RowState {
    /// Epoch at the row's last completed sweep (0 = never swept).
    synced_epoch: u64,
    /// Cached tournament winner per flat bucket index, or [`ABSENT`].
    winners: Vec<u32>,
    /// `(lo << 32 | hi)` (candidate ids, `lo < hi`) → cached oracle bit
    /// `le(rep(row, lo), rep(row, hi))` (`true` = `lo` at least as close).
    outcomes: std::collections::HashMap<u64, bool, nco_metric::hashing::MixBuildHasher>,
}

impl RowState {
    pub(crate) fn new(total_buckets: usize) -> Self {
        Self {
            synced_epoch: 0,
            winners: vec![ABSENT; total_buckets],
            outcomes: std::collections::HashMap::with_hasher(Default::default()),
        }
    }
}

fn pack(lo: u32, hi: u32) -> u64 {
    debug_assert!(lo < hi);
    (u64::from(lo) << 32) | u64::from(hi)
}

/// Reusable working memory for a [`RowScaffold`]'s sweeps — callers own
/// it (each worker of a fanned initial pass owns its own) so repeated
/// sweeps allocate nothing.
#[derive(Debug)]
pub struct SweepBuffers {
    /// Flat arena of bracket level lists ([`BYE`]/[`PENDING`] sentinels).
    levels: Vec<u32>,
    /// `(flat bucket index, arena start, current length)` per replay.
    ranges: Vec<(u32, u32, u32)>,
    /// Canonically oriented duels awaiting the oracle.
    pairs: Vec<(usize, usize)>,
    /// Arena positions to fill with the answered duels' winners.
    holes: Vec<u32>,
    answers: Vec<bool>,
    /// Final Count-Min contestants (bucket winners ∪ sample, deduped).
    pool: Vec<u32>,
    score: Vec<u32>,
    /// `slot_of[id]` = pool slot during a sweep, [`ABSENT`] otherwise.
    slot_of: Vec<u32>,
}

impl SweepBuffers {
    /// Buffers for sweeps over candidate ids below `id_bound` (the bound
    /// the owning [`RowScaffold`] was built with).
    pub fn new(id_bound: usize) -> Self {
        Self {
            levels: Vec::new(),
            ranges: Vec::new(),
            pairs: Vec::new(),
            holes: Vec::new(),
            answers: Vec::new(),
            pool: Vec::new(),
            score: Vec::new(),
            slot_of: vec![ABSENT; id_bound],
        }
    }
}

/// One row sweep over the shared scaffold: replay the row's dirty bucket
/// tournaments (all of them when dirty buckets are the majority or when
/// `use_cache` is off), then run the final Count-Min over the pooled
/// bucket winners and shared sample. Returns `(winner, fell_back)`.
///
/// With `use_cache = false` every duel is asked through `cmp` even when a
/// cached outcome exists (the cache is still *written*, with the
/// identical bits a persistent oracle must return) — the from-scratch
/// reference behaviour.
pub(crate) fn sweep_row<C: Comparator<usize>>(
    deal: &ScaffoldDeal,
    row: usize,
    state: &mut RowState,
    cmp: &mut C,
    use_cache: bool,
    buf: &mut SweepBuffers,
    counters: &mut ScaffoldStats,
) -> (usize, bool) {
    counters.row_sweeps += 1;
    let total = deal.total_buckets();
    let SweepBuffers {
        levels,
        ranges,
        pairs,
        holes,
        answers,
        pool,
        score,
        slot_of,
    } = buf;

    // A bucket is dirty for this row iff its membership changed after the
    // row's last sync. Majority-dirty (and the reference mode) replays
    // everything — same queries either way, because a clean bucket's
    // bracket re-plays entirely from the cache.
    let mut dirty = 0usize;
    for rb in 0..total {
        if deal.bucket_epoch[rb] > state.synced_epoch {
            dirty += 1;
        }
    }
    let fell_back = state.synced_epoch > 0 && 2 * dirty > total;
    let replay_all = !use_cache || 2 * dirty > total;

    // Stage 1 + 2: bracket replays, level-batched across buckets. This is
    // the tombstone-stable sibling of the level-batched brackets in
    // `MinContest::run` and `super::tournament` — dead members advance
    // their opponents as byes instead of compacting the pairing.
    ranges.clear();
    levels.clear();
    for rb in 0..total {
        if !replay_all && deal.bucket_epoch[rb] <= state.synced_epoch {
            continue;
        }
        let start = levels.len();
        for &id in &deal.buckets[rb] {
            let live = deal.alive[id as usize] && id as usize != row;
            levels.push(if live { id } else { BYE });
        }
        ranges.push((rb as u32, start as u32, (levels.len() - start) as u32));
    }
    loop {
        pairs.clear();
        holes.clear();
        let mut progressed = false;
        for range in ranges.iter_mut() {
            let (start, len) = (range.1 as usize, range.2 as usize);
            if len <= 1 {
                continue;
            }
            progressed = true;
            let mut write = start;
            let mut read = start;
            let end = start + len;
            while read < end {
                levels[write] = if read + 1 < end {
                    let (x, y) = (levels[read], levels[read + 1]);
                    if x == BYE {
                        y
                    } else if y == BYE {
                        x
                    } else {
                        let (lo, hi) = if x < y { (x, y) } else { (y, x) };
                        let cached = if use_cache {
                            state.outcomes.get(&pack(lo, hi)).copied()
                        } else {
                            None
                        };
                        match cached {
                            Some(le) => {
                                counters.scaffold_hits += 1;
                                if le {
                                    lo
                                } else {
                                    hi
                                }
                            }
                            None => {
                                pairs.push((lo as usize, hi as usize));
                                holes.push(write as u32);
                                PENDING
                            }
                        }
                    }
                } else {
                    levels[read]
                };
                write += 1;
                read += 2;
            }
            range.2 = (write - start) as u32;
        }
        if !progressed {
            break;
        }
        if !pairs.is_empty() {
            counters.bracket_duels += pairs.len() as u64;
            answers.clear();
            cmp.le_round(pairs, answers);
            for ((&(lo, hi), &le), &hole) in pairs.iter().zip(answers.iter()).zip(holes.iter()) {
                state.outcomes.insert(pack(lo as u32, hi as u32), le);
                levels[hole as usize] = if le { lo as u32 } else { hi as u32 };
            }
        }
    }
    for &(rb, start, len) in ranges.iter() {
        let winner = if len == 1 {
            levels[start as usize]
        } else {
            BYE
        };
        state.winners[rb as usize] = if winner == BYE { ABSENT } else { winner };
    }

    // Stage 3: the final Count-Min over bucket winners ∪ shared sample
    // (first-entry dedup, the row itself excluded). Pool order — winners
    // in flat-bucket order, then sample in insertion order — is a pure
    // function of the scaffold, so the tie-break (earliest pool slot on
    // equal scores) cannot depend on what was cached.
    pool.clear();
    for rb in 0..total {
        let w = state.winners[rb];
        if w != ABSENT && slot_of[w as usize] == ABSENT {
            slot_of[w as usize] = pool.len() as u32;
            pool.push(w);
        }
    }
    for &s in &deal.sample {
        if s as usize != row && slot_of[s as usize] == ABSENT {
            slot_of[s as usize] = pool.len() as u32;
            pool.push(s);
        }
    }
    debug_assert!(!pool.is_empty(), "sweep of the only live candidate");
    score.clear();
    score.resize(pool.len(), 0);
    if pool.len() > 1 {
        pairs.clear();
        for i in 0..pool.len() {
            for j in i + 1..pool.len() {
                let (a, b) = (pool[i], pool[j]);
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                if use_cache {
                    if let Some(&le) = state.outcomes.get(&pack(lo, hi)) {
                        counters.scaffold_hits += 1;
                        let winner = if le { lo } else { hi };
                        score[slot_of[winner as usize] as usize] += 1;
                        continue;
                    }
                }
                pairs.push((lo as usize, hi as usize));
            }
        }
        counters.pool_duels += pairs.len() as u64;
        for chunk in pairs.chunks(4096) {
            answers.clear();
            cmp.le_round(chunk, answers);
            for (&(lo, hi), &le) in chunk.iter().zip(answers.iter()) {
                state.outcomes.insert(pack(lo as u32, hi as u32), le);
                let winner = if le { lo } else { hi };
                score[slot_of[winner] as usize] += 1;
            }
        }
    }

    let mut best = 0usize;
    for slot in 1..pool.len() {
        if score[slot] > score[best] {
            best = slot;
        }
    }
    let winner = pool[best] as usize;
    for &id in pool.iter() {
        slot_of[id as usize] = ABSENT;
    }
    state.synced_epoch = deal.epoch;
    (winner, fell_back)
}

/// The shared-scaffold search plane (see the module docs): Max-Adv's
/// random bucket deals, tournament winners and top-up sample shared
/// across **every** row-anchored minimum search of an agglomeration,
/// with per-row caches that make repeat sweeps mostly cache hits.
///
/// Per row the plane keeps a `RowState`: the row's cached bucket
/// winners (valid until the bucket's membership changes — tracked by a
/// per-bucket epoch) and a duel outcome cache keyed by candidate-id
/// pairs (valid as long as both candidates live, because representative
/// pairs between live clusters never change). When clusters `a` and `b`
/// merge, [`note_merge`](Self::note_merge) additionally **inherits**
/// cached outcomes into the union's fresh row: for survivors `x, y`
/// whose representatives against the union were both kept from the same
/// parent, the parent's cached bit answers the *identical* canonical
/// query `le(rep(new, x), rep(new, y))` — persistent noise makes the
/// reuse exact, not approximate.
#[derive(Debug)]
pub struct RowScaffold {
    pub(crate) deal: ScaffoldDeal,
    /// Per-row cached state, indexed by candidate id (lazily created).
    pub(crate) rows: Vec<Option<RowState>>,
    stats: ScaffoldStats,
    /// Reusable per-merge provenance table (`0` unknown, `1` from the
    /// first parent, `2` from the second).
    from: Vec<u8>,
}

impl RowScaffold {
    /// Builds the shared scaffold over the initial `items`, resolving
    /// `(t, l, s)` from `params` exactly like `max_adv` would for
    /// `items.len()` candidates, and drawing the `t` bucket deals plus
    /// the initial sample from `rng`. Issues no queries — sweeps do.
    ///
    /// # Panics
    /// Panics if `items` is empty, an item is not below `id_bound`, or
    /// `id_bound` does not fit the internal `u32` tables.
    pub fn new<R: Rng + ?Sized>(
        items: &[usize],
        id_bound: usize,
        params: &AdvParams,
        rng: &mut R,
    ) -> Self {
        assert!(!items.is_empty(), "scaffold needs at least one candidate");
        assert!(
            id_bound < PENDING as usize,
            "id_bound must fit the u32 tables"
        );
        assert!(items.iter().all(|&it| it < id_bound), "item out of bounds");
        let (t, l, s) = params.resolve(items.len());
        let mut deal = ScaffoldDeal {
            rounds: t,
            buckets_per_round: l,
            sample_target: s,
            id_bound,
            epoch: 1,
            alive: vec![false; id_bound],
            bucket_of: vec![ABSENT; t * id_bound],
            buckets: vec![Vec::new(); t * l],
            bucket_epoch: vec![1; t * l],
            sample: Vec::with_capacity(s),
        };
        for &it in items {
            deal.alive[it] = true;
        }
        // One random deal per round: shuffle, then chunk into l near-equal
        // parts — the same partition shape as `tournament_partition` and
        // `MinContest::new`.
        let mut shuffled: Vec<usize> = items.to_vec();
        for r in 0..t {
            shuffled.copy_from_slice(items);
            shuffled.shuffle(rng);
            let base = shuffled.len() / l;
            let extra = shuffled.len() % l;
            let mut start = 0;
            for b in 0..l {
                let size = base + usize::from(b < extra);
                let rb = r * l + b;
                for &it in &shuffled[start..start + size] {
                    deal.bucket_of[r * id_bound + it] = rb as u32;
                    deal.buckets[rb].push(it as u32);
                }
                start += size;
            }
        }
        for _ in 0..s {
            let pick = items[rng.random_range(0..items.len())];
            deal.sample.push(pick as u32);
        }
        Self {
            deal,
            rows: (0..id_bound).map(|_| None).collect(),
            stats: ScaffoldStats::default(),
            from: vec![0; id_bound],
        }
    }

    /// Cumulative cost counters.
    pub fn stats(&self) -> ScaffoldStats {
        self.stats
    }

    /// Folds externally accumulated counters (per-worker tallies of a
    /// fanned initial pass) into the plane's own.
    pub fn absorb_stats(&mut self, other: &ScaffoldStats) {
        self.stats.absorb(other);
    }

    /// One row sweep (see `sweep_row`); lazily creates the row's state,
    /// classifies repair sweeps into contests vs fallbacks, and returns
    /// the row's approximate-nearest candidate id.
    pub fn sweep<C: Comparator<usize>>(
        &mut self,
        row: usize,
        cmp: &mut C,
        use_cache: bool,
        buf: &mut SweepBuffers,
    ) -> usize {
        let total = self.deal.total_buckets();
        let mut state = self.rows[row]
            .take()
            .unwrap_or_else(|| RowState::new(total));
        let repair = state.synced_epoch > 0;
        let (winner, fell_back) = sweep_row(
            &self.deal,
            row,
            &mut state,
            cmp,
            use_cache,
            buf,
            &mut self.stats,
        );
        if repair {
            if fell_back {
                self.stats.repair_fallbacks += 1;
            } else {
                self.stats.repair_contests += 1;
            }
        }
        self.rows[row] = Some(state);
        winner
    }

    /// Structure maintenance after clusters `a` and `b` merged into
    /// `new`: the parents die (tombstoned in their buckets, removed from
    /// the sample), the union is dealt into one uniformly random bucket
    /// per round, the sample is topped back up from `live`, and the
    /// union's fresh row cache **inherits** every parent outcome whose
    /// canonical query is unchanged — pairs `(x, y)` with both
    /// representatives kept from that same parent, as recorded in
    /// `kept_from_a` (`(survivor id, rep kept from a)` per survivor).
    ///
    /// # Panics
    /// Panics if `new` is out of bounds or already live.
    pub fn note_merge<R: Rng + ?Sized>(
        &mut self,
        a: usize,
        b: usize,
        new: usize,
        kept_from_a: &[(usize, bool)],
        live: &[usize],
        rng: &mut R,
    ) {
        let deal = &mut self.deal;
        assert!(new < deal.id_bound, "cluster id out of bounds");
        assert!(!deal.alive[new], "cluster already live");
        deal.epoch += 1;
        let id_bound = deal.id_bound;
        for parent in [a, b] {
            deal.alive[parent] = false;
            for r in 0..deal.rounds {
                let rb = deal.bucket_of[r * id_bound + parent];
                if rb != ABSENT {
                    deal.bucket_epoch[rb as usize] = deal.epoch;
                }
            }
        }
        deal.alive[new] = true;
        for r in 0..deal.rounds {
            let b = rng.random_range(0..deal.buckets_per_round);
            let rb = r * deal.buckets_per_round + b;
            deal.bucket_of[r * id_bound + new] = rb as u32;
            deal.buckets[rb].push(new as u32);
            deal.bucket_epoch[rb] = deal.epoch;
        }
        let alive = &deal.alive;
        deal.sample.retain(|&s| alive[s as usize]);
        if !live.is_empty() {
            while deal.sample.len() < deal.sample_target {
                let pick = live[rng.random_range(0..live.len())];
                deal.sample.push(pick as u32);
            }
        }

        // Union cache inheritance. The merge's rep-refresh round already
        // decided, per survivor, which parent's representative the union
        // keeps; a parent's cached bit for (x, y) answers the union's
        // query exactly when both x's and y's reps came from that parent.
        let parent_a = self.rows[a].take();
        let parent_b = self.rows[b].take();
        for &(survivor, from_a) in kept_from_a {
            self.from[survivor] = if from_a { 1 } else { 2 };
        }
        let mut state = RowState::new(deal.rounds * deal.buckets_per_round);
        for (parent, tag) in [(&parent_a, 1u8), (&parent_b, 2u8)] {
            let Some(parent) = parent else { continue };
            for (&key, &le) in &parent.outcomes {
                let (lo, hi) = ((key >> 32) as usize, (key & 0xFFFF_FFFF) as usize);
                if deal.alive[lo] && deal.alive[hi] && self.from[lo] == tag && self.from[hi] == tag
                {
                    state.outcomes.insert(key, le);
                }
            }
        }
        for &(survivor, _) in kept_from_a {
            self.from[survivor] = 0;
        }
        self.rows[new] = Some(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::ExactKeyCmp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Under an exact comparator every row's sweep must return that row's
    /// true nearest candidate (the scaffold pool always contains the
    /// global winner's bucket champion).
    #[test]
    fn exact_sweeps_return_true_minima() {
        // Keys are per-row distances: key[x] for row r is |x - r| scaled.
        let n = 40usize;
        let items: Vec<usize> = (0..n).collect();
        let mut r = rng(9);
        let mut plane = RowScaffold::new(&items, n, &AdvParams::experimental(), &mut r);
        let mut buf = SweepBuffers::new(n);
        for row in 0..n {
            let keys: Vec<f64> = (0..n).map(|x| (x as f64 - row as f64).abs()).collect();
            let mut cmp = ExactKeyCmp::new(&keys);
            // Min orientation: `ExactKeyCmp::le` is `key[a] <= key[b]`,
            // exactly the "first item at least as close" contract.
            let w = plane.sweep(row, &mut cmp, true, &mut buf);
            let expect = if row == 0 { 1 } else { row - 1 };
            let got = keys[w];
            assert_eq!(got, keys[expect], "row {row} got {w}");
        }
        assert_eq!(plane.stats().row_sweeps, n as u64);
    }

    /// Cached sweeps and reference (ask-everything) sweeps over
    /// identically evolved scaffolds pick identical winners, while the
    /// cached plane answers a growing share of duels for free.
    #[test]
    fn cached_and_reference_sweeps_agree() {
        let n = 32usize;
        let items: Vec<usize> = (0..n).collect();
        let keys: Vec<f64> = (0..n).map(|i| ((i * 37 + 5) % 97) as f64).collect();
        let mut plane_a = RowScaffold::new(&items, n, &AdvParams::experimental(), &mut rng(4));
        let mut plane_b = RowScaffold::new(&items, n, &AdvParams::experimental(), &mut rng(4));
        let mut buf = SweepBuffers::new(n);
        for row in 0..n {
            let mut cmp = ExactKeyCmp::new(&keys);
            let wa = plane_a.sweep(row, &mut cmp, true, &mut buf);
            let wb = plane_b.sweep(row, &mut cmp, false, &mut buf);
            assert_eq!(wa, wb, "row {row}");
            // Re-sweep the same row: with nothing changed, the cached
            // plane must replay nothing and ask nothing new.
            let hits_before = plane_a.stats().scaffold_hits;
            let asked_before = plane_a.stats().bracket_duels + plane_a.stats().pool_duels;
            let again = plane_a.sweep(row, &mut cmp, true, &mut buf);
            assert_eq!(again, wa);
            assert_eq!(
                plane_a.stats().bracket_duels + plane_a.stats().pool_duels,
                asked_before,
                "clean re-sweep must be free"
            );
            assert!(plane_a.stats().scaffold_hits > hits_before);
        }
        assert!(plane_a.stats().repair_contests > 0);
        assert_eq!(plane_a.stats().repair_fallbacks, 0);
    }
}
