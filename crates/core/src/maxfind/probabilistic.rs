//! Algorithm 12 — Count-Max-Prob, the probabilistic-noise maximum.
//!
//! Persistent errors kill the natural defences: repetition cannot boost a
//! single query and Lemma 3.3's per-level analysis no longer holds. The
//! paper's counter is statistical: score every surviving item against a
//! fresh random *sample* — the true maximum wins `(1-p)` of its sample
//! comparisons in expectation while anything in the bottom `59/60` of the
//! survivors scores measurably worse (Lemma 8.10) — then discard the losers
//! *and the sample itself* (sample reuse would correlate rounds through the
//! persistent errors). After `O(log n)` rounds only near-top items survive
//! and a final Count-Max picks the winner: rank `O(log^2(n/delta))` w.p.
//! `1 - delta` with `O(n log^2(n/delta))` queries (Theorem 3.7).

use super::count_max::count_max;
use super::dedup_keep_order;
use crate::comparator::{Comparator, Rev};
use rand::Rng;
use std::hash::Hash;

/// Parameters of Count-Max-Prob (Algorithm 12).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbParams {
    /// Failure probability `delta`.
    pub delta: f64,
    /// Sample size per round = `ceil(sample_coeff * ln(n/delta))`.
    /// The paper's proof uses 100; its experiments run far leaner.
    pub sample_coeff: f64,
    /// Keep an item when it beats at least `keep_ratio * |sample|` of the
    /// sample (the paper's `50 log(n/delta)` threshold = ratio 0.5).
    pub keep_ratio: f64,
    /// Hard cap on pruning rounds; `None` = `2 * ceil(log2 n) + 2`.
    pub max_rounds: Option<usize>,
}

impl ProbParams {
    /// Lean configuration for experiments (mirrors how the paper's own
    /// implementation keeps query counts near-linear, Section 6.3).
    pub fn experimental() -> Self {
        Self {
            delta: 0.1,
            sample_coeff: 4.0,
            keep_ratio: 0.5,
            max_rounds: None,
        }
    }

    /// Targets failure probability `delta` with the lean experimental
    /// constants — the confidence constructor every `*Params` struct in
    /// this crate shares. (The proof of Lemma 8.10 uses `sample_coeff =
    /// 100`; all fields are public, so proof-grade runs can still set it.)
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    pub fn with_confidence(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        Self {
            delta,
            ..Self::experimental()
        }
    }

    /// The proof-grade constants of Lemma 8.10 (`100 log(n/delta)` samples,
    /// keep threshold `50 log(n/delta)`).
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    #[deprecated(
        since = "0.1.0",
        note = "use `with_confidence(delta)` (or set `sample_coeff: 100.0` \
                explicitly for the proof-grade constants)"
    )]
    pub fn theory(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0);
        Self {
            delta,
            sample_coeff: 100.0,
            keep_ratio: 0.5,
            max_rounds: None,
        }
    }

    fn sample_size(&self, n: usize) -> usize {
        let ln = (n as f64 / self.delta).max(2.0).ln();
        ((self.sample_coeff * ln).ceil() as usize).max(3)
    }

    fn rounds_cap(&self, n: usize) -> usize {
        self.max_rounds
            .unwrap_or(2 * (n.max(2) as f64).log2().ceil() as usize + 2)
    }
}

impl Default for ProbParams {
    fn default() -> Self {
        Self::experimental()
    }
}

/// Algorithm 12: probabilistic-noise maximum (Theorem 3.7).
///
/// Returns `None` only for an empty `items` slice.
pub fn max_prob<I, C, R>(items: &[I], params: &ProbParams, cmp: &mut C, rng: &mut R) -> Option<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    max_prob_with_progress(items, params, cmp, rng, &mut None)
}

/// [`max_prob`] with a clean-progress watermark: `leader` is advanced to
/// the round's best-scoring survivor after every pruning round that
/// finished while the comparator was still returning real answers
/// (`!cmp.doomed()`), and to the final winner after a clean Count-Max.
///
/// The query and rng-draw sequences are exactly those of [`max_prob`] —
/// the watermark observes the run, it never redirects it. A doomed run
/// keeps executing to completion on refusal constants; `leader` simply
/// stops moving, so it always names an item chosen using only real
/// answers.
pub fn max_prob_with_progress<I, C, R>(
    items: &[I],
    params: &ProbParams,
    cmp: &mut C,
    rng: &mut R,
    leader: &mut Option<I>,
) -> Option<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    let n0 = items.len();
    if n0 == 0 {
        return None;
    }
    let s = params.sample_size(n0);
    let threshold = params.keep_ratio * s as f64;
    let cap = params.rounds_cap(n0);

    // All round state lives in buffers hoisted out of the loop: the
    // sample, its membership set and the survivor list are reused every
    // round instead of being reallocated (the query loop below is the hot
    // path of the probabilistic workloads). The rng-draw and query
    // sequences are exactly those of the naive per-round-`Vec` version.
    let mut survivors: Vec<I> = items.to_vec();
    let mut sample: Vec<I> = Vec::with_capacity(s);
    let mut in_sample: std::collections::HashSet<I> = std::collections::HashSet::with_capacity(s);
    let mut kept: Vec<I> = Vec::with_capacity(n0);
    let mut round = 0usize;
    while survivors.len() > s && round < cap {
        // Sample with replacement; scoring counts multiset occurrences.
        sample.clear();
        for _ in 0..s {
            sample.push(survivors[rng.random_range(0..survivors.len())]);
        }
        in_sample.clear();
        in_sample.extend(sample.iter().copied());
        kept.clear();
        // The round's best scorer doubles as the progress watermark: it is
        // the item the sample evidence favours most, at zero extra queries.
        let mut best: Option<(usize, I)> = None;
        for &u in &survivors {
            if in_sample.contains(&u) {
                continue; // the sample is discarded to keep rounds independent
            }
            let count = sample.iter().filter(|&&x| !cmp.le(u, x)).count();
            if best.is_none_or(|(c, _)| count > c) {
                best = Some((count, u));
            }
            if count as f64 >= threshold {
                kept.push(u);
            }
        }
        if !cmp.doomed() {
            if let Some((_, u)) = best {
                *leader = Some(u);
            }
        }
        if kept.is_empty() {
            // Everything scored below threshold (possible at small n /
            // extreme noise): fall back to the sample itself.
            survivors = dedup_keep_order(&sample);
            break;
        }
        std::mem::swap(&mut survivors, &mut kept);
        round += 1;
    }
    let winner = count_max(&survivors, cmp);
    if !cmp.doomed() {
        *leader = winner;
    }
    winner
}

/// Parallel twin of [`max_prob`]: each scoring round fans the survivor
/// list across `threads` chunks under `std::thread::scope`.
///
/// Bit-identical to the serial run by construction (see
/// [`crate::parallel`]): the sample is drawn serially from the same rng
/// stream, every worker issues exactly the queries the serial loop would
/// issue for its chunk of survivors (answers are pure functions of the
/// query, so cross-thread ordering is irrelevant), and the kept lists are
/// concatenated in chunk order. Query totals and the returned item match
/// the serial run exactly.
#[cfg(feature = "parallel")]
pub fn max_prob_par<I, C, R>(
    items: &[I],
    params: &ProbParams,
    cmp: &C,
    rng: &mut R,
    threads: usize,
) -> Option<I>
where
    I: Copy + Eq + Hash + Send + Sync,
    C: crate::parallel::SyncComparator<I>,
    R: Rng + ?Sized,
{
    if threads <= 1 {
        // One worker: the fan-out would only add spawn overhead, and the
        // serial engine is bit-identical by construction.
        return max_prob(items, params, &mut crate::parallel::AsSerial(cmp), rng);
    }
    let n0 = items.len();
    if n0 == 0 {
        return None;
    }
    let s = params.sample_size(n0);
    let threshold = params.keep_ratio * s as f64;
    let cap = params.rounds_cap(n0);

    let mut survivors: Vec<I> = items.to_vec();
    let mut sample: Vec<I> = Vec::with_capacity(s);
    let mut round = 0usize;
    while survivors.len() > s && round < cap {
        // Randomness stays serial: identical draws to the serial version.
        sample.clear();
        for _ in 0..s {
            sample.push(survivors[rng.random_range(0..survivors.len())]);
        }
        let in_sample: std::collections::HashSet<I> = sample.iter().copied().collect();
        let chunk = survivors.len().div_ceil(threads);
        let mut kept: Vec<I> = Vec::with_capacity(survivors.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for ch in survivors.chunks(chunk) {
                let sample = &sample;
                let in_sample = &in_sample;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::with_capacity(ch.len());
                    for &u in ch {
                        if in_sample.contains(&u) {
                            continue;
                        }
                        let count = sample.iter().filter(|&&x| !cmp.le(u, x)).count();
                        if count as f64 >= threshold {
                            local.push(u);
                        }
                    }
                    local
                }));
            }
            for h in handles {
                kept.extend(h.join().expect("scoring worker panicked"));
            }
        });
        if kept.is_empty() {
            survivors = dedup_keep_order(&sample);
            break;
        }
        survivors = kept;
        round += 1;
    }
    count_max(&survivors, &mut crate::parallel::AsSerial(cmp))
}

/// Minimum-finding twin of [`max_prob`] (reversed comparator — the paper's
/// "count Yes answers" variant in Section 3.2).
pub fn min_prob<I, C, R>(items: &[I], params: &ProbParams, cmp: &mut C, rng: &mut R) -> Option<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    max_prob(items, params, &mut Rev(cmp), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::{ExactKeyCmp, ValueCmp};
    use nco_oracle::counting::Counting;
    use nco_oracle::probabilistic::ProbValueOracle;
    use nco_oracle::TrueValueOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Even with an exact comparator, Algorithm 12 may *discard* the true
    /// maximum — sampled items are dropped permanently to keep rounds
    /// independent (Lemma 8.11 charges them to the rank bound). So the
    /// check is a small-rank check, not equality.
    #[test]
    fn exact_comparator_returns_small_rank() {
        let keys: Vec<f64> = (0..500).map(|i| ((i * 193) % 4999) as f64).collect();
        let items: Vec<usize> = (0..keys.len()).collect();
        let rank_of = |v: usize, largest: bool| -> usize {
            1 + keys
                .iter()
                .filter(|&&x| if largest { x > keys[v] } else { x < keys[v] })
                .count()
        };
        for seed in 0..10 {
            let best = max_prob(
                &items,
                &ProbParams::experimental(),
                &mut ExactKeyCmp::new(&keys),
                &mut rng(seed),
            )
            .unwrap();
            assert!(
                rank_of(best, true) <= 25,
                "max rank {}",
                rank_of(best, true)
            );
            let worst = min_prob(
                &items,
                &ProbParams::experimental(),
                &mut ExactKeyCmp::new(&keys),
                &mut rng(100 + seed),
            )
            .unwrap();
            assert!(
                rank_of(worst, false) <= 25,
                "min rank {}",
                rank_of(worst, false)
            );
        }
    }

    #[test]
    fn empty_and_singleton() {
        let keys = [1.0];
        let p = ProbParams::experimental();
        assert_eq!(
            max_prob::<usize, _, _>(&[], &p, &mut ExactKeyCmp::new(&keys), &mut rng(0)),
            None
        );
        assert_eq!(
            max_prob(&[0], &p, &mut ExactKeyCmp::new(&keys), &mut rng(0)),
            Some(0)
        );
    }

    /// Theorem 3.7: the returned item's rank is polylogarithmic. At n = 600,
    /// p = 0.2, the rank should land well inside the top tail in most runs.
    #[test]
    fn theorem_3_7_rank_bound() {
        let n = 600usize;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let items: Vec<usize> = (0..n).collect();
        let trials = 20;
        let mut ranks = Vec::with_capacity(trials as usize);
        for seed in 0..trials {
            let mut oracle = ProbValueOracle::new(values.clone(), 0.2, 7000 + seed);
            let got = max_prob(
                &items,
                &ProbParams::experimental(),
                &mut ValueCmp::new(&mut oracle),
                &mut rng(100 + seed),
            )
            .unwrap();
            ranks.push(n - got); // rank 1 = max
        }
        ranks.sort_unstable();
        let median = ranks[ranks.len() / 2];
        let worst = *ranks.last().unwrap();
        // log2(600)^2 ≈ 85; experiments do far better (Fig. 8b shows
        // near-optimal values) — median should be single digits.
        assert!(median <= 10, "median rank {median}, ranks {ranks:?}");
        assert!(worst <= 85, "worst rank {worst} exceeds log^2 n");
    }

    #[test]
    fn query_complexity_is_n_polylog() {
        for n in [512usize, 2048] {
            let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut oracle = Counting::new(TrueValueOracle::new(values));
            let items: Vec<usize> = (0..n).collect();
            let params = ProbParams::experimental();
            let _ = max_prob(
                &items,
                &params,
                &mut ValueCmp::new(&mut oracle),
                &mut rng(8),
            );
            let ln = (n as f64 / params.delta).ln();
            let budget = (8.0 * n as f64 * ln + 4.0 * (params.sample_coeff * ln).powi(2)) as u64;
            assert!(
                oracle.queries() <= budget,
                "n = {n}: {} queries > {budget}",
                oracle.queries()
            );
        }
    }

    #[test]
    fn survivor_counts_shrink_monotonically() {
        // Indirect check: with a perfect oracle the winner stays near the
        // top even with the tiny theory-killing max_rounds cap of 1. Exact
        // equality would over-claim: the round's sample is discarded
        // permanently (to keep rounds independent), so for ~s/n of seeds
        // the true maximum itself is sampled away and the best *surviving*
        // item wins — Lemma 8.11 charges exactly this to the rank bound.
        let n = 300usize;
        let keys: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let items: Vec<usize> = (0..n).collect();
        for seed in 0..8 {
            let params = ProbParams {
                max_rounds: Some(1),
                ..ProbParams::experimental()
            };
            let got = max_prob(
                &items,
                &params,
                &mut ExactKeyCmp::new(&keys),
                &mut rng(seed),
            )
            .unwrap();
            let rank = n - got; // rank 1 = true maximum
            assert!(
                rank <= 5,
                "seed {seed}: rank {rank} after one pruning round"
            );
        }
    }
}
