//! Algorithm 4 — Max-Adv, the paper's headline adversarial-noise maximum.
//!
//! Two complementary defences against the confusion band
//! `C = { u : v_max/(1+mu) <= u <= v_max }`:
//!
//! 1. **Dense band** (`|C| > sqrt(n)/2`): a uniform sample of `sqrt(n)*t`
//!    items hits `C` w.h.p. (Lemma 8.5), and any member of `C` is a `(1+mu)`
//!    approximation by definition.
//! 2. **Sparse band**: partition into `l = sqrt(n)` random parts and take
//!    each part's binary-tournament winner; the part containing `v_max`
//!    avoids all of `C` with probability >= 1/2 per round (Markov,
//!    Lemma 8.6), in which case the out-of-band answers promote `v_max`
//!    unharmed. `t` rounds push the failure to `2^-t`.
//!
//! The sampled set and all partition winners then fight one final Count-Max
//! (a `(1+mu)^2` loss, Lemma 3.1), giving the `(1+mu)^3` total of
//! Theorem 3.6 with `O(n log^2(1/delta))` queries.

use super::count_max::count_max;
use super::dedup_keep_order;
use super::tournament::tournament_partition;
use crate::comparator::{Comparator, Rev};
use rand::Rng;
use std::hash::Hash;

/// Parameters of Max-Adv (Algorithm 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvParams {
    /// Number of Tournament-Partition rounds (`t`).
    pub rounds: usize,
    /// Number of partitions `l`; `None` = `sqrt(n)` (the paper's setting).
    pub partitions: Option<usize>,
    /// Uniform sample size; `None` = `sqrt(n) * t` (the paper's setting).
    pub sample_size: Option<usize>,
}

impl AdvParams {
    /// The paper's experimental configuration (Section 6.1): `t = 1`,
    /// `l = sqrt(n)`, sample of `sqrt(n)`.
    pub fn experimental() -> Self {
        Self {
            rounds: 1,
            partitions: None,
            sample_size: None,
        }
    }

    /// The proof-grade configuration of Theorem 3.6: `t = 2 log2(2/delta)`
    /// rounds for failure probability `delta`.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    pub fn with_confidence(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let t = (2.0 * (2.0 / delta).log2()).ceil() as usize;
        Self {
            rounds: t.max(1),
            partitions: None,
            sample_size: None,
        }
    }

    /// Resolves `(t, l, sample_size)` for an instance of `n` items.
    pub fn resolve(&self, n: usize) -> (usize, usize, usize) {
        let sqrt_n = (n as f64).sqrt().ceil() as usize;
        let t = self.rounds.max(1);
        let l = self.partitions.unwrap_or(sqrt_n).clamp(1, n.max(1));
        let s = self.sample_size.unwrap_or(sqrt_n * t).min(4 * n.max(1));
        (t, l, s)
    }
}

impl Default for AdvParams {
    fn default() -> Self {
        Self::experimental()
    }
}

/// Algorithm 4: robust maximum under adversarial noise (Theorem 3.6).
///
/// Returns `None` only for an empty `items` slice.
pub fn max_adv<I, C, R>(items: &[I], params: &AdvParams, cmp: &mut C, rng: &mut R) -> Option<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    let n = items.len();
    if n <= 2 {
        return count_max(items, cmp);
    }
    let (t, l, s) = params.resolve(n);

    // Step 1: uniform sample with replacement (the dense-band defence).
    let mut pool: Vec<I> = (0..s).map(|_| items[rng.random_range(0..n)]).collect();

    // Step 2: t rounds of Tournament-Partition (the sparse-band defence).
    for _ in 0..t {
        pool.extend(tournament_partition(items, l, cmp, rng));
    }

    // Step 3: final Count-Max over the deduplicated pool.
    let pool = dedup_keep_order(&pool);
    count_max(&pool, cmp)
}

/// Minimum-finding twin of [`max_adv`] (reversed comparator).
pub fn min_adv<I, C, R>(items: &[I], params: &AdvParams, cmp: &mut C, rng: &mut R) -> Option<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    max_adv(items, params, &mut Rev(cmp), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::{ExactKeyCmp, ValueCmp};
    use nco_oracle::adversarial::{
        AdversarialValueOracle, InvertAdversary, PersistentRandomAdversary,
    };
    use nco_oracle::counting::Counting;
    use nco_oracle::TrueValueOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn params_resolution() {
        let p = AdvParams::experimental();
        let (t, l, s) = p.resolve(100);
        assert_eq!((t, l, s), (1, 10, 10));
        let p = AdvParams::with_confidence(0.1);
        assert_eq!(p.rounds, 9); // ceil(2 * log2(20)) = ceil(8.64)
        let p = AdvParams {
            rounds: 2,
            partitions: Some(5),
            sample_size: Some(7),
        };
        assert_eq!(p.resolve(100), (2, 5, 7));
    }

    #[test]
    fn exact_comparator_returns_true_max() {
        let keys: Vec<f64> = (0..200).map(|i| ((i * 71) % 997) as f64).collect();
        let items: Vec<usize> = (0..200).collect();
        let best = max_adv(
            &items,
            &AdvParams::with_confidence(0.05),
            &mut ExactKeyCmp::new(&keys),
            &mut rng(11),
        )
        .unwrap();
        let true_best = (0..200)
            .max_by(|&a, &b| keys[a].total_cmp(&keys[b]))
            .unwrap();
        assert_eq!(best, true_best);
        let worst = min_adv(
            &items,
            &AdvParams::with_confidence(0.05),
            &mut ExactKeyCmp::new(&keys),
            &mut rng(12),
        )
        .unwrap();
        let true_worst = (0..200)
            .min_by(|&a, &b| keys[a].total_cmp(&keys[b]))
            .unwrap();
        assert_eq!(worst, true_worst);
    }

    #[test]
    fn tiny_inputs() {
        let keys = [4.0, 9.0];
        let p = AdvParams::experimental();
        assert_eq!(
            max_adv::<usize, _, _>(&[], &p, &mut ExactKeyCmp::new(&keys), &mut rng(0)),
            None
        );
        assert_eq!(
            max_adv(&[0], &p, &mut ExactKeyCmp::new(&keys), &mut rng(0)),
            Some(0)
        );
        assert_eq!(
            max_adv(&[0, 1], &p, &mut ExactKeyCmp::new(&keys), &mut rng(0)),
            Some(1)
        );
    }

    /// Theorem 3.6's bound against the worst-case adversary, checked over
    /// many seeds: the returned value must be within (1+mu)^3 of the max in
    /// at least a 1 - delta fraction of runs (with slack for the finite
    /// trial count).
    #[test]
    fn theorem_3_6_bound_against_invert_adversary() {
        let mu = 0.5f64;
        let n = 256usize;
        // Geometric-ish values: plenty of in-band confusion everywhere.
        let values: Vec<f64> = (0..n)
            .map(|i| 1.0 * (1.0 + mu * 0.35).powi(i as i32 % 40))
            .collect();
        let vmax = values.iter().cloned().fold(0.0, f64::max);
        let params = AdvParams::with_confidence(0.1);
        let items: Vec<usize> = (0..n).collect();
        let mut ok = 0;
        let trials = 40;
        for seed in 0..trials {
            let mut oracle = AdversarialValueOracle::new(values.clone(), mu, InvertAdversary);
            let got = max_adv(
                &items,
                &params,
                &mut ValueCmp::new(&mut oracle),
                &mut rng(1000 + seed),
            )
            .unwrap();
            if values[got] * (1.0 + mu).powi(3) >= vmax - 1e-9 {
                ok += 1;
            }
        }
        assert!(
            ok >= trials * 8 / 10,
            "bound held in only {ok}/{trials} trials"
        );
    }

    #[test]
    fn query_complexity_is_near_linear() {
        // O(n t + (sqrt(n) t + sqrt(n))^2) with t = O(log 1/delta):
        // c * n * log2(1/delta)^2 queries is the theorem's budget.
        for n in [256usize, 1024, 4096] {
            let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut oracle = Counting::new(TrueValueOracle::new(values));
            let items: Vec<usize> = (0..n).collect();
            let delta = 0.1;
            let params = AdvParams::with_confidence(delta);
            let _ = max_adv(
                &items,
                &params,
                &mut ValueCmp::new(&mut oracle),
                &mut rng(5),
            );
            let log_term = (1.0 / delta).log2();
            let budget = (16.0 * n as f64 * log_term * log_term) as u64;
            assert!(
                oracle.queries() <= budget,
                "n = {n}: {} queries > budget {budget}",
                oracle.queries()
            );
        }
    }

    #[test]
    fn random_adversary_still_within_bound_most_runs() {
        let mu = 1.0f64;
        let n = 200usize;
        let values: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.05).collect();
        let vmax = values.iter().cloned().fold(0.0, f64::max);
        let items: Vec<usize> = (0..n).collect();
        let mut ok = 0;
        let trials = 30;
        for seed in 0..trials {
            let mut oracle = AdversarialValueOracle::new(
                values.clone(),
                mu,
                PersistentRandomAdversary::new(seed),
            );
            let got = max_adv(
                &items,
                &AdvParams::with_confidence(0.1),
                &mut ValueCmp::new(&mut oracle),
                &mut rng(300 + seed),
            )
            .unwrap();
            if values[got] * (1.0 + mu).powi(3) >= vmax {
                ok += 1;
            }
        }
        assert!(ok >= trials * 8 / 10, "only {ok}/{trials} within bound");
    }
}
