//! Algorithm 4 — Max-Adv, the paper's headline adversarial-noise maximum.
//!
//! Two complementary defences against the confusion band
//! `C = { u : v_max/(1+mu) <= u <= v_max }`:
//!
//! 1. **Dense band** (`|C| > sqrt(n)/2`): a uniform sample of `sqrt(n)*t`
//!    items hits `C` w.h.p. (Lemma 8.5), and any member of `C` is a `(1+mu)`
//!    approximation by definition.
//! 2. **Sparse band**: partition into `l = sqrt(n)` random parts and take
//!    each part's binary-tournament winner; the part containing `v_max`
//!    avoids all of `C` with probability >= 1/2 per round (Markov,
//!    Lemma 8.6), in which case the out-of-band answers promote `v_max`
//!    unharmed. `t` rounds push the failure to `2^-t`.
//!
//! The sampled set and all partition winners then fight one final Count-Max
//! (a `(1+mu)^2` loss, Lemma 3.1), giving the `(1+mu)^3` total of
//! Theorem 3.6 with `O(n log^2(1/delta))` queries.

use super::count_max::count_max;
use super::dedup_keep_order;
use super::tournament::tournament_partition;
use crate::comparator::{Comparator, Rev};
use rand::seq::SliceRandom;
use rand::Rng;
use std::hash::Hash;

/// Parameters of Max-Adv (Algorithm 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvParams {
    /// Number of Tournament-Partition rounds (`t`).
    pub rounds: usize,
    /// Number of partitions `l`; `None` = `sqrt(n)` (the paper's setting).
    pub partitions: Option<usize>,
    /// Uniform sample size; `None` = `sqrt(n) * t` (the paper's setting).
    pub sample_size: Option<usize>,
}

impl AdvParams {
    /// The paper's experimental configuration (Section 6.1): `t = 1`,
    /// `l = sqrt(n)`, sample of `sqrt(n)`.
    pub fn experimental() -> Self {
        Self {
            rounds: 1,
            partitions: None,
            sample_size: None,
        }
    }

    /// The proof-grade configuration of Theorem 3.6: `t = 2 log2(2/delta)`
    /// rounds for failure probability `delta`.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    pub fn with_confidence(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let t = (2.0 * (2.0 / delta).log2()).ceil() as usize;
        Self {
            rounds: t.max(1),
            partitions: None,
            sample_size: None,
        }
    }

    /// Resolves `(t, l, sample_size)` for an instance of `n` items.
    pub fn resolve(&self, n: usize) -> (usize, usize, usize) {
        let sqrt_n = (n as f64).sqrt().ceil() as usize;
        let t = self.rounds.max(1);
        let l = self.partitions.unwrap_or(sqrt_n).clamp(1, n.max(1));
        let s = self.sample_size.unwrap_or(sqrt_n * t).min(4 * n.max(1));
        (t, l, s)
    }
}

impl Default for AdvParams {
    fn default() -> Self {
        Self::experimental()
    }
}

/// Algorithm 4: robust maximum under adversarial noise (Theorem 3.6).
///
/// Returns `None` only for an empty `items` slice.
pub fn max_adv<I, C, R>(items: &[I], params: &AdvParams, cmp: &mut C, rng: &mut R) -> Option<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    let mut leader = None;
    max_adv_with_progress(items, params, cmp, rng, &mut leader)
}

/// [`max_adv`] with a clean-progress watermark: after every stage that
/// completed while the comparator was not [`Comparator::doomed`],
/// `leader` is updated to the stage's current best candidate (a
/// tournament-round winner, then the final Count-Max winner). When the
/// oracle stack dies mid-run — budget, deadline, retry exhaustion —
/// `leader` still holds the last candidate promoted purely on real
/// answers, while the return value may be refusal-constant garbage.
///
/// Issues the exact query/randomness sequence of [`max_adv`]: the
/// watermark only *reads* `doomed()`, so transcripts are unchanged.
pub fn max_adv_with_progress<I, C, R>(
    items: &[I],
    params: &AdvParams,
    cmp: &mut C,
    rng: &mut R,
    leader: &mut Option<I>,
) -> Option<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    let n = items.len();
    if n <= 2 {
        let winner = count_max(items, cmp);
        if !cmp.doomed() {
            *leader = winner;
        }
        return winner;
    }
    let (t, l, s) = params.resolve(n);

    // Step 1: uniform sample with replacement (the dense-band defence).
    let mut pool: Vec<I> = (0..s).map(|_| items[rng.random_range(0..n)]).collect();

    // Step 2: t rounds of Tournament-Partition (the sparse-band defence).
    for _ in 0..t {
        let winners = tournament_partition(items, l, cmp, rng);
        if !cmp.doomed() {
            if let Some(&w) = winners.first() {
                *leader = Some(w);
            }
        }
        pool.extend(winners);
    }

    // Step 3: final Count-Max over the deduplicated pool.
    let pool = dedup_keep_order(&pool);
    let winner = count_max(&pool, cmp);
    if !cmp.doomed() {
        *leader = winner;
    }
    winner
}

/// Minimum-finding twin of [`max_adv`] (reversed comparator).
pub fn min_adv<I, C, R>(items: &[I], params: &AdvParams, cmp: &mut C, rng: &mut R) -> Option<I>
where
    I: Copy + Eq + Hash,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    max_adv(items, params, &mut Rev(cmp), rng)
}

// ---------------------------------------------------------------------
// Incremental Max-Adv (minimum orientation): the closest-pair winner
// structure behind the hierarchy engine's incremental merge plane.
// ---------------------------------------------------------------------

/// Cumulative cost counters of a [`MinContest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContestStats {
    /// Full sweeps: contests that replayed every bucket and re-asked every
    /// pool pair (the initial build plus every fallback).
    pub full_sweeps: u64,
    /// Bucket tournaments replayed because a member was dirty, added or
    /// removed.
    pub bucket_replays: u64,
    /// Duels played inside bucket tournament replays.
    pub bucket_duels: u64,
    /// Pairs (re-)contested at the final Count-Min stage.
    pub pool_duels: u64,
}

/// Dead/absent marker in the contest's dense id-indexed tables.
const ABSENT: u32 = u32::MAX;

/// An **incremental** [`min_adv`]: Algorithm 4's two defences turned into a
/// winner structure that persists across calls, so that when only a few
/// candidates change key between sweeps, only those candidates are
/// re-contested against the cached incumbent state.
///
/// The structure mirrors Max-Adv stage by stage, with each source of
/// per-sweep randomness replaced by a persistent random object:
///
/// * **Sparse-band defence** — instead of `t` fresh random partitions per
///   sweep, `t` persistent random bucket assignments: every candidate is
///   dealt into one bucket per round at insertion (uniformly at random),
///   and each bucket caches its binary-tournament winner. A bucket replays
///   only when a member's key changed or membership changed.
/// * **Dense-band defence** — instead of a fresh uniform sample per sweep,
///   a persistent sample (drawn uniformly with replacement at
///   construction) that is topped back up to its target size from the live
///   candidates after removals.
/// * **Final Count-Min** — the pool (bucket winners + sample, first-entry
///   deduplicated) keeps a per-pair outcome cache and per-candidate
///   scores; only pairs involving a changed pool member are (re-)asked.
///
/// Answers are assumed **persistent** (pure functions of the query, the
/// paper's Section 2.2 property): a cached outcome then equals what
/// re-asking would return, which makes an incremental sweep
/// *decision-identical* to a full sweep over the same structure — pass
/// `full = true` to [`min_adv_incremental`] to force that reference
/// behaviour (everything replayed, everything re-asked).
///
/// Candidates are dense `usize` ids below the `id_bound` given at
/// construction (the hierarchy engine passes `2n - 1`, the id space of an
/// entire agglomeration).
#[derive(Debug)]
pub struct MinContest {
    rounds: usize,
    buckets_per_round: usize,
    sample_target: usize,
    /// `bucket_of[r][item]` = bucket of `item` in round `r`, or [`ABSENT`].
    bucket_of: Vec<Vec<u32>>,
    /// `buckets[r][b]` = member list (insertion order).
    buckets: Vec<Vec<Vec<usize>>>,
    /// Cached tournament winner per bucket.
    bucket_winner: Vec<Vec<Option<usize>>>,
    bucket_dirty: Vec<Vec<bool>>,
    /// Persistent sample (a multiset of live candidates).
    sample: Vec<usize>,
    /// Distinct contestants of the final Count-Min, insertion order.
    pool: Vec<usize>,
    /// `score[slot]` = pairs won by `pool[slot]` under the min orientation.
    score: Vec<u32>,
    /// `pool_slot[item]` = slot in `pool`, or [`ABSENT`].
    pool_slot: Vec<u32>,
    /// Pool reference counts (bucket winner roles + sample occurrences).
    refs: Vec<u32>,
    /// Stable per-item sequence numbers: query orientation and the final
    /// tie-break (lower sequence wins ties, mirroring Count-Max's
    /// first-maximal rule) are both keyed on them, so neither depends on
    /// the pool's mutable slot order.
    seq: Vec<u32>,
    next_seq: u32,
    /// `(seq_lo << 32 | seq_hi) -> le(item_lo, item_hi)` outcome cache.
    outcomes: std::collections::HashMap<u64, bool, nco_metric::hashing::MixBuildHasher>,
    /// Pool members that may be missing outcomes (new entries, touched
    /// keys) — the only candidates the next sweep pairs up, so steady
    /// state costs `O(|pending| * pool)` instead of `O(pool^2)`.
    pending: Vec<usize>,
    pending_flag: Vec<bool>,
    // Reusable round buffers.
    round_pairs: Vec<(usize, usize)>,
    round_answers: Vec<bool>,
    asked: Vec<(usize, usize)>,
    queued: std::collections::HashSet<u64, nco_metric::hashing::MixBuildHasher>,
    stats: ContestStats,
}

impl MinContest {
    /// Builds the structure over the initial `items`, resolving `(t, l, s)`
    /// from `params` exactly like [`max_adv`] does for `items.len()`
    /// candidates. Draws the `t` bucket deals and the initial sample from
    /// `rng`; issues no queries (the first [`min_adv_incremental`] call
    /// plays the tournaments and the Count-Min).
    ///
    /// # Panics
    /// Panics if `items` is empty, an item is not below `id_bound`, or
    /// `id_bound` does not fit the internal `u32` tables.
    pub fn new<R: Rng + ?Sized>(
        items: &[usize],
        id_bound: usize,
        params: &AdvParams,
        rng: &mut R,
    ) -> Self {
        assert!(!items.is_empty(), "contest needs at least one candidate");
        assert!(
            id_bound < u32::MAX as usize,
            "id_bound must fit the u32 tables"
        );
        assert!(items.iter().all(|&it| it < id_bound), "item out of bounds");
        let (t, l, s) = params.resolve(items.len());
        let mut contest = Self {
            rounds: t,
            buckets_per_round: l,
            sample_target: s,
            bucket_of: vec![vec![ABSENT; id_bound]; t],
            buckets: vec![vec![Vec::new(); l]; t],
            bucket_winner: vec![vec![None; l]; t],
            bucket_dirty: vec![vec![true; l]; t],
            sample: Vec::with_capacity(s),
            pool: Vec::new(),
            score: Vec::new(),
            pool_slot: vec![ABSENT; id_bound],
            refs: vec![0; id_bound],
            seq: vec![ABSENT; id_bound],
            next_seq: 0,
            outcomes: std::collections::HashMap::with_hasher(Default::default()),
            pending: Vec::new(),
            pending_flag: vec![false; id_bound],
            round_pairs: Vec::new(),
            round_answers: Vec::new(),
            asked: Vec::new(),
            queued: std::collections::HashSet::with_hasher(Default::default()),
            stats: ContestStats::default(),
        };
        // One random deal per round: shuffle, then chunk into l near-equal
        // parts — the same partition shape as `tournament_partition`.
        let mut deal: Vec<usize> = items.to_vec();
        for r in 0..t {
            deal.copy_from_slice(items);
            deal.shuffle(rng);
            let base = deal.len() / l;
            let extra = deal.len() % l;
            let mut start = 0;
            for b in 0..l {
                let size = base + usize::from(b < extra);
                for &it in &deal[start..start + size] {
                    contest.bucket_of[r][it] = b as u32;
                    contest.buckets[r][b].push(it);
                }
                start += size;
            }
        }
        contest.resample(items, rng);
        contest
    }

    /// Cumulative cost counters.
    pub fn stats(&self) -> ContestStats {
        self.stats
    }

    /// Registers a brand-new candidate: dealt into one uniformly random
    /// bucket per round (its buckets replay at the next sweep).
    ///
    /// # Panics
    /// Panics if the item is out of bounds or already present.
    pub fn insert<R: Rng + ?Sized>(&mut self, item: usize, rng: &mut R) {
        assert!(item < self.refs.len(), "item out of bounds");
        assert!(self.bucket_of[0][item] == ABSENT, "item already present");
        for r in 0..self.rounds {
            let b = rng.random_range(0..self.buckets_per_round);
            self.bucket_of[r][item] = b as u32;
            self.buckets[r][b].push(item);
            self.bucket_dirty[r][b] = true;
        }
    }

    /// Removes a dead candidate from its buckets, the sample and the pool.
    pub fn remove(&mut self, item: usize) {
        for r in 0..self.rounds {
            let b = self.bucket_of[r][item];
            if b == ABSENT {
                continue;
            }
            let b = b as usize;
            self.bucket_of[r][item] = ABSENT;
            self.buckets[r][b].retain(|&m| m != item);
            self.bucket_dirty[r][b] = true;
            if self.bucket_winner[r][b] == Some(item) {
                self.bucket_winner[r][b] = None;
                self.unref(item);
            }
        }
        let before = self.sample.len();
        self.sample.retain(|&m| m != item);
        for _ in 0..before - self.sample.len() {
            self.unref(item);
        }
        debug_assert_eq!(self.refs[item], 0, "dead candidate still referenced");
    }

    /// Marks a surviving candidate's key as changed: its buckets replay
    /// and its cached pool outcomes are discarded at the next sweep.
    pub fn touch(&mut self, item: usize) {
        for r in 0..self.rounds {
            let b = self.bucket_of[r][item];
            if b != ABSENT {
                self.bucket_dirty[r][b as usize] = true;
            }
        }
        if self.pool_slot[item] != ABSENT {
            self.drop_outcomes_of(item);
            self.mark_pending(item);
        }
    }

    /// Queues a pool member for the next sweep's missing-pair scan.
    fn mark_pending(&mut self, item: usize) {
        if !self.pending_flag[item] {
            self.pending_flag[item] = true;
            self.pending.push(item);
        }
    }

    /// Tops the persistent sample back up to its target size with uniform
    /// (with-replacement) draws from `live`.
    pub fn resample<R: Rng + ?Sized>(&mut self, live: &[usize], rng: &mut R) {
        if live.is_empty() {
            return;
        }
        while self.sample.len() < self.sample_target {
            let pick = live[rng.random_range(0..live.len())];
            self.sample.push(pick);
            self.reference(pick);
        }
    }

    /// Takes (or allocates) the item's stable sequence number.
    fn seq_of(&mut self, item: usize) -> u32 {
        if self.seq[item] == ABSENT {
            self.seq[item] = self.next_seq;
            self.next_seq += 1;
        }
        self.seq[item]
    }

    fn outcome_key(&self, a: usize, b: usize) -> u64 {
        let (sa, sb) = (self.seq[a], self.seq[b]);
        debug_assert!(sa != ABSENT && sb != ABSENT && sa != sb);
        let (lo, hi) = if sa < sb { (sa, sb) } else { (sb, sa) };
        (u64::from(lo) << 32) | u64::from(hi)
    }

    /// Adds one pool reference; first reference enters the pool (and
    /// queues the member for the next sweep's missing-pair scan).
    fn reference(&mut self, item: usize) {
        self.refs[item] += 1;
        if self.refs[item] == 1 {
            self.seq_of(item);
            self.pool_slot[item] = self.pool.len() as u32;
            self.pool.push(item);
            self.score.push(0);
            self.mark_pending(item);
        }
    }

    /// Drops one pool reference; the last reference leaves the pool and
    /// retires the member's cached outcomes.
    fn unref(&mut self, item: usize) {
        debug_assert!(self.refs[item] > 0, "unref of an unreferenced item");
        self.refs[item] -= 1;
        if self.refs[item] > 0 {
            return;
        }
        self.drop_outcomes_of(item);
        let slot = self.pool_slot[item] as usize;
        self.pool.swap_remove(slot);
        self.score.swap_remove(slot);
        self.pool_slot[item] = ABSENT;
        if slot < self.pool.len() {
            self.pool_slot[self.pool[slot]] = slot as u32;
        }
    }

    /// Forgets every cached outcome involving a pool member, rolling the
    /// winners' scores back so the pairs can be re-asked.
    fn drop_outcomes_of(&mut self, item: usize) {
        debug_assert!(self.pool_slot[item] != ABSENT);
        for slot in 0..self.pool.len() {
            let other = self.pool[slot];
            if other == item {
                continue;
            }
            let key = self.outcome_key(item, other);
            if let Some(le) = self.outcomes.remove(&key) {
                let winner = self.pair_winner(item, other, le);
                self.score[self.pool_slot[winner] as usize] -= 1;
            }
        }
    }

    /// The min-orientation winner of an asked pair: queries are oriented
    /// lower-sequence first, and `le(lo, hi) == true` means `lo`'s key is
    /// not larger, so `lo` takes the point.
    fn pair_winner(&self, a: usize, b: usize, le: bool) -> usize {
        let (lo, hi) = if self.seq[a] < self.seq[b] {
            (a, b)
        } else {
            (b, a)
        };
        if le {
            lo
        } else {
            hi
        }
    }

    /// One sweep: replays dirty bucket tournaments (batched level by
    /// level), re-asks missing pool pairs (one batched round), and returns
    /// the Count-Min winner — max score, ties to the lower sequence
    /// number. `full = true` forces the from-scratch reference sweep.
    fn run<C: Comparator<usize>>(&mut self, cmp: &mut C, full: bool) -> Option<usize> {
        if full {
            self.stats.full_sweeps += 1;
            self.outcomes.clear();
            self.score.fill(0);
            for round in self.bucket_dirty.iter_mut() {
                round.fill(true);
            }
        }

        // Stage 1 + 2: replay dirty bucket tournaments. All dirty buckets
        // advance level by level together, one batched comparator round
        // per level, in (round, bucket) order. NOTE: this is the MIN
        // sibling of the level-batched brackets in
        // `super::tournament::{tournament, tournament_partition}` (their
        // winner orientation is reversed: there `le == true` promotes the
        // second item, here the first) — a fix to the pairing, odd-tail
        // or answer-cursor logic in any of the three must visit the
        // others.
        let mut replays: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        for r in 0..self.rounds {
            for b in 0..self.buckets_per_round {
                if self.bucket_dirty[r][b] {
                    replays.push((r, b, self.buckets[r][b].clone()));
                }
            }
        }
        loop {
            self.round_pairs.clear();
            for (_, _, cur) in &replays {
                for pair in cur.chunks(2) {
                    if let [a, b] = *pair {
                        self.round_pairs.push((a, b));
                    }
                }
            }
            if self.round_pairs.is_empty() {
                break;
            }
            self.stats.bucket_duels += self.round_pairs.len() as u64;
            self.round_answers.clear();
            cmp.le_round(&self.round_pairs, &mut self.round_answers);
            let mut at = 0;
            for (_, _, cur) in replays.iter_mut() {
                let mut write = 0;
                let mut read = 0;
                while read < cur.len() {
                    cur[write] = if read + 1 < cur.len() {
                        let won = self.round_answers[at];
                        at += 1;
                        if won {
                            cur[read]
                        } else {
                            cur[read + 1]
                        }
                    } else {
                        cur[read]
                    };
                    write += 1;
                    read += 2;
                }
                cur.truncate(write);
            }
            debug_assert_eq!(at, self.round_answers.len());
        }
        for (r, b, cur) in replays {
            self.stats.bucket_replays += 1;
            let new_winner = cur.first().copied();
            let old_winner = self.bucket_winner[r][b];
            if new_winner != old_winner {
                if let Some(old) = old_winner {
                    self.unref(old);
                }
                if let Some(new) = new_winner {
                    self.reference(new);
                }
                self.bucket_winner[r][b] = new_winner;
            }
            self.bucket_dirty[r][b] = false;
        }

        // Stage 3: the final Count-Min over the pool — ask only the pairs
        // with no cached outcome, batched. Missing pairs can only involve
        // a *pending* member (new pool entry or touched key), so the
        // steady-state scan is O(|pending| * pool); a full sweep asks the
        // whole triangle. Pairs are oriented lower sequence number first,
        // so a pair is always the same oracle query no matter which sweep
        // asks it (ask *order* cannot matter: answers are pure functions
        // of the query under persistent noise).
        let mut asked = std::mem::take(&mut self.asked);
        asked.clear();
        if full {
            for i in 0..self.pool.len() {
                for j in i + 1..self.pool.len() {
                    let (a, b) = (self.pool[i], self.pool[j]);
                    if self.seq[a] < self.seq[b] {
                        asked.push((a, b));
                    } else {
                        asked.push((b, a));
                    }
                }
            }
        } else {
            self.queued.clear();
            for idx in 0..self.pending.len() {
                let m = self.pending[idx];
                if self.pool_slot[m] == ABSENT {
                    continue; // marked, then left the pool before the sweep
                }
                for slot in 0..self.pool.len() {
                    let o = self.pool[slot];
                    if o == m {
                        continue;
                    }
                    let key = self.outcome_key(m, o);
                    if self.outcomes.contains_key(&key) || !self.queued.insert(key) {
                        continue;
                    }
                    if self.seq[m] < self.seq[o] {
                        asked.push((m, o));
                    } else {
                        asked.push((o, m));
                    }
                }
            }
        }
        for chunk in asked.chunks(4096) {
            self.round_answers.clear();
            cmp.le_round(chunk, &mut self.round_answers);
            self.stats.pool_duels += chunk.len() as u64;
            for (&(lo, hi), &le) in chunk.iter().zip(self.round_answers.iter()) {
                self.outcomes.insert(self.outcome_key(lo, hi), le);
                let winner = if le { lo } else { hi };
                self.score[self.pool_slot[winner] as usize] += 1;
            }
        }
        self.asked = asked;
        for idx in 0..self.pending.len() {
            let m = self.pending[idx];
            self.pending_flag[m] = false;
        }
        self.pending.clear();

        let mut best: Option<usize> = None;
        for (slot, &item) in self.pool.iter().enumerate() {
            let better = match best {
                None => true,
                Some(b) => {
                    let (bs, is) = (self.score[self.pool_slot[b] as usize], self.score[slot]);
                    is > bs || (is == bs && self.seq[item] < self.seq[b])
                }
            };
            if better {
                best = Some(item);
            }
        }
        best
    }
}

/// One sweep of the incremental minimum engine: re-contests the dirty
/// parts of `contest` (everything, when `full`) and returns the current
/// approximate-minimum candidate — `None` only when the contest holds no
/// candidates. See [`MinContest`] for the structure and its guarantees.
pub fn min_adv_incremental<C: Comparator<usize>>(
    contest: &mut MinContest,
    cmp: &mut C,
    full: bool,
) -> Option<usize> {
    contest.run(cmp, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::{ExactKeyCmp, ValueCmp};
    use nco_oracle::adversarial::{
        AdversarialValueOracle, InvertAdversary, PersistentRandomAdversary,
    };
    use nco_oracle::counting::Counting;
    use nco_oracle::TrueValueOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn params_resolution() {
        let p = AdvParams::experimental();
        let (t, l, s) = p.resolve(100);
        assert_eq!((t, l, s), (1, 10, 10));
        let p = AdvParams::with_confidence(0.1);
        assert_eq!(p.rounds, 9); // ceil(2 * log2(20)) = ceil(8.64)
        let p = AdvParams {
            rounds: 2,
            partitions: Some(5),
            sample_size: Some(7),
        };
        assert_eq!(p.resolve(100), (2, 5, 7));
    }

    #[test]
    fn exact_comparator_returns_true_max() {
        let keys: Vec<f64> = (0..200).map(|i| ((i * 71) % 997) as f64).collect();
        let items: Vec<usize> = (0..200).collect();
        let best = max_adv(
            &items,
            &AdvParams::with_confidence(0.05),
            &mut ExactKeyCmp::new(&keys),
            &mut rng(11),
        )
        .unwrap();
        let true_best = (0..200)
            .max_by(|&a, &b| keys[a].total_cmp(&keys[b]))
            .unwrap();
        assert_eq!(best, true_best);
        let worst = min_adv(
            &items,
            &AdvParams::with_confidence(0.05),
            &mut ExactKeyCmp::new(&keys),
            &mut rng(12),
        )
        .unwrap();
        let true_worst = (0..200)
            .min_by(|&a, &b| keys[a].total_cmp(&keys[b]))
            .unwrap();
        assert_eq!(worst, true_worst);
    }

    #[test]
    fn tiny_inputs() {
        let keys = [4.0, 9.0];
        let p = AdvParams::experimental();
        assert_eq!(
            max_adv::<usize, _, _>(&[], &p, &mut ExactKeyCmp::new(&keys), &mut rng(0)),
            None
        );
        assert_eq!(
            max_adv(&[0], &p, &mut ExactKeyCmp::new(&keys), &mut rng(0)),
            Some(0)
        );
        assert_eq!(
            max_adv(&[0, 1], &p, &mut ExactKeyCmp::new(&keys), &mut rng(0)),
            Some(1)
        );
    }

    /// Theorem 3.6's bound against the worst-case adversary, checked over
    /// many seeds: the returned value must be within (1+mu)^3 of the max in
    /// at least a 1 - delta fraction of runs (with slack for the finite
    /// trial count).
    #[test]
    fn theorem_3_6_bound_against_invert_adversary() {
        let mu = 0.5f64;
        let n = 256usize;
        // Geometric-ish values: plenty of in-band confusion everywhere.
        let values: Vec<f64> = (0..n)
            .map(|i| 1.0 * (1.0 + mu * 0.35).powi(i as i32 % 40))
            .collect();
        let vmax = values.iter().cloned().fold(0.0, f64::max);
        let params = AdvParams::with_confidence(0.1);
        let items: Vec<usize> = (0..n).collect();
        let mut ok = 0;
        let trials = 40;
        for seed in 0..trials {
            let mut oracle = AdversarialValueOracle::new(values.clone(), mu, InvertAdversary);
            let got = max_adv(
                &items,
                &params,
                &mut ValueCmp::new(&mut oracle),
                &mut rng(1000 + seed),
            )
            .unwrap();
            if values[got] * (1.0 + mu).powi(3) >= vmax - 1e-9 {
                ok += 1;
            }
        }
        assert!(
            ok >= trials * 8 / 10,
            "bound held in only {ok}/{trials} trials"
        );
    }

    #[test]
    fn query_complexity_is_near_linear() {
        // O(n t + (sqrt(n) t + sqrt(n))^2) with t = O(log 1/delta):
        // c * n * log2(1/delta)^2 queries is the theorem's budget.
        for n in [256usize, 1024, 4096] {
            let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut oracle = Counting::new(TrueValueOracle::new(values));
            let items: Vec<usize> = (0..n).collect();
            let delta = 0.1;
            let params = AdvParams::with_confidence(delta);
            let _ = max_adv(
                &items,
                &params,
                &mut ValueCmp::new(&mut oracle),
                &mut rng(5),
            );
            let log_term = (1.0 / delta).log2();
            let budget = (16.0 * n as f64 * log_term * log_term) as u64;
            assert!(
                oracle.queries() <= budget,
                "n = {n}: {} queries > budget {budget}",
                oracle.queries()
            );
        }
    }

    /// Under an exact comparator the incremental contest always returns a
    /// true minimum, across inserts, removals, key changes and resampling.
    #[test]
    fn incremental_contest_tracks_the_true_minimum_under_exact_comparator() {
        let id_bound = 128usize;
        let mut keys: Vec<f64> = (0..id_bound)
            .map(|i| ((i * 37 + 11) % 997) as f64)
            .collect();
        let mut live: Vec<usize> = (0..40).collect();
        let mut r = rng(71);
        let mut contest = MinContest::new(&live, id_bound, &AdvParams::experimental(), &mut r);
        let mut winner =
            min_adv_incremental(&mut contest, &mut ExactKeyCmp::new(&keys), true).unwrap();
        for step in 0..30usize {
            let true_min = live.iter().map(|&i| keys[i]).fold(f64::INFINITY, f64::min);
            assert_eq!(keys[winner], true_min, "step {step}");
            // Winner dies; a fresh candidate arrives; one survivor's key
            // changes in place.
            contest.remove(winner);
            live.retain(|&c| c != winner);
            let fresh = 40 + step;
            keys[fresh] = ((step * 131 + 7) % 991) as f64;
            contest.insert(fresh, &mut r);
            live.push(fresh);
            let moved = live[(step * 13) % live.len()];
            keys[moved] = ((step * 57 + 3) % 983) as f64 + 0.5;
            contest.touch(moved);
            contest.resample(&live, &mut r);
            winner =
                min_adv_incremental(&mut contest, &mut ExactKeyCmp::new(&keys), false).unwrap();
        }
        let s = contest.stats();
        assert_eq!(s.full_sweeps, 1, "only the initial sweep is full");
        assert!(s.bucket_replays > 0 && s.pool_duels > 0);
    }

    /// Incremental sweeps are decision-identical to full sweeps over the
    /// same structure under persistent noise: two identically-driven
    /// contests, one cached and one forced full, agree on every winner.
    #[test]
    fn incremental_sweeps_match_full_sweeps_under_persistent_noise() {
        for seed in 0..10u64 {
            let id_bound = 96usize;
            let values: Vec<f64> = (0..id_bound)
                .map(|i| 1.0 + ((i * 29) % 83) as f64)
                .collect();
            let start: Vec<usize> = (0..48).collect();
            let mut oracle_a =
                nco_oracle::probabilistic::ProbValueOracle::new(values.clone(), 0.25, 400 + seed);
            let mut oracle_b =
                nco_oracle::probabilistic::ProbValueOracle::new(values.clone(), 0.25, 400 + seed);
            let params = AdvParams::experimental();
            let mut rng_a = rng(seed);
            let mut rng_b = rng(seed);
            let mut a = MinContest::new(&start, id_bound, &params, &mut rng_a);
            let mut b = MinContest::new(&start, id_bound, &params, &mut rng_b);
            let mut live = start;
            let mut wa =
                min_adv_incremental(&mut a, &mut ValueCmp::new(&mut oracle_a), true).unwrap();
            let mut wb =
                min_adv_incremental(&mut b, &mut ValueCmp::new(&mut oracle_b), true).unwrap();
            for step in 0..24usize {
                assert_eq!(wa, wb, "seed {seed}, step {step}");
                a.remove(wa);
                b.remove(wb);
                live.retain(|&c| c != wa);
                let fresh = 48 + (step % 48);
                if !live.contains(&fresh) {
                    a.insert(fresh, &mut rng_a);
                    b.insert(fresh, &mut rng_b);
                    live.push(fresh);
                }
                let moved = live[(step * 7) % live.len()];
                a.touch(moved);
                b.touch(moved);
                a.resample(&live, &mut rng_a);
                b.resample(&live, &mut rng_b);
                wa = min_adv_incremental(&mut a, &mut ValueCmp::new(&mut oracle_a), false).unwrap();
                wb = min_adv_incremental(&mut b, &mut ValueCmp::new(&mut oracle_b), true).unwrap();
            }
            assert_eq!(a.stats().full_sweeps, 1, "cached contest swept once");
            assert_eq!(b.stats().full_sweeps, 25, "reference contest always full");
        }
    }

    #[test]
    fn random_adversary_still_within_bound_most_runs() {
        let mu = 1.0f64;
        let n = 200usize;
        let values: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.05).collect();
        let vmax = values.iter().cloned().fold(0.0, f64::max);
        let items: Vec<usize> = (0..n).collect();
        let mut ok = 0;
        let trials = 30;
        for seed in 0..trials {
            let mut oracle = AdversarialValueOracle::new(
                values.clone(),
                mu,
                PersistentRandomAdversary::new(seed),
            );
            let got = max_adv(
                &items,
                &AdvParams::with_confidence(0.1),
                &mut ValueCmp::new(&mut oracle),
                &mut rng(300 + seed),
            )
            .unwrap();
            if values[got] * (1.0 + mu).powi(3) >= vmax {
                ok += 1;
            }
        }
        assert!(ok >= trials * 8 / 10, "only {ok}/{trials} within bound");
    }
}
