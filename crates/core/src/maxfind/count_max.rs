//! Algorithm 1 — Count-Max.
//!
//! `Count(v, S)` is the number of elements of `S` the oracle deems smaller
//! than `v`; the item with the highest count is returned. Lemma 3.1: under
//! adversarial noise the winner is always within `(1+mu)^2` of the true
//! maximum, because the true maximum beats everything below the band while
//! a pretender more than `(1+mu)^2` below it cannot out-score it.
//!
//! We issue **one query per unordered pair** and credit the winner — the
//! paper's ordered formulation asks both `O(u,v)` and `O(v,u)`, but every
//! proof only uses out-of-band correctness (adversarial) or per-pair
//! independence (probabilistic), both of which are preserved; the constant
//! in the query count halves (documented deviation, DESIGN.md §6.2).

use crate::comparator::{Comparator, Rev};

/// One head-to-head comparison; returns the item the comparator deems
/// larger. A binary tournament match costs exactly this one query
/// (Claim 8.2's accounting).
#[inline]
pub fn duel<I: Copy, C: Comparator<I>>(a: I, b: I, cmp: &mut C) -> I {
    if cmp.le(a, b) {
        b
    } else {
        a
    }
}

/// `Count(v, S)` scores for every item: `scores[i]` is the number of pairs
/// item `i` won. Issues `|items| * (|items| - 1) / 2` queries.
pub fn count_scores<I: Copy, C: Comparator<I>>(items: &[I], cmp: &mut C) -> Vec<u32> {
    let mut scores = Vec::new();
    count_scores_into(items, cmp, &mut scores);
    scores
}

/// Upper bound on one scoring round's buffer (pairs); the triangle is cut
/// into rounds of at most this many queries, so the working set stays a
/// few cache-resident KiB no matter how large the item set is.
const SCORE_ROUND_CHUNK: usize = 4096;

/// [`count_scores`] into a caller-provided buffer — the reusable-capacity
/// form for engines that score repeatedly.
///
/// The upper triangle is issued as batched comparator rounds
/// ([`Comparator::le_round`]) of at most `SCORE_ROUND_CHUNK` pairs, in
/// the same `(i, j), i < j` order the scalar loops used, so oracle-backed
/// comparators amortise per-query dispatch across rounds while answers
/// (and query counts) stay bit-identical — and the round buffers stay
/// O(1) instead of O(n²).
pub fn count_scores_into<I: Copy, C: Comparator<I>>(
    items: &[I],
    cmp: &mut C,
    scores: &mut Vec<u32>,
) {
    let n = items.len();
    scores.clear();
    scores.resize(n, 0);
    if n < 2 {
        return;
    }
    let cap = SCORE_ROUND_CHUNK.min(n * (n - 1) / 2);
    let mut round: Vec<(I, I)> = Vec::with_capacity(cap);
    let mut answers: Vec<bool> = Vec::with_capacity(cap);
    // The scoring walk re-derives each flushed pair's `(i, j)` by
    // replaying the same row-major triangle order the builder used, so no
    // per-pair index buffer is carried alongside the round.
    let (mut si, mut sj) = (0usize, 1usize);
    let mut flush = |round: &mut Vec<(I, I)>, answers: &mut Vec<bool>, cmp: &mut C| {
        answers.clear();
        cmp.le_round(round, answers);
        debug_assert_eq!(answers.len(), round.len());
        for &ans in answers.iter() {
            if ans {
                scores[sj] += 1;
            } else {
                scores[si] += 1;
            }
            sj += 1;
            if sj == n {
                si += 1;
                sj = si + 1;
            }
        }
        round.clear();
    };
    for i in 0..n {
        let vi = items[i];
        for &vj in items.iter().skip(i + 1) {
            round.push((vi, vj));
            if round.len() == SCORE_ROUND_CHUNK {
                flush(&mut round, &mut answers, cmp);
            }
        }
    }
    if !round.is_empty() {
        flush(&mut round, &mut answers, cmp);
    }
}

/// Parallel twin of [`count_scores`]: rows of the query triangle are
/// striped across `threads` workers (row `i` carries `n - 1 - i` queries,
/// so striping balances the load), each accumulating into a local score
/// vector that is summed afterwards. The query *multiset* is exactly the
/// serial triangle and scores are additive, so the result is identical.
#[cfg(feature = "parallel")]
pub fn count_scores_par<I, C>(items: &[I], cmp: &C, threads: usize) -> Vec<u32>
where
    I: Copy + Sync,
    C: crate::parallel::SyncComparator<I>,
{
    if threads <= 1 {
        // One worker: the serial triangle is bit-identical; skip spawning.
        return count_scores(items, &mut crate::parallel::AsSerial(cmp));
    }
    let n = items.len();
    let mut scores = vec![0u32; n];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads.min(n.max(1)) {
            handles.push(scope.spawn(move || {
                let mut local = vec![0u32; n];
                let mut i = t;
                while i < n {
                    let vi = items[i];
                    for (j, &vj) in items.iter().enumerate().skip(i + 1) {
                        if cmp.le(vi, vj) {
                            local[j] += 1;
                        } else {
                            local[i] += 1;
                        }
                    }
                    i += threads;
                }
                local
            }));
        }
        for h in handles {
            let local = h.join().expect("scoring worker panicked");
            for (s, l) in scores.iter_mut().zip(local) {
                *s += l;
            }
        }
    });
    scores
}

/// Parallel twin of [`count_max`], built on [`count_scores_par`]. Same
/// tie-breaking, bit-identical winner.
#[cfg(feature = "parallel")]
pub fn count_max_par<I, C>(items: &[I], cmp: &C, threads: usize) -> Option<I>
where
    I: Copy + Sync,
    C: crate::parallel::SyncComparator<I>,
{
    match items.len() {
        0 => None,
        1 => Some(items[0]),
        2 => Some(duel(
            items[0],
            items[1],
            &mut crate::parallel::AsSerial(cmp),
        )),
        _ => {
            let scores = count_scores_par(items, cmp, threads);
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?
                .0;
            Some(items[best])
        }
    }
}

/// Algorithm 1: returns the item with the highest `Count` score (first
/// maximal on ties — "breaking ties arbitrarily").
pub fn count_max<I: Copy, C: Comparator<I>>(items: &[I], cmp: &mut C) -> Option<I> {
    match items.len() {
        0 => None,
        1 => Some(items[0]),
        2 => Some(duel(items[0], items[1], cmp)),
        _ => {
            let scores = count_scores(items, cmp);
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?
                .0;
            Some(items[best])
        }
    }
}

/// Count-Max for the minimum: identical engine with the comparator
/// reversed (the Section 3.2 "count Yes answers" variant).
pub fn count_min<I: Copy, C: Comparator<I>>(items: &[I], cmp: &mut C) -> Option<I> {
    count_max(items, &mut Rev(cmp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::{ExactKeyCmp, ValueCmp};
    use nco_oracle::adversarial::{AdversarialValueOracle, InvertAdversary};
    use nco_oracle::counting::Counting;
    use nco_oracle::TrueValueOracle;

    #[test]
    fn exact_comparator_finds_true_extrema() {
        let keys = [3.0, 9.0, 1.0, 7.0];
        let items: Vec<usize> = (0..4).collect();
        assert_eq!(count_max(&items, &mut ExactKeyCmp::new(&keys)), Some(1));
        assert_eq!(count_min(&items, &mut ExactKeyCmp::new(&keys)), Some(2));
        assert_eq!(count_max(&[], &mut ExactKeyCmp::new(&keys)), None);
        assert_eq!(count_max(&[3], &mut ExactKeyCmp::new(&keys)), Some(3));
    }

    #[test]
    fn query_count_is_one_per_unordered_pair() {
        let mut oracle = Counting::new(TrueValueOracle::new((0..10).map(f64::from).collect()));
        let items: Vec<usize> = (0..10).collect();
        let _ = count_max(&items, &mut ValueCmp::new(&mut oracle));
        assert_eq!(oracle.queries(), 45);
    }

    /// Example 3.2 of the paper: values 51, 101, 102, 202 with mu = 1. The
    /// oracle must answer O(u, t) correctly; if it lies everywhere else, the
    /// Count scores become (u, v, w, t) = (2, 2, 1, 1) and Count-Max returns
    /// u or v — a ~3.96 approximation, witnessing the (1+mu)^2 bound.
    #[test]
    fn paper_example_3_2_worst_case() {
        let values = vec![51.0, 101.0, 102.0, 202.0]; // u, v, w, t
        let mut oracle = AdversarialValueOracle::new(values.clone(), 1.0, InvertAdversary);
        let items: Vec<usize> = (0..4).collect();
        let scores = count_scores(&items, &mut ValueCmp::new(&mut oracle));
        // Only (u, t) = (51, 202) is out of band: t gets that point.
        // All other pairs are answered adversarially (smaller side wins).
        assert_eq!(scores, vec![2, 2, 1, 1]);
        let winner = count_max(&items, &mut ValueCmp::new(&mut oracle)).unwrap();
        let ratio = 202.0 / values[winner];
        assert!(ratio <= (1.0 + 1.0) * (1.0 + 1.0) + 1e-12, "ratio {ratio}");
    }

    /// Lemma 3.1 as an exhaustive small-n property: against the always-lying
    /// adversary the winner is never below v_max / (1+mu)^2.
    #[test]
    fn lemma_3_1_bound_exhaustive() {
        for mu in [0.2, 0.5, 1.0] {
            for scale in 1..6 {
                let values: Vec<f64> = (0..12)
                    .map(|i| (1.0f64 + mu * 0.4).powi(i) * scale as f64)
                    .collect();
                let vmax = values.iter().cloned().fold(0.0, f64::max);
                let mut oracle = AdversarialValueOracle::new(values.clone(), mu, InvertAdversary);
                let items: Vec<usize> = (0..values.len()).collect();
                let w = count_max(&items, &mut ValueCmp::new(&mut oracle)).unwrap();
                assert!(
                    values[w] * (1.0 + mu).powi(2) >= vmax - 1e-9,
                    "mu={mu}: got {} vs max {vmax}",
                    values[w]
                );
            }
        }
    }

    #[test]
    fn duel_returns_larger_under_exact_comparator() {
        let keys = [1.0, 2.0];
        let mut cmp = ExactKeyCmp::new(&keys);
        assert_eq!(duel(0, 1, &mut cmp), 1);
        assert_eq!(duel(1, 0, &mut cmp), 1);
    }
}
