//! Algorithms 2 and 3 — Tournament and Tournament-Partition.
//!
//! A balanced λ-ary tournament assigns a random permutation of the items to
//! the leaves and promotes, at every internal node, the Count-Max winner of
//! its children. Each level loses at most a `(1+mu)^2` factor (Lemma 3.3),
//! so λ trades queries (`O(nλ)`) against approximation
//! (`(1+mu)^{2 log_λ n}`). The binary case (λ = 2, the paper's `Tour2`
//! baseline) plays one query per match — Claim 8.2's `<= 2|V|` accounting.
//!
//! Tournament-Partition (Algorithm 3) shuffles the items into `l` equal
//! parts and returns the binary-tournament winner of each part; Max-Adv
//! uses it to protect the true maximum from its confusion band (Lemma 8.6:
//! with `l = sqrt(n)` parts, the band members land in the max's part with
//! probability at most 1/2).

use super::count_max::{count_max, duel};
use crate::comparator::Comparator;
use rand::seq::SliceRandom;
use rand::Rng;

/// Algorithm 2: λ-ary tournament over `items`; returns the root.
///
/// `lambda >= 2`. `lambda = 2` plays single-query duels; larger arities run
/// Count-Max among each node's children.
pub fn tournament<I: Copy, C: Comparator<I>, R: Rng + ?Sized>(
    items: &[I],
    lambda: usize,
    cmp: &mut C,
    rng: &mut R,
) -> Option<I> {
    assert!(lambda >= 2, "tournament arity must be at least 2");
    if items.is_empty() {
        return None;
    }
    // One allocation for the whole tournament: each level compacts its
    // winners into the prefix of the same buffer (the write cursor never
    // overtakes the read cursor), so no per-round `Vec` is built.
    let mut round: Vec<I> = items.to_vec();
    round.shuffle(rng);
    if lambda == 2 {
        // Binary case: a level's duels are independent, so each level is
        // issued as ONE batched comparator round — the same queries in
        // the same left-to-right order as the scalar loop (bit-identical
        // answers and billing), but with the memory latency of the
        // lookups overlapped instead of serialised duel by duel.
        // NOTE: `tournament_partition` below and `MinContest`'s bucket
        // replay (min orientation) carry siblings of this loop over
        // different storage — fixes here must visit them too.
        let mut pairs: Vec<(I, I)> = Vec::with_capacity(round.len() / 2);
        let mut answers: Vec<bool> = Vec::with_capacity(round.len() / 2);
        let mut len = round.len();
        while len > 1 {
            pairs.clear();
            let mut start = 0;
            while start + 1 < len {
                pairs.push((round[start], round[start + 1]));
                start += 2;
            }
            answers.clear();
            cmp.le_round(&pairs, &mut answers);
            let mut write = 0;
            let mut start = 0;
            while start < len {
                round[write] = if start + 1 < len {
                    let a = round[start];
                    let b = round[start + 1];
                    if answers[write] {
                        b
                    } else {
                        a
                    }
                } else {
                    round[start]
                };
                write += 1;
                start += 2;
            }
            len = write;
        }
        return Some(round[0]);
    }
    let mut len = round.len();
    while len > 1 {
        let mut write = 0;
        let mut start = 0;
        while start < len {
            let end = (start + lambda).min(len);
            let group = &round[start..end];
            let winner = match group.len() {
                1 => group[0],
                2 => duel(group[0], group[1], cmp),
                _ => count_max(group, cmp).expect("non-empty group"),
            };
            round[write] = winner;
            write += 1;
            start = end;
        }
        len = write;
    }
    Some(round[0])
}

/// Parallel twin of [`tournament`]: every level's matches fan across
/// `threads` chunks of groups under `std::thread::scope`.
///
/// Bit-identical to the serial run (see [`crate::parallel`]): the shuffle
/// is drawn serially from the same rng stream, levels keep the same group
/// boundaries, each worker plays exactly the matches the serial loop
/// would play for its groups, and winners are reassembled in group order.
#[cfg(feature = "parallel")]
pub fn tournament_par<I, C, R>(
    items: &[I],
    lambda: usize,
    cmp: &C,
    rng: &mut R,
    threads: usize,
) -> Option<I>
where
    I: Copy + Send + Sync,
    C: crate::parallel::SyncComparator<I>,
    R: Rng + ?Sized,
{
    use crate::parallel::AsSerial;
    if threads <= 1 {
        // One worker: skip the fan-out; the serial engine is bit-identical.
        return tournament(items, lambda, &mut AsSerial(cmp), rng);
    }
    assert!(lambda >= 2, "tournament arity must be at least 2");
    if items.is_empty() {
        return None;
    }
    let mut round: Vec<I> = items.to_vec();
    round.shuffle(rng);
    let mut len = round.len();
    while len > 1 {
        let groups = len.div_ceil(lambda);
        let per_thread = groups.div_ceil(threads);
        let mut winners: Vec<I> = Vec::with_capacity(groups);
        std::thread::scope(|scope| {
            let live = &round[..len];
            let mut handles = Vec::with_capacity(threads);
            let mut g0 = 0;
            while g0 < groups {
                let g1 = (g0 + per_thread).min(groups);
                handles.push(scope.spawn(move || {
                    let mut serial = AsSerial(cmp);
                    let mut local = Vec::with_capacity(g1 - g0);
                    for g in g0..g1 {
                        let start = g * lambda;
                        let group = &live[start..(start + lambda).min(len)];
                        let winner = match group.len() {
                            1 => group[0],
                            2 => duel(group[0], group[1], &mut serial),
                            _ => count_max(group, &mut serial).expect("non-empty group"),
                        };
                        local.push(winner);
                    }
                    local
                }));
                g0 = g1;
            }
            for h in handles {
                winners.extend(h.join().expect("tournament worker panicked"));
            }
        });
        round[..winners.len()].copy_from_slice(&winners);
        len = winners.len();
    }
    Some(round[0])
}

/// Algorithm 3: randomly partition `items` into `l` (nearly) equal parts and
/// return each part's binary-tournament winner.
///
/// `l` is clamped to `[1, items.len()]`.
///
/// All parts advance **level-synchronously**, each level issued as one
/// batched comparator round across every part. This is bit-identical to
/// playing each part's [`tournament`] to completion in part order: the
/// rng draws are unchanged (the global shuffle, then each part's
/// within-part shuffle, in part order — duels draw no randomness), every
/// part keeps its own bracket, and duel answers are pure functions of
/// their queries — only the interleaving of queries *between* parts
/// differs, which batching-contract oracles cannot observe.
pub fn tournament_partition<I: Copy, C: Comparator<I>, R: Rng + ?Sized>(
    items: &[I],
    l: usize,
    cmp: &mut C,
    rng: &mut R,
) -> Vec<I> {
    if items.is_empty() {
        return Vec::new();
    }
    let l = l.clamp(1, items.len());
    let mut shuffled: Vec<I> = items.to_vec();
    shuffled.shuffle(rng);
    // Split into l contiguous chunks of near-equal size; shuffle each
    // chunk in part order (the draws `tournament` would have made).
    let base = shuffled.len() / l;
    let extra = shuffled.len() % l;
    let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(l);
    let mut start = 0;
    for part in 0..l {
        let size = base + usize::from(part < extra);
        shuffled[start..start + size].shuffle(rng);
        bounds.push((start, size));
        start += size;
    }
    // Level-synchronous duels: each part compacts its winners into the
    // prefix of its own chunk, one batched round per level.
    let mut pairs: Vec<(I, I)> = Vec::with_capacity(shuffled.len() / 2);
    let mut answers: Vec<bool> = Vec::new();
    loop {
        pairs.clear();
        for &(start, len) in &bounds {
            let mut k = 0;
            while k + 1 < len {
                pairs.push((shuffled[start + k], shuffled[start + k + 1]));
                k += 2;
            }
        }
        if pairs.is_empty() {
            break;
        }
        answers.clear();
        cmp.le_round(&pairs, &mut answers);
        let mut at = 0;
        for (start, len) in bounds.iter_mut() {
            let mut write = 0;
            let mut k = 0;
            while k < *len {
                shuffled[*start + write] = if k + 1 < *len {
                    let winner = if answers[at] {
                        shuffled[*start + k + 1]
                    } else {
                        shuffled[*start + k]
                    };
                    at += 1;
                    winner
                } else {
                    shuffled[*start + k]
                };
                write += 1;
                k += 2;
            }
            *len = write;
        }
        debug_assert_eq!(at, answers.len());
    }
    bounds
        .iter()
        .filter(|&&(_, len)| len > 0)
        .map(|&(start, _)| shuffled[start])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::{ExactKeyCmp, ValueCmp};
    use nco_oracle::counting::Counting;
    use nco_oracle::{ComparisonOracle, TrueValueOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exact_tournament_finds_true_max_any_arity() {
        let keys: Vec<f64> = (0..33).map(|i| ((i * 37) % 100) as f64).collect();
        let items: Vec<usize> = (0..keys.len()).collect();
        let true_max = 27; // 27*37 % 100 = 99
        for lambda in [2, 3, 5, 33] {
            let got = tournament(&items, lambda, &mut ExactKeyCmp::new(&keys), &mut rng(1));
            assert_eq!(got, Some(true_max), "lambda = {lambda}");
        }
    }

    #[test]
    fn binary_tournament_uses_at_most_n_minus_one_queries() {
        for n in [2usize, 7, 16, 33, 100] {
            let mut oracle =
                Counting::new(TrueValueOracle::new((0..n).map(|i| i as f64).collect()));
            let items: Vec<usize> = (0..n).collect();
            let _ = tournament(&items, 2, &mut ValueCmp::new(&mut oracle), &mut rng(2));
            assert_eq!(oracle.queries(), (n - 1) as u64, "n = {n}");
        }
    }

    #[test]
    fn lambda_n_degenerates_to_count_max() {
        let n = 12usize;
        let mut oracle = Counting::new(TrueValueOracle::new((0..n).map(|i| i as f64).collect()));
        let items: Vec<usize> = (0..n).collect();
        let got = tournament(&items, n, &mut ValueCmp::new(&mut oracle), &mut rng(3));
        assert_eq!(got, Some(n - 1));
        assert_eq!(oracle.queries(), (n * (n - 1) / 2) as u64);
    }

    #[test]
    fn partition_returns_one_winner_per_part() {
        let keys: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let items: Vec<usize> = (0..20).collect();
        let winners = tournament_partition(&items, 4, &mut ExactKeyCmp::new(&keys), &mut rng(4));
        assert_eq!(winners.len(), 4);
        // The global max must win its part under an exact comparator.
        assert!(winners.contains(&19));
        // Winners are distinct items from distinct parts.
        let mut w = winners.clone();
        w.sort_unstable();
        w.dedup();
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn partition_clamps_l() {
        let keys = [1.0, 2.0, 3.0];
        let items = [0usize, 1, 2];
        let winners = tournament_partition(&items, 10, &mut ExactKeyCmp::new(&keys), &mut rng(5));
        assert_eq!(winners.len(), 3); // one singleton part per item
        assert!(tournament_partition::<usize, _, _>(
            &[],
            3,
            &mut ExactKeyCmp::new(&keys),
            &mut rng(5)
        )
        .is_empty());
    }

    #[test]
    fn tournament_is_seed_deterministic() {
        struct FlakyCmp {
            oracle: TrueValueOracle,
        }
        impl Comparator<usize> for FlakyCmp {
            fn le(&mut self, a: usize, b: usize) -> bool {
                self.oracle.le(a, b)
            }
        }
        let keys: Vec<f64> = (0..50).map(|i| ((i * 13) % 50) as f64).collect();
        let items: Vec<usize> = (0..50).collect();
        let mk = || FlakyCmp {
            oracle: TrueValueOracle::new(keys.clone()),
        };
        let a = tournament(&items, 3, &mut mk(), &mut rng(9));
        let b = tournament(&items, 3, &mut mk(), &mut rng(9));
        assert_eq!(a, b);
    }
}
