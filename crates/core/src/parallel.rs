//! Shared-comparator infrastructure for the `parallel` feature.
//!
//! Braverman–Mao–Weinberg (*Parallel Algorithms for Select and Partition
//! with Noisy Comparisons*) observe that tournament and scoring rounds are
//! embarrassingly parallel **within** a round: every duel / score in a
//! round touches disjoint state. This workspace exploits exactly that and
//! nothing more, under three rules that keep parallel runs *bit-identical*
//! to serial ones:
//!
//! 1. **All randomness is drawn serially.** Shuffles and sample draws
//!    happen on the caller's rng before any fan-out; parallel regions are
//!    RNG-free by construction. (For algorithms that ever need in-worker
//!    randomness, `rand::rngs::CounterRng` provides per-chunk
//!    counter-derived streams keyed by chunk index — deterministic
//!    regardless of scheduling.)
//! 2. **Oracles are queried through `&self`.** [`SyncComparator`] is the
//!    comparator-level witness of the persistent-noise property
//!    (`nco_oracle::persistent`): answers are pure functions of the
//!    query, so query *order* across threads cannot matter.
//! 3. **Results are reassembled in chunk order.** Each worker returns its
//!    chunk's output; concatenation in chunk order reproduces the serial
//!    output exactly, and per-item query counts are unchanged.
//!
//! The fan-out itself uses `std::thread::scope` (the build environment
//! has no registry access, so no rayon). The parallel entry points live
//! next to their serial twins — [`crate::maxfind::max_prob_par`],
//! [`crate::maxfind::tournament_par`], [`crate::maxfind::count_scores_par`]
//! — and each documents why its query sequence matches the serial one.

use crate::comparator::Comparator;
use nco_oracle::{SharedComparisonOracle, SharedQuadrupletOracle};
use std::sync::atomic::{AtomicU64, Ordering};

/// A comparator that can be queried through a shared reference from many
/// threads — the comparator-level form of a persistent oracle.
pub trait SyncComparator<I: Copy>: Sync {
    /// Noisily decides whether item `a`'s hidden key is `<=` item `b`'s,
    /// identically to the serial [`Comparator::le`] of the same instance.
    fn le(&self, a: I, b: I) -> bool;
}

impl<I: Copy, C: SyncComparator<I> + ?Sized> SyncComparator<I> for &C {
    fn le(&self, a: I, b: I) -> bool {
        (**self).le(a, b)
    }
}

/// Exposes a [`SyncComparator`] through the serial [`Comparator`] trait,
/// so parallel drivers can reuse the serial engines (e.g. the final
/// Count-Max of Algorithm 12) without duplicating them.
#[derive(Debug)]
pub struct AsSerial<'a, C>(pub &'a C);

impl<I: Copy, C: SyncComparator<I>> Comparator<I> for AsSerial<'_, C> {
    fn le(&mut self, a: I, b: I) -> bool {
        self.0.le(a, b)
    }
}

/// Items are record indices, keys are their hidden values — the shared
/// twin of [`crate::comparator::ValueCmp`].
#[derive(Debug)]
pub struct SharedValueCmp<'a, O> {
    oracle: &'a O,
}

impl<'a, O: SharedComparisonOracle> SharedValueCmp<'a, O> {
    /// Wraps a shared comparison oracle.
    pub fn new(oracle: &'a O) -> Self {
        Self { oracle }
    }
}

impl<O: SharedComparisonOracle> SyncComparator<usize> for SharedValueCmp<'_, O> {
    #[inline]
    fn le(&self, a: usize, b: usize) -> bool {
        self.oracle.le_shared(a, b)
    }
}

/// Items are record indices, keys are their distances from a fixed query
/// record — the shared twin of [`crate::comparator::DistToQueryCmp`].
#[derive(Debug)]
pub struct SharedDistToQueryCmp<'a, O> {
    oracle: &'a O,
    q: usize,
}

impl<'a, O: SharedQuadrupletOracle> SharedDistToQueryCmp<'a, O> {
    /// Wraps a shared quadruplet oracle with the query record `q`.
    pub fn new(oracle: &'a O, q: usize) -> Self {
        Self { oracle, q }
    }
}

impl<O: SharedQuadrupletOracle> SyncComparator<usize> for SharedDistToQueryCmp<'_, O> {
    #[inline]
    fn le(&self, a: usize, b: usize) -> bool {
        self.oracle.le_shared(self.q, a, self.q, b)
    }
}

/// Order-reversing adapter — the shared twin of
/// [`crate::comparator::Rev`].
#[derive(Debug)]
pub struct SyncRev<C>(pub C);

impl<I: Copy, C: SyncComparator<I>> SyncComparator<I> for SyncRev<C> {
    #[inline]
    fn le(&self, a: I, b: I) -> bool {
        self.0.le(b, a)
    }
}

/// Thread-safe call counter at the comparator layer — the shared twin of
/// `nco_testkit`'s `CountingCmp`. Counts are additive and
/// order-independent, so a parallel run over the same query multiset
/// reports exactly the serial total.
#[derive(Debug)]
pub struct AtomicCountingCmp<C> {
    inner: C,
    count: AtomicU64,
}

impl<C> AtomicCountingCmp<C> {
    /// Wraps a comparator with a zeroed counter.
    pub fn new(inner: C) -> Self {
        Self {
            inner,
            count: AtomicU64::new(0),
        }
    }

    /// Comparator calls so far.
    pub fn calls(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Unwraps the comparator.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<I: Copy, C: SyncComparator<I>> SyncComparator<I> for AtomicCountingCmp<C> {
    #[inline]
    fn le(&self, a: I, b: I) -> bool {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.le(a, b)
    }
}

impl<I: Copy, C: SyncComparator<I>> Comparator<I> for AtomicCountingCmp<C> {
    fn le(&mut self, a: I, b: I) -> bool {
        SyncComparator::le(self, a, b)
    }
}

/// Worker count for the fan-outs: `std::thread::available_parallelism`,
/// or 1 when the platform won't say.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_oracle::probabilistic::ProbValueOracle;

    #[test]
    fn shared_adapters_agree_with_serial_comparators() {
        use crate::comparator::{Rev, ValueCmp};
        let oracle = ProbValueOracle::new((0..30).map(f64::from).collect(), 0.3, 5);
        let mut serial_oracle = oracle.clone();
        let mut rev_oracle = oracle.clone();
        let shared = SharedValueCmp::new(&oracle);
        let rev_shared = SyncRev(SharedValueCmp::new(&oracle));
        let mut serial = ValueCmp::new(&mut serial_oracle);
        let mut rev_serial = Rev(ValueCmp::new(&mut rev_oracle));
        for i in 0..30 {
            for j in 0..30 {
                assert_eq!(shared.le(i, j), serial.le(i, j), "({i},{j})");
                assert_eq!(rev_shared.le(i, j), rev_serial.le(i, j), "rev ({i},{j})");
            }
        }
    }

    #[test]
    fn atomic_counter_counts_across_threads() {
        let oracle = ProbValueOracle::new((0..64).map(f64::from).collect(), 0.2, 1);
        let cmp = AtomicCountingCmp::new(SharedValueCmp::new(&oracle));
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let cmp = &cmp;
                scope.spawn(move || {
                    for i in 0..16 {
                        let a = (t * 16 + i) % 64;
                        let _ = cmp.le(a, (a + 1) % 64);
                    }
                });
            }
        });
        assert_eq!(cmp.calls(), 64);
    }
}
