//! Algorithm 5 — PairwiseComp: a robust pairwise comparison from a core.
//!
//! Given a core `S` of records all within distance `alpha` of the query `u`,
//! the single persistent-noisy query "is `v_i` closer to `u` than `v_j`?"
//! is replaced by `|S|` *distinct* queries `O(x, v_i, x, v_j)` for `x in S`
//! — distinct queries have independent error coins, so concentration
//! applies even though each individual answer is persistent. By the
//! triangle inequality, every `x in S` agrees with `u` about any pair whose
//! distances differ by more than `2*alpha` (Fig. 3 of the paper), so
//! `FCount >= 0.3|S|` w.p. `1 - delta` whenever
//! `d(u, v_i) < d(u, v_j) - 2*alpha` (Lemma 3.9).
//!
//! The threshold `0.3 <= (1-p)/2` assumes `p <= 0.4` as in the paper; the
//! guarantee is one-sided (see the lemma), which is all the Count-based
//! consumers need.

use crate::comparator::Comparator;
use nco_oracle::QuadrupletOracle;

/// The paper's FCount acceptance threshold (`0.3 <= (1-p)/2` for
/// `p <= 0.4`). Satisfies Lemma 3.9's one-sided guarantee, but note that in
/// a *symmetric* decision the "farther" side has mean FCount `p * |S|` —
/// exactly at this threshold when `p = 0.3` — so comparisons degrade into
/// coin flips as `p` approaches 0.3.
pub const PAIRWISE_THRESHOLD: f64 = 0.3;

/// Majority threshold: separates the two decision means `(1-p)|S|` and
/// `p|S|` symmetrically for **every** `p < 1/2`, matching the robustness
/// the paper's own experiments exhibit at `p = 0.3` (Fig. 8b). This is the
/// default for the symmetric comparators; the ablation bench sweeps the
/// trade-off. See DESIGN.md §6.
pub const MAJORITY_THRESHOLD: f64 = 0.5;

/// Algorithm 5: returns `true` ("Yes") when the vote of the core deems
/// `v_i` closer to the core's anchor than `v_j`.
///
/// Issues exactly `core.len()` oracle queries, as **one** batched round
/// ([`QuadrupletOracle::le_batch`]) so the oracle can share distance
/// evaluations across the committee's votes.
///
/// # Panics
/// Panics if `core` is empty.
pub fn pairwise_closer<O: QuadrupletOracle>(
    oracle: &mut O,
    vi: usize,
    vj: usize,
    core: &[usize],
    threshold: f64,
) -> bool {
    let mut round = Vec::with_capacity(core.len());
    let mut answers = Vec::with_capacity(core.len());
    pairwise_closer_with(oracle, vi, vj, core, threshold, &mut round, &mut answers)
}

/// [`pairwise_closer`] with caller-provided round buffers — the
/// allocation-free form for comparators that vote repeatedly.
fn pairwise_closer_with<O: QuadrupletOracle>(
    oracle: &mut O,
    vi: usize,
    vj: usize,
    core: &[usize],
    threshold: f64,
    round: &mut Vec<[usize; 4]>,
    answers: &mut Vec<bool>,
) -> bool {
    assert!(!core.is_empty(), "PairwiseComp needs a non-empty core");
    round.clear();
    answers.clear();
    round.extend(core.iter().map(|&x| [x, vi, x, vj]));
    oracle.le_batch(round, answers);
    let fcount = answers.iter().filter(|&&yes| yes).count();
    fcount as f64 >= threshold * core.len() as f64
}

/// Comparator lifting [`pairwise_closer`]: items are record indices, keys
/// are their distances from the core's anchor. Plugs Algorithm 5 into the
/// Section 3 engines (Algorithms 13–16).
#[derive(Debug)]
pub struct PairwiseCmp<'a, O> {
    oracle: &'a mut O,
    core: &'a [usize],
    threshold: f64,
    /// Reused committee-round buffers (one vote = one batched round).
    round: Vec<[usize; 4]>,
    answers: Vec<bool>,
}

impl<'a, O: QuadrupletOracle> PairwiseCmp<'a, O> {
    /// Builds the comparator with the majority threshold (see
    /// [`MAJORITY_THRESHOLD`] for why the default deviates from the
    /// paper's 0.3).
    ///
    /// # Panics
    /// Panics if `core` is empty.
    pub fn new(oracle: &'a mut O, core: &'a [usize]) -> Self {
        assert!(!core.is_empty(), "PairwiseComp needs a non-empty core");
        Self {
            oracle,
            core,
            threshold: MAJORITY_THRESHOLD,
            round: Vec::with_capacity(core.len()),
            answers: Vec::with_capacity(core.len()),
        }
    }

    /// Builds the comparator with the paper's literal 0.3 threshold
    /// (Algorithm 5 as printed).
    ///
    /// # Panics
    /// Panics if `core` is empty.
    pub fn paper(oracle: &'a mut O, core: &'a [usize]) -> Self {
        assert!(!core.is_empty(), "PairwiseComp needs a non-empty core");
        Self {
            oracle,
            core,
            threshold: PAIRWISE_THRESHOLD,
            round: Vec::with_capacity(core.len()),
            answers: Vec::with_capacity(core.len()),
        }
    }

    /// Overrides the acceptance threshold (the "different constants for
    /// p close to 1/2" remark of Section 3.3).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0 && threshold < 1.0);
        self.threshold = threshold;
        self
    }
}

impl<O: QuadrupletOracle> Comparator<usize> for PairwiseCmp<'_, O> {
    fn le(&mut self, a: usize, b: usize) -> bool {
        pairwise_closer_with(
            self.oracle,
            a,
            b,
            self.core,
            self.threshold,
            &mut self.round,
            &mut self.answers,
        )
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;
    use nco_oracle::counting::Counting;
    use nco_oracle::probabilistic::ProbQuadOracle;
    use nco_oracle::TrueQuadOracle;

    /// A cluster of core points near the origin (the anchor) plus probe
    /// points at increasing distances.
    fn setting() -> (EuclideanMetric, Vec<usize>) {
        let mut pts: Vec<Vec<f64>> = Vec::new();
        // anchor u = record 0
        pts.push(vec![0.0, 0.0]);
        // 24 core records within alpha = 1 of u
        for i in 0..24 {
            let a = i as f64 * 0.26;
            pts.push(vec![0.8 * a.cos(), 0.8 * a.sin()]);
        }
        // probes at distances 5, 10, 20, 40
        for d in [5.0, 10.0, 20.0, 40.0] {
            pts.push(vec![d, 0.0]);
        }
        let core: Vec<usize> = (1..25).collect();
        (EuclideanMetric::from_points(&pts), core)
    }

    #[test]
    fn perfect_oracle_separated_pairs_are_exact() {
        let (m, core) = setting();
        let mut o = TrueQuadOracle::new(m);
        // probes: 25 (d=5), 26 (d=10), 27 (d=20), 28 (d=40); gaps > 2*alpha.
        assert!(pairwise_closer(&mut o, 25, 26, &core, PAIRWISE_THRESHOLD));
        assert!(!pairwise_closer(&mut o, 28, 25, &core, PAIRWISE_THRESHOLD));
    }

    /// Lemma 3.9: under persistent noise with p <= 0.25, a pair separated
    /// by more than 2*alpha is answered correctly w.h.p.
    #[test]
    fn lemma_3_9_separated_pairs_survive_noise() {
        let (m, core) = setting();
        let mut correct = 0;
        let trials = 50;
        for seed in 0..trials {
            let mut o = ProbQuadOracle::new(m.clone(), 0.25, seed);
            if pairwise_closer(&mut o, 25, 28, &core, PAIRWISE_THRESHOLD) {
                correct += 1;
            }
        }
        assert!(
            correct >= trials * 9 / 10,
            "only {correct}/{trials} correct"
        );
    }

    #[test]
    fn one_query_per_core_member() {
        let (m, core) = setting();
        let mut o = Counting::new(TrueQuadOracle::new(m));
        let _ = pairwise_closer(&mut o, 25, 26, &core, PAIRWISE_THRESHOLD);
        assert_eq!(o.queries(), core.len() as u64);
    }

    #[test]
    fn comparator_orders_probes_by_distance() {
        let (m, core) = setting();
        let mut o = TrueQuadOracle::new(m);
        let mut cmp = PairwiseCmp::new(&mut o, &core);
        assert!(cmp.le(25, 27));
        assert!(!cmp.le(28, 25));
    }

    #[test]
    fn threshold_override() {
        let (m, core) = setting();
        let mut o = TrueQuadOracle::new(m);
        let mut cmp = PairwiseCmp::new(&mut o, &core).with_threshold(0.45);
        assert!(cmp.le(25, 28));
    }

    #[test]
    #[should_panic(expected = "non-empty core")]
    fn rejects_empty_core() {
        let (m, _) = setting();
        let mut o = TrueQuadOracle::new(m);
        let _ = pairwise_closer(&mut o, 25, 26, &[], PAIRWISE_THRESHOLD);
    }
}
