//! Farthest / nearest baselines of the paper's evaluation (Section 6.1):
//!
//! * **Tour2** — a binary tournament over all candidates (Algorithm 2 with
//!   `lambda = 2`), i.e. the classic noisy-max approach of Davidson et al.
//!   *without* query repetition. Strong when few records are confusable
//!   with the optimum, brittle otherwise — exactly the behaviour Figs. 8–9
//!   chart.
//! * **Samp** — Count-Max over a uniform sample of `sqrt(n)` records. Wins
//!   when many records are near-optimal (amazon/caltech), loses badly when
//!   the optimum is unique (cities), per Section 6.3's discussion.

use crate::comparator::{DistToQueryCmp, Rev};
use crate::maxfind::{count_max, tournament};
use nco_oracle::QuadrupletOracle;
use rand::seq::SliceRandom;
use rand::Rng;

/// `Tour2` farthest: binary tournament over all candidates.
pub fn farthest_tour2<O, R>(oracle: &mut O, q: usize, rng: &mut R) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let items = super::candidates_excluding(oracle.n(), q);
    tournament(&items, 2, &mut DistToQueryCmp::new(oracle, q), rng)
}

/// `Tour2` nearest: binary tournament with the reversed comparator.
pub fn nearest_tour2<O, R>(oracle: &mut O, q: usize, rng: &mut R) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let items = super::candidates_excluding(oracle.n(), q);
    tournament(&items, 2, &mut Rev(DistToQueryCmp::new(oracle, q)), rng)
}

/// `Samp` farthest: Count-Max over a uniform sample of `ceil(sqrt(n))`
/// candidates.
pub fn farthest_samp<O, R>(oracle: &mut O, q: usize, rng: &mut R) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let sample = sqrt_sample(oracle.n(), q, rng);
    count_max(&sample, &mut DistToQueryCmp::new(oracle, q))
}

/// `Samp` nearest: Count-Max over a `sqrt(n)` sample, reversed comparator.
pub fn nearest_samp<O, R>(oracle: &mut O, q: usize, rng: &mut R) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let sample = sqrt_sample(oracle.n(), q, rng);
    count_max(&sample, &mut Rev(DistToQueryCmp::new(oracle, q)))
}

fn sqrt_sample<R: Rng + ?Sized>(n: usize, q: usize, rng: &mut R) -> Vec<usize> {
    let mut cands = super::candidates_excluding(n, q);
    cands.shuffle(rng);
    let keep = ((n as f64).sqrt().ceil() as usize).clamp(1, cands.len());
    cands.truncate(keep);
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::stats::{exact_farthest, exact_nearest};
    use nco_metric::EuclideanMetric;
    use nco_oracle::counting::Counting;
    use nco_oracle::TrueQuadOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn cloud(n: usize) -> EuclideanMetric {
        EuclideanMetric::from_points(
            &(0..n)
                .map(|i| vec![((i * 29) % 101) as f64, ((i * 53) % 97) as f64])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn tour2_exact_oracle_is_exact() {
        let m = cloud(100);
        let (tf, _) = exact_farthest(&m, 0, 0..100).unwrap();
        let (tn, _) = exact_nearest(&m, 0, 0..100).unwrap();
        let mut o = TrueQuadOracle::new(m);
        assert_eq!(farthest_tour2(&mut o, 0, &mut rng(1)), Some(tf));
        assert_eq!(nearest_tour2(&mut o, 0, &mut rng(2)), Some(tn));
    }

    #[test]
    fn tour2_query_budget_is_linear() {
        let m = cloud(257);
        let mut o = Counting::new(TrueQuadOracle::new(m));
        let _ = farthest_tour2(&mut o, 0, &mut rng(3));
        assert_eq!(o.queries(), 255); // n-1 candidates, one query per duel
    }

    #[test]
    fn samp_uses_quadratic_queries_on_a_root_sample() {
        let m = cloud(256);
        let mut o = Counting::new(TrueQuadOracle::new(m));
        let _ = farthest_samp(&mut o, 0, &mut rng(4));
        // 16 sampled candidates -> C(16,2) = 120 queries.
        assert_eq!(o.queries(), 120);
    }

    #[test]
    fn samp_returns_some_candidate_not_the_query() {
        let m = cloud(64);
        let mut o = TrueQuadOracle::new(m);
        for seed in 0..10 {
            let f = farthest_samp(&mut o, 7, &mut rng(seed)).unwrap();
            assert_ne!(f, 7);
            let nn = nearest_samp(&mut o, 7, &mut rng(seed)).unwrap();
            assert_ne!(nn, 7);
        }
    }

    /// The skew story of Section 6.3: with a unique far outlier, Samp's
    /// sqrt(n) sample usually misses it while Tour2 (exact here) finds it.
    #[test]
    fn samp_misses_unique_outlier_most_of_the_time() {
        let mut pts: Vec<Vec<f64>> = (0..400).map(|i| vec![(i % 20) as f64]).collect();
        pts.push(vec![10_000.0]);
        let m = EuclideanMetric::from_points(&pts);
        let outlier = 400usize;
        let mut misses = 0;
        let trials = 30;
        for seed in 0..trials {
            let mut o = TrueQuadOracle::new(m.clone());
            if farthest_samp(&mut o, 0, &mut rng(seed)).unwrap() != outlier {
                misses += 1;
            }
        }
        // Sample of ~21 out of 400 candidates: miss probability ~95%.
        assert!(misses >= trials * 2 / 3, "only {misses}/{trials} misses");
    }
}
