//! Farthest / nearest neighbour searches (Algorithms 13–16, Theorems 3.6 &
//! 3.10 instantiated for distances from a query record).

use super::core_set::build_core;
use super::pairwise::PairwiseCmp;
use crate::comparator::{DistToQueryCmp, Rev};
use crate::maxfind::{max_adv, AdvParams};
use nco_oracle::QuadrupletOracle;
use rand::Rng;

/// Farthest record from `q` under adversarial noise: Max-Adv over the
/// distance set `D(q)` with raw quadruplet comparisons. `(1+mu)^3`
/// guarantee by Theorem 3.6.
pub fn farthest_adv<O, R>(
    oracle: &mut O,
    q: usize,
    params: &AdvParams,
    rng: &mut R,
) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let cands = super::candidates_excluding(oracle.n(), q);
    farthest_adv_among(oracle, q, &cands, params, rng)
}

/// [`farthest_adv`] restricted to an explicit candidate set.
pub fn farthest_adv_among<O, R>(
    oracle: &mut O,
    q: usize,
    candidates: &[usize],
    params: &AdvParams,
    rng: &mut R,
) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let items: Vec<usize> = candidates.iter().copied().filter(|&v| v != q).collect();
    max_adv(&items, params, &mut DistToQueryCmp::new(oracle, q), rng)
}

/// Nearest record to `q` under adversarial noise (reversed comparator).
pub fn nearest_adv<O, R>(oracle: &mut O, q: usize, params: &AdvParams, rng: &mut R) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let cands = super::candidates_excluding(oracle.n(), q);
    nearest_adv_among(oracle, q, &cands, params, rng)
}

/// [`nearest_adv`] restricted to an explicit candidate set.
pub fn nearest_adv_among<O, R>(
    oracle: &mut O,
    q: usize,
    candidates: &[usize],
    params: &AdvParams,
    rng: &mut R,
) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let items: Vec<usize> = candidates.iter().copied().filter(|&v| v != q).collect();
    max_adv(
        &items,
        params,
        &mut Rev(DistToQueryCmp::new(oracle, q)),
        rng,
    )
}

/// Farthest record from `q` under probabilistic noise, given a core `S` of
/// records within `alpha` of `q` — Theorem 3.10: the result is within an
/// additive `6*alpha` of the optimum w.p. `1 - delta`, using
/// `O(n log^3(n/delta))` queries.
///
/// Every pairwise comparison of the Max-Adv engine is routed through
/// PairwiseComp (Algorithm 5) on `core`.
pub fn farthest_with_core<O, R>(
    oracle: &mut O,
    q: usize,
    core: &[usize],
    params: &AdvParams,
    rng: &mut R,
) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let items: Vec<usize> = super::candidates_excluding(oracle.n(), q);
    max_adv(&items, params, &mut PairwiseCmp::new(oracle, core), rng)
}

/// Nearest twin of [`farthest_with_core`].
pub fn nearest_with_core<O, R>(
    oracle: &mut O,
    q: usize,
    core: &[usize],
    params: &AdvParams,
    rng: &mut R,
) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let items: Vec<usize> = super::candidates_excluding(oracle.n(), q);
    max_adv(
        &items,
        params,
        &mut Rev(PairwiseCmp::new(oracle, core)),
        rng,
    )
}

/// Convenience pipeline for probabilistic farthest search: builds the core
/// with Count scores (Algorithm 9 style), then runs [`farthest_with_core`].
///
/// `delta` controls the core size `ceil(6 ln(n/delta))` per Lemma 3.9.
pub fn farthest_prob<O, R>(
    oracle: &mut O,
    q: usize,
    delta: f64,
    params: &AdvParams,
    rng: &mut R,
) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let core = default_core(oracle, q, delta, rng)?;
    farthest_with_core(oracle, q, &core, params, rng)
}

/// Convenience pipeline for probabilistic nearest search.
pub fn nearest_prob<O, R>(
    oracle: &mut O,
    q: usize,
    delta: f64,
    params: &AdvParams,
    rng: &mut R,
) -> Option<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let core = default_core(oracle, q, delta, rng)?;
    nearest_with_core(oracle, q, &core, params, rng)
}

fn default_core<O, R>(oracle: &mut O, q: usize, delta: f64, rng: &mut R) -> Option<Vec<usize>>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let n = oracle.n();
    if n < 2 {
        return None;
    }
    let cands = super::candidates_excluding(n, q);
    let ln_term = (n as f64 / delta).ln();
    let size = ((6.0 * ln_term).ceil() as usize).clamp(1, cands.len());
    let probes = ((4.0 * ln_term).ceil() as usize).clamp(1, cands.len());
    Some(build_core(oracle, q, &cands, size, probes, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::stats::{exact_farthest, exact_nearest, farthest_rank, nearest_rank};
    use nco_metric::{EuclideanMetric, Metric};
    use nco_oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
    use nco_oracle::probabilistic::ProbQuadOracle;
    use nco_oracle::TrueQuadOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn grid(n: usize) -> EuclideanMetric {
        EuclideanMetric::from_points(
            &(0..n)
                .map(|i| vec![(i % 17) as f64, (i / 17) as f64 * 1.37])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn perfect_oracle_exact_farthest_and_nearest() {
        let m = grid(120);
        let (tf, _) = exact_farthest(&m, 0, 0..120).unwrap();
        let (tn, _) = exact_nearest(&m, 0, 0..120).unwrap();
        let mut o = TrueQuadOracle::new(m);
        let p = AdvParams::with_confidence(0.05);
        assert_eq!(farthest_adv(&mut o, 0, &p, &mut rng(1)), Some(tf));
        assert_eq!(nearest_adv(&mut o, 0, &p, &mut rng(2)), Some(tn));
    }

    /// Example 3.8 / Figure 2 of the paper: the farthest-point worst case.
    /// Points s=0, u=51, v=101, w=102, t=202 with mu = 1: Count-Max's
    /// scores become (u,v,w,t) = (2,2,1,1) and the returned farthest is a
    /// ~3.96 < (1+mu)^2 approximation.
    #[test]
    fn paper_example_3_8_farthest_worst_case() {
        use crate::comparator::DistToQueryCmp;
        use crate::maxfind::{count_max, count_scores};
        let m = EuclideanMetric::from_points(&[
            vec![0.0],   // s (query)
            vec![51.0],  // u
            vec![101.0], // v
            vec![102.0], // w
            vec![202.0], // t
        ]);
        let mut o = AdversarialQuadOracle::new(m, 1.0, InvertAdversary);
        let items = [1usize, 2, 3, 4];
        let scores = count_scores(&items, &mut DistToQueryCmp::new(&mut o, 0));
        assert_eq!(scores, vec![2, 2, 1, 1]);
        let far = count_max(&items, &mut DistToQueryCmp::new(&mut o, 0)).unwrap();
        let ratio = 202.0 / (far as f64 * 0.0 + [51.0, 101.0, 102.0, 202.0][far - 1]);
        assert!(ratio <= 4.0, "approximation ratio {ratio} within (1+mu)^2");
    }

    #[test]
    fn adversarial_farthest_within_cubed_band() {
        let m = grid(150);
        let (_, dmax) = exact_farthest(&m, 3, 0..150).unwrap();
        let mu = 0.4;
        let mut ok = 0;
        let trials = 25;
        for seed in 0..trials {
            let mut o = AdversarialQuadOracle::new(m.clone(), mu, InvertAdversary);
            let got = farthest_adv(
                &mut o,
                3,
                &AdvParams::with_confidence(0.1),
                &mut rng(40 + seed),
            )
            .unwrap();
            if m.dist(3, got) * (1.0 + mu).powi(3) >= dmax - 1e-9 {
                ok += 1;
            }
        }
        assert!(ok >= trials * 8 / 10, "{ok}/{trials} within bound");
    }

    #[test]
    fn probabilistic_farthest_lands_near_the_top() {
        let m = grid(200);
        let trials = 15;
        let mut good = 0;
        for seed in 0..trials {
            let mut o = ProbQuadOracle::new(m.clone(), 0.2, 900 + seed);
            let got = farthest_prob(
                &mut o,
                5,
                0.1,
                &AdvParams::with_confidence(0.1),
                &mut rng(700 + seed),
            )
            .unwrap();
            if farthest_rank(&m, 5, got) <= 20 {
                good += 1;
            }
        }
        assert!(
            good >= trials * 2 / 3,
            "only {good}/{trials} in the top 10%"
        );
    }

    /// The additive `6*alpha` guarantee is only meaningful when the
    /// query's neighbourhood is tight (small `alpha`): a dense cluster at
    /// the query plus a spread-out far field. The returned neighbour must
    /// come from the dense cluster.
    #[test]
    fn probabilistic_nearest_stays_in_the_dense_cluster() {
        let mut pts: Vec<Vec<f64>> = vec![vec![0.0]];
        for i in 0..60 {
            pts.push(vec![0.3 + 0.01 * i as f64]); // dense cluster, alpha < 1
        }
        for i in 0..140 {
            pts.push(vec![30.0 + 2.0 * i as f64]); // far field
        }
        let m = EuclideanMetric::from_points(&pts);
        let trials = 15;
        let mut good = 0;
        for seed in 0..trials {
            let mut o = ProbQuadOracle::new(m.clone(), 0.15, 300 + seed);
            let got = nearest_prob(
                &mut o,
                0,
                0.1,
                &AdvParams::with_confidence(0.1),
                &mut rng(800 + seed),
            )
            .unwrap();
            if m.dist(0, got) < 1.0 {
                good += 1;
            }
        }
        assert!(
            good >= trials * 4 / 5,
            "only {good}/{trials} inside the dense cluster"
        );
        // Even at p = 0, PairwiseComp cannot resolve pairs within 2*alpha
        // of each other (the additive blind spot of Lemma 3.9), so the
        // noiseless sanity check is cluster containment, not exact rank.
        let mut o = ProbQuadOracle::new(m.clone(), 0.0, 1);
        let got = nearest_prob(
            &mut o,
            0,
            0.1,
            &AdvParams::with_confidence(0.1),
            &mut rng(4),
        )
        .unwrap();
        assert!(m.dist(0, got) < 1.0, "rank {}", nearest_rank(&m, 0, got));
    }

    /// Theorem 3.10's additive guarantee on a line: with a tight core
    /// (alpha small vs. the diameter), the farthest is within 6*alpha.
    #[test]
    fn theorem_3_10_additive_guarantee() {
        let mut pts: Vec<Vec<f64>> = Vec::new();
        pts.push(vec![0.0]); // query
        for i in 0..20 {
            pts.push(vec![0.5 + 0.02 * i as f64]); // tight near-neighbourhood, alpha ~ 0.9
        }
        for i in 0..60 {
            pts.push(vec![10.0 + i as f64]); // spread-out far field, max = 69 + 10
        }
        let m = EuclideanMetric::from_points(&pts);
        let dmax = exact_farthest(&m, 0, 0..m.len()).unwrap().1;
        let alpha = 0.9;
        let core: Vec<usize> = (1..=15).collect();
        let mut ok = 0;
        let trials = 20;
        for seed in 0..trials {
            let mut o = ProbQuadOracle::new(m.clone(), 0.2, 40 + seed);
            let got = farthest_with_core(
                &mut o,
                0,
                &core,
                &AdvParams::with_confidence(0.1),
                &mut rng(seed),
            )
            .unwrap();
            if m.dist(0, got) >= dmax - 6.0 * alpha {
                ok += 1;
            }
        }
        assert!(
            ok >= trials * 8 / 10,
            "{ok}/{trials} within additive 6*alpha"
        );
    }

    #[test]
    fn candidate_restriction_is_respected() {
        let m = grid(50);
        let mut o = TrueQuadOracle::new(m);
        let cands = [4usize, 9, 14];
        let got = farthest_adv_among(
            &mut o,
            0,
            &cands,
            &AdvParams::with_confidence(0.05),
            &mut rng(6),
        )
        .unwrap();
        assert!(cands.contains(&got));
    }
}
