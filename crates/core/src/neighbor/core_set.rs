//! Core-set construction: the `Theta(log(n/delta))` records closest to a
//! query, identified by Count scores (the standalone version of
//! Algorithm 9's Identify-Core).
//!
//! Theorem 3.10 assumes a set `S` of records within distance `alpha` of the
//! query is *given*. Inside the k-center pipeline that set comes from
//! Identify-Core over a cluster; for standalone farthest/nearest queries we
//! build it the same way: score each candidate by how many members of a
//! random probe set it is (noisily) closer to the query than, and keep the
//! top scorers. Per Lemma 11.6's argument, order inversions only happen
//! between records whose distance ranks are within `O(sqrt(n log n))` of
//! each other, so the top-`size` set lands in the true near-neighbourhood
//! w.h.p.

use nco_oracle::QuadrupletOracle;
use rand::seq::SliceRandom;
use rand::Rng;

/// Builds a core of `size` records (noisily) closest to `q`.
///
/// Scores every candidate against a probe set of `probes` random
/// candidates (`candidates.len() * probes` oracle queries) and returns the
/// `size` best, best first. The query itself is excluded.
///
/// # Panics
/// Panics if `size == 0` or there are no candidates besides `q`.
pub fn build_core<O, R>(
    oracle: &mut O,
    q: usize,
    candidates: &[usize],
    size: usize,
    probes: usize,
    rng: &mut R,
) -> Vec<usize>
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    assert!(size > 0, "core size must be positive");
    let pool: Vec<usize> = candidates.iter().copied().filter(|&v| v != q).collect();
    assert!(!pool.is_empty(), "no candidates besides the query");

    // Shared probe set: every candidate is scored against the same probes,
    // so scores are comparable.
    let probes = probes.clamp(1, pool.len());
    let mut probe_set: Vec<usize> = pool.clone();
    probe_set.shuffle(rng);
    probe_set.truncate(probes);

    let mut scored: Vec<(usize, u32)> = pool
        .iter()
        .map(|&x| {
            let score = probe_set
                .iter()
                .filter(|&&y| y != x && oracle.le(q, x, q, y))
                .count() as u32;
            (x, score)
        })
        .collect();
    //

    // Highest score first; stable on ties via the record index.
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(size.min(scored.len()));
    scored.into_iter().map(|(x, _)| x).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::{EuclideanMetric, Metric};
    use nco_oracle::probabilistic::ProbQuadOracle;
    use nco_oracle::TrueQuadOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(n: usize) -> EuclideanMetric {
        EuclideanMetric::from_points(&(0..n).map(|i| vec![i as f64]).collect::<Vec<_>>())
    }

    #[test]
    fn perfect_oracle_returns_true_nearest_records() {
        let n = 60;
        let mut o = TrueQuadOracle::new(line(n));
        let cands: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let core = build_core(&mut o, 0, &cands, 6, n - 1, &mut rng);
        assert_eq!(core, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn core_excludes_the_query_and_respects_size() {
        let n = 30;
        let mut o = TrueQuadOracle::new(line(n));
        let cands: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let core = build_core(&mut o, 7, &cands, 5, 10, &mut rng);
        assert_eq!(core.len(), 5);
        assert!(!core.contains(&7));
    }

    #[test]
    fn noisy_core_stays_in_the_near_neighbourhood() {
        let n = 200;
        let m = line(n);
        let mut hits = 0;
        let trials = 20;
        for seed in 0..trials {
            let mut o = ProbQuadOracle::new(m.clone(), 0.2, seed);
            let cands: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let core = build_core(&mut o, 0, &cands, 8, 60, &mut rng);
            // All core members within the nearest quarter of records.
            if core.iter().all(|&x| m.dist(0, x) <= (n / 4) as f64) {
                hits += 1;
            }
        }
        assert!(
            hits >= trials * 8 / 10,
            "core drifted in {}/{trials} runs",
            trials - hits
        );
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn rejects_query_only_candidate_set() {
        let mut o = TrueQuadOracle::new(line(3));
        let mut rng = StdRng::seed_from_u64(0);
        let _ = build_core(&mut o, 1, &[1], 2, 2, &mut rng);
    }
}
