//! Farthest and nearest neighbour under noisy quadruplet oracles —
//! Section 3.3 of the paper.
//!
//! Finding the record farthest from (or nearest to) a query `q` is finding
//! the maximum (minimum) of the hidden value set `D(q) = { d(q, v) }`, so
//! the Section 3 engines apply directly with a
//! [`crate::comparator::DistToQueryCmp`] ([`farthest_adv`], [`nearest_adv`]
//! — Algorithms 14–16 with raw quadruplet queries).
//!
//! Under **probabilistic** noise the raw engines only guarantee an
//! `O(log^2 n)`-rank result (Theorem 3.7). The paper sharpens this to an
//! *additive* `6*alpha` guarantee (Theorem 3.10) by routing every pairwise
//! comparison through [`pairwise::pairwise_closer`] (Algorithm 5): a robust
//! vote over a *core* `S` of `Theta(log(n/delta))` records within distance
//! `alpha` of `q`, correct w.h.p. whenever the compared distances differ by
//! more than `2*alpha` (Lemma 3.9). [`core_set::build_core`] constructs
//! such a core with Count scores, mirroring Algorithm 9.
//!
//! [`baselines`] carries the paper's evaluation comparators: `Tour2`
//! (binary tournament) and `Samp` (Count-Max over a `sqrt(n)` sample).

pub mod baselines;
pub mod core_set;
pub mod pairwise;
mod search;

pub use pairwise::{pairwise_closer, PairwiseCmp, MAJORITY_THRESHOLD, PAIRWISE_THRESHOLD};
pub use search::{
    farthest_adv, farthest_adv_among, farthest_prob, farthest_with_core, nearest_adv,
    nearest_adv_among, nearest_prob, nearest_with_core,
};

/// All records except the query — the candidate set of Problem 2.4.
pub(crate) fn candidates_excluding(n: usize, q: usize) -> Vec<usize> {
    (0..n).filter(|&v| v != q).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn candidates_exclude_query() {
        assert_eq!(super::candidates_excluding(4, 2), vec![0, 1, 3]);
        assert_eq!(super::candidates_excluding(1, 0), Vec::<usize>::new());
    }
}
