//! The noisy comparison abstraction every engine in this crate runs on.
//!
//! The paper's Section 3 machinery (Count-Max, tournaments, Max-Adv,
//! Count-Max-Prob) is written for "a set of values with a comparison
//! oracle", then reused verbatim for farthest/nearest neighbour (values =
//! distances from a query, Section 3.3), k-center's Approx-Farthest (values
//! = point-to-assigned-center distances, Section 4) and hierarchical
//! clustering's closest-pair search (values = inter-cluster rep-pair
//! distances, Section 5). [`Comparator`] captures that reuse: a noisy
//! `le(a, b)` over opaque items, with adapters mapping each concrete setting
//! onto an oracle.

use nco_oracle::{ComparisonOracle, QuadrupletOracle};

/// A noisy "is `key(a) <= key(b)`?" predicate over items of type `I`.
///
/// `true` encodes the paper's `Yes`. Implementations may be arbitrarily
/// noisy; the algorithms consuming this trait are the ones responsible for
/// robustness.
pub trait Comparator<I: Copy> {
    /// Noisily decides whether item `a`'s hidden key is `<=` item `b`'s.
    fn le(&mut self, a: I, b: I) -> bool;

    /// Answers one **round** of comparisons, appending one answer per pair
    /// to `out` in round order.
    ///
    /// Engines that already issue their queries in rounds (the Count-Max
    /// scoring triangle, committee votes, candidate scans) call this so
    /// oracle-backed comparators can hand the whole round to
    /// `le_batch` on the oracle, which amortises distance evaluation
    /// across the round. Contract: answers must be bit-identical to
    /// calling [`Comparator::le`] once per pair in order — the default
    /// does exactly that.
    fn le_round(&mut self, round: &[(I, I)], out: &mut Vec<bool>) {
        out.reserve(round.len());
        for &(a, b) in round {
            let ans = self.le(a, b);
            out.push(ans);
        }
    }

    /// `true` once the backing oracle stack can no longer return real
    /// answers (see [`ComparisonOracle::doomed`]); engines use it to stop
    /// advancing clean-progress watermarks. Purely observational; the
    /// default is never doomed.
    fn doomed(&self) -> bool {
        false
    }
}

impl<I: Copy, C: Comparator<I> + ?Sized> Comparator<I> for &mut C {
    fn le(&mut self, a: I, b: I) -> bool {
        (**self).le(a, b)
    }
    fn le_round(&mut self, round: &[(I, I)], out: &mut Vec<bool>) {
        (**self).le_round(round, out);
    }
    fn doomed(&self) -> bool {
        (**self).doomed()
    }
}

/// Items are record indices, keys are their hidden values.
#[derive(Debug)]
pub struct ValueCmp<'a, O> {
    oracle: &'a mut O,
}

impl<'a, O: ComparisonOracle> ValueCmp<'a, O> {
    /// Wraps a comparison oracle.
    pub fn new(oracle: &'a mut O) -> Self {
        Self { oracle }
    }
}

impl<O: ComparisonOracle> Comparator<usize> for ValueCmp<'_, O> {
    fn le(&mut self, a: usize, b: usize) -> bool {
        self.oracle.le(a, b)
    }

    fn le_round(&mut self, round: &[(usize, usize)], out: &mut Vec<bool>) {
        // Item pairs are already oracle queries; hand the round over as-is.
        self.oracle.le_batch(round, out);
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

/// Items are record indices, keys are their distances from a fixed query
/// point `q` — the reduction of Section 3.3 (farthest/nearest neighbour).
#[derive(Debug)]
pub struct DistToQueryCmp<'a, O> {
    oracle: &'a mut O,
    q: usize,
}

impl<'a, O: QuadrupletOracle> DistToQueryCmp<'a, O> {
    /// Wraps a quadruplet oracle with the query record `q`.
    pub fn new(oracle: &'a mut O, q: usize) -> Self {
        Self { oracle, q }
    }
}

impl<O: QuadrupletOracle> Comparator<usize> for DistToQueryCmp<'_, O> {
    fn le(&mut self, a: usize, b: usize) -> bool {
        self.oracle.le(self.q, a, self.q, b)
    }

    fn le_round(&mut self, round: &[(usize, usize)], out: &mut Vec<bool>) {
        let queries: Vec<[usize; 4]> = round.iter().map(|&(a, b)| [self.q, a, self.q, b]).collect();
        self.oracle.le_batch(&queries, out);
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

/// Items are unordered record pairs, keys are their pairwise distances —
/// used by hierarchical clustering's closest-pair searches (Section 5).
#[derive(Debug)]
pub struct PairDistCmp<'a, O> {
    oracle: &'a mut O,
}

impl<'a, O: QuadrupletOracle> PairDistCmp<'a, O> {
    /// Wraps a quadruplet oracle.
    pub fn new(oracle: &'a mut O) -> Self {
        Self { oracle }
    }
}

impl<O: QuadrupletOracle> Comparator<(usize, usize)> for PairDistCmp<'_, O> {
    fn le(&mut self, a: (usize, usize), b: (usize, usize)) -> bool {
        self.oracle.le(a.0, a.1, b.0, b.1)
    }

    fn le_round(&mut self, round: &[((usize, usize), (usize, usize))], out: &mut Vec<bool>) {
        let queries: Vec<[usize; 4]> = round
            .iter()
            .map(|&((a0, a1), (b0, b1))| [a0, a1, b0, b1])
            .collect();
        self.oracle.le_batch(&queries, out);
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

/// Order-reversing adapter: turns any max-finding engine into a min-finding
/// one (the paper's "minimum is maximum with Yes-counts" remark, §3.2).
#[derive(Debug)]
pub struct Rev<C>(pub C);

impl<I: Copy, C: Comparator<I>> Comparator<I> for Rev<C> {
    fn le(&mut self, a: I, b: I) -> bool {
        self.0.le(b, a)
    }

    fn le_round(&mut self, round: &[(I, I)], out: &mut Vec<bool>) {
        // Reverse every pair, then delegate so the inner comparator's
        // batching (and therefore the oracle's) still kicks in.
        let reversed: Vec<(I, I)> = round.iter().map(|&(a, b)| (b, a)).collect();
        self.0.le_round(&reversed, out);
    }

    fn doomed(&self) -> bool {
        self.0.doomed()
    }
}

/// A comparator over true `f64` keys — exact, oracle-free. Used by tests
/// and by `TDist` baselines that have ground-truth access.
#[derive(Debug)]
pub struct ExactKeyCmp<'a> {
    keys: &'a [f64],
}

impl<'a> ExactKeyCmp<'a> {
    /// Compares items by the given true keys.
    pub fn new(keys: &'a [f64]) -> Self {
        Self { keys }
    }
}

impl Comparator<usize> for ExactKeyCmp<'_> {
    fn le(&mut self, a: usize, b: usize) -> bool {
        self.keys[a] <= self.keys[b]
    }
}

/// Exact keys are trivially persistent, so the comparator can also be
/// queried through a shared reference from parallel rounds.
#[cfg(feature = "parallel")]
impl crate::parallel::SyncComparator<usize> for ExactKeyCmp<'_> {
    fn le(&self, a: usize, b: usize) -> bool {
        self.keys[a] <= self.keys[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;
    use nco_oracle::{TrueQuadOracle, TrueValueOracle};

    #[test]
    fn value_cmp_forwards_to_oracle() {
        let mut o = TrueValueOracle::new(vec![5.0, 2.0]);
        let mut c = ValueCmp::new(&mut o);
        assert!(!c.le(0, 1));
        assert!(c.le(1, 0));
    }

    #[test]
    fn dist_to_query_cmp_compares_distances_from_q() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![5.0]]);
        let mut o = TrueQuadOracle::new(m);
        let mut c = DistToQueryCmp::new(&mut o, 0);
        assert!(c.le(1, 2)); // d(0,1)=1 <= d(0,2)=5
        assert!(!c.le(2, 1));
    }

    #[test]
    fn pair_dist_cmp_compares_pairs() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![5.0]]);
        let mut o = TrueQuadOracle::new(m);
        let mut c = PairDistCmp::new(&mut o);
        assert!(c.le((0, 1), (1, 2)));
        assert!(!c.le((0, 2), (0, 1)));
    }

    #[test]
    fn rev_flips_the_order() {
        let keys = [1.0, 2.0];
        let mut c = Rev(ExactKeyCmp::new(&keys));
        assert!(!c.le(0, 1)); // reversed: asks le(1, 0) = 2 <= 1 = false
        assert!(c.le(1, 0));
    }

    #[test]
    fn mutable_reference_blanket_impl() {
        let keys = [1.0, 2.0];
        let mut c = ExactKeyCmp::new(&keys);
        fn generic<C: Comparator<usize>>(c: &mut C) -> bool {
            c.le(0, 1)
        }
        assert!(generic(&mut &mut c));
    }
}
