//! Shared select/partition machinery: sample–score–narrow median
//! elimination in batched rounds (Braverman–Mao–Weinberg style).
//!
//! Each iteration draws a fresh pivot sample from the still-active band,
//! scores *every* active item against the whole sample in coalesced
//! oracle rounds, and classifies by score: items strictly above the
//! boundary score (plus slack) are confirmed top, items strictly below
//! (minus slack) are eliminated, and the band in between — the only items
//! whose side is still in doubt — stays active for the next iteration.
//! Once the band is small (or the iteration cap trips), a full
//! round-robin count resolves it exactly.
//!
//! Under an exact oracle sample scores are monotone in true rank, so the
//! confirmed sets are always correct and the final scan pins the exact
//! k-th item; under probabilistic/crowd noise the slack band absorbs
//! score jitter so misclassifications need a score error larger than the
//! slack. Sample members are scored too (self-pairs are skipped without
//! a query), so every item is classified and none is lost to sampling.

use rand::Rng;

use super::{OrderSpec, Split};
use crate::comparator::Comparator;
use crate::maxfind::count_scores_into;

/// Pairs per coalesced scoring round, matching the scoring-triangle
/// chunk in `maxfind::count_scores_into`.
const NARROW_ROUND_CHUNK: usize = 4096;

/// Top-`k` / rest split of `items`, best first. `clean` counts the
/// confirmed-top prefix committed on real answers; `candidate` is the
/// engine's current boundary (k-th item) estimate, refined every clean
/// iteration and finalised by the resolving scan.
pub(crate) fn partition_core<I, C, R>(
    items: &[I],
    k: usize,
    spec: &OrderSpec,
    cmp: &mut C,
    rng: &mut R,
    clean: &mut usize,
    candidate: &mut Option<I>,
) -> Split<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    let n = items.len();
    assert!(k >= 1 && k <= n, "partition requires 1 <= k <= n");
    *clean = 0;
    *candidate = None;
    let mut top: Vec<I> = Vec::with_capacity(k);
    let mut rest: Vec<I> = Vec::with_capacity(n - k);
    let mut active: Vec<I> = items.to_vec();
    let mut need = k;
    let mut scores: Vec<u32> = Vec::new();
    let mut iters = 0;
    loop {
        debug_assert!((1..=active.len()).contains(&need));
        if active.len() <= spec.scan_threshold.max(2) || iters >= spec.max_narrow_rounds {
            // Resolve the residual band exactly: full round-robin count,
            // ordered by (score desc, index) — a transitive tournament
            // under an exact oracle, hence the true order.
            count_scores_into(&active, cmp, &mut scores);
            let mut ord: Vec<usize> = (0..active.len()).collect();
            ord.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
            for (rank, &i) in ord.iter().enumerate() {
                if rank < need {
                    top.push(active[i]);
                } else {
                    rest.push(active[i]);
                }
            }
            if !cmp.doomed() {
                *clean = top.len();
                *candidate = top.last().copied();
            }
            break;
        }
        iters += 1;
        // Fresh pivot sample (with replacement) from the active band.
        let s = spec.sample_size.clamp(1, active.len());
        let sample: Vec<I> = (0..s)
            .map(|_| active[rng.random_range(0..active.len())])
            .collect();
        score_vs_sample(&active, &sample, cmp, &mut scores);
        let mut ord: Vec<usize> = (0..active.len()).collect();
        ord.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
        let boundary_score = scores[ord[need - 1]];
        let boundary_item = active[ord[need - 1]];
        let hi_thr = boundary_score.saturating_add(spec.slack);
        let lo_thr = boundary_score.saturating_sub(spec.slack);
        // Items above the boundary band are confirmed top (there are at
        // most need-1 of them, since the boundary itself scores <= hi_thr);
        // items below are eliminated; the band stays active, and always
        // retains at least the remaining `need` (the boundary is in it).
        let mut band: Vec<I> = Vec::new();
        for &i in &ord {
            if scores[i] > hi_thr {
                top.push(active[i]);
                need -= 1;
            } else if scores[i] < lo_thr {
                rest.push(active[i]);
            } else {
                band.push(active[i]);
            }
        }
        active = band;
        if !cmp.doomed() {
            *clean = top.len();
            *candidate = Some(boundary_item);
        }
    }
    debug_assert_eq!(top.len(), k);
    Split { top, rest }
}

/// Scores every item in `active` by its wins against the pivot sample,
/// in coalesced rounds. Self-pairs (an item meeting its own sample
/// occurrence) are skipped without spending a query and count as losses.
fn score_vs_sample<I, C>(active: &[I], sample: &[I], cmp: &mut C, scores: &mut Vec<u32>)
where
    I: Copy + Eq,
    C: Comparator<I>,
{
    scores.clear();
    scores.resize(active.len(), 0);
    let cap = NARROW_ROUND_CHUNK.min(active.len() * sample.len());
    let mut round: Vec<(I, I)> = Vec::with_capacity(cap);
    let mut who: Vec<usize> = Vec::with_capacity(cap);
    let mut answers: Vec<bool> = Vec::with_capacity(cap);
    for (u_idx, &u) in active.iter().enumerate() {
        for &x in sample {
            if u == x {
                continue;
            }
            round.push((u, x));
            who.push(u_idx);
            if round.len() == NARROW_ROUND_CHUNK {
                flush(&round, &who, cmp, &mut answers, scores);
                round.clear();
                who.clear();
            }
        }
    }
    flush(&round, &who, cmp, &mut answers, scores);
}

fn flush<I, C>(
    round: &[(I, I)],
    who: &[usize],
    cmp: &mut C,
    answers: &mut Vec<bool>,
    scores: &mut [u32],
) where
    I: Copy,
    C: Comparator<I>,
{
    if round.is_empty() {
        return;
    }
    answers.clear();
    cmp.le_round(round, answers);
    for (&w, &ans) in who.iter().zip(answers.iter()) {
        // le(u, x) == false means u beat the pivot: one win.
        if !ans {
            scores[w] += 1;
        }
    }
}
