//! Ordering engines tuned for exact and adversarial-band oracles.
//!
//! An adversary may answer arbitrarily whenever the compared values are
//! within its `(1 + mu)` band, and no amount of voting inside the band
//! can beat it — so these variants keep the vote windows lean (they only
//! buy deterministic in-band tie-breaking) and run with zero score slack:
//! outside the band every answer is truthful, which makes sample scores
//! exact up to in-band jitter. With `mu = 0` (an exact oracle) every
//! engine here is exactly correct: the full sort emits the true
//! descending order, `select_adv` the true k-th largest, and
//! `partition_adv` the true top-k split.

use rand::Rng;

use super::{narrow, skeleton, OrderSpec, Split};
use crate::comparator::Comparator;

/// Tuning knobs for the adversarial/exact ordering engines.
///
/// [`OrderAdvParams::experimental`] (also [`Default`]) mirrors the lean
/// Section 6.1 style used across the other engine families; use
/// [`OrderAdvParams::with_confidence`] to size pivot samples for a target
/// failure probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderAdvParams {
    /// Target failure probability used to size pivot samples.
    pub delta: f64,
    /// Window-vote growth coefficient for insertion binary searches: a
    /// step over `s` open slots votes over `ceil(vote_coeff * ln(s + 1))`
    /// distinct probes.
    pub vote_coeff: f64,
    /// Initial skeleton block, sorted by exact round-robin before the
    /// insertion waves start.
    pub seed_size: usize,
    /// Lookahead of the sort's polish/emit sweep (window of positions
    /// count-maxed before each position is committed).
    pub polish_window: usize,
    /// Pivot-sample coefficient for select/partition narrowing:
    /// `s = ceil(sample_coeff * ln(n / delta))`, floored at 3.
    pub sample_coeff: f64,
    /// Resolve the active band by exact round-robin once it is this small.
    pub scan_threshold: usize,
    /// Cap on narrowing iterations; `None` resolves to `2*log2(n) + 4`.
    pub max_narrow_rounds: Option<usize>,
}

impl OrderAdvParams {
    /// The lean experimental profile.
    pub fn experimental() -> Self {
        Self {
            delta: 0.1,
            vote_coeff: 1.0,
            seed_size: 8,
            polish_window: 3,
            sample_coeff: 3.0,
            scan_threshold: 24,
            max_narrow_rounds: None,
        }
    }

    /// Experimental profile re-sized for failure probability `delta`.
    ///
    /// # Panics
    /// If `delta` is not in `(0, 1)`.
    pub fn with_confidence(delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "confidence delta must lie in (0, 1)"
        );
        Self {
            delta,
            ..Self::experimental()
        }
    }

    pub(crate) fn spec(&self, n: usize) -> OrderSpec {
        OrderSpec {
            vote_coeff: self.vote_coeff,
            seed_size: self.seed_size,
            polish_window: self.polish_window,
            sample_size: sample_size(self.sample_coeff, self.delta, n),
            slack: 0,
            scan_threshold: self.scan_threshold.max(2),
            max_narrow_rounds: self
                .max_narrow_rounds
                .unwrap_or_else(|| default_narrow_rounds(n)),
        }
    }
}

impl Default for OrderAdvParams {
    fn default() -> Self {
        Self::experimental()
    }
}

pub(crate) fn sample_size(coeff: f64, delta: f64, n: usize) -> usize {
    let s = (coeff * (n.max(1) as f64 / delta).max(2.0).ln()).ceil();
    (s as usize).max(3)
}

pub(crate) fn default_narrow_rounds(n: usize) -> usize {
    2 * ((n.max(2) as f64).log2().ceil() as usize) + 4
}

/// Full noisy sort, descending (best first), for exact/adversarial
/// oracles. See [`sort_adv_with_progress`].
pub fn sort_adv<I, C>(items: &[I], params: &OrderAdvParams, cmp: &mut C) -> Vec<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
{
    sort_adv_with_progress(items, params, cmp, &mut 0)
}

/// [`sort_adv`] exposing the polish-sweep clean-prefix watermark:
/// `out[..clean]` was committed entirely on real answers and is
/// bit-identical to the same prefix of an unkilled run. The query
/// sequence is exactly that of [`sort_adv`].
pub fn sort_adv_with_progress<I, C>(
    items: &[I],
    params: &OrderAdvParams,
    cmp: &mut C,
    clean: &mut usize,
) -> Vec<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
{
    skeleton::sort_core(items, &params.spec(items.len()), cmp, clean)
}

/// The k-th largest item (`k = 1` is the maximum) for exact/adversarial
/// oracles. See [`select_adv_with_progress`].
///
/// # Panics
/// If `k` is not in `1..=items.len()`.
pub fn select_adv<I, C, R>(
    items: &[I],
    k: usize,
    params: &OrderAdvParams,
    cmp: &mut C,
    rng: &mut R,
) -> Option<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    select_adv_with_progress(items, k, params, cmp, rng, &mut 0, &mut None)
}

/// [`select_adv`] exposing the narrowing watermarks: `clean` counts
/// confirmed-top items committed on real answers, `candidate` is the
/// current boundary (k-th) estimate. Queries and rng draws are exactly
/// those of [`select_adv`] (and of the partition run it wraps).
pub fn select_adv_with_progress<I, C, R>(
    items: &[I],
    k: usize,
    params: &OrderAdvParams,
    cmp: &mut C,
    rng: &mut R,
    clean: &mut usize,
    candidate: &mut Option<I>,
) -> Option<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    let split = partition_adv_with_progress(items, k, params, cmp, rng, clean, candidate);
    split.top.last().copied()
}

/// Top-`k` / rest split, best first, for exact/adversarial oracles. See
/// [`partition_adv_with_progress`].
///
/// # Panics
/// If `k` is not in `1..=items.len()`.
pub fn partition_adv<I, C, R>(
    items: &[I],
    k: usize,
    params: &OrderAdvParams,
    cmp: &mut C,
    rng: &mut R,
) -> Split<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    partition_adv_with_progress(items, k, params, cmp, rng, &mut 0, &mut None)
}

/// [`partition_adv`] exposing the narrowing watermarks; `top[..clean]`
/// was confirmed entirely on real answers and is a true prefix of the
/// completed run's `top`.
pub fn partition_adv_with_progress<I, C, R>(
    items: &[I],
    k: usize,
    params: &OrderAdvParams,
    cmp: &mut C,
    rng: &mut R,
    clean: &mut usize,
    candidate: &mut Option<I>,
) -> Split<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    narrow::partition_core(
        items,
        k,
        &params.spec(items.len()),
        cmp,
        rng,
        clean,
        candidate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::ExactKeyCmp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn keys(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 193) % 4999) as f64).collect()
    }

    #[test]
    fn exact_oracle_sorts_exactly() {
        for n in [0usize, 1, 2, 3, 7, 64, 257] {
            let keys = keys(n);
            let items: Vec<usize> = (0..n).collect();
            let mut clean = 0;
            let got = sort_adv_with_progress(
                &items,
                &OrderAdvParams::experimental(),
                &mut ExactKeyCmp::new(&keys),
                &mut clean,
            );
            let mut want = items.clone();
            want.sort_by(|&a, &b| keys[b].partial_cmp(&keys[a]).unwrap());
            assert_eq!(got, want, "n={n}");
            assert_eq!(clean, n, "clean prefix covers an unkilled run");
        }
    }

    #[test]
    fn exact_oracle_selects_the_true_kth() {
        let n = 129;
        let keys = keys(n);
        let items: Vec<usize> = (0..n).collect();
        let mut sorted = items.clone();
        sorted.sort_by(|&a, &b| keys[b].partial_cmp(&keys[a]).unwrap());
        for k in [1usize, 2, 5, 64, 128, 129] {
            let got = select_adv(
                &items,
                k,
                &OrderAdvParams::experimental(),
                &mut ExactKeyCmp::new(&keys),
                &mut rng(k as u64),
            );
            assert_eq!(got, Some(sorted[k - 1]), "k={k}");
        }
    }

    #[test]
    fn exact_oracle_partitions_the_true_topk() {
        let n = 200;
        let keys = keys(n);
        let items: Vec<usize> = (0..n).collect();
        let mut sorted = items.clone();
        sorted.sort_by(|&a, &b| keys[b].partial_cmp(&keys[a]).unwrap());
        for k in [1usize, 7, 100, 199, 200] {
            let split = partition_adv(
                &items,
                k,
                &OrderAdvParams::experimental(),
                &mut ExactKeyCmp::new(&keys),
                &mut rng(31 + k as u64),
            );
            let mut top_set = split.top.clone();
            top_set.sort_unstable();
            let mut want_set = sorted[..k].to_vec();
            want_set.sort_unstable();
            assert_eq!(top_set, want_set, "top is the exact top-k set, k={k}");
            assert_eq!(
                split.top.last(),
                Some(&sorted[k - 1]),
                "boundary item is the exact k-th, k={k}"
            );
            assert_eq!(split.top.len() + split.rest.len(), n);
            let mut all: Vec<usize> = split.top.iter().chain(&split.rest).copied().collect();
            all.sort_unstable();
            assert_eq!(all, items, "split is a permutation");
        }
    }

    #[test]
    fn confidence_validates_its_range() {
        let p = OrderAdvParams::with_confidence(0.05);
        assert!(p.spec(100).sample_size >= OrderAdvParams::experimental().spec(100).sample_size);
        for bad in [0.0, 1.0, -0.3, 2.0] {
            assert!(std::panic::catch_unwind(|| OrderAdvParams::with_confidence(bad)).is_err());
        }
    }
}
