//! Shared sorting machinery: wave insertion into a binary-search skeleton
//! followed by a polish/emit sweep.
//!
//! Stage 1 (Gu–Xu insertion): the sorted skeleton starts as a single item
//! and doubles every wave — each wave binary-searches all of its members
//! into the *fixed* wave-start skeleton at once, so the step-`t` probes of
//! every member coalesce into one oracle round. A step over an open
//! interval of `span` slots does not trust a single comparison: it votes
//! over [`OrderSpec::votes`] *distinct* skeleton probes centred on the
//! midpoint (persistent noise makes re-asking one probe worthless, but
//! distinct probes carry independent coins). Under an exact oracle the
//! majority over a probe window is exactly the comparison "insertion rank
//! vs. median probe", so the search lands on the true slot and the splice
//! keeps the skeleton exactly sorted.
//!
//! Stage 2 (polish/emit): a left-to-right sweep count-maxes a small
//! lookahead window at each position, swaps the winner in, and commits
//! the position. The sweep is where the *clean prefix* watermark lives:
//! positions are committed in output order while the oracle still answers
//! for real, and a committed position is never touched again, so a killed
//! run's prefix is bit-identical to the same prefix of the completed run.

use super::OrderSpec;
use crate::comparator::Comparator;
use crate::maxfind::count_scores_into;

/// Pairs per coalesced insertion round, matching the scoring-triangle
/// chunk in `maxfind::count_scores_into`.
const WAVE_ROUND_CHUNK: usize = 4096;

/// Full noisy sort, descending (best first). `clean` is the emit-sweep
/// watermark: `out[..clean]` was committed entirely on real answers.
pub(crate) fn sort_core<I, C>(
    items: &[I],
    spec: &OrderSpec,
    cmp: &mut C,
    clean: &mut usize,
) -> Vec<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
{
    let n = items.len();
    *clean = 0;
    if n <= 1 {
        if !cmp.doomed() {
            *clean = n;
        }
        return items.to_vec();
    }

    // Stage 1: doubling waves of coalesced voted binary searches, off a
    // round-robin-sorted seed block (every decision in the seed rests on
    // its own persistent coin, so errors there are local score slips,
    // not the catastrophic single-coin flips a 1-item skeleton risks).
    let mut scores: Vec<u32> = Vec::new();
    let seed = spec.seed_size.clamp(1, n);
    let mut order: Vec<I> = {
        count_scores_into(&items[..seed], cmp, &mut scores);
        let mut ord: Vec<usize> = (0..seed).collect();
        ord.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
        ord.into_iter().map(|g| items[g]).collect()
    };
    let mut idx = seed;
    while idx < n {
        let wave_len = order.len().min(n - idx);
        let wave = &items[idx..idx + wave_len];
        idx += wave_len;
        let positions = locate_wave(&order, wave, spec, cmp);
        order = splice_wave(&order, wave, &positions, cmp, &mut scores);
    }

    // Stage 2: polish/emit sweep — commit positions left to right.
    let lookahead = spec.polish_window.max(1);
    for i in 0..n {
        let end = (i + lookahead).min(n);
        if end - i >= 2 {
            count_scores_into(&order[i..end], cmp, &mut scores);
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(o, _)| o)
                .unwrap_or(0);
            order.swap(i, i + best);
        }
        if !cmp.doomed() {
            *clean = i + 1;
        }
    }
    order
}

/// Runs every wave member's voted binary search against the fixed
/// skeleton, one coalesced round per search step, and returns each
/// member's insertion slot (`0..=order.len()`, the number of skeleton
/// items that go before it).
fn locate_wave<I, C>(order: &[I], wave: &[I], spec: &OrderSpec, cmp: &mut C) -> Vec<usize>
where
    I: Copy + Eq,
    C: Comparator<I>,
{
    let mut lo = vec![0usize; wave.len()];
    let mut hi = vec![order.len(); wave.len()];
    let mut pairs: Vec<(I, I)> = Vec::new();
    let mut meta: Vec<(usize, usize, usize)> = Vec::new();
    let mut answers: Vec<bool> = Vec::new();
    loop {
        pairs.clear();
        meta.clear();
        for w in 0..wave.len() {
            let span = hi[w] - lo[w];
            if span == 0 {
                continue;
            }
            let votes = spec.votes(span);
            let mid = lo[w] + span / 2;
            // `votes` distinct probe slots centred on the midpoint,
            // clipped into the open interval.
            let start = mid.saturating_sub(votes / 2).clamp(lo[w], hi[w] - votes);
            meta.push((w, start, votes));
            for &probe in &order[start..start + votes] {
                // le(u, probe) == true means u sorts after the probe's slot.
                pairs.push((wave[w], probe));
            }
        }
        if meta.is_empty() {
            return lo;
        }
        answers.clear();
        for chunk in pairs.chunks(WAVE_ROUND_CHUNK) {
            cmp.le_round(chunk, &mut answers);
        }
        let mut at = 0;
        for &(w, start, votes) in &meta {
            let yes = answers[at..at + votes].iter().filter(|&&a| a).count();
            at += votes;
            // Majority over distinct probes == "rank > median probe" under
            // an exact oracle, so the [lo, hi] invariant is preserved
            // exactly; under noise each step is an independent majority.
            let median = start + votes / 2;
            if 2 * yes > votes {
                lo[w] = median + 1;
            } else {
                hi[w] = median;
            }
        }
    }
}

/// Splices a located wave into the skeleton. Members that landed on the
/// same slot are ordered among themselves by a round-robin count (exact
/// for an exact oracle: the slot ties are a transitive mini-tournament).
fn splice_wave<I, C>(
    order: &[I],
    wave: &[I],
    positions: &[usize],
    cmp: &mut C,
    scores: &mut Vec<u32>,
) -> Vec<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
{
    let mut by_pos: Vec<(usize, usize)> = positions.iter().copied().zip(0..wave.len()).collect();
    by_pos.sort_unstable();
    let mut merged = Vec::with_capacity(order.len() + wave.len());
    let mut gi = 0;
    for pos in 0..=order.len() {
        let gstart = gi;
        while gi < by_pos.len() && by_pos[gi].0 == pos {
            gi += 1;
        }
        match gi - gstart {
            0 => {}
            1 => merged.push(wave[by_pos[gstart].1]),
            _ => {
                let group: Vec<I> = by_pos[gstart..gi].iter().map(|&(_, w)| wave[w]).collect();
                count_scores_into(&group, cmp, scores);
                let mut ord: Vec<usize> = (0..group.len()).collect();
                ord.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
                merged.extend(ord.iter().map(|&g| group[g]));
            }
        }
        if pos < order.len() {
            merged.push(order[pos]);
        }
    }
    merged
}
