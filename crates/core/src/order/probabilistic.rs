//! Ordering engines tuned for probabilistic-persistent and crowd noise.
//!
//! Persistence means a repeated query returns the same (possibly wrong)
//! answer, so these variants spend their redundancy on *distinct*
//! comparisons: insertion steps vote over probe windows that grow
//! logarithmically with the interval still in play (the noisy analogue of
//! Gu–Xu's repetition schedule — a wrong decision over a span of `s`
//! slots costs up to `s` dislocation, so wide intervals get more
//! independent coins), the polish sweep uses a wider lookahead, and the
//! select/partition narrowing keeps a slack band of boundary scores
//! active instead of classifying on a knife edge. Under an exact oracle
//! all three engines remain exactly correct — voting and slack only ever
//! widen what stays in play.

use rand::Rng;

use super::adversarial::{default_narrow_rounds, sample_size};
use super::{narrow, skeleton, OrderSpec, Split};
use crate::comparator::Comparator;

/// Tuning knobs for the probabilistic/crowd ordering engines.
///
/// [`OrderProbParams::experimental`] (also [`Default`]) mirrors the lean
/// Section 6.1 style used across the other engine families; use
/// [`OrderProbParams::with_confidence`] to size pivot samples for a
/// target failure probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderProbParams {
    /// Target failure probability used to size pivot samples.
    pub delta: f64,
    /// Window-vote growth coefficient for insertion binary searches: a
    /// step over `s` open slots votes over `ceil(vote_coeff * ln(s + 1))`
    /// distinct probes.
    pub vote_coeff: f64,
    /// Initial skeleton block, sorted by exact round-robin before the
    /// insertion waves start — the persistent-noise guard for the
    /// earliest (otherwise single-coin) insertions.
    pub seed_size: usize,
    /// Lookahead of the sort's polish/emit sweep.
    pub polish_window: usize,
    /// Pivot-sample coefficient for select/partition narrowing:
    /// `s = ceil(sample_coeff * ln(n / delta))`, floored at 3.
    pub sample_coeff: f64,
    /// Boundary slack coefficient: scores within
    /// `ceil(slack_coeff * sqrt(s))` of the boundary score stay active.
    pub slack_coeff: f64,
    /// Resolve the active band by exact round-robin once it is this small.
    pub scan_threshold: usize,
    /// Cap on narrowing iterations; `None` resolves to `2*log2(n) + 4`.
    pub max_narrow_rounds: Option<usize>,
}

impl OrderProbParams {
    /// The lean experimental profile.
    pub fn experimental() -> Self {
        Self {
            delta: 0.1,
            vote_coeff: 3.5,
            seed_size: 16,
            polish_window: 4,
            sample_coeff: 4.0,
            slack_coeff: 0.5,
            scan_threshold: 32,
            max_narrow_rounds: None,
        }
    }

    /// Experimental profile re-sized for failure probability `delta`.
    ///
    /// # Panics
    /// If `delta` is not in `(0, 1)`.
    pub fn with_confidence(delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "confidence delta must lie in (0, 1)"
        );
        Self {
            delta,
            ..Self::experimental()
        }
    }

    pub(crate) fn spec(&self, n: usize) -> OrderSpec {
        let sample = sample_size(self.sample_coeff, self.delta, n);
        let slack = (self.slack_coeff * (sample as f64).sqrt()).ceil();
        OrderSpec {
            vote_coeff: self.vote_coeff,
            seed_size: self.seed_size,
            polish_window: self.polish_window,
            sample_size: sample,
            slack: if slack.is_finite() && slack > 0.0 {
                slack as u32
            } else {
                0
            },
            scan_threshold: self.scan_threshold.max(2),
            max_narrow_rounds: self
                .max_narrow_rounds
                .unwrap_or_else(|| default_narrow_rounds(n)),
        }
    }
}

impl Default for OrderProbParams {
    fn default() -> Self {
        Self::experimental()
    }
}

/// Full noisy sort, descending (best first), for probabilistic/crowd
/// oracles. See [`sort_prob_with_progress`].
pub fn sort_prob<I, C>(items: &[I], params: &OrderProbParams, cmp: &mut C) -> Vec<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
{
    sort_prob_with_progress(items, params, cmp, &mut 0)
}

/// [`sort_prob`] exposing the polish-sweep clean-prefix watermark:
/// `out[..clean]` was committed entirely on real answers and is
/// bit-identical to the same prefix of an unkilled run. The query
/// sequence is exactly that of [`sort_prob`].
pub fn sort_prob_with_progress<I, C>(
    items: &[I],
    params: &OrderProbParams,
    cmp: &mut C,
    clean: &mut usize,
) -> Vec<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
{
    skeleton::sort_core(items, &params.spec(items.len()), cmp, clean)
}

/// The k-th largest item (`k = 1` is the maximum) for probabilistic/crowd
/// oracles. See [`select_prob_with_progress`].
///
/// # Panics
/// If `k` is not in `1..=items.len()`.
pub fn select_prob<I, C, R>(
    items: &[I],
    k: usize,
    params: &OrderProbParams,
    cmp: &mut C,
    rng: &mut R,
) -> Option<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    select_prob_with_progress(items, k, params, cmp, rng, &mut 0, &mut None)
}

/// [`select_prob`] exposing the narrowing watermarks: `clean` counts
/// confirmed-top items committed on real answers, `candidate` is the
/// current boundary (k-th) estimate. Queries and rng draws are exactly
/// those of [`select_prob`] (and of the partition run it wraps).
pub fn select_prob_with_progress<I, C, R>(
    items: &[I],
    k: usize,
    params: &OrderProbParams,
    cmp: &mut C,
    rng: &mut R,
    clean: &mut usize,
    candidate: &mut Option<I>,
) -> Option<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    let split = partition_prob_with_progress(items, k, params, cmp, rng, clean, candidate);
    split.top.last().copied()
}

/// Top-`k` / rest split, best first, for probabilistic/crowd oracles.
/// See [`partition_prob_with_progress`].
///
/// # Panics
/// If `k` is not in `1..=items.len()`.
pub fn partition_prob<I, C, R>(
    items: &[I],
    k: usize,
    params: &OrderProbParams,
    cmp: &mut C,
    rng: &mut R,
) -> Split<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    partition_prob_with_progress(items, k, params, cmp, rng, &mut 0, &mut None)
}

/// [`partition_prob`] exposing the narrowing watermarks; `top[..clean]`
/// was confirmed entirely on real answers and is a true prefix of the
/// completed run's `top`.
pub fn partition_prob_with_progress<I, C, R>(
    items: &[I],
    k: usize,
    params: &OrderProbParams,
    cmp: &mut C,
    rng: &mut R,
    clean: &mut usize,
    candidate: &mut Option<I>,
) -> Split<I>
where
    I: Copy + Eq,
    C: Comparator<I>,
    R: Rng + ?Sized,
{
    narrow::partition_core(
        items,
        k,
        &params.spec(items.len()),
        cmp,
        rng,
        clean,
        candidate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::{ExactKeyCmp, ValueCmp};
    use nco_oracle::probabilistic::ProbValueOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exact_oracle_stays_exact_despite_slack() {
        let n = 150;
        let keys: Vec<f64> = (0..n).map(|i| ((i * 211) % 1009) as f64).collect();
        let items: Vec<usize> = (0..n).collect();
        let mut sorted = items.clone();
        sorted.sort_by(|&a, &b| keys[b].partial_cmp(&keys[a]).unwrap());
        let got = sort_prob(
            &items,
            &OrderProbParams::experimental(),
            &mut ExactKeyCmp::new(&keys),
        );
        assert_eq!(got, sorted);
        for k in [1usize, 20, 150] {
            let split = partition_prob(
                &items,
                k,
                &OrderProbParams::experimental(),
                &mut ExactKeyCmp::new(&keys),
                &mut rng(k as u64),
            );
            let mut top_set = split.top.clone();
            top_set.sort_unstable();
            let mut want_set = sorted[..k].to_vec();
            want_set.sort_unstable();
            assert_eq!(top_set, want_set, "k={k}");
            assert_eq!(split.top.last(), Some(&sorted[k - 1]), "k={k}");
        }
    }

    /// Under persistent probabilistic noise the sort's dislocation stays
    /// bounded: window votes shield the wide binary-search steps and the
    /// polish sweep mops up local swaps.
    #[test]
    fn probabilistic_noise_keeps_dislocation_bounded() {
        let n = 256usize;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let items: Vec<usize> = (0..n).collect();
        let bound = (4.0 * (n as f64 * (n as f64).ln()).sqrt()) as usize;
        for seed in 0..5u64 {
            let mut oracle = ProbValueOracle::new(values.clone(), 0.15, 900 + seed);
            let got = sort_prob(
                &items,
                &OrderProbParams::experimental(),
                &mut ValueCmp::new(&mut oracle),
            );
            // True position of item i (descending) is n - 1 - i.
            let worst = got
                .iter()
                .enumerate()
                .map(|(pos, &item)| pos.abs_diff(n - 1 - item))
                .max()
                .unwrap();
            assert!(worst <= bound, "seed {seed}: dislocation {worst} > {bound}");
        }
    }

    /// Select under noise returns an item whose true rank is near k.
    #[test]
    fn probabilistic_noise_selects_near_the_boundary() {
        let n = 300usize;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let items: Vec<usize> = (0..n).collect();
        let k = 40usize;
        let slack = (4.0 * (n as f64 * (n as f64).ln()).sqrt()) as usize;
        for seed in 0..5u64 {
            let mut oracle = ProbValueOracle::new(values.clone(), 0.15, 1700 + seed);
            let got = select_prob(
                &items,
                k,
                &OrderProbParams::experimental(),
                &mut ValueCmp::new(&mut oracle),
                &mut rng(40 + seed),
            )
            .unwrap();
            let rank = n - got; // rank 1 = largest
            assert!(
                rank.abs_diff(k) <= slack,
                "seed {seed}: rank {rank} not within {slack} of k={k}"
            );
        }
    }
}
