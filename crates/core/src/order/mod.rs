//! Ordering engines over noisy comparison oracles: full sort, k-th
//! selection, and top-k partition.
//!
//! | Engine | Shape | Source |
//! |---|---|---|
//! | [`sort_adv`] / [`sort_prob`] | insertion over a binary-search skeleton with window votes, then a polish/emit sweep | Gu–Xu, *Optimal Bounds for Noisy Sorting* |
//! | [`select_adv`] / [`select_prob`] | sample–score–narrow median elimination, exact round-robin on the residual band | Braverman–Mao–Weinberg, *Parallel Algorithms for Select and Partition* |
//! | [`partition_adv`] / [`partition_prob`] | same narrowing loop, returning the full top-k / rest split | Braverman–Mao–Weinberg |
//!
//! Everything here speaks [`Comparator::le_round`](crate::comparator::Comparator::le_round): independent binary-search
//! steps across a wave of concurrent insertions, and the scoring of a whole
//! candidate set against a pivot sample, coalesce into shared rounds of at
//! most a few thousand pairs, so batched oracles amortise work while the
//! answer stream stays bit-identical to the scalar path.
//!
//! Noise is handled the paper's way, not by repetition: persistent models
//! answer a repeated query identically, so instead of re-asking, every
//! decision votes over a window of *distinct* comparisons (independent
//! coins). The adversarial variants keep the windows lean — an adversary can
//! defeat any vote inside its `(1 + mu)` band, so extra probes only buy
//! in-band tie-breaking — while the probabilistic/crowd variants grow the
//! window logarithmically with the interval still in play, which is where
//! Gu–Xu spend their repetition budget.
//!
//! Under an exact oracle every engine is exactly correct: the window vote
//! reduces to an ordinary binary-search comparison against the median probe,
//! and sample scores are monotone in true rank, so the narrowing loop pins
//! the true boundary. The `_with_progress` variants additionally expose the
//! clean-progress watermarks the facade turns into partial outcomes; they
//! issue the exact same query and rng-draw sequences as the plain variants.

mod narrow;
mod skeleton;

pub mod adversarial;
pub mod probabilistic;

pub use adversarial::{
    partition_adv, partition_adv_with_progress, select_adv, select_adv_with_progress, sort_adv,
    sort_adv_with_progress, OrderAdvParams,
};
pub use probabilistic::{
    partition_prob, partition_prob_with_progress, select_prob, select_prob_with_progress,
    sort_prob, sort_prob_with_progress, OrderProbParams,
};

/// A top-`k` / rest split of the input, as returned by the partition
/// engines.
///
/// `top` holds the `k` items the engine placed in the top class, in
/// confirmation order (each confirmed batch best first by score);
/// `rest` holds the remaining items in elimination order. Under an
/// exact oracle `top` is exactly the *set* of the `k` largest items and
/// its last element — resolved by the engine's exact round-robin scan —
/// is exactly the k-th largest. Sample-score ties inside one confirmed
/// batch keep `top` from being a fully sorted sequence; ask
/// [`sort_adv`] / [`sort_prob`] when the total order matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split<I> {
    /// The `k` items classified as the top class, best first.
    pub top: Vec<I>,
    /// The remaining items, in elimination order.
    pub rest: Vec<I>,
}

/// Resolved per-run knobs shared by the two noise variants: the
/// adversarial and probabilistic front ends differ only in how they fill
/// this in from their params.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OrderSpec {
    /// Window-vote growth: a binary-search step over a span of `s`
    /// skeleton slots votes over `ceil(vote_coeff * ln(s + 1))` distinct
    /// probes (clamped to the span, floored at 1).
    pub vote_coeff: f64,
    /// Initial skeleton size, sorted by exact round-robin before waves
    /// start. Guards the earliest insertions: a 1–2 item skeleton offers
    /// only one persistent coin per decision, and a single early flip
    /// can cost Θ(n) dislocation downstream.
    pub seed_size: usize,
    /// Lookahead of the polish/emit sweep that commits the sorted prefix.
    pub polish_window: usize,
    /// Pivot-sample size for one narrowing iteration.
    pub sample_size: usize,
    /// Score slack around the boundary score: items within `slack` of the
    /// k-th score stay in the active band instead of being classified.
    pub slack: u32,
    /// Resolve the active set by exact round-robin once it is this small.
    pub scan_threshold: usize,
    /// Cap on narrowing iterations before falling back to round-robin.
    pub max_narrow_rounds: usize,
}

impl OrderSpec {
    /// Number of distinct probes a binary-search step votes over when the
    /// open interval spans `span` skeleton slots.
    pub(crate) fn votes(&self, span: usize) -> usize {
        let v = (self.vote_coeff * ((span + 1) as f64).ln()).ceil();
        let v = if v.is_finite() && v > 1.0 {
            v as usize
        } else {
            1
        };
        // Prefer an odd vote count (clean majorities); never exceed the span.
        (v | 1).min(span)
    }
}
