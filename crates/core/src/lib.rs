//! # nco-core — the paper's algorithms
//!
//! A from-scratch implementation of every algorithm in *How to Design Robust
//! Algorithms using Noisy Comparison Oracle* (Addanki, Galhotra, Saha —
//! PVLDB 14(9), 2021), plus the evaluation baselines of its Section 6.
//!
//! | Module | Contents | Paper |
//! |---|---|---|
//! | [`comparator`] | the noisy `le` abstraction all engines run on | — |
//! | [`maxfind`] | Count-Max, λ-ary Tournament, Tournament-Partition, Max-Adv, Count-Max-Prob | Alg. 1–4, 12; Thm 3.6, 3.7 |
//! | [`neighbor`] | PairwiseComp, core sets, farthest/nearest under both noise models, Tour2/Samp baselines | Alg. 5, 13–16; Thm 3.10 |
//! | [`kcenter`] | greedy k-center (adversarial), sampled k-center with cores (probabilistic), Gonzalez/Tour2/Samp/Oq baselines | Alg. 6–10; Thm 4.2, 4.4 |
//! | [`hier`] | single/complete-linkage agglomerative clustering with adjacency lists, exact and baseline variants | Alg. 11; Thm 5.2 |
//! | [`order`] | noisy sort (skeleton insertion + polish), k-th select and top-k partition (sample–score–narrow) | Gu–Xu; Braverman–Mao–Weinberg |
//!
//! Every algorithm is generic over [`comparator::Comparator`], a noisy
//! "is `a <= b`?" predicate: finding a maximum value, the farthest point
//! from a query, or the farthest (point, center) pair are all the *same*
//! engine instantiated with different comparators — which is exactly how the
//! paper reuses its Section 3 machinery in Sections 4 and 5.
//!
//! ## Conventions
//!
//! * Records are `usize` indices into the oracle's hidden ground truth.
//! * All randomized algorithms take an explicit `&mut impl Rng`; fixed seeds
//!   give bit-reproducible runs.
//! * Parameter structs offer `experimental()` constructors matching the
//!   paper's Section 6.1 settings (`t = 1`, `gamma = 2`, ...) and
//!   `with_confidence(delta)` constructors matching the theorems.

pub mod comparator;
pub mod hier;
pub mod kcenter;
pub mod maxfind;
pub mod neighbor;
pub mod order;
#[cfg(feature = "parallel")]
pub mod parallel;

pub use comparator::Comparator;
pub use kcenter::Clustering;
