//! Algorithm 11 — oracle-driven agglomerative clustering with
//! nearest-neighbour pointers (the SLINK-style `O(n^2)` scheme).
//!
//! Per iteration: every live cluster holds a pointer to its (approximate)
//! nearest neighbour; the globally closest `(C, nn(C))` candidate is found
//! with the Section 3 minimum engine over the candidates' representative
//! pairs; the winning pair is merged; adjacency reps are refreshed at one
//! query per survivor; and the affected pointers are repaired — for single
//! linkage a stale pointer into the merged pair can simply be redirected
//! to the union (its distance only shrank), while complete linkage
//! recomputes those pointers (distances grew). Theorem 5.2: each merge is
//! within `(1+mu)^3` of the best available merge w.h.p., and the whole
//! hierarchy costs `O(n^2 log^2(n/delta))` queries.

use super::graph::ClusterGraph;
use super::{Dendrogram, Linkage, Merge};
use crate::comparator::Comparator;
use crate::maxfind::{min_adv, AdvParams};
use nco_oracle::{QuadrupletOracle, SharedQuadrupletOracle};
use rand::rngs::CounterRng;
use rand::Rng;

/// Parameters of oracle-driven agglomeration (Algorithm 11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierParams {
    /// Linkage objective.
    pub linkage: Linkage,
    /// Max-Adv configuration for nearest-neighbour / closest-pair searches
    /// (the paper uses `t = 2 log(n/delta)` for Lemma 5.1, `t = 1` in
    /// experiments).
    pub search: AdvParams,
}

impl HierParams {
    /// The paper's experimental setting (`t = 1`).
    pub fn experimental(linkage: Linkage) -> Self {
        Self {
            linkage,
            search: AdvParams::experimental(),
        }
    }

    /// Lemma 5.1's setting: per-merge failure probability `delta / n`.
    pub fn with_confidence(linkage: Linkage, n: usize, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0);
        let t = ((2.0 * (n.max(2) as f64 / delta).log2()).ceil() as usize).max(1);
        Self {
            linkage,
            search: AdvParams {
                rounds: t,
                partitions: None,
                sample_size: None,
            },
        }
    }
}

/// Single linkage with the experimental search constants.
impl Default for HierParams {
    fn default() -> Self {
        Self::experimental(Linkage::Single)
    }
}

/// Compares neighbour clusters of a fixed cluster by their rep-pair
/// distances.
struct RepCmp<'a, O> {
    oracle: &'a mut O,
    graph: &'a ClusterGraph,
    me: usize,
}

impl<O: QuadrupletOracle> Comparator<usize> for RepCmp<'_, O> {
    fn le(&mut self, c1: usize, c2: usize) -> bool {
        let r1 = self.graph.rep(self.me, c1);
        let r2 = self.graph.rep(self.me, c2);
        self.oracle.le(r1.0, r1.1, r2.0, r2.1)
    }

    fn le_round(&mut self, round: &[(usize, usize)], out: &mut Vec<bool>) {
        let queries: Vec<[usize; 4]> = round
            .iter()
            .map(|&(c1, c2)| {
                let r1 = self.graph.rep(self.me, c1);
                let r2 = self.graph.rep(self.me, c2);
                [r1.0, r1.1, r2.0, r2.1]
            })
            .collect();
        self.oracle.le_batch(&queries, out);
    }
}

/// [`RepCmp`] through a shared oracle reference — the comparator the
/// fanned-out initial nearest-neighbour searches of [`hier_oracle_par`]
/// build per worker (answers are pure functions of the query, so the
/// shared path is bit-identical to the `&mut` path).
struct SharedRepCmp<'a, O> {
    oracle: &'a O,
    graph: &'a ClusterGraph,
    me: usize,
}

impl<O: SharedQuadrupletOracle> Comparator<usize> for SharedRepCmp<'_, O> {
    fn le(&mut self, c1: usize, c2: usize) -> bool {
        let r1 = self.graph.rep(self.me, c1);
        let r2 = self.graph.rep(self.me, c2);
        self.oracle.le_shared(r1.0, r1.1, r2.0, r2.1)
    }
}

/// Compares candidate clusters by the rep pair to their current nearest
/// neighbour — the closest-pair search of Algorithm 11 line 7.
struct CandidateCmp<'a, O> {
    oracle: &'a mut O,
    graph: &'a ClusterGraph,
    /// Dense pointer table indexed by cluster id.
    nn: &'a [usize],
}

impl<O: QuadrupletOracle> Comparator<usize> for CandidateCmp<'_, O> {
    fn le(&mut self, c1: usize, c2: usize) -> bool {
        let r1 = self.graph.rep(c1, self.nn[c1]);
        let r2 = self.graph.rep(c2, self.nn[c2]);
        self.oracle.le(r1.0, r1.1, r2.0, r2.1)
    }

    fn le_round(&mut self, round: &[(usize, usize)], out: &mut Vec<bool>) {
        let queries: Vec<[usize; 4]> = round
            .iter()
            .map(|&(c1, c2)| {
                let r1 = self.graph.rep(c1, self.nn[c1]);
                let r2 = self.graph.rep(c2, self.nn[c2]);
                [r1.0, r1.1, r2.0, r2.1]
            })
            .collect();
        self.oracle.le_batch(&queries, out);
    }
}

fn nearest_of<O, R>(
    graph: &ClusterGraph,
    c: usize,
    params: &AdvParams,
    oracle: &mut O,
    rng: &mut R,
    scratch: &mut Vec<usize>,
) -> usize
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    scratch.clear();
    scratch.extend(graph.active().iter().copied().filter(|&x| x != c));
    debug_assert!(!scratch.is_empty());
    let mut cmp = RepCmp {
        oracle,
        graph,
        me: c,
    };
    min_adv(scratch, params, &mut cmp, rng).expect("at least one neighbour")
}

/// [`nearest_of`] through a shared oracle reference (the worker-side form
/// of the initial pointer pass). Identical candidate list, comparator
/// decisions and rng consumption — only the borrow discipline differs.
fn nearest_of_shared<O, R>(
    graph: &ClusterGraph,
    c: usize,
    params: &AdvParams,
    oracle: &O,
    rng: &mut R,
    scratch: &mut Vec<usize>,
) -> usize
where
    O: SharedQuadrupletOracle,
    R: Rng + ?Sized,
{
    scratch.clear();
    scratch.extend(graph.active().iter().copied().filter(|&x| x != c));
    debug_assert!(!scratch.is_empty());
    let mut cmp = SharedRepCmp {
        oracle,
        graph,
        me: c,
    };
    min_adv(scratch, params, &mut cmp, rng).expect("at least one neighbour")
}

/// Algorithm 11: agglomerative clustering (single or complete linkage)
/// under a noisy quadruplet oracle.
///
/// # Panics
/// Panics if `oracle.n() < 2`.
pub fn hier_oracle<O, R>(params: &HierParams, oracle: &mut O, rng: &mut R) -> Dendrogram
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    assert!(n >= 2, "agglomeration needs at least two records");
    let graph = ClusterGraph::new(n);

    // Dense nearest-neighbour pointer table indexed by cluster id (ids
    // run `0..2n-1` across the whole agglomeration); `usize::MAX` marks
    // dead/unset entries. The seed implementation kept a `HashMap` here —
    // two hashed lookups per candidate comparison on the hot path.
    let mut nn: Vec<usize> = vec![usize::MAX; 2 * n - 1];
    let mut neighbours: Vec<usize> = Vec::with_capacity(n);

    // Initial nearest-neighbour pointers (n searches of O(n) queries),
    // drawn from the caller's rng row after row.
    for (c, pointer) in nn.iter_mut().enumerate().take(n) {
        *pointer = nearest_of(&graph, c, &params.search, oracle, rng, &mut neighbours);
    }

    agglomerate(params, graph, nn, oracle, rng)
}

/// Counter-stream twin of [`hier_oracle`]: the initial `n`
/// nearest-neighbour searches draw from **per-row
/// [`CounterRng`](rand::rngs::CounterRng) streams** derived from one serial
/// draw on the caller's rng, which makes the rows rng-independent — so
/// they can fan out across `std::thread::scope` workers (with the
/// `parallel` feature and `threads > 1`) and still produce the same
/// pointers, the same queries and the same dendrogram as the `threads = 1`
/// run, bit for bit. The merge loop after initialisation is the serial
/// engine either way.
///
/// Note the randomness *schedule* differs from [`hier_oracle`] (per-row
/// streams instead of one shared cursor), so for a given seed the two
/// entry points return different — equally guarantee-respecting —
/// dendrograms. Pick one per experiment; `perfsuite` pins both.
///
/// Without the `parallel` feature `threads` is ignored and the rows run
/// serially — still through the per-row streams, so results match a
/// `parallel`-enabled binary exactly.
///
/// # Panics
/// Panics if `oracle.n() < 2`.
pub fn hier_oracle_par<O, R>(
    params: &HierParams,
    oracle: &mut O,
    rng: &mut R,
    threads: usize,
) -> Dendrogram
where
    O: SharedQuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    assert!(n >= 2, "agglomeration needs at least two records");
    let graph = ClusterGraph::new(n);

    // One serial draw keys every row stream; row `c` then owns the
    // deterministic stream `base.stream(c)` regardless of which worker
    // (or how many workers) executes it.
    let base = CounterRng::new(rng.next_u64(), rng.next_u64());
    let mut nn: Vec<usize> = vec![usize::MAX; 2 * n - 1];

    #[cfg(feature = "parallel")]
    let fan_out = threads > 1;
    #[cfg(not(feature = "parallel"))]
    let fan_out = false;
    let _ = threads;

    if !fan_out {
        let mut neighbours: Vec<usize> = Vec::with_capacity(n);
        for (c, pointer) in nn.iter_mut().enumerate().take(n) {
            let mut row_rng = base.stream(c as u64);
            *pointer = nearest_of_shared(
                &graph,
                c,
                &params.search,
                &*oracle,
                &mut row_rng,
                &mut neighbours,
            );
        }
    }
    #[cfg(feature = "parallel")]
    if fan_out {
        let chunk = n.div_ceil(threads);
        let graph = &graph;
        let oracle = &*oracle;
        let base = &base;
        std::thread::scope(|scope| {
            for (w, rows) in nn[..n].chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let mut neighbours: Vec<usize> = Vec::with_capacity(n);
                    for (offset, pointer) in rows.iter_mut().enumerate() {
                        let c = w * chunk + offset;
                        let mut row_rng = base.stream(c as u64);
                        *pointer = nearest_of_shared(
                            graph,
                            c,
                            &params.search,
                            oracle,
                            &mut row_rng,
                            &mut neighbours,
                        );
                    }
                });
            }
        });
    }

    agglomerate(params, graph, nn, oracle, rng)
}

/// The merge loop shared by [`hier_oracle`] and [`hier_oracle_par`]:
/// closest-pair selection, merging, and pointer repair, all serial.
fn agglomerate<O, R>(
    params: &HierParams,
    mut graph: ClusterGraph,
    mut nn: Vec<usize>,
    oracle: &mut O,
    rng: &mut R,
) -> Dendrogram
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = graph.active().len();
    // Scratch buffers reused by every search and repair round.
    let mut neighbours: Vec<usize> = Vec::with_capacity(n);
    let mut stale: Vec<usize> = Vec::with_capacity(n);

    let mut merges = Vec::with_capacity(n - 1);
    while graph.active().len() > 1 {
        // Closest (C, nn(C)) candidate, searched directly over the live
        // slot list — no per-merge candidate `Vec` rebuild.
        let winner = {
            let mut cmp = CandidateCmp {
                oracle,
                graph: &graph,
                nn: &nn,
            };
            min_adv(graph.active(), &params.search, &mut cmp, rng).expect("non-empty actives")
        };
        let partner = nn[winner];
        let rep = graph.rep(winner, partner);

        let new = graph.merge(winner, partner, params.linkage, oracle);
        merges.push(Merge {
            a: winner,
            b: partner,
            merged: new,
            rep,
        });
        nn[winner] = usize::MAX;
        nn[partner] = usize::MAX;

        if graph.active().len() == 1 {
            break;
        }

        // Repair pointers into the merged pair.
        stale.clear();
        stale.extend(
            graph
                .active()
                .iter()
                .copied()
                .filter(|&c| c != new && (nn[c] == winner || nn[c] == partner)),
        );
        for &c in &stale {
            match params.linkage {
                // Single linkage: d(c, new) = min of the two old distances,
                // so the union is still c's nearest — redirect for free.
                Linkage::Single => {
                    nn[c] = new;
                }
                // Complete linkage: distances grew; recompute.
                Linkage::Complete => {
                    nn[c] = nearest_of(&graph, c, &params.search, oracle, rng, &mut neighbours);
                }
            }
        }
        nn[new] = nearest_of(&graph, new, &params.search, oracle, rng, &mut neighbours);
    }

    let d = Dendrogram { n, merges };
    d.validate();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::{EuclideanMetric, Metric};
    use nco_oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
    use nco_oracle::counting::Counting;
    use nco_oracle::TrueQuadOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn two_pairs() -> EuclideanMetric {
        EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![10.0], vec![11.5]])
    }

    #[test]
    fn perfect_oracle_single_linkage_merges_in_distance_order() {
        let mut o = TrueQuadOracle::new(two_pairs());
        let d = hier_oracle(
            &HierParams::experimental(Linkage::Single),
            &mut o,
            &mut rng(1),
        );
        assert_eq!(d.merges.len(), 3);
        // First merge must be (0,1) at distance 1.
        assert_eq!(
            (
                d.merges[0].a.min(d.merges[0].b),
                d.merges[0].a.max(d.merges[0].b)
            ),
            (0, 1)
        );
        // Second merge must be (2,3) at distance 1.5.
        assert_eq!(
            (
                d.merges[1].a.min(d.merges[1].b),
                d.merges[1].a.max(d.merges[1].b)
            ),
            (2, 3)
        );
        // Cut at 2 recovers the two pairs.
        let labels = d.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn perfect_oracle_complete_linkage_also_recovers_pairs() {
        let mut o = TrueQuadOracle::new(two_pairs());
        let d = hier_oracle(
            &HierParams::experimental(Linkage::Complete),
            &mut o,
            &mut rng(2),
        );
        let labels = d.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    /// Theorem 5.2 sanity: merges under adversarial noise stay within
    /// (1+mu)^3 of the best available merge (checked on true distances).
    #[test]
    fn merges_are_approximately_optimal_under_noise() {
        // A line of 16 points with growing gaps.
        let pts: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![(i as f64) * (1.0 + 0.1 * i as f64)])
            .collect();
        let m = EuclideanMetric::from_points(&pts);
        let mu = 0.3;
        let trials = 10;
        let mut total = 0usize;
        let mut within = 0usize;
        for seed in 0..trials {
            let mut o = AdversarialQuadOracle::new(m.clone(), mu, InvertAdversary);
            let d = hier_oracle(
                &HierParams::with_confidence(Linkage::Single, 16, 0.1),
                &mut o,
                &mut rng(50 + seed),
            );
            // Replay: at each step compare the merged linkage distance to
            // the best possible merge at that step.
            let mut members: Vec<Vec<usize>> = (0..16).map(|i| vec![i]).collect();
            for mg in &d.merges {
                let da = single_linkage_dist(&m, &members[mg.a], &members[mg.b]);
                let best = best_merge(&m, &members, mg.merged);
                total += 1;
                if da <= best * (1.0 + mu).powi(3) + 1e-9 {
                    within += 1;
                }
                let mut u = members[mg.a].clone();
                u.extend_from_slice(&members[mg.b]);
                members.push(u);
            }
        }
        assert!(
            within * 10 >= total * 8,
            "only {within}/{total} merges within (1+mu)^3"
        );
    }

    fn single_linkage_dist(m: &EuclideanMetric, a: &[usize], b: &[usize]) -> f64 {
        let mut best = f64::INFINITY;
        for &x in a {
            for &y in b {
                best = best.min(m.dist(x, y));
            }
        }
        best
    }

    fn best_merge(m: &EuclideanMetric, members: &[Vec<usize>], next_id: usize) -> f64 {
        // Live clusters at this step = maximal member sets among ids
        // created so far (a cluster is absorbed once a strict superset
        // exists).
        let bound = members.len().min(next_id);
        let mut live: Vec<usize> = Vec::new();
        for a in 0..bound {
            let covered = (0..bound).any(|b| {
                b != a
                    && members[b].len() > members[a].len()
                    && members[a].iter().all(|x| members[b].contains(x))
            });
            if !covered {
                live.push(a);
            }
        }
        let mut best = f64::INFINITY;
        for i in 0..live.len() {
            for j in (i + 1)..live.len() {
                best = best.min(single_linkage_dist(m, &members[live[i]], &members[live[j]]));
            }
        }
        best
    }

    #[test]
    fn query_complexity_is_subcubic() {
        let n = 64;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![((i * 37) % 101) as f64, ((i * 61) % 97) as f64])
            .collect();
        let m = EuclideanMetric::from_points(&pts);
        let mut o = Counting::new(TrueQuadOracle::new(m));
        let _ = hier_oracle(
            &HierParams::experimental(Linkage::Single),
            &mut o,
            &mut rng(7),
        );
        // O(n^2) with t = 1: generous constant 40 n^2; far below n^3 ≈ 262k.
        let budget = (40 * n * n) as u64;
        assert!(o.queries() <= budget, "{} queries > {budget}", o.queries());
    }

    #[test]
    fn counter_stream_variant_is_deterministic_and_valid() {
        let pts: Vec<Vec<f64>> = (0..48)
            .map(|i| vec![((i * 37) % 101) as f64, ((i * 61) % 97) as f64])
            .collect();
        let m = EuclideanMetric::from_points(&pts);
        let run = |seed: u64| {
            let mut o = TrueQuadOracle::new(m.clone());
            hier_oracle_par(
                &HierParams::experimental(Linkage::Single),
                &mut o,
                &mut rng(seed),
                1,
            )
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed must reproduce the dendrogram");
        assert_eq!(a.merges.len(), 47);
        a.validate();
    }

    /// The fan-out is bit-identical to the single-worker run of the same
    /// entry point: per-row counter streams make rows rng-independent.
    #[cfg(feature = "parallel")]
    #[test]
    fn counter_stream_fan_out_matches_single_worker() {
        use nco_oracle::probabilistic::ProbQuadOracle;
        use nco_oracle::SharedCounting;
        let pts: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![((i * 29) % 83) as f64, ((i * 53) % 89) as f64])
            .collect();
        let m = EuclideanMetric::from_points(&pts);
        for seed in 0..5u64 {
            let mut serial = SharedCounting::new(ProbQuadOracle::new(m.clone(), 0.1, 70 + seed));
            let a = hier_oracle_par(
                &HierParams::experimental(Linkage::Single),
                &mut serial,
                &mut rng(seed),
                1,
            );
            let mut par = SharedCounting::new(ProbQuadOracle::new(m.clone(), 0.1, 70 + seed));
            let b = hier_oracle_par(
                &HierParams::experimental(Linkage::Single),
                &mut par,
                &mut rng(seed),
                4,
            );
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(serial.queries(), par.queries(), "seed {seed}");
        }
    }

    #[test]
    fn two_records() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0]]);
        let mut o = TrueQuadOracle::new(m);
        let d = hier_oracle(
            &HierParams::experimental(Linkage::Single),
            &mut o,
            &mut rng(0),
        );
        assert_eq!(d.merges.len(), 1);
        assert_eq!(d.cut(1), vec![0, 0]);
    }
}
