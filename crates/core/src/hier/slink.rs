//! Algorithm 11 — oracle-driven agglomerative clustering with
//! nearest-neighbour pointers (the SLINK-style `O(n^2)` scheme).
//!
//! Per iteration: every live cluster holds a pointer to its (approximate)
//! nearest neighbour; the globally closest `(C, nn(C))` candidate is found
//! with the Section 3 minimum engine over the candidates' representative
//! pairs; the winning pair is merged; adjacency reps are refreshed at one
//! query per survivor; and the affected pointers are repaired — for single
//! linkage a stale pointer into the merged pair can simply be redirected
//! to the union (its distance only shrank), while complete linkage
//! recomputes those pointers (distances grew). Theorem 5.2: each merge is
//! within `(1+mu)^3` of the best available merge w.h.p., and the whole
//! hierarchy costs `O(n^2 log^2(n/delta))` queries.
//!
//! ## The incremental merge plane
//!
//! A merge invalidates only a handful of candidates — the two merged
//! clusters, the new union, and the survivors whose pointer was
//! redirected or recomputed — yet a from-scratch closest-pair sweep
//! re-contests every live candidate. The default merge loop therefore
//! maintains the Section 3 minimum engine **incrementally** across merges
//! ([`crate::maxfind::MinContest`]): persistent random bucket assignments
//! stand in for Max-Adv's per-sweep partitions, a persistent topped-up
//! sample stands in for its per-sweep uniform sample, and cached bucket
//! winners / pool outcomes are re-contested only for the dirty candidates,
//! via batched `le_round`s. Because every shipped noise model is
//! *persistent* (answers are pure functions of the canonical query —
//! hence the [`PersistentNoise`] bound on the public entry points), a
//! cached outcome is bit-equal to what re-asking would return, so the
//! incremental plane produces **the identical merge sequence and
//! tie-breaks** as the from-scratch sweep over the same structure — the
//! [`hier_oracle_scratch`] / [`hier_oracle_par_scratch`] reference
//! engines, pinned across noise models in
//! `tests/hier_incremental_equivalence.rs`. When more than half the live
//! candidates are dirty (complete-linkage repair cascades), the plane
//! falls back to a full sweep of the incumbent structure, which is
//! decision-identical by the same argument.
//!
//! Per-merge randomness (bucket deals for new clusters, sample top-ups,
//! repair searches) is drawn from per-merge [`CounterRng`] streams keyed
//! by the merge index, so the query transcript is deterministic at any
//! worker count; with the `parallel` feature and `threads > 1`,
//! [`hier_oracle_par`] fans large re-contest and rep-refresh rounds
//! across `std::thread::scope` workers, bit-identically.
//!
//! ## The shared-scaffold search plane (opt-in)
//!
//! [`MinContest`] amortises Max-Adv's scaffolding across the merge loop's
//! *one* evolving closest-pair search — but a hierarchy run also performs
//! `n` initial nearest-neighbour searches plus (under complete linkage) a
//! long tail of pointer-*repair* searches, each paying full per-search
//! scaffolding. With [`HierParams::scaffold`] on, all of those
//! row-anchored searches run over one [`RowScaffold`]
//! ([`crate::maxfind::RowScaffold`]): a single set of bucket deals and
//! one persistent sample shared by every row, per-row cached tournament
//! winners and duel outcomes, dirty-bucket-only repair re-contests with a
//! dirty-majority fallback, and cache inheritance into merged rows. The
//! same persistent-noise argument as above makes every sweep
//! decision-identical to the from-scratch reference
//! ([`hier_oracle_scratch`] with the same params), pinned in
//! `tests/hier_scaffold_equivalence.rs`. The plane is opt-in because it
//! replaces per-search randomness with the shared deal, which perturbs
//! default-path transcripts that `perfsuite` pins byte-stable.

use super::graph::ClusterGraph;
use super::{Dendrogram, Linkage, Merge};
use crate::comparator::Comparator;
use crate::maxfind::{
    max_adv, min_adv_incremental, AdvParams, MinContest, RowScaffold, SweepBuffers,
};
use nco_oracle::{PersistentNoise, QuadrupletOracle, SharedQuadrupletOracle};
use rand::rngs::CounterRng;
use rand::Rng;

/// Parameters of oracle-driven agglomeration (Algorithm 11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierParams {
    /// Linkage objective.
    pub linkage: Linkage,
    /// Max-Adv configuration for nearest-neighbour / closest-pair searches
    /// (the paper uses `t = 2 ln(n/delta)` for Lemma 5.1, `t = 1` in
    /// experiments).
    pub search: AdvParams,
    /// Runs every row-anchored nearest-neighbour search (the initial
    /// pointer pass and every pointer repair) over one shared
    /// [`RowScaffold`](crate::maxfind::RowScaffold) instead of independent
    /// per-search Max-Adv scaffolding — strictly fewer queries, identical
    /// guarantees. Opt-in (default `false`) because it changes the
    /// randomness *schedule* (one shared deal instead of per-search
    /// draws), which would perturb the byte-stable transcripts the
    /// default path pins in `perfsuite`.
    pub scaffold: bool,
}

impl HierParams {
    /// The paper's experimental setting (`t = 1`).
    pub fn experimental(linkage: Linkage) -> Self {
        Self {
            linkage,
            search: AdvParams::experimental(),
            scaffold: false,
        }
    }

    /// Lemma 5.1's setting: per-merge failure probability `delta / n`,
    /// i.e. `t = 2 ln(n/delta)` rounds (natural log, matching the paper's
    /// Chernoff constant).
    pub fn with_confidence(linkage: Linkage, n: usize, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0);
        let t = ((2.0 * (n.max(2) as f64 / delta).ln()).ceil() as usize).max(1);
        Self {
            linkage,
            search: AdvParams {
                rounds: t,
                partitions: None,
                sample_size: None,
            },
            scaffold: false,
        }
    }

    /// Opts into the shared-scaffold search plane (see
    /// [`HierParams::scaffold`]).
    #[must_use]
    pub fn scaffolded(mut self) -> Self {
        self.scaffold = true;
        self
    }
}

/// Single linkage with the experimental search constants.
impl Default for HierParams {
    fn default() -> Self {
        Self::experimental(Linkage::Single)
    }
}

/// Cost counters of the incremental merge plane, returned by
/// [`hier_oracle_stats`] / [`hier_oracle_par_stats`] and surfaced in the
/// facade's `RunReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergePlaneStats {
    /// Merges performed (`n - 1` for a complete agglomeration).
    pub merges: u64,
    /// Closest-pair sweeps that rebuilt the whole winner structure: the
    /// initial build plus every dirty-majority fallback (and, in the
    /// `*_scratch` reference engines, every merge).
    pub full_sweeps: u64,
    /// Candidates whose `(C, nn(C))` key changed and were re-contested
    /// against the cached incumbent structure.
    pub dirty_candidates: u64,
    /// Nearest-neighbour pointers redirected or recomputed after merges.
    pub repaired_pointers: u64,
    /// Bucket tournaments replayed inside the winner structure.
    pub bucket_replays: u64,
    /// Duels played inside bucket tournament replays.
    pub bucket_duels: u64,
    /// Pairs (re-)contested at the final Count-Min stage.
    pub pool_duels: u64,
    /// Merges committed while the oracle was still returning real answers
    /// (`!oracle.doomed()`). Doom latches monotonically at query
    /// boundaries, so `merges[..clean_merges]` is always a prefix of the
    /// merge sequence built from real answers; equals `merges` on a run
    /// that never tripped a budget, deadline or retry limit.
    pub clean_merges: u64,
    /// Duels of row-anchored searches answered from the shared scaffold's
    /// per-row caches instead of the oracle (zero unless
    /// [`HierParams::scaffold`] is on).
    pub scaffold_hits: u64,
    /// Pointer-repair searches served incrementally by the scaffold: the
    /// row re-contested only the buckets dirtied since its last sweep,
    /// against its cached winner structure.
    pub repair_contests: u64,
    /// Pointer-repair searches that fell back to a full row sweep because
    /// a majority of the row's buckets were dirty (still mostly cache
    /// hits — clean buckets replay from cached outcomes).
    pub repair_fallbacks: u64,
}

/// Compares neighbour clusters of a fixed cluster by their rep-pair
/// distances, with the **minimum orientation fused into the
/// translation**: `le(a, b)` asks `oracle.le(rep(me, b), rep(me, a))`,
/// exactly what `Rev(RepCmp)` would ask — so `nearest_of` calls
/// [`max_adv`](crate::maxfind::max_adv) directly and skips the `Rev`
/// adapter's per-round reversal pass. The translated round is built in a
/// caller-owned reusable buffer.
struct RevRepCmp<'a, O> {
    oracle: &'a mut O,
    graph: &'a ClusterGraph,
    me: usize,
    queries: &'a mut Vec<[usize; 4]>,
}

impl<O: QuadrupletOracle> Comparator<usize> for RevRepCmp<'_, O> {
    fn le(&mut self, c1: usize, c2: usize) -> bool {
        let r1 = self.graph.rep(self.me, c2);
        let r2 = self.graph.rep(self.me, c1);
        self.oracle.le(r1.0, r1.1, r2.0, r2.1)
    }

    fn le_round(&mut self, round: &[(usize, usize)], out: &mut Vec<bool>) {
        let Self {
            oracle,
            graph,
            me,
            queries,
        } = self;
        queries.clear();
        queries.extend(round.iter().map(|&(c1, c2)| {
            let r1 = graph.rep(*me, c2);
            let r2 = graph.rep(*me, c1);
            [r1.0, r1.1, r2.0, r2.1]
        }));
        oracle.le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

/// [`RevRepCmp`] through a shared oracle reference — the comparator the
/// fanned-out initial nearest-neighbour searches of [`hier_oracle_par`]
/// build per worker (answers are pure functions of the query, so the
/// shared path is bit-identical to the `&mut` path).
struct RevSharedRepCmp<'a, O> {
    oracle: &'a O,
    graph: &'a ClusterGraph,
    me: usize,
}

impl<O: SharedQuadrupletOracle> Comparator<usize> for RevSharedRepCmp<'_, O> {
    fn le(&mut self, c1: usize, c2: usize) -> bool {
        let r1 = self.graph.rep(self.me, c2);
        let r2 = self.graph.rep(self.me, c1);
        self.oracle.le_shared(r1.0, r1.1, r2.0, r2.1)
    }

    /// Rounds through the shared path answer query by query (`le_shared`
    /// has no batch form), but in a tight translated loop: answers and
    /// counts are identical to the scalar default, while the row's
    /// distance-table loads pipeline instead of serialising duel by duel.
    /// `note_round` bills the round up front, exactly as the `&mut`
    /// comparator's `le_batch` would have.
    fn le_round(&mut self, round: &[(usize, usize)], out: &mut Vec<bool>) {
        self.oracle.note_round();
        out.reserve(round.len());
        out.extend(round.iter().map(|&(c1, c2)| {
            let r1 = self.graph.rep(self.me, c2);
            let r2 = self.graph.rep(self.me, c1);
            self.oracle.le_shared(r1.0, r1.1, r2.0, r2.1)
        }));
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

/// Compares neighbour clusters of a fixed cluster by rep-pair distance in
/// the **direct minimum orientation** the scaffold plane expects:
/// `le(u, v)` asks `oracle.le(rep(me, u), rep(me, v))` — `true` promotes
/// `u` as the at-least-as-close one. No reversal fusion here: the
/// scaffold caches outcomes under canonically ordered candidate-id pairs,
/// so the query orientation must be a pure function of the pair, never of
/// bracket position.
struct RepCmp<'a, O> {
    oracle: &'a mut O,
    graph: &'a ClusterGraph,
    me: usize,
    queries: &'a mut Vec<[usize; 4]>,
}

impl<O: QuadrupletOracle> Comparator<usize> for RepCmp<'_, O> {
    fn le(&mut self, c1: usize, c2: usize) -> bool {
        let r1 = self.graph.rep(self.me, c1);
        let r2 = self.graph.rep(self.me, c2);
        self.oracle.le(r1.0, r1.1, r2.0, r2.1)
    }

    fn le_round(&mut self, round: &[(usize, usize)], out: &mut Vec<bool>) {
        let Self {
            oracle,
            graph,
            me,
            queries,
        } = self;
        queries.clear();
        queries.extend(round.iter().map(|&(c1, c2)| {
            let r1 = graph.rep(*me, c1);
            let r2 = graph.rep(*me, c2);
            [r1.0, r1.1, r2.0, r2.1]
        }));
        oracle.le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

/// [`RepCmp`] through a shared oracle reference — the per-worker
/// comparator of the fanned scaffolded initial pass (see
/// [`RevSharedRepCmp`] for the round-billing contract).
struct SharedRepCmp<'a, O> {
    oracle: &'a O,
    graph: &'a ClusterGraph,
    me: usize,
}

impl<O: SharedQuadrupletOracle> Comparator<usize> for SharedRepCmp<'_, O> {
    fn le(&mut self, c1: usize, c2: usize) -> bool {
        let r1 = self.graph.rep(self.me, c1);
        let r2 = self.graph.rep(self.me, c2);
        self.oracle.le_shared(r1.0, r1.1, r2.0, r2.1)
    }

    fn le_round(&mut self, round: &[(usize, usize)], out: &mut Vec<bool>) {
        self.oracle.note_round();
        out.reserve(round.len());
        out.extend(round.iter().map(|&(c1, c2)| {
            let r1 = self.graph.rep(self.me, c1);
            let r2 = self.graph.rep(self.me, c2);
            self.oracle.le_shared(r1.0, r1.1, r2.0, r2.1)
        }));
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

/// Compares candidate clusters by the rep pair to their current nearest
/// neighbour — the closest-pair search of Algorithm 11 line 7. Rounds are
/// translated to quadruplet batches in a reusable buffer.
struct CandidateCmp<'a, O> {
    oracle: &'a mut O,
    graph: &'a ClusterGraph,
    /// Dense pointer table indexed by cluster id.
    nn: &'a [usize],
    queries: &'a mut Vec<[usize; 4]>,
}

impl<O: QuadrupletOracle> Comparator<usize> for CandidateCmp<'_, O> {
    fn le(&mut self, c1: usize, c2: usize) -> bool {
        let r1 = self.graph.rep(c1, self.nn[c1]);
        let r2 = self.graph.rep(c2, self.nn[c2]);
        self.oracle.le(r1.0, r1.1, r2.0, r2.1)
    }

    fn le_round(&mut self, round: &[(usize, usize)], out: &mut Vec<bool>) {
        let Self {
            oracle,
            graph,
            nn,
            queries,
        } = self;
        queries.clear();
        queries.extend(round.iter().map(|&(c1, c2)| {
            let r1 = graph.rep(c1, nn[c1]);
            let r2 = graph.rep(c2, nn[c2]);
            [r1.0, r1.1, r2.0, r2.1]
        }));
        oracle.le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

/// Fans batched quadruplet rounds across `std::thread::scope` workers
/// through the shared (`&self`) query path. Answers are pure functions of
/// the query under every persistent noise model, and workers' answer
/// chunks are reassembled in query order, so a fanned round is
/// bit-identical to the serial loop at any worker count. Rounds below
/// [`MIN_FAN_ROUND`] run serially — spawn overhead would dominate.
#[cfg(feature = "parallel")]
struct FanQuad<'a, O> {
    oracle: &'a O,
    threads: usize,
}

/// Smallest round worth fanning out (deterministic: a pure function of
/// the round length, never of timing).
#[cfg(feature = "parallel")]
const MIN_FAN_ROUND: usize = 512;

#[cfg(feature = "parallel")]
impl<O: SharedQuadrupletOracle> QuadrupletOracle for FanQuad<'_, O> {
    fn n(&self) -> usize {
        self.oracle.n()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.oracle.le_shared(a, b, c, d)
    }

    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        // One batched call is one round no matter how it is answered;
        // billing it here keeps the fanned path's round meter equal to
        // the serial path's `le_batch` accounting.
        self.oracle.note_round();
        out.reserve(queries.len());
        if self.threads < 2 || queries.len() < MIN_FAN_ROUND {
            for &[a, b, c, d] in queries {
                let ans = self.oracle.le_shared(a, b, c, d);
                out.push(ans);
            }
            return;
        }
        let chunk = queries.len().div_ceil(self.threads);
        let oracle = self.oracle;
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|&[a, b, c, d]| oracle.le_shared(a, b, c, d))
                            .collect::<Vec<bool>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("round worker panicked"));
            }
        });
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

fn nearest_of<O, R>(
    graph: &ClusterGraph,
    c: usize,
    params: &AdvParams,
    oracle: &mut O,
    rng: &mut R,
    scratch: &mut Vec<usize>,
    quads: &mut Vec<[usize; 4]>,
) -> usize
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    scratch.clear();
    scratch.extend(graph.active().iter().copied().filter(|&x| x != c));
    debug_assert!(!scratch.is_empty());
    let mut cmp = RevRepCmp {
        oracle,
        graph,
        me: c,
        queries: quads,
    };
    // `max_adv` over the reversal-fused comparator IS `min_adv` over the
    // plain one — identical queries, identical winner.
    max_adv(scratch, params, &mut cmp, rng).expect("at least one neighbour")
}

/// One row-anchored nearest-neighbour search through the shared scaffold
/// plane: sweep row `c`'s brackets (dirty buckets only, unless `use_cache`
/// is off or the dirty set is the majority) and the pooled Count-Min.
fn scaffold_nearest<O: QuadrupletOracle>(
    plane: &mut RowScaffold,
    buf: &mut SweepBuffers,
    graph: &ClusterGraph,
    c: usize,
    oracle: &mut O,
    use_cache: bool,
    quads: &mut Vec<[usize; 4]>,
) -> usize {
    let mut cmp = RepCmp {
        oracle,
        graph,
        me: c,
        queries: quads,
    };
    plane.sweep(c, &mut cmp, use_cache, buf)
}

/// Scaffolded twin of [`init_pointers`]: one [`RowScaffold`] deal (drawn
/// from the caller's rng up front) serves all `n` initial searches;
/// `use_cache = false` is the from-scratch reference, which evolves the
/// identical scaffold but re-asks every duel.
fn init_pointers_scaffold<O, R>(
    params: &HierParams,
    oracle: &mut O,
    rng: &mut R,
    use_cache: bool,
) -> (ClusterGraph, Vec<usize>, RowScaffold, SweepBuffers)
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    assert!(n >= 2, "agglomeration needs at least two records");
    let graph = ClusterGraph::new(n);
    let items: Vec<usize> = (0..n).collect();
    let mut plane = RowScaffold::new(&items, 2 * n - 1, &params.search, rng);
    let mut buf = SweepBuffers::new(2 * n - 1);
    let mut nn: Vec<usize> = vec![usize::MAX; 2 * n - 1];
    let mut quads: Vec<[usize; 4]> = Vec::new();
    for (c, pointer) in nn.iter_mut().enumerate().take(n) {
        *pointer = scaffold_nearest(
            &mut plane, &mut buf, &graph, c, oracle, use_cache, &mut quads,
        );
    }
    (graph, nn, plane, buf)
}

/// [`nearest_of`] through a shared oracle reference (the worker-side form
/// of the initial pointer pass). Identical candidate list, comparator
/// decisions and rng consumption — only the borrow discipline differs.
fn nearest_of_shared<O, R>(
    graph: &ClusterGraph,
    c: usize,
    params: &AdvParams,
    oracle: &O,
    rng: &mut R,
    scratch: &mut Vec<usize>,
) -> usize
where
    O: SharedQuadrupletOracle,
    R: Rng + ?Sized,
{
    scratch.clear();
    scratch.extend(graph.active().iter().copied().filter(|&x| x != c));
    debug_assert!(!scratch.is_empty());
    let mut cmp = RevSharedRepCmp {
        oracle,
        graph,
        me: c,
    };
    // Same reversal-fused minimum as `nearest_of`.
    max_adv(scratch, params, &mut cmp, rng).expect("at least one neighbour")
}

/// Algorithm 11: agglomerative clustering (single or complete linkage)
/// under a noisy quadruplet oracle, with the incremental merge plane as
/// the closest-pair engine (see the module docs).
///
/// The [`PersistentNoise`] bound is what makes the incremental plane
/// sound: cached contest outcomes are reused only because re-asking a
/// persistent oracle returns the same bit.
///
/// # Panics
/// Panics if `oracle.n() < 2`.
pub fn hier_oracle<O, R>(params: &HierParams, oracle: &mut O, rng: &mut R) -> Dendrogram
where
    O: QuadrupletOracle + PersistentNoise,
    R: Rng + ?Sized,
{
    hier_oracle_stats(params, oracle, rng).0
}

/// [`hier_oracle`] returning the merge-plane cost counters alongside the
/// dendrogram.
///
/// # Panics
/// Panics if `oracle.n() < 2`.
pub fn hier_oracle_stats<O, R>(
    params: &HierParams,
    oracle: &mut O,
    rng: &mut R,
) -> (Dendrogram, MergePlaneStats)
where
    O: QuadrupletOracle + PersistentNoise,
    R: Rng + ?Sized,
{
    if params.scaffold {
        let (graph, nn, plane, buf) = init_pointers_scaffold(params, oracle, rng, true);
        return agglomerate(params, graph, nn, oracle, rng, false, Some((plane, buf)));
    }
    let (graph, nn) = init_pointers(params, oracle, rng);
    agglomerate(params, graph, nn, oracle, rng, false, None)
}

/// The from-scratch reference sweep: identical structure evolution and
/// rng consumption as [`hier_oracle`], but every closest-pair sweep
/// replays every bucket and re-asks every pool pair instead of reusing
/// the cached incumbent state. Under persistent noise the two are
/// decision-identical by construction; this entry point exists so the
/// equivalence suite and the perf baseline can hold the incremental plane
/// to that contract.
///
/// # Panics
/// Panics if `oracle.n() < 2`.
pub fn hier_oracle_scratch<O, R>(params: &HierParams, oracle: &mut O, rng: &mut R) -> Dendrogram
where
    O: QuadrupletOracle + PersistentNoise,
    R: Rng + ?Sized,
{
    if params.scaffold {
        let (graph, nn, plane, buf) = init_pointers_scaffold(params, oracle, rng, false);
        return agglomerate(params, graph, nn, oracle, rng, true, Some((plane, buf))).0;
    }
    let (graph, nn) = init_pointers(params, oracle, rng);
    agglomerate(params, graph, nn, oracle, rng, true, None).0
}

/// Initial nearest-neighbour pointers (`n` searches of `O(n)` queries),
/// drawn from the caller's rng row after row.
fn init_pointers<O, R>(
    params: &HierParams,
    oracle: &mut O,
    rng: &mut R,
) -> (ClusterGraph, Vec<usize>)
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    assert!(n >= 2, "agglomeration needs at least two records");
    let graph = ClusterGraph::new(n);

    // Dense nearest-neighbour pointer table indexed by cluster id (ids
    // run `0..2n-1` across the whole agglomeration); `usize::MAX` marks
    // dead/unset entries.
    let mut nn: Vec<usize> = vec![usize::MAX; 2 * n - 1];
    let mut neighbours: Vec<usize> = Vec::with_capacity(n);
    let mut quads: Vec<[usize; 4]> = Vec::new();
    for (c, pointer) in nn.iter_mut().enumerate().take(n) {
        *pointer = nearest_of(
            &graph,
            c,
            &params.search,
            oracle,
            rng,
            &mut neighbours,
            &mut quads,
        );
    }
    (graph, nn)
}

/// Counter-stream twin of [`hier_oracle`]: the initial `n`
/// nearest-neighbour searches draw from **per-row
/// [`CounterRng`](rand::rngs::CounterRng) streams** derived from one serial
/// draw on the caller's rng, which makes the rows rng-independent — so
/// they can fan out across `std::thread::scope` workers (with the
/// `parallel` feature and `threads > 1`) and still produce the same
/// pointers, the same queries and the same dendrogram as the `threads = 1`
/// run, bit for bit. With `threads > 1` the merge loop additionally fans
/// its large re-contest and rep-refresh rounds across workers through the
/// shared query path — also bit-identical, since round answers are pure
/// functions of the queries and are reassembled in query order.
///
/// Note the randomness *schedule* differs from [`hier_oracle`] (per-row
/// streams instead of one shared cursor), so for a given seed the two
/// entry points return different — equally guarantee-respecting —
/// dendrograms. Pick one per experiment; `perfsuite` pins both.
///
/// Without the `parallel` feature `threads` is ignored and everything runs
/// serially — still through the per-row streams, so results match a
/// `parallel`-enabled binary exactly.
///
/// # Panics
/// Panics if `oracle.n() < 2`.
pub fn hier_oracle_par<O, R>(
    params: &HierParams,
    oracle: &mut O,
    rng: &mut R,
    threads: usize,
) -> Dendrogram
where
    O: SharedQuadrupletOracle + PersistentNoise,
    R: Rng + ?Sized,
{
    hier_oracle_par_stats(params, oracle, rng, threads).0
}

/// [`hier_oracle_par`] returning the merge-plane cost counters alongside
/// the dendrogram.
///
/// # Panics
/// Panics if `oracle.n() < 2`.
pub fn hier_oracle_par_stats<O, R>(
    params: &HierParams,
    oracle: &mut O,
    rng: &mut R,
    threads: usize,
) -> (Dendrogram, MergePlaneStats)
where
    O: SharedQuadrupletOracle + PersistentNoise,
    R: Rng + ?Sized,
{
    run_par(params, oracle, rng, threads, false)
}

/// The from-scratch reference sweep of the counter-stream engine — see
/// [`hier_oracle_scratch`].
///
/// # Panics
/// Panics if `oracle.n() < 2`.
pub fn hier_oracle_par_scratch<O, R>(
    params: &HierParams,
    oracle: &mut O,
    rng: &mut R,
    threads: usize,
) -> Dendrogram
where
    O: SharedQuadrupletOracle + PersistentNoise,
    R: Rng + ?Sized,
{
    run_par(params, oracle, rng, threads, true).0
}

fn run_par<O, R>(
    params: &HierParams,
    oracle: &mut O,
    rng: &mut R,
    threads: usize,
    scratch: bool,
) -> (Dendrogram, MergePlaneStats)
where
    O: SharedQuadrupletOracle,
    R: Rng + ?Sized,
{
    if params.scaffold {
        return run_par_scaffold(params, oracle, rng, threads, scratch);
    }
    let n = oracle.n();
    assert!(n >= 2, "agglomeration needs at least two records");
    let graph = ClusterGraph::new(n);

    // One serial draw keys every row stream; row `c` then owns the
    // deterministic stream `base.stream(c)` regardless of which worker
    // (or how many workers) executes it.
    let base = CounterRng::new(rng.next_u64(), rng.next_u64());
    let mut nn: Vec<usize> = vec![usize::MAX; 2 * n - 1];

    #[cfg(feature = "parallel")]
    let fan_out = threads > 1;
    #[cfg(not(feature = "parallel"))]
    let fan_out = false;
    let _ = threads;

    if !fan_out {
        let mut neighbours: Vec<usize> = Vec::with_capacity(n);
        for (c, pointer) in nn.iter_mut().enumerate().take(n) {
            let mut row_rng = base.stream(c as u64);
            *pointer = nearest_of_shared(
                &graph,
                c,
                &params.search,
                &*oracle,
                &mut row_rng,
                &mut neighbours,
            );
        }
    }
    #[cfg(feature = "parallel")]
    if fan_out {
        let chunk = n.div_ceil(threads);
        let graph = &graph;
        let oracle = &*oracle;
        let base = &base;
        std::thread::scope(|scope| {
            for (w, rows) in nn[..n].chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let mut neighbours: Vec<usize> = Vec::with_capacity(n);
                    for (offset, pointer) in rows.iter_mut().enumerate() {
                        let c = w * chunk + offset;
                        let mut row_rng = base.stream(c as u64);
                        *pointer = nearest_of_shared(
                            graph,
                            c,
                            &params.search,
                            oracle,
                            &mut row_rng,
                            &mut neighbours,
                        );
                    }
                });
            }
        });
    }

    #[cfg(feature = "parallel")]
    if fan_out {
        let mut fan = FanQuad {
            oracle: &*oracle,
            threads,
        };
        return agglomerate(params, graph, nn, &mut fan, rng, scratch, None);
    }
    agglomerate(params, graph, nn, oracle, rng, scratch, None)
}

/// Scaffolded twin of [`run_par`]: the shared [`RowScaffold`] deal is
/// drawn serially from the caller's rng **before** any fan-out, and row
/// sweeps consume no randomness at all — worker-count independence is
/// structural, with nothing left to schedule. (The legacy plane needs
/// per-row [`CounterRng`] streams precisely because each row's search
/// draws its own sample and partitions; the shared deal subsumes both.)
/// Fanned workers sweep disjoint row ranges against the read-only deal
/// and write disjoint `nn` / row-state slots, so the transcript is
/// bit-identical at any worker count.
fn run_par_scaffold<O, R>(
    params: &HierParams,
    oracle: &mut O,
    rng: &mut R,
    threads: usize,
    scratch: bool,
) -> (Dendrogram, MergePlaneStats)
where
    O: SharedQuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    assert!(n >= 2, "agglomeration needs at least two records");
    let graph = ClusterGraph::new(n);
    let items: Vec<usize> = (0..n).collect();
    let mut plane = RowScaffold::new(&items, 2 * n - 1, &params.search, rng);
    let mut nn: Vec<usize> = vec![usize::MAX; 2 * n - 1];
    let use_cache = !scratch;

    #[cfg(feature = "parallel")]
    let fan_out = threads > 1;
    #[cfg(not(feature = "parallel"))]
    let fan_out = false;
    let _ = threads;

    if !fan_out {
        let mut buf = SweepBuffers::new(2 * n - 1);
        for (c, pointer) in nn.iter_mut().enumerate().take(n) {
            let mut cmp = SharedRepCmp {
                oracle: &*oracle,
                graph: &graph,
                me: c,
            };
            *pointer = plane.sweep(c, &mut cmp, use_cache, &mut buf);
        }
        return agglomerate(params, graph, nn, oracle, rng, scratch, Some((plane, buf)));
    }
    #[cfg(feature = "parallel")]
    {
        use crate::maxfind::{sweep_row, RowState, ScaffoldStats};
        let chunk = n.div_ceil(threads);
        let total = plane.deal.total_buckets();
        let mut tallies: Vec<ScaffoldStats> = Vec::new();
        {
            let deal = &plane.deal;
            let rows = &mut plane.rows;
            let graph = &graph;
            let oracle = &*oracle;
            std::thread::scope(|scope| {
                let handles: Vec<_> = nn[..n]
                    .chunks_mut(chunk)
                    .zip(rows[..n].chunks_mut(chunk))
                    .enumerate()
                    .map(|(w, (pointers, states))| {
                        scope.spawn(move || {
                            let mut buf = SweepBuffers::new(2 * n - 1);
                            let mut tally = ScaffoldStats::default();
                            for (offset, (pointer, slot)) in
                                pointers.iter_mut().zip(states.iter_mut()).enumerate()
                            {
                                let c = w * chunk + offset;
                                let mut state = RowState::new(total);
                                let mut cmp = SharedRepCmp {
                                    oracle,
                                    graph,
                                    me: c,
                                };
                                let (win, _) = sweep_row(
                                    deal, c, &mut state, &mut cmp, use_cache, &mut buf, &mut tally,
                                );
                                *pointer = win;
                                *slot = Some(state);
                            }
                            tally
                        })
                    })
                    .collect();
                for h in handles {
                    tallies.push(h.join().expect("row worker panicked"));
                }
            });
        }
        for t in &tallies {
            plane.absorb_stats(t);
        }
        let buf = SweepBuffers::new(2 * n - 1);
        let mut fan = FanQuad {
            oracle: &*oracle,
            threads,
        };
        agglomerate(
            params,
            graph,
            nn,
            &mut fan,
            rng,
            scratch,
            Some((plane, buf)),
        )
    }
    #[cfg(not(feature = "parallel"))]
    unreachable!("fan_out is false without the parallel feature")
}

/// The merge loop shared by every entry point: incremental closest-pair
/// selection ([`MinContest`]), merging, and pointer repair. `scratch`
/// forces the from-scratch reference sweep at every merge. With a
/// scaffold `plane`, pointer repairs run over the shared scaffold
/// (incrementally unless `scratch`) and merges record rep provenance so
/// the union's row can inherit its parents' cached duels.
fn agglomerate<O, R>(
    params: &HierParams,
    mut graph: ClusterGraph,
    mut nn: Vec<usize>,
    oracle: &mut O,
    rng: &mut R,
    scratch: bool,
    mut plane: Option<(RowScaffold, SweepBuffers)>,
) -> (Dendrogram, MergePlaneStats)
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = graph.active().len();
    let mut stats = MergePlaneStats::default();

    // Per-merge counter streams keyed by the merge index: stream 0 deals
    // the initial winner structure; merge `t` draws pointer repairs from
    // stream `2t + 1` and structure maintenance (bucket deal of the new
    // cluster, sample top-up) from stream `2t + 2`. Serial control flow
    // plus keyed streams make the transcript worker-count-independent.
    let base = CounterRng::new(rng.next_u64(), rng.next_u64());
    let mut contest = {
        let mut deal_rng = base.stream(0);
        MinContest::new(graph.active(), 2 * n - 1, &params.search, &mut deal_rng)
    };

    // Scratch buffers reused by every search and repair round.
    let mut neighbours: Vec<usize> = Vec::with_capacity(n);
    let mut stale: Vec<usize> = Vec::with_capacity(n);
    let mut quads: Vec<[usize; 4]> = Vec::new();
    let mut kept: Vec<(usize, bool)> = Vec::with_capacity(n);

    let mut merges = Vec::with_capacity(n - 1);
    let mut winner = {
        let mut cmp = CandidateCmp {
            oracle,
            graph: &graph,
            nn: &nn,
            queries: &mut quads,
        };
        min_adv_incremental(&mut contest, &mut cmp, true).expect("non-empty actives")
    };
    let mut step = 0u64;
    while graph.active().len() > 1 {
        let partner = nn[winner];
        let rep = graph.rep(winner, partner);

        let new = if plane.is_some() {
            graph.merge_recording(winner, partner, params.linkage, oracle, &mut kept)
        } else {
            graph.merge(winner, partner, params.linkage, oracle)
        };
        merges.push(Merge {
            a: winner,
            b: partner,
            merged: new,
            rep,
        });
        nn[winner] = usize::MAX;
        nn[partner] = usize::MAX;
        stats.merges += 1;
        if !oracle.doomed() {
            stats.clean_merges = stats.merges;
        }

        if graph.active().len() == 1 {
            break;
        }

        // Repair pointers into the merged pair.
        let mut repair_rng = base.stream(2 * step + 1);
        stale.clear();
        stale.extend(
            graph
                .active()
                .iter()
                .copied()
                .filter(|&c| c != new && (nn[c] == winner || nn[c] == partner)),
        );
        if let Some((sc, buf)) = plane.as_mut() {
            // Scaffold maintenance first — repaired rows must be able to
            // contest the union, and must never contest the dead parents.
            // The repair stream feeds the union's bucket deal and the
            // sample top-up (scaffolded sweeps themselves draw nothing).
            sc.note_merge(winner, partner, new, &kept, graph.active(), &mut repair_rng);
            for &c in &stale {
                match params.linkage {
                    // Single linkage: d(c, new) = min of the two old
                    // distances, so the union is still c's nearest.
                    Linkage::Single => {
                        nn[c] = new;
                    }
                    // Complete linkage: distances grew; recompute over
                    // the shared scaffold.
                    Linkage::Complete => {
                        nn[c] = scaffold_nearest(sc, buf, &graph, c, oracle, !scratch, &mut quads);
                    }
                }
            }
            nn[new] = scaffold_nearest(sc, buf, &graph, new, oracle, !scratch, &mut quads);
        } else {
            for &c in &stale {
                match params.linkage {
                    // Single linkage: d(c, new) = min of the two old
                    // distances, so the union is still c's nearest —
                    // redirect for free.
                    Linkage::Single => {
                        nn[c] = new;
                    }
                    // Complete linkage: distances grew; recompute.
                    Linkage::Complete => {
                        nn[c] = nearest_of(
                            &graph,
                            c,
                            &params.search,
                            oracle,
                            &mut repair_rng,
                            &mut neighbours,
                            &mut quads,
                        );
                    }
                }
            }
            nn[new] = nearest_of(
                &graph,
                new,
                &params.search,
                oracle,
                &mut repair_rng,
                &mut neighbours,
                &mut quads,
            );
        }
        stats.repaired_pointers += stale.len() as u64;

        // Winner-structure maintenance: dead candidates out, the union
        // in, repaired pointers marked dirty, sample topped back up.
        let mut maint_rng = base.stream(2 * step + 2);
        contest.remove(winner);
        contest.remove(partner);
        contest.insert(new, &mut maint_rng);
        for &c in &stale {
            contest.touch(c);
        }
        contest.resample(graph.active(), &mut maint_rng);

        let dirty = stale.len() + 1;
        stats.dirty_candidates += dirty as u64;
        // Dirty-majority fallback: once most candidates changed, replaying
        // them incrementally costs more than one full sweep of the
        // incumbent structure (decision-identical either way).
        let full = scratch || 2 * dirty > graph.active().len();
        winner = {
            let mut cmp = CandidateCmp {
                oracle,
                graph: &graph,
                nn: &nn,
                queries: &mut quads,
            };
            min_adv_incremental(&mut contest, &mut cmp, full).expect("non-empty actives")
        };
        step += 1;
    }

    let contest_stats = contest.stats();
    stats.full_sweeps = contest_stats.full_sweeps;
    stats.bucket_replays = contest_stats.bucket_replays;
    stats.bucket_duels = contest_stats.bucket_duels;
    stats.pool_duels = contest_stats.pool_duels;
    if let Some((sc, _)) = &plane {
        let s = sc.stats();
        stats.scaffold_hits = s.scaffold_hits;
        stats.repair_contests = s.repair_contests;
        stats.repair_fallbacks = s.repair_fallbacks;
    }

    let d = Dendrogram { n, merges };
    d.validate();
    (d, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::{EuclideanMetric, Metric};
    use nco_oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
    use nco_oracle::counting::Counting;
    use nco_oracle::TrueQuadOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn two_pairs() -> EuclideanMetric {
        EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![10.0], vec![11.5]])
    }

    #[test]
    fn perfect_oracle_single_linkage_merges_in_distance_order() {
        let mut o = TrueQuadOracle::new(two_pairs());
        let d = hier_oracle(
            &HierParams::experimental(Linkage::Single),
            &mut o,
            &mut rng(1),
        );
        assert_eq!(d.merges.len(), 3);
        // First merge must be (0,1) at distance 1.
        assert_eq!(
            (
                d.merges[0].a.min(d.merges[0].b),
                d.merges[0].a.max(d.merges[0].b)
            ),
            (0, 1)
        );
        // Second merge must be (2,3) at distance 1.5.
        assert_eq!(
            (
                d.merges[1].a.min(d.merges[1].b),
                d.merges[1].a.max(d.merges[1].b)
            ),
            (2, 3)
        );
        // Cut at 2 recovers the two pairs.
        let labels = d.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn perfect_oracle_complete_linkage_also_recovers_pairs() {
        let mut o = TrueQuadOracle::new(two_pairs());
        let d = hier_oracle(
            &HierParams::experimental(Linkage::Complete),
            &mut o,
            &mut rng(2),
        );
        let labels = d.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    /// Theorem 5.2 sanity: merges under adversarial noise stay within
    /// (1+mu)^3 of the best available merge (checked on true distances).
    #[test]
    fn merges_are_approximately_optimal_under_noise() {
        // A line of 16 points with growing gaps.
        let pts: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![(i as f64) * (1.0 + 0.1 * i as f64)])
            .collect();
        let m = EuclideanMetric::from_points(&pts);
        let mu = 0.3;
        let trials = 10;
        let mut total = 0usize;
        let mut within = 0usize;
        for seed in 0..trials {
            let mut o = AdversarialQuadOracle::new(m.clone(), mu, InvertAdversary);
            let d = hier_oracle(
                &HierParams::with_confidence(Linkage::Single, 16, 0.1),
                &mut o,
                &mut rng(50 + seed),
            );
            // Replay: at each step compare the merged linkage distance to
            // the best possible merge at that step.
            let mut members: Vec<Vec<usize>> = (0..16).map(|i| vec![i]).collect();
            for mg in &d.merges {
                let da = single_linkage_dist(&m, &members[mg.a], &members[mg.b]);
                let best = best_merge(&m, &members, mg.merged);
                total += 1;
                if da <= best * (1.0 + mu).powi(3) + 1e-9 {
                    within += 1;
                }
                let mut u = members[mg.a].clone();
                u.extend_from_slice(&members[mg.b]);
                members.push(u);
            }
        }
        assert!(
            within * 10 >= total * 8,
            "only {within}/{total} merges within (1+mu)^3"
        );
    }

    fn single_linkage_dist(m: &EuclideanMetric, a: &[usize], b: &[usize]) -> f64 {
        let mut best = f64::INFINITY;
        for &x in a {
            for &y in b {
                best = best.min(m.dist(x, y));
            }
        }
        best
    }

    fn best_merge(m: &EuclideanMetric, members: &[Vec<usize>], next_id: usize) -> f64 {
        // Live clusters at this step = maximal member sets among ids
        // created so far (a cluster is absorbed once a strict superset
        // exists).
        let bound = members.len().min(next_id);
        let mut live: Vec<usize> = Vec::new();
        for a in 0..bound {
            let covered = (0..bound).any(|b| {
                b != a
                    && members[b].len() > members[a].len()
                    && members[a].iter().all(|x| members[b].contains(x))
            });
            if !covered {
                live.push(a);
            }
        }
        let mut best = f64::INFINITY;
        for i in 0..live.len() {
            for j in (i + 1)..live.len() {
                best = best.min(single_linkage_dist(m, &members[live[i]], &members[live[j]]));
            }
        }
        best
    }

    #[test]
    fn query_complexity_is_subcubic() {
        let n = 64;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![((i * 37) % 101) as f64, ((i * 61) % 97) as f64])
            .collect();
        let m = EuclideanMetric::from_points(&pts);
        let mut o = Counting::new(TrueQuadOracle::new(m));
        let _ = hier_oracle(
            &HierParams::experimental(Linkage::Single),
            &mut o,
            &mut rng(7),
        );
        // O(n^2) with t = 1: generous constant 40 n^2; far below n^3 ≈ 262k.
        let budget = (40 * n * n) as u64;
        assert!(o.queries() <= budget, "{} queries > {budget}", o.queries());
    }

    /// The incremental plane must beat the from-scratch sweep on queries
    /// while returning the identical dendrogram.
    #[test]
    fn incremental_plane_saves_queries_and_matches_scratch() {
        let n = 48;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![((i * 37) % 101) as f64, ((i * 61) % 97) as f64])
            .collect();
        let m = EuclideanMetric::from_points(&pts);
        let params = HierParams::experimental(Linkage::Single);
        let mut inc_oracle = Counting::new(TrueQuadOracle::new(m.clone()));
        let (inc, stats) = hier_oracle_stats(&params, &mut inc_oracle, &mut rng(3));
        let mut scr_oracle = Counting::new(TrueQuadOracle::new(m));
        let scr = hier_oracle_scratch(&params, &mut scr_oracle, &mut rng(3));
        assert_eq!(inc, scr, "incremental and scratch sweeps must agree");
        assert!(
            inc_oracle.queries() < scr_oracle.queries(),
            "incremental {} queries should beat scratch {}",
            inc_oracle.queries(),
            scr_oracle.queries()
        );
        assert_eq!(stats.merges, (n - 1) as u64);
        assert!(
            stats.full_sweeps < stats.merges,
            "most sweeps must be incremental ({stats:?})"
        );
    }

    #[test]
    fn with_confidence_uses_the_natural_log_round_count() {
        // t = ceil(2 ln(n / delta)): n = 16, delta = 0.1 -> ceil(10.15).
        let p = HierParams::with_confidence(Linkage::Single, 16, 0.1);
        assert_eq!(p.search.rounds, 11);
        // The old base-2 constant would have inflated this to 15.
        let p = HierParams::with_confidence(Linkage::Complete, 2, 0.5);
        assert_eq!(p.search.rounds, 3); // ceil(2 ln 4) = ceil(2.77)
    }

    #[test]
    fn counter_stream_variant_is_deterministic_and_valid() {
        let pts: Vec<Vec<f64>> = (0..48)
            .map(|i| vec![((i * 37) % 101) as f64, ((i * 61) % 97) as f64])
            .collect();
        let m = EuclideanMetric::from_points(&pts);
        let run = |seed: u64| {
            let mut o = TrueQuadOracle::new(m.clone());
            hier_oracle_par(
                &HierParams::experimental(Linkage::Single),
                &mut o,
                &mut rng(seed),
                1,
            )
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed must reproduce the dendrogram");
        assert_eq!(a.merges.len(), 47);
        a.validate();
    }

    /// The fan-out is bit-identical to the single-worker run of the same
    /// entry point: per-row counter streams make rows rng-independent and
    /// fanned merge-plane rounds are reassembled in query order.
    #[cfg(feature = "parallel")]
    #[test]
    fn counter_stream_fan_out_matches_single_worker() {
        use nco_oracle::probabilistic::ProbQuadOracle;
        use nco_oracle::SharedCounting;
        let pts: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![((i * 29) % 83) as f64, ((i * 53) % 89) as f64])
            .collect();
        let m = EuclideanMetric::from_points(&pts);
        for seed in 0..5u64 {
            let mut serial = SharedCounting::new(ProbQuadOracle::new(m.clone(), 0.1, 70 + seed));
            let a = hier_oracle_par(
                &HierParams::experimental(Linkage::Single),
                &mut serial,
                &mut rng(seed),
                1,
            );
            let mut par = SharedCounting::new(ProbQuadOracle::new(m.clone(), 0.1, 70 + seed));
            let b = hier_oracle_par(
                &HierParams::experimental(Linkage::Single),
                &mut par,
                &mut rng(seed),
                4,
            );
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(serial.queries(), par.queries(), "seed {seed}");
        }
    }

    #[test]
    fn two_records() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0]]);
        let mut o = TrueQuadOracle::new(m);
        let d = hier_oracle(
            &HierParams::experimental(Linkage::Single),
            &mut o,
            &mut rng(0),
        );
        assert_eq!(d.merges.len(), 1);
        assert_eq!(d.cut(1), vec![0, 0]);
    }
}
