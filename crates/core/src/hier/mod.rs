//! Agglomerative hierarchical clustering under noisy quadruplet oracles —
//! Section 5 of the paper.
//!
//! The algorithms maintain, for every pair of live clusters, a
//! *representative record pair* realising their linkage distance; merging
//! then costs **one** quadruplet query per other cluster
//! (`d_SL(C_j ∪ C_l, C_k) = min(d_SL(C_j, C_k), d_SL(C_l, C_k))`), the trick
//! that brings Algorithm 11 down to `O(n^2 log^2(n/delta))` queries from
//! the naive `O(n^3)`.
//!
//! * [`hier_oracle`] — Algorithm 11: nearest-neighbour pointers per
//!   cluster, closest-pair selection via the Section 3 minimum engine;
//!   every merge is a `(1+mu)^3`-approximation of the best available merge
//!   (Theorem 5.2). Handles single *and* complete linkage.
//! * [`hier_exact`] — Lance–Williams agglomeration on true distances, the
//!   `TDist` reference of Figure 7.
//! * [`baselines`] — `Tour2` (binary tournament over all cluster pairs per
//!   merge: the `O(n^3)` method that DNFs in Table 2) and `Samp` (sampled
//!   candidate pairs).
//!
//! The output [`Dendrogram`] records the merge sequence with representative
//! pairs; [`Dendrogram::cut`] extracts flat clusterings for evaluation.

pub mod baselines;
mod exact;
mod graph;
mod slink;

pub use exact::hier_exact;
pub use slink::{
    hier_oracle, hier_oracle_par, hier_oracle_par_scratch, hier_oracle_par_stats,
    hier_oracle_scratch, hier_oracle_stats, HierParams, MergePlaneStats,
};

/// Agglomeration objective: how the distance between two clusters is
/// defined (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// `d(C1, C2) = min` over cross pairs — single linkage.
    Single,
    /// `d(C1, C2) = max` over cross pairs — complete linkage.
    Complete,
}

/// One agglomeration step: clusters `a` and `b` became `merged`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Id of the new cluster (`n + step`).
    pub merged: usize,
    /// Representative record pair that realised (approximately) the
    /// linkage distance between `a` and `b` at merge time.
    pub rep: (usize, usize),
}

/// The full merge tree over `n` leaves (ids `0..n`; internal ids
/// `n..2n-1` in merge order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dendrogram {
    /// Number of leaves (records).
    pub n: usize,
    /// Merge sequence, `n - 1` entries for a complete agglomeration.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Flat clustering with `k` clusters: replay the first `n - k` merges
    /// and label the leaves by component, labels compacted to `0..k` in
    /// first-seen order.
    ///
    /// # Panics
    /// Panics unless `1 <= k <= n` and the dendrogram has enough merges.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n, "need 1 <= k <= n");
        let steps = self.n - k;
        assert!(
            steps <= self.merges.len(),
            "dendrogram too shallow for k = {k}"
        );
        let mut parent: Vec<usize> = (0..self.n + steps).collect();
        for (s, m) in self.merges[..steps].iter().enumerate() {
            let new = self.n + s;
            assert_eq!(m.merged, new, "merge ids must be sequential");
            let ra = root(&mut parent, m.a);
            parent[ra] = new;
            let rb = root(&mut parent, m.b);
            parent[rb] = new;
        }
        let mut map = std::collections::HashMap::new();
        (0..self.n)
            .map(|v| {
                let r = root(&mut parent, v);
                let next = map.len();
                *map.entry(r).or_insert(next)
            })
            .collect()
    }

    /// Checks structural invariants: sequential ids, each cluster merged
    /// at most once, reps are valid records.
    pub fn validate(&self) {
        let mut used = vec![false; self.n + self.merges.len()];
        for (s, m) in self.merges.iter().enumerate() {
            assert_eq!(m.merged, self.n + s, "merge ids must be sequential");
            for c in [m.a, m.b] {
                assert!(c < m.merged, "cannot merge a future cluster");
                assert!(!used[c], "cluster {c} merged twice");
                used[c] = true;
            }
            assert!(m.rep.0 < self.n && m.rep.1 < self.n, "rep must be records");
        }
    }
}

fn root(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_dendrogram() -> Dendrogram {
        // 4 leaves: merge (0,1) -> 4, (2,3) -> 5, (4,5) -> 6.
        Dendrogram {
            n: 4,
            merges: vec![
                Merge {
                    a: 0,
                    b: 1,
                    merged: 4,
                    rep: (0, 1),
                },
                Merge {
                    a: 2,
                    b: 3,
                    merged: 5,
                    rep: (2, 3),
                },
                Merge {
                    a: 4,
                    b: 5,
                    merged: 6,
                    rep: (1, 2),
                },
            ],
        }
    }

    #[test]
    fn cut_produces_partitions_at_every_k() {
        let d = chain_dendrogram();
        d.validate();
        assert_eq!(d.cut(4), vec![0, 1, 2, 3]);
        assert_eq!(d.cut(2), vec![0, 0, 1, 1]);
        assert_eq!(d.cut(1), vec![0, 0, 0, 0]);
        let c3 = d.cut(3);
        assert_eq!(c3[0], c3[1]);
        assert_ne!(c3[2], c3[3]);
    }

    #[test]
    #[should_panic(expected = "merged twice")]
    fn validate_rejects_double_merge() {
        let d = Dendrogram {
            n: 3,
            merges: vec![
                Merge {
                    a: 0,
                    b: 1,
                    merged: 3,
                    rep: (0, 1),
                },
                Merge {
                    a: 0,
                    b: 2,
                    merged: 4,
                    rep: (0, 2),
                },
            ],
        };
        d.validate();
    }
}
