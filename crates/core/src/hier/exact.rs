//! Exact agglomerative clustering on true distances — the `TDist`
//! reference of Figure 7, via Lance–Williams updates with
//! nearest-neighbour pointers (O(n^2) for single linkage).

use super::{Dendrogram, Linkage, Merge};
use nco_metric::Metric;
use std::collections::HashMap;

#[inline]
fn key(a: usize, b: usize) -> u64 {
    let (x, y) = if a < b { (a, b) } else { (b, a) };
    ((x as u64) << 32) | y as u64
}

/// Exact single/complete-linkage agglomeration.
///
/// # Panics
/// Panics if `metric.len() < 2`.
pub fn hier_exact<M: Metric>(metric: &M, linkage: Linkage) -> Dendrogram {
    let n = metric.len();
    assert!(n >= 2, "agglomeration needs at least two records");

    // dist[(a,b)] = current linkage distance; rep[(a,b)] = realising pair.
    let mut dist: HashMap<u64, f64> = HashMap::with_capacity(n * (n - 1) / 2);
    let mut rep: HashMap<u64, (u32, u32)> = HashMap::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            dist.insert(key(i, j), metric.dist(i, j));
            rep.insert(key(i, j), (i as u32, j as u32));
        }
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut nn: HashMap<usize, usize> = HashMap::with_capacity(2 * n);
    let scan_nn = |c: usize, active: &[usize], dist: &HashMap<u64, f64>| -> usize {
        active
            .iter()
            .copied()
            .filter(|&x| x != c)
            .min_by(|&a, &b| dist[&key(c, a)].total_cmp(&dist[&key(c, b)]))
            .expect("at least one neighbour")
    };
    for c in 0..n {
        nn.insert(c, scan_nn(c, &active, &dist));
    }

    let mut next_id = n;
    let mut merges = Vec::with_capacity(n - 1);
    while active.len() > 1 {
        // Globally closest (c, nn(c)).
        let a = active
            .iter()
            .copied()
            .min_by(|&x, &y| dist[&key(x, nn[&x])].total_cmp(&dist[&key(y, nn[&y])]))
            .expect("non-empty");
        let b = nn[&a];
        let rep_ab = rep[&key(a, b)];
        let new = next_id;
        next_id += 1;
        merges.push(Merge {
            a,
            b,
            merged: new,
            rep: (rep_ab.0 as usize, rep_ab.1 as usize),
        });

        // Lance–Williams update: min (single) or max (complete).
        let others: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&c| c != a && c != b)
            .collect();
        for &c in &others {
            let (d1, r1) = (dist[&key(a, c)], rep[&key(a, c)]);
            let (d2, r2) = (dist[&key(b, c)], rep[&key(b, c)]);
            let take_first = match linkage {
                Linkage::Single => d1 <= d2,
                Linkage::Complete => d1 >= d2,
            };
            let (d, r) = if take_first { (d1, r1) } else { (d2, r2) };
            dist.remove(&key(a, c));
            dist.remove(&key(b, c));
            rep.remove(&key(a, c));
            rep.remove(&key(b, c));
            dist.insert(key(new, c), d);
            rep.insert(key(new, c), r);
        }
        dist.remove(&key(a, b));
        rep.remove(&key(a, b));
        active.retain(|&c| c != a && c != b);
        active.push(new);
        nn.remove(&a);
        nn.remove(&b);
        if active.len() == 1 {
            break;
        }

        // Pointer repair (same logic as the oracle variant, but exact).
        let stale: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&c| c != new && matches!(nn.get(&c), Some(&t) if t == a || t == b))
            .collect();
        for c in stale {
            match linkage {
                Linkage::Single => {
                    nn.insert(c, new);
                }
                Linkage::Complete => {
                    let t = scan_nn(c, &active, &dist);
                    nn.insert(c, t);
                }
            }
        }
        let t = scan_nn(new, &active, &dist);
        nn.insert(new, t);
    }

    let d = Dendrogram { n, merges };
    d.validate();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::{EuclideanMetric, MatrixMetric};

    #[test]
    fn single_linkage_chains_nearest_first() {
        // 0 -1- 1 -2- 2 -4- 3 (gaps 1, 2, 4).
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![3.0], vec![7.0]]);
        let d = hier_exact(&m, Linkage::Single);
        assert_eq!(d.merges[0].rep, (0, 1));
        assert_eq!(d.merges[1].rep, (1, 2));
        assert_eq!(d.merges[2].rep, (2, 3));
    }

    #[test]
    fn complete_vs_single_differ_on_chains() {
        // A chain 0-1-2-3-4 with unit gaps: single linkage merges left to
        // right; complete linkage balances.
        let m =
            EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![2.1], vec![3.3], vec![4.6]]);
        let s = hier_exact(&m, Linkage::Single);
        let c = hier_exact(&m, Linkage::Complete);
        // Cut both at k = 2. Single linkage chains left to right and peels
        // the widest gap ({0..3} vs {4}); complete linkage merges (0,1),
        // (2,3), then 4 joins {2,3} (CL dist 2.5 < 3.3), giving {0,1} vs
        // {2,3,4}.
        let ls = s.cut(2);
        let lc = c.cut(2);
        assert_ne!(ls, lc);
        assert_eq!(ls, vec![0, 0, 0, 0, 1]);
        assert_eq!(lc[0], lc[1]);
        assert_eq!(lc[2], lc[3]);
        assert_eq!(lc[2], lc[4]);
        assert_ne!(lc[0], lc[2]);
    }

    #[test]
    fn recovers_planted_clusters_at_cut() {
        let mut pts = Vec::new();
        for c in 0..3 {
            for p in 0..8 {
                pts.push(vec![c as f64 * 100.0 + (p as f64) * 0.3]);
            }
        }
        let m = EuclideanMetric::from_points(&pts);
        for linkage in [Linkage::Single, Linkage::Complete] {
            let d = hier_exact(&m, linkage);
            let labels = d.cut(3);
            for i in 0..24 {
                for j in 0..24 {
                    assert_eq!(
                        labels[i] == labels[j],
                        i / 8 == j / 8,
                        "{linkage:?} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn ties_are_handled_deterministically() {
        let m = MatrixMetric::from_fn(4, |_, _| 1.0); // all distances equal
        let d = hier_exact(&m, Linkage::Single);
        assert_eq!(d.merges.len(), 3);
        d.validate();
    }
}
