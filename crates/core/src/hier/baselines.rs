//! Hierarchical-clustering baselines of the paper's evaluation (Fig. 7,
//! Table 2):
//!
//! * [`hier_tour2`] — per merge, a binary tournament over **all** live
//!   cluster pairs. `Theta(r^2)` queries per merge, `O(n^3)` total — the
//!   method that "did not finish in 48 hrs" on `cities`/`dblp` in the
//!   paper. [`Tour2Outcome`] models that DNF behaviour with a query budget.
//! * [`hier_samp`] — per merge, Count-Max-minimum over a random sample of
//!   `ceil(sqrt(#active))` candidate cluster pairs (the `Samp` recipe of
//!   Section 6.1 adapted to merges, keeping the total at O(n^2); see
//!   DESIGN.md §6.5 for the interpretation).
//!
//! Both reuse the adjacency/representative-pair substrate of Algorithm 11,
//! so their merge bookkeeping is identical to the main algorithm — only
//! the closest-pair *search* differs.

use super::graph::ClusterGraph;
use super::{Dendrogram, Linkage, Merge};
use crate::comparator::Comparator;
use crate::comparator::Rev;
use crate::maxfind::{count_max, tournament};
use nco_oracle::QuadrupletOracle;
use rand::Rng;

/// Compares two candidate cluster pairs by their rep-pair distances.
struct PairRepCmp<'a, O> {
    oracle: &'a mut O,
    graph: &'a ClusterGraph,
}

impl<O: QuadrupletOracle> Comparator<(usize, usize)> for PairRepCmp<'_, O> {
    fn le(&mut self, p: (usize, usize), q: (usize, usize)) -> bool {
        let r1 = self.graph.rep(p.0, p.1);
        let r2 = self.graph.rep(q.0, q.1);
        self.oracle.le(r1.0, r1.1, r2.0, r2.1)
    }
}

/// Result of the budgeted `Tour2` agglomeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tour2Outcome {
    /// Finished within the query budget.
    Finished(Dendrogram),
    /// Ran out of budget after the given number of merges — the paper's
    /// "DNF" row in Table 2.
    DidNotFinish {
        /// Merges completed before the budget ran out.
        merges_done: usize,
        /// Queries spent.
        queries_spent: u64,
    },
}

/// `Tour2` agglomeration: binary tournament over all live cluster pairs at
/// every merge; `O(n^3)` queries overall. Stops early when `query_budget`
/// is exhausted (pass `u64::MAX` for unbounded).
pub fn hier_tour2<O, R>(
    linkage: Linkage,
    query_budget: u64,
    oracle: &mut O,
    rng: &mut R,
) -> Tour2Outcome
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    assert!(n >= 2, "agglomeration needs at least two records");
    let mut graph = ClusterGraph::new(n);
    let mut merges = Vec::with_capacity(n - 1);
    // Budget accounting: each tournament over P pairs costs P - 1 queries;
    // each merge refresh costs (#survivors) queries.
    let mut spent: u64 = 0;

    while graph.active().len() > 1 {
        let actives = graph.active().to_vec();
        let mut pairs = Vec::with_capacity(actives.len() * (actives.len() - 1) / 2);
        for i in 0..actives.len() {
            for j in (i + 1)..actives.len() {
                pairs.push((actives[i], actives[j]));
            }
        }
        let cost = pairs.len() as u64 + actives.len() as u64;
        if spent + cost > query_budget {
            return Tour2Outcome::DidNotFinish {
                merges_done: merges.len(),
                queries_spent: spent,
            };
        }
        spent += cost;
        let (a, b) = {
            let mut cmp = Rev(PairRepCmp {
                oracle,
                graph: &graph,
            });
            tournament(&pairs, 2, &mut cmp, rng).expect("non-empty pair list")
        };
        let rep = graph.rep(a, b);
        let new = graph.merge(a, b, linkage, oracle);
        merges.push(Merge {
            a,
            b,
            merged: new,
            rep,
        });
    }

    let d = Dendrogram { n, merges };
    d.validate();
    Tour2Outcome::Finished(d)
}

/// `Samp` agglomeration: per merge, Count-Max-minimum over
/// `ceil(sqrt(#active))` random candidate cluster pairs — the `Samp`
/// recipe (a sqrt-sized sample + quadratic Count-Max) applied to the merge
/// step, keeping its total cost at O(n^2) like the paper's Table 2 row.
pub fn hier_samp<O, R>(linkage: Linkage, oracle: &mut O, rng: &mut R) -> Dendrogram
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    assert!(n >= 2, "agglomeration needs at least two records");
    let mut graph = ClusterGraph::new(n);
    let mut merges = Vec::with_capacity(n - 1);

    while graph.active().len() > 1 {
        let actives = graph.active().to_vec();
        let r = actives.len();
        let total_pairs = r * (r - 1) / 2;
        let want = ((r as f64).sqrt().ceil() as usize).clamp(1, total_pairs);
        let mut chosen = std::collections::HashSet::with_capacity(want * 2);
        let mut sample: Vec<(usize, usize)> = Vec::with_capacity(want);
        while sample.len() < want {
            let i = rng.random_range(0..r);
            let j = rng.random_range(0..r);
            if i == j {
                continue;
            }
            let p = (actives[i.min(j)], actives[i.max(j)]);
            if chosen.insert(p) {
                sample.push(p);
            }
        }
        let (a, b) = {
            let mut cmp = Rev(PairRepCmp {
                oracle,
                graph: &graph,
            });
            count_max(&sample, &mut cmp).expect("non-empty sample")
        };
        let rep = graph.rep(a, b);
        let new = graph.merge(a, b, linkage, oracle);
        merges.push(Merge {
            a,
            b,
            merged: new,
            rep,
        });
    }

    let d = Dendrogram { n, merges };
    d.validate();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;
    use nco_oracle::counting::Counting;
    use nco_oracle::TrueQuadOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn pairs_metric() -> EuclideanMetric {
        EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![10.0], vec![11.5]])
    }

    #[test]
    fn tour2_perfect_oracle_recovers_pairs() {
        let mut o = TrueQuadOracle::new(pairs_metric());
        match hier_tour2(Linkage::Single, u64::MAX, &mut o, &mut rng(1)) {
            Tour2Outcome::Finished(d) => {
                let labels = d.cut(2);
                assert_eq!(labels[0], labels[1]);
                assert_eq!(labels[2], labels[3]);
                assert_ne!(labels[0], labels[2]);
            }
            Tour2Outcome::DidNotFinish { .. } => panic!("unbounded run must finish"),
        }
    }

    #[test]
    fn tour2_dnf_on_small_budget() {
        let n = 24;
        let pts: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let mut o = TrueQuadOracle::new(EuclideanMetric::from_points(&pts));
        match hier_tour2(Linkage::Single, 50, &mut o, &mut rng(2)) {
            Tour2Outcome::Finished(_) => panic!("budget of 50 cannot finish n = 24"),
            Tour2Outcome::DidNotFinish {
                merges_done,
                queries_spent,
            } => {
                assert!(merges_done < n - 1);
                assert!(queries_spent <= 50);
            }
        }
    }

    #[test]
    fn tour2_query_cost_is_cubic_ish() {
        let n = 32usize;
        let pts: Vec<Vec<f64>> = (0..n).map(|i| vec![(i * i) as f64]).collect();
        let mut o = Counting::new(TrueQuadOracle::new(EuclideanMetric::from_points(&pts)));
        let out = hier_tour2(Linkage::Single, u64::MAX, &mut o, &mut rng(3));
        assert!(matches!(out, Tour2Outcome::Finished(_)));
        // sum over r of C(r,2) ≈ n^3/6 ≈ 5456 for n = 32.
        assert!(o.queries() > (n * n) as u64, "{} queries", o.queries());
        assert!(o.queries() < (n * n * n) as u64, "{} queries", o.queries());
    }

    #[test]
    fn samp_runs_to_completion_and_is_cheaper() {
        let n = 32usize;
        let pts: Vec<Vec<f64>> = (0..n).map(|i| vec![(i * i) as f64]).collect();
        let mut o = Counting::new(TrueQuadOracle::new(EuclideanMetric::from_points(&pts)));
        let d = hier_samp(Linkage::Single, &mut o, &mut rng(4));
        assert_eq!(d.merges.len(), n - 1);
        // Per merge ~ sqrt(r)^2/2 = r/2 sample queries + r refresh queries:
        // O(n^2) total.
        assert!(o.queries() < (2 * n * n) as u64, "{} queries", o.queries());
    }

    #[test]
    fn samp_complete_linkage_valid_dendrogram() {
        let mut o = TrueQuadOracle::new(pairs_metric());
        let d = hier_samp(Linkage::Complete, &mut o, &mut rng(5));
        d.validate();
        assert_eq!(d.merges.len(), 3);
    }
}
