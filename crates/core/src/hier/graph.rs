//! The adjacency-list substrate shared by every oracle-driven
//! agglomeration: for each unordered pair of live clusters, the
//! representative record pair realising (approximately) their linkage
//! distance.
//!
//! Merging clusters `a` and `b` into `new` updates each surviving cluster
//! `c` with **one** quadruplet query comparing `rep(a, c)` against
//! `rep(b, c)` — the single-linkage identity
//! `d_SL(a ∪ b, c) = min(d_SL(a, c), d_SL(b, c))` (keep the closer rep) and
//! its complete-linkage mirror (keep the farther rep). This is what caps
//! Algorithm 11 at `O(n^2)` total adjacency work.

use super::Linkage;
use nco_oracle::QuadrupletOracle;
use std::collections::HashMap;

#[inline]
fn key(a: usize, b: usize) -> u64 {
    let (x, y) = if a < b { (a, b) } else { (b, a) };
    ((x as u64) << 32) | y as u64
}

/// Live clusters plus per-pair representative record pairs.
pub(crate) struct ClusterGraph {
    next_id: usize,
    active: Vec<usize>,
    adj: HashMap<u64, (u32, u32)>,
}

impl ClusterGraph {
    /// Singleton clusters `0..n`; the rep for `(i, j)` is the pair itself.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least two records");
        let mut adj = HashMap::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                adj.insert(key(i, j), (i as u32, j as u32));
            }
        }
        Self {
            next_id: n,
            active: (0..n).collect(),
            adj,
        }
    }

    /// Currently live cluster ids.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// The representative record pair between live clusters `a` and `b`.
    ///
    /// # Panics
    /// Panics if the pair is not live.
    pub fn rep(&self, a: usize, b: usize) -> (usize, usize) {
        let (u, v) = self.adj[&key(a, b)];
        (u as usize, v as usize)
    }

    /// Merges live clusters `a` and `b`; returns the new cluster id.
    ///
    /// Issues one oracle query per surviving cluster to select the new
    /// representative pairs (min for single linkage, max for complete).
    pub fn merge<O: QuadrupletOracle>(
        &mut self,
        a: usize,
        b: usize,
        linkage: Linkage,
        oracle: &mut O,
    ) -> usize {
        assert!(a != b, "cannot merge a cluster with itself");
        let new = self.next_id;
        self.next_id += 1;

        let others: Vec<usize> = self
            .active
            .iter()
            .copied()
            .filter(|&c| c != a && c != b)
            .collect();
        for &c in &others {
            let r1 = self.rep(a, c);
            let r2 = self.rep(b, c);
            // O(r1, r2) == Yes  <=>  d(r1) <= d(r2).
            let r1_closer = oracle.le(r1.0, r1.1, r2.0, r2.1);
            let keep = match linkage {
                Linkage::Single => {
                    if r1_closer {
                        r1
                    } else {
                        r2
                    }
                }
                Linkage::Complete => {
                    if r1_closer {
                        r2
                    } else {
                        r1
                    }
                }
            };
            self.adj.remove(&key(a, c));
            self.adj.remove(&key(b, c));
            self.adj.insert(key(new, c), (keep.0 as u32, keep.1 as u32));
        }
        self.adj.remove(&key(a, b));
        self.active.retain(|&c| c != a && c != b);
        self.active.push(new);
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;
    use nco_oracle::counting::Counting;
    use nco_oracle::TrueQuadOracle;

    fn line_oracle() -> TrueQuadOracle<EuclideanMetric> {
        // Points at 0, 1, 5, 6.
        TrueQuadOracle::new(EuclideanMetric::from_points(&[
            vec![0.0],
            vec![1.0],
            vec![5.0],
            vec![6.0],
        ]))
    }

    #[test]
    fn initial_reps_are_the_pairs_themselves() {
        let g = ClusterGraph::new(4);
        assert_eq!(g.rep(0, 3), (0, 3));
        assert_eq!(g.rep(3, 0), (0, 3));
        assert_eq!(g.active().len(), 4);
    }

    #[test]
    fn single_linkage_merge_keeps_closer_rep() {
        let mut o = line_oracle();
        let mut g = ClusterGraph::new(4);
        // Merge {0} and {1} -> 4. Against cluster 2: reps (0,2) d=5 vs
        // (1,2) d=4 -> keep (1,2). Against 3: (1,3) d=5.
        let new = g.merge(0, 1, Linkage::Single, &mut o);
        assert_eq!(new, 4);
        assert_eq!(g.rep(4, 2), (1, 2));
        assert_eq!(g.rep(4, 3), (1, 3));
        assert_eq!(g.active(), &[2, 3, 4]);
    }

    #[test]
    fn complete_linkage_merge_keeps_farther_rep() {
        let mut o = line_oracle();
        let mut g = ClusterGraph::new(4);
        let new = g.merge(0, 1, Linkage::Complete, &mut o);
        assert_eq!(g.rep(new, 2), (0, 2)); // d=5 > d=4
        assert_eq!(g.rep(new, 3), (0, 3));
    }

    #[test]
    fn merge_costs_one_query_per_survivor() {
        let mut o = Counting::new(line_oracle());
        let mut g = ClusterGraph::new(4);
        let _ = g.merge(2, 3, Linkage::Single, &mut o);
        assert_eq!(o.queries(), 2); // survivors {0} and {1}
    }

    #[test]
    fn sequential_merges_compose() {
        let mut o = line_oracle();
        let mut g = ClusterGraph::new(4);
        let c01 = g.merge(0, 1, Linkage::Single, &mut o);
        let c23 = g.merge(2, 3, Linkage::Single, &mut o);
        assert_eq!(g.rep(c01, c23), (1, 2)); // closest cross pair d=4
        let top = g.merge(c01, c23, Linkage::Single, &mut o);
        assert_eq!(g.active(), &[top]);
    }
}
