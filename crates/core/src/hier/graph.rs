//! The adjacency substrate shared by every oracle-driven agglomeration:
//! for each unordered pair of live clusters, the representative record
//! pair realising (approximately) their linkage distance.
//!
//! Merging clusters `a` and `b` into `new` updates each surviving cluster
//! `c` with **one** quadruplet query comparing `rep(a, c)` against
//! `rep(b, c)` — the single-linkage identity
//! `d_SL(a ∪ b, c) = min(d_SL(a, c), d_SL(b, c))` (keep the closer rep) and
//! its complete-linkage mirror (keep the farther rep). This is what caps
//! Algorithm 11 at `O(n^2)` total adjacency work.
//!
//! Storage is a dense slot matrix, not a hash map: live clusters occupy
//! slots `0..m` of a fixed `n x n` rep matrix, every `rep` lookup is two
//! `Vec` indexings, and a merge frees its two slots by installing the new
//! cluster in one and swap-removing the other (copying one matrix
//! row/column). The seed implementation kept a `HashMap` keyed by packed
//! cluster-id pairs — four hashed lookups per oracle query on the
//! clustering hot path.

use super::Linkage;
use nco_oracle::QuadrupletOracle;

const DEAD: usize = usize::MAX;

/// Live clusters plus per-pair representative record pairs.
pub(crate) struct ClusterGraph {
    n0: usize,
    next_id: usize,
    /// `active[slot]` = id of the live cluster occupying that slot.
    active: Vec<usize>,
    /// `slot_of[id]` = slot of a live cluster, [`DEAD`] otherwise.
    slot_of: Vec<usize>,
    /// Dense `n0 x n0` rep matrix indexed by slot pairs (diagonal unused).
    reps: Vec<(u32, u32)>,
}

impl ClusterGraph {
    /// Singleton clusters `0..n`; the rep for `(i, j)` is the pair itself.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least two records");
        let mut reps = vec![(0u32, 0u32); n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    reps[i * n + j] = (i.min(j) as u32, i.max(j) as u32);
                }
            }
        }
        Self {
            n0: n,
            next_id: n,
            active: (0..n).collect(),
            slot_of: (0..n).collect(),
            reps,
        }
    }

    /// Currently live cluster ids (slot order; merges swap-remove).
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// The representative record pair between live clusters `a` and `b`.
    ///
    /// Liveness is checked in debug builds only — `rep` sits on the
    /// query-translation hot path (twice per quadruplet query), and a
    /// dead cluster's `DEAD` slot would fault the `reps` indexing below
    /// anyway rather than silently mis-read.
    ///
    /// # Panics
    /// Panics (in debug builds) if either cluster is not live.
    #[inline]
    pub fn rep(&self, a: usize, b: usize) -> (usize, usize) {
        let (sa, sb) = (self.slot_of[a], self.slot_of[b]);
        debug_assert!(sa != DEAD && sb != DEAD, "rep of a dead cluster");
        let r = self.reps[sa * self.n0 + sb];
        (r.0 as usize, r.1 as usize)
    }

    /// Merges live clusters `a` and `b`; returns the new cluster id.
    ///
    /// Issues one oracle query per surviving cluster to select the new
    /// representative pairs (min for single linkage, max for complete).
    pub fn merge<O: QuadrupletOracle>(
        &mut self,
        a: usize,
        b: usize,
        linkage: Linkage,
        oracle: &mut O,
    ) -> usize {
        self.merge_impl(a, b, linkage, oracle, None)
    }

    /// [`merge`](Self::merge), additionally recording, per survivor, which
    /// parent's representative the union kept: `kept` is cleared and filled
    /// with `(survivor id, kept from a)` in survivor-slot order. Queries and
    /// answers are bit-identical to `merge` — the provenance is read off
    /// the rep-refresh round the merge issues anyway. The shared-scaffold
    /// search plane uses it to decide which cached duel outcomes transfer
    /// verbatim to the union's row (see `maxfind::RowScaffold::note_merge`).
    pub fn merge_recording<O: QuadrupletOracle>(
        &mut self,
        a: usize,
        b: usize,
        linkage: Linkage,
        oracle: &mut O,
        kept: &mut Vec<(usize, bool)>,
    ) -> usize {
        self.merge_impl(a, b, linkage, oracle, Some(kept))
    }

    fn merge_impl<O: QuadrupletOracle>(
        &mut self,
        a: usize,
        b: usize,
        linkage: Linkage,
        oracle: &mut O,
        kept: Option<&mut Vec<(usize, bool)>>,
    ) -> usize {
        assert!(a != b, "cannot merge a cluster with itself");
        let new = self.next_id;
        self.next_id += 1;
        let n0 = self.n0;
        let (sa, sb) = (self.slot_of[a], self.slot_of[b]);
        assert!(sa != DEAD && sb != DEAD, "merge of a dead cluster");

        // One query per survivor, issued as a single batched round so
        // oracle-side amortisation (distance dedup, thread fan-out) can
        // kick in — the `le_batch` contract keeps answers bit-identical
        // to the scalar loop. O(r1, r2) == Yes  <=>  d(r1) <= d(r2).
        let mut survivors: Vec<usize> = Vec::with_capacity(self.active.len());
        let mut queries: Vec<[usize; 4]> = Vec::with_capacity(self.active.len());
        for sc in 0..self.active.len() {
            if sc == sa || sc == sb {
                continue;
            }
            let r1 = self.reps[sa * n0 + sc];
            let r2 = self.reps[sb * n0 + sc];
            survivors.push(sc);
            queries.push([r1.0 as usize, r1.1 as usize, r2.0 as usize, r2.1 as usize]);
        }
        let mut answers: Vec<bool> = Vec::with_capacity(queries.len());
        oracle.le_batch(&queries, &mut answers);
        let mut kept = kept;
        if let Some(kept) = kept.as_deref_mut() {
            kept.clear();
        }
        for (&sc, &r1_closer) in survivors.iter().zip(answers.iter()) {
            let r1 = self.reps[sa * n0 + sc];
            let r2 = self.reps[sb * n0 + sc];
            let from_a = match linkage {
                // Single keeps the closer pair, complete the farther one.
                Linkage::Single => r1_closer,
                Linkage::Complete => !r1_closer,
            };
            let keep = if from_a { r1 } else { r2 };
            if let Some(kept) = kept.as_deref_mut() {
                kept.push((self.active[sc], from_a));
            }
            self.reps[sa * n0 + sc] = keep;
            self.reps[sc * n0 + sa] = keep;
        }

        self.active[sa] = new;
        debug_assert_eq!(self.slot_of.len(), new);
        self.slot_of.push(sa);
        self.slot_of[a] = DEAD;
        self.slot_of[b] = DEAD;

        // Swap-remove slot `sb`: the cluster in the last slot moves in,
        // bringing its matrix row and column along.
        let last = self.active.len() - 1;
        let moved = self.active[last];
        self.active.swap_remove(sb);
        if sb != last {
            for t in 0..self.active.len() {
                self.reps[sb * n0 + t] = self.reps[last * n0 + t];
                self.reps[t * n0 + sb] = self.reps[t * n0 + last];
            }
            self.slot_of[moved] = sb;
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;
    use nco_oracle::counting::Counting;
    use nco_oracle::TrueQuadOracle;

    fn line_oracle() -> TrueQuadOracle<EuclideanMetric> {
        // Points at 0, 1, 5, 6.
        TrueQuadOracle::new(EuclideanMetric::from_points(&[
            vec![0.0],
            vec![1.0],
            vec![5.0],
            vec![6.0],
        ]))
    }

    #[test]
    fn initial_reps_are_the_pairs_themselves() {
        let g = ClusterGraph::new(4);
        assert_eq!(g.rep(0, 3), (0, 3));
        assert_eq!(g.rep(3, 0), (0, 3));
        assert_eq!(g.active().len(), 4);
    }

    #[test]
    fn single_linkage_merge_keeps_closer_rep() {
        let mut o = line_oracle();
        let mut g = ClusterGraph::new(4);
        // Merge {0} and {1} -> 4. Against cluster 2: reps (0,2) d=5 vs
        // (1,2) d=4 -> keep (1,2). Against 3: (1,3) d=5.
        let new = g.merge(0, 1, Linkage::Single, &mut o);
        assert_eq!(new, 4);
        assert_eq!(g.rep(4, 2), (1, 2));
        assert_eq!(g.rep(4, 3), (1, 3));
        // Slot order: 4 took slot 0, 3 swap-removed into slot 1.
        let mut live = g.active().to_vec();
        live.sort_unstable();
        assert_eq!(live, vec![2, 3, 4]);
    }

    #[test]
    fn complete_linkage_merge_keeps_farther_rep() {
        let mut o = line_oracle();
        let mut g = ClusterGraph::new(4);
        let new = g.merge(0, 1, Linkage::Complete, &mut o);
        assert_eq!(g.rep(new, 2), (0, 2)); // d=5 > d=4
        assert_eq!(g.rep(new, 3), (0, 3));
    }

    #[test]
    fn merge_costs_one_query_per_survivor() {
        let mut o = Counting::new(line_oracle());
        let mut g = ClusterGraph::new(4);
        let _ = g.merge(2, 3, Linkage::Single, &mut o);
        assert_eq!(o.queries(), 2); // survivors {0} and {1}
    }

    #[test]
    fn sequential_merges_compose() {
        let mut o = line_oracle();
        let mut g = ClusterGraph::new(4);
        let c01 = g.merge(0, 1, Linkage::Single, &mut o);
        let c23 = g.merge(2, 3, Linkage::Single, &mut o);
        assert_eq!(g.rep(c01, c23), (1, 2)); // closest cross pair d=4
        assert_eq!(g.rep(c23, c01), (1, 2));
        let top = g.merge(c01, c23, Linkage::Single, &mut o);
        assert_eq!(g.active(), &[top]);
    }

    #[test]
    fn swap_removed_rows_keep_their_reps() {
        // Exercise the row/column move: merge in the middle of the slot
        // range and check every surviving pair's rep is intact.
        let m =
            EuclideanMetric::from_points(&(0..6).map(|i| vec![i as f64 * 1.5]).collect::<Vec<_>>());
        let mut o = TrueQuadOracle::new(m);
        let mut g = ClusterGraph::new(6);
        let c = g.merge(1, 2, Linkage::Single, &mut o);
        // Survivors 0, 3, 4, 5 against the union {1, 2}.
        assert_eq!(g.rep(c, 0), (0, 1));
        assert_eq!(g.rep(c, 3), (2, 3));
        assert_eq!(g.rep(c, 4), (2, 4));
        assert_eq!(g.rep(c, 5), (2, 5));
        // Untouched pairs are still the identity reps.
        assert_eq!(g.rep(0, 5), (0, 5));
        assert_eq!(g.rep(4, 3), (3, 4));
        let c2 = g.merge(0, 5, Linkage::Single, &mut o);
        // d(rep(0, c)) = d(0, 1) = 1.5 beats d(rep(5, c)) = d(2, 5) = 4.5.
        assert_eq!(g.rep(c2, c), (0, 1));
        // 6 singletons minus two merges -> 4 live clusters.
        assert_eq!(g.active().len(), 4);
    }

    // The liveness guard is a debug assertion (see `rep`); release builds
    // still abort via the poisoned index, just without this message.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "dead cluster")]
    fn rep_of_merged_cluster_panics() {
        let mut o = line_oracle();
        let mut g = ClusterGraph::new(4);
        let _ = g.merge(0, 1, Linkage::Single, &mut o);
        let _ = g.rep(0, 2);
    }
}
