//! Algorithm 6 — greedy k-center under adversarial noise (Theorem 4.2).
//!
//! Two robust subroutines replace the greedy's primitives:
//!
//! * **Approx-Farthest** — Max-Adv (Algorithm 4) over items "point `v` at
//!   distance `d(v, center(v))`", compared by quadruplet queries
//!   `O(v, s_v, w, s_w)`; a `(1+mu)^5` farthest approximation per
//!   Lemma 10.3 once assignment error is accounted.
//! * **Assign** — every point keeps an `MCount` score against each center
//!   (`MCount(u, s_j)` = how many centers `s_k` the oracle deems farther
//!   from `u` than `s_j`); the point joins its top scorer. This is
//!   Count-Max over the k centers, so the chosen center is within
//!   `(1+mu)^2` of the closest one (Lemma 10.2). Scores are built
//!   *incrementally*: adding a center costs one query per (point, existing
//!   center), the O(nk) accounting of Lemma 10.4.
//!
//! Total: `(2 + O(mu))`-approximation with `O(nk^2 + nk log^2(k/delta))`
//! queries for `mu < 1/18` (Theorem 4.2).

use super::Clustering;
use crate::comparator::Comparator;
use crate::maxfind::{max_adv, AdvParams};
use nco_oracle::QuadrupletOracle;
use rand::Rng;

/// Parameters of the adversarial greedy (Algorithm 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KCenterAdvParams {
    /// Number of clusters.
    pub k: usize,
    /// First center; `None` picks uniformly at random (the paper's
    /// "arbitrary point").
    pub first_center: Option<usize>,
    /// Max-Adv configuration for each Approx-Farthest call. The paper uses
    /// `t = log(2k/delta)` for the theorem and `t = 1` in experiments.
    pub farthest: AdvParams,
}

impl KCenterAdvParams {
    /// Experimental configuration (Section 6.1): `t = 1`.
    pub fn experimental(k: usize) -> Self {
        Self {
            k,
            first_center: None,
            farthest: AdvParams::experimental(),
        }
    }

    /// Theorem 4.2 configuration: per-iteration failure `delta / k`.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    pub fn with_confidence(k: usize, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0);
        let t = ((2.0 * k as f64 / delta).log2().ceil() as usize).max(1);
        Self {
            k,
            first_center: None,
            farthest: AdvParams {
                rounds: t,
                partitions: None,
                sample_size: None,
            },
        }
    }
}

/// `k = 2` with the experimental constants — a runnable placeholder for
/// API symmetry; real callers set `k` for their instance.
impl Default for KCenterAdvParams {
    fn default() -> Self {
        Self::experimental(2)
    }
}

/// Compares two non-center points by their distance to their assigned
/// centers — the item ordering Approx-Farthest maximises. Shared with the
/// `Tour2` / `Samp` baselines.
pub(crate) struct AssignedDistCmp<'a, O> {
    pub(crate) oracle: &'a mut O,
    pub(crate) centers: &'a [usize],
    pub(crate) assignment: &'a [usize],
}

impl<O: QuadrupletOracle> Comparator<usize> for AssignedDistCmp<'_, O> {
    fn le(&mut self, a: usize, b: usize) -> bool {
        let sa = self.centers[self.assignment[a]];
        let sb = self.centers[self.assignment[b]];
        self.oracle.le(a, sa, b, sb)
    }

    fn le_round(&mut self, round: &[(usize, usize)], out: &mut Vec<bool>) {
        let queries: Vec<[usize; 4]> = round
            .iter()
            .map(|&(a, b)| {
                [
                    a,
                    self.centers[self.assignment[a]],
                    b,
                    self.centers[self.assignment[b]],
                ]
            })
            .collect();
        self.oracle.le_batch(&queries, out);
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

/// Algorithm 6: greedy k-center under adversarial noise.
///
/// # Panics
/// Panics if `k == 0` or `k > oracle.n()`.
pub fn kcenter_adv<O, R>(params: &KCenterAdvParams, oracle: &mut O, rng: &mut R) -> Clustering
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    kcenter_adv_with_progress(params, oracle, rng, &mut 0)
}

/// [`kcenter_adv`] with a clean-progress watermark: `clean` is advanced to
/// the number of leading centers that were selected *and* fully assigned
/// while the oracle was still returning real answers (`!oracle.doomed()`).
/// Doom latches monotonically at query boundaries, so
/// `clustering.centers[..clean]` is always a committee prefix built from
/// real answers; the query and rng sequences are exactly those of
/// [`kcenter_adv`].
///
/// # Panics
/// Panics if `k == 0` or `k > oracle.n()`.
pub fn kcenter_adv_with_progress<O, R>(
    params: &KCenterAdvParams,
    oracle: &mut O,
    rng: &mut R,
    clean: &mut usize,
) -> Clustering
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    let k = params.k;
    assert!(k >= 1 && k <= n, "need 1 <= k <= n (k = {k}, n = {n})");

    let first = params
        .first_center
        .unwrap_or_else(|| rng.random_range(0..n));
    assert!(first < n, "first center out of range");

    let mut centers: Vec<usize> = vec![first];
    let mut assignment: Vec<usize> = vec![0; n];
    let mut is_center: Vec<bool> = vec![false; n];
    is_center[first] = true;
    if !oracle.doomed() {
        *clean = 1; // the first center needs no queries
    }
    // mcount[v][j]: how many centers v's MCount deems farther than center j.
    let mut mcount: Vec<Vec<u32>> = vec![vec![0]; n];
    // Per-point committee-scoring round, hoisted out of both loops.
    let mut round: Vec<[usize; 4]> = Vec::new();
    let mut answers: Vec<bool> = Vec::new();

    while centers.len() < k {
        // Approx-Farthest over all non-center points.
        let items: Vec<usize> = (0..n).filter(|&v| !is_center[v]).collect();
        let mut cmp = AssignedDistCmp {
            oracle,
            centers: &centers,
            assignment: &assignment,
        };
        let far = max_adv(&items, &params.farthest, &mut cmp, rng)
            .expect("non-empty candidate set while centers < k <= n");

        let new_pos = centers.len();
        centers.push(far);
        is_center[far] = true;
        assignment[far] = new_pos;

        // Assign: extend each point's MCount with the new center — one
        // query per (point, existing center) — and re-take the argmax.
        // Each point's committee scan goes out as one batched round (the
        // oracle then evaluates d(far, v) once per point, not once per
        // query), and the argmax is maintained *incrementally*: counts
        // only ever grow, and the rescan's tie-break (highest count, then
        // oldest center) is preserved by never replacing the incumbent on
        // a tie with a newer center — so the assignment is exactly the
        // full rescan's.
        for v in 0..n {
            if is_center[v] {
                mcount[v].push(0); // keep vector lengths aligned; unused
                continue;
            }
            round.clear();
            answers.clear();
            // O((s_j, v), (far, v)) == Yes  <=>  d(s_j, v) <= d(far, v).
            round.extend(centers[..new_pos].iter().map(|&sj| [sj, v, far, v]));
            oracle.le_batch(&round, &mut answers);
            let mut new_wins = 0u32;
            let (mut best, mut best_count) = (assignment[v], mcount[v][assignment[v]]);
            for (j, &yes) in answers.iter().enumerate() {
                if yes {
                    mcount[v][j] += 1;
                    let c = mcount[v][j];
                    if c > best_count || (c == best_count && j < best) {
                        best = j;
                        best_count = c;
                    }
                } else {
                    new_wins += 1;
                }
            }
            mcount[v].push(new_wins);
            if new_wins > best_count {
                best = new_pos;
            }
            assignment[v] = best;
        }
        if !oracle.doomed() {
            *clean = centers.len();
        }
    }

    let clustering = Clustering {
        centers,
        assignment,
    };
    clustering.validate();
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::stats::kcenter_objective;
    use nco_metric::EuclideanMetric;
    use nco_oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
    use nco_oracle::counting::Counting;
    use nco_oracle::TrueQuadOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn blobs(per: usize, centers: &[(f64, f64)], spread: f64) -> EuclideanMetric {
        let mut pts = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for p in 0..per {
                let a = (ci * per + p) as f64;
                pts.push(vec![
                    cx + spread * ((a * 0.7).sin()),
                    cy + spread * ((a * 1.3).cos()),
                ]);
            }
        }
        EuclideanMetric::from_points(&pts)
    }

    #[test]
    fn perfect_oracle_matches_gonzalez_objective() {
        let m = blobs(
            10,
            &[(0.0, 0.0), (40.0, 0.0), (0.0, 40.0), (40.0, 40.0)],
            1.0,
        );
        let g = super::super::gonzalez(&m, 4, Some(0));
        let g_obj = kcenter_objective(&m, &g.centers, &g.assignment);
        let mut o = TrueQuadOracle::new(m.clone());
        let params = KCenterAdvParams {
            first_center: Some(0),
            ..KCenterAdvParams::with_confidence(4, 0.05)
        };
        let c = kcenter_adv(&params, &mut o, &mut rng(1));
        let obj = kcenter_objective(&m, &c.centers, &c.assignment);
        // With a perfect oracle the noisy greedy is the exact greedy up to
        // tie-breaking; objectives match.
        assert!((obj - g_obj).abs() < 1e-9, "noisy {obj} vs exact {g_obj}");
    }

    /// Example 4.1: k = 2, mu = 1 on the Figure 2 line starting from w.
    /// The adversarial greedy reaches a 3-approximation (optimal radius 51,
    /// achieved radius <= 151).
    #[test]
    fn paper_example_4_1_bound() {
        let m = EuclideanMetric::from_points(&[
            vec![0.0],   // s
            vec![51.0],  // u
            vec![101.0], // v
            vec![102.0], // w
            vec![202.0], // t
        ]);
        let mut o = AdversarialQuadOracle::new(m.clone(), 1.0, InvertAdversary);
        let params = KCenterAdvParams {
            first_center: Some(3),
            ..KCenterAdvParams::with_confidence(2, 0.05)
        };
        let c = kcenter_adv(&params, &mut o, &mut rng(2));
        let obj = kcenter_objective(&m, &c.centers, &c.assignment);
        assert!(
            obj <= 3.0 * 51.0 + 1e-9,
            "objective {obj} within 3x OPT of the example"
        );
    }

    /// Theorem 4.2's shape: for small mu, the objective stays within a
    /// small constant of the best assignment achievable with the returned
    /// centers, and within (2 + O(mu)) * OPT-ish of the exact greedy.
    #[test]
    fn small_mu_objective_close_to_exact_greedy() {
        let m = blobs(
            15,
            &[
                (0.0, 0.0),
                (60.0, 0.0),
                (0.0, 60.0),
                (60.0, 60.0),
                (30.0, 30.0),
            ],
            1.5,
        );
        let g = super::super::gonzalez(&m, 5, Some(0));
        let g_obj = kcenter_objective(&m, &g.centers, &g.assignment);
        let mu = 0.05; // < 1/18
        let trials = 10;
        let mut ok = 0;
        for seed in 0..trials {
            let mut o = AdversarialQuadOracle::new(m.clone(), mu, InvertAdversary);
            let params = KCenterAdvParams {
                first_center: Some(0),
                ..KCenterAdvParams::with_confidence(5, 0.1)
            };
            let c = kcenter_adv(&params, &mut o, &mut rng(30 + seed));
            let obj = kcenter_objective(&m, &c.centers, &c.assignment);
            // Exact greedy is a 2-approx; theorem gives 2 + O(mu) of OPT,
            // so ~ (1 + O(mu)) relative to the greedy reference. Allow 2x.
            if obj <= 2.0 * g_obj + 1e-9 {
                ok += 1;
            }
        }
        assert!(
            ok >= trials * 8 / 10,
            "{ok}/{trials} runs within 2x of greedy"
        );
    }

    #[test]
    fn query_complexity_scales_as_nk_squared() {
        let m = blobs(
            40,
            &[(0.0, 0.0), (50.0, 0.0), (0.0, 50.0), (50.0, 50.0)],
            2.0,
        );
        let n = 160;
        let k = 8;
        let mut o = Counting::new(TrueQuadOracle::new(m));
        let params = KCenterAdvParams {
            first_center: Some(0),
            ..KCenterAdvParams::experimental(k)
        };
        let _ = kcenter_adv(&params, &mut o, &mut rng(9));
        // Assign: sum_i n*i ≈ n k^2 / 2; farthest with t=1: ~3n per round.
        let budget = (n * k * k / 2 + 6 * n * k) as u64;
        assert!(o.queries() <= budget, "{} queries > {budget}", o.queries());
        assert!(
            o.queries() >= (n * (k - 1) / 2) as u64,
            "suspiciously few queries"
        );
    }

    #[test]
    fn centers_are_distinct_and_assignment_valid() {
        let m = blobs(12, &[(0.0, 0.0), (30.0, 0.0), (15.0, 25.0)], 1.0);
        let mut o = AdversarialQuadOracle::new(m, 0.5, InvertAdversary);
        let c = kcenter_adv(&KCenterAdvParams::experimental(6), &mut o, &mut rng(4));
        c.validate();
        let mut cs = c.centers.clone();
        cs.sort_unstable();
        cs.dedup();
        assert_eq!(cs.len(), 6, "centers must be distinct");
    }

    #[test]
    fn k_equals_one_assigns_everything_to_first() {
        let m = blobs(5, &[(0.0, 0.0)], 1.0);
        let mut o = TrueQuadOracle::new(m);
        let params = KCenterAdvParams {
            first_center: Some(2),
            ..KCenterAdvParams::experimental(1)
        };
        let c = kcenter_adv(&params, &mut o, &mut rng(0));
        assert_eq!(c.centers, vec![2]);
        assert!(c.assignment.iter().all(|&a| a == 0));
    }
}
