//! Lloyd-style local refinement for oracle k-center — a step toward the
//! paper's stated future work ("we believe our techniques can be useful
//! for other clustering tasks", Section 7).
//!
//! Alternates two oracle-only phases over an existing clustering:
//!
//! 1. **Re-center**: inside every cluster, replace the center with the
//!    member whose *eccentricity* (distance to its farthest co-member) is
//!    smallest — the cluster's approximate 1-center. Both halves use the
//!    Section 3 machinery: the farthest co-member of each candidate via
//!    [`farthest_adv_among`], then the minimum over the (candidate,
//!    witness) pairs via `min_adv` with a pair-distance comparator.
//!    To keep the round at `O(|C| * c)` queries per cluster, candidates
//!    are subsampled when clusters are large.
//! 2. **Re-assign**: the full MCount vote of Algorithm 6's Assign.
//!
//! Each phase can only (approximately) improve the max-radius objective;
//! iterating a couple of rounds after the greedy typically shaves the
//! constant — measured in the ablation bench.

use super::Clustering;
use crate::comparator::{PairDistCmp, Rev};
use crate::maxfind::{max_adv, AdvParams};
use crate::neighbor::farthest_adv_among;
use nco_oracle::QuadrupletOracle;
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters for [`refine_kcenter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefineParams {
    /// Refinement rounds (each = re-center + re-assign).
    pub rounds: usize,
    /// Cap on re-center candidates per cluster (subsampled beyond this).
    pub center_candidates: usize,
    /// Max-Adv configuration for the inner searches.
    pub search: AdvParams,
}

impl RefineParams {
    /// Default rounds/candidates with the inner searches run at failure
    /// probability `delta` — the confidence constructor every `*Params`
    /// struct in this crate shares.
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    pub fn with_confidence(delta: f64) -> Self {
        Self {
            search: AdvParams::with_confidence(delta),
            ..Self::default()
        }
    }
}

impl Default for RefineParams {
    fn default() -> Self {
        Self {
            rounds: 2,
            center_candidates: 24,
            search: AdvParams::experimental(),
        }
    }
}

/// Refines a clustering in place; returns the refined clustering.
///
/// # Panics
/// Panics if the clustering does not cover `oracle.n()` points.
pub fn refine_kcenter<O, R>(
    mut clustering: Clustering,
    params: &RefineParams,
    oracle: &mut O,
    rng: &mut R,
) -> Clustering
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    assert_eq!(clustering.n(), n, "clustering must cover all records");
    let k = clustering.k();

    for _ in 0..params.rounds {
        // Phase 1: re-center every cluster at its approximate 1-center.
        for c in 0..k {
            let members = clustering.members(c);
            if members.len() <= 2 {
                continue;
            }
            let mut candidates = members.clone();
            if candidates.len() > params.center_candidates {
                candidates.shuffle(rng);
                candidates.truncate(params.center_candidates);
                // The incumbent center always stays in the running.
                let incumbent = clustering.centers[c];
                if !candidates.contains(&incumbent) {
                    candidates[0] = incumbent;
                }
            }
            // Eccentricity witness for every candidate.
            let pairs: Vec<(usize, usize)> = candidates
                .iter()
                .filter_map(|&u| {
                    farthest_adv_among(oracle, u, &members, &params.search, rng).map(|w| (u, w))
                })
                .collect();
            if pairs.is_empty() {
                continue;
            }
            // Least-eccentric candidate = minimum pair distance.
            let best = {
                let mut cmp = Rev(PairDistCmp::new(oracle));
                max_adv(&pairs, &params.search, &mut cmp, rng).expect("non-empty pairs")
            };
            clustering.centers[c] = best.0;
        }
        // Centers must map to themselves even if they changed cluster
        // membership semantics.
        for (pos, &center) in clustering.centers.iter().enumerate() {
            clustering.assignment[center] = pos;
        }

        // Phase 2: full MCount re-assignment against the new centers.
        let centers = clustering.centers.clone();
        for v in 0..n {
            if centers.contains(&v) {
                continue;
            }
            let mut wins = vec![0u32; k];
            for a in 0..k {
                for b in (a + 1)..k {
                    if oracle.le(centers[a], v, centers[b], v) {
                        wins[a] += 1;
                    } else {
                        wins[b] += 1;
                    }
                }
            }
            clustering.assignment[v] = wins
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.cmp(y.1).then(y.0.cmp(&x.0)))
                .map(|(j, _)| j)
                .expect("k >= 1");
        }
    }
    clustering.validate();
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcenter::{gonzalez, kcenter_adv, KCenterAdvParams};
    use nco_metric::stats::kcenter_objective;
    use nco_metric::EuclideanMetric;
    use nco_oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
    use nco_oracle::TrueQuadOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn blobs() -> EuclideanMetric {
        let centers = [(0.0, 0.0), (60.0, 0.0), (0.0, 60.0)];
        let mut pts = Vec::new();
        for &(cx, cy) in &centers {
            for p in 0..20 {
                let a = p as f64;
                pts.push(vec![cx + 3.0 * (a * 0.9).sin(), cy + 3.0 * (a * 1.7).cos()]);
            }
        }
        EuclideanMetric::from_points(&pts)
    }

    #[test]
    fn refinement_fixes_bad_assignment_and_off_center_choices() {
        let m = blobs();
        // One center per blob but all of them edge points, and every point
        // initially dumped into cluster 0 — the situation Lloyd-style
        // refinement is made for (it cannot relocate centers *across*
        // blobs, so each cluster must start with one).
        let start = Clustering {
            centers: vec![0, 20, 40],
            assignment: {
                let mut a = vec![0usize; 60];
                a[20] = 1;
                a[40] = 2;
                a
            },
        };
        let before = kcenter_objective(&m, &start.centers, &start.assignment);
        let mut o = TrueQuadOracle::new(m.clone());
        let refined = refine_kcenter(start, &RefineParams::default(), &mut o, &mut rng(1));
        let after = kcenter_objective(&m, &refined.centers, &refined.assignment);
        assert!(
            after <= before + 1e-9,
            "refinement must not worsen: {after} vs {before}"
        );
        // Re-assignment splits the blobs; the radius drops from the
        // cross-blob scale (~60+) to the intra-blob scale (<= ~7).
        assert!(after < 10.0, "expected intra-blob radius, got {after}");
    }

    #[test]
    fn refinement_after_noisy_greedy_helps_or_holds() {
        let m = blobs();
        let mut improvements = 0;
        let trials = 6;
        for seed in 0..trials {
            let mut o = AdversarialQuadOracle::new(m.clone(), 0.8, InvertAdversary);
            let g = kcenter_adv(&KCenterAdvParams::experimental(3), &mut o, &mut rng(seed));
            let before = kcenter_objective(&m, &g.centers, &g.assignment);
            let refined = refine_kcenter(g, &RefineParams::default(), &mut o, &mut rng(100 + seed));
            let after = kcenter_objective(&m, &refined.centers, &refined.assignment);
            if after <= before + 1e-9 {
                improvements += 1;
            }
        }
        assert!(
            improvements >= trials - 1,
            "refinement regressed in {} runs",
            trials - improvements
        );
    }

    #[test]
    fn refined_clustering_matches_gonzalez_quality_with_perfect_oracle() {
        let m = blobs();
        let g = gonzalez(&m, 3, Some(0));
        let g_obj = kcenter_objective(&m, &g.centers, &g.assignment);
        let mut o = TrueQuadOracle::new(m.clone());
        let noisy = kcenter_adv(
            &KCenterAdvParams {
                first_center: Some(0),
                ..KCenterAdvParams::experimental(3)
            },
            &mut o,
            &mut rng(4),
        );
        let refined = refine_kcenter(noisy, &RefineParams::default(), &mut o, &mut rng(5));
        let obj = kcenter_objective(&m, &refined.centers, &refined.assignment);
        assert!(obj <= g_obj + 1e-9, "refined {obj} vs greedy {g_obj}");
    }
}
