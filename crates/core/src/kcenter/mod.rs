//! k-center clustering under noisy comparison oracles — Section 4.
//!
//! All variants adapt Gonzalez's greedy: pick an arbitrary first center,
//! then `k - 1` times find the (approximately) farthest point from the
//! current centers and reassign everything. What changes per noise model is
//! how "farthest" and "assign" are made robust:
//!
//! * [`kcenter_adv`] (Algorithm 6) — Approx-Farthest runs Max-Adv over
//!   (point, assigned-center) distance items; Assign keeps MCount scores
//!   (each point vs. every pair of centers) and places each point with its
//!   highest scorer. `(2 + O(mu))`-approximation, Theorem 4.2.
//! * [`kcenter_prob`] (Algorithm 7) — runs the greedy on a Bernoulli sample
//!   sized so every optimal cluster contributes `Theta(log(n/delta))`
//!   points, maintains a *core* of near-center records per cluster
//!   (Identify-Core, Algorithm 9), compares points through their cores
//!   (ClusterComp, Algorithm 10), and assigns with ACount votes
//!   (Algorithm 8 / Assign-Final). `O(1)`-approximation when the minimum
//!   optimal cluster has `m = Omega(log^3(n/delta)/delta)` points,
//!   Theorem 4.4.
//! * [`gonzalez`] — the exact greedy 2-approximation on true distances;
//!   the paper's `TDist` evaluation reference.
//! * [`baselines`] — `Tour2` and `Samp` k-center plus the `Oq`
//!   same-cluster-query clustering of Table 1.
//! * [`refine_kcenter`] — Lloyd-style oracle-only local refinement
//!   (re-center at approximate 1-centers + MCount re-assignment), a step
//!   toward the paper's Section 7 future work.

mod adversarial;
pub mod baselines;
mod gonzalez;
mod probabilistic;
mod refine;

pub use adversarial::{kcenter_adv, kcenter_adv_with_progress, KCenterAdvParams};
pub use gonzalez::gonzalez;
pub use probabilistic::{kcenter_prob, kcenter_prob_with_progress, KCenterProbParams};
pub use refine::{refine_kcenter, RefineParams};

/// A k-center clustering: chosen centers and a per-point assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Chosen centers (record indices), in selection order.
    pub centers: Vec<usize>,
    /// `assignment[v]` is an index into [`Clustering::centers`].
    pub assignment: Vec<usize>,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.assignment.len()
    }

    /// The center record a point is assigned to.
    pub fn center_of(&self, v: usize) -> usize {
        self.centers[self.assignment[v]]
    }

    /// Cluster labels (identical to the raw assignment; present for
    /// API symmetry with ground-truth label vectors).
    pub fn labels(&self) -> &[usize] {
        &self.assignment
    }

    /// Members of cluster `c` (index into centers).
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(v, _)| v)
            .collect()
    }

    /// Internal consistency checks (used by tests and debug assertions):
    /// every center assigned to itself, assignments in range.
    pub fn validate(&self) {
        assert!(!self.centers.is_empty(), "clustering must have centers");
        for (pos, &c) in self.centers.iter().enumerate() {
            assert_eq!(self.assignment[c], pos, "center {c} not assigned to itself");
        }
        assert!(
            self.assignment.iter().all(|&a| a < self.centers.len()),
            "assignment out of range"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_accessors() {
        let c = Clustering {
            centers: vec![2, 0],
            assignment: vec![1, 0, 0, 1],
        };
        c.validate();
        assert_eq!(c.k(), 2);
        assert_eq!(c.n(), 4);
        assert_eq!(c.center_of(3), 0);
        assert_eq!(c.center_of(1), 2);
        assert_eq!(c.members(0), vec![1, 2]);
        assert_eq!(c.members(1), vec![0, 3]);
        assert_eq!(c.labels(), &[1, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "not assigned to itself")]
    fn validate_catches_misassigned_center() {
        let c = Clustering {
            centers: vec![0, 1],
            assignment: vec![0, 0],
        };
        c.validate();
    }
}
