//! Algorithm 7 — k-center under probabilistic persistent noise
//! (Theorem 4.4), with its subroutines:
//!
//! * **sampling**: include each point w.p. `gamma * ln(n/delta) / m`, so
//!   every optimal cluster lands `Theta(log(n/delta))` representatives in
//!   the working set (Lemma 11.1);
//! * **Identify-Core** (Algorithm 9): the cluster members closest to the
//!   center by Count score — the per-cluster voting committee;
//! * **ClusterComp** (Algorithm 10): robust comparison of two points'
//!   distances *to their own centers* through the cores (same-cluster
//!   comparisons vote over the full core; cross-cluster ones over
//!   `sqrt(|R|) x sqrt(|R|)` core subsets to stay within
//!   `Theta(log(n/delta))` queries);
//! * **Assign** (Algorithm 8): a point moves to a freshly found center when
//!   its ACount vote against the current cluster's core clears the `0.3`
//!   threshold;
//! * **Assign-Final**: the unsampled points stream through the center list
//!   with the same ACount votes.
//!
//! With `p <= 0.4` and minimum optimal-cluster size
//! `m = Omega(log^3(n/delta)/delta)`, the result is an O(1)-approximation
//! w.p. `1 - O(delta)` using `O(nk log(n/delta) + (n/m)^2 k log^2(n/delta))`
//! queries.

use super::Clustering;
use crate::comparator::Comparator;
use crate::maxfind::{max_adv, AdvParams};
use crate::neighbor::{MAJORITY_THRESHOLD, PAIRWISE_THRESHOLD};
use nco_oracle::QuadrupletOracle;
use rand::Rng;

/// Parameters of the probabilistic k-center (Algorithm 7).
#[derive(Debug, Clone, PartialEq)]
pub struct KCenterProbParams {
    /// Number of clusters.
    pub k: usize,
    /// Minimum optimal-cluster size `m` (a promise parameter of Thm 4.4).
    pub m: usize,
    /// Sampling multiplier `gamma`: the paper proves with `gamma = 450` and
    /// experiments with `gamma = 2` (Section 6.1).
    pub gamma: f64,
    /// Failure probability `delta`.
    pub delta: f64,
    /// ACount / FCount acceptance threshold (`0.3` in the paper).
    pub threshold: f64,
    /// First center; `None` picks randomly among the sampled points.
    pub first_center: Option<usize>,
    /// Max-Adv configuration for Approx-Farthest (`t = log(n/delta)` in the
    /// theorem, `t = 1` in experiments).
    pub farthest: AdvParams,
}

impl KCenterProbParams {
    /// The paper's experimental configuration: `gamma = 2`, `t = 1`. The
    /// vote threshold defaults to the majority variant (see
    /// `nco_core::neighbor::MAJORITY_THRESHOLD`); the ablation bench
    /// contrasts it with the paper's literal 0.3.
    pub fn experimental(k: usize, m: usize) -> Self {
        Self {
            k,
            m,
            gamma: 2.0,
            delta: 0.1,
            threshold: MAJORITY_THRESHOLD,
            first_center: None,
            farthest: AdvParams::experimental(),
        }
    }

    /// Targets failure probability `delta` with the lean experimental
    /// constants — the confidence constructor every `*Params` struct in
    /// this crate shares. Rounds follow the `AdvParams` confidence rule;
    /// the enormous proof-grade constants of Theorem 4.4 stay available
    /// through public fields (`gamma = 450`, `threshold = 0.3`).
    ///
    /// # Panics
    /// Panics unless `0 < delta < 1`.
    pub fn with_confidence(k: usize, m: usize, delta: f64) -> Self {
        Self {
            delta,
            farthest: AdvParams::with_confidence(delta),
            ..Self::experimental(k, m)
        }
    }

    /// Proof-grade configuration of Theorem 4.4 (`gamma = 450`,
    /// `t = log2(n/delta)` rounds). Intended for analysis, not for runs at
    /// realistic sizes — the constants are enormous by design.
    #[deprecated(
        since = "0.1.0",
        note = "use `with_confidence(k, m, delta)` (or set `gamma: 450.0` \
                explicitly for the proof-grade constants)"
    )]
    pub fn theory(k: usize, m: usize, n: usize, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0);
        let t = ((n as f64 / delta).log2().ceil() as usize).max(1);
        Self {
            k,
            m,
            gamma: 450.0,
            delta,
            threshold: PAIRWISE_THRESHOLD,
            first_center: None,
            farthest: AdvParams {
                rounds: t,
                partitions: None,
                sample_size: None,
            },
        }
    }

    fn ln_term(&self, n: usize) -> f64 {
        (n as f64 / self.delta).max(2.0).ln()
    }

    /// Core size — `ceil(8 * gamma * log(n/delta) / 9)` (Algorithm 9),
    /// additionally capped at `8m/9`: the paper's formula equals 8/9 of the
    /// *expected minimum-cluster sample* `min(gamma * log(n/delta), m)`;
    /// without the cap, a saturated sampling probability (`p_sample = 1`)
    /// would request cores larger than the smallest optimal cluster and the
    /// committees would bleed across cluster boundaries.
    fn core_size(&self, n: usize) -> usize {
        let expected_min_cluster_sample = (self.gamma * self.ln_term(n)).min(self.m as f64);
        ((8.0 * expected_min_cluster_sample / 9.0).ceil() as usize).max(1)
    }
}

/// `k = 2`, `m = 1` with the experimental constants — a runnable
/// placeholder for API symmetry; real callers set `k` and the cluster-size
/// promise `m` for their instance.
impl Default for KCenterProbParams {
    fn default() -> Self {
        Self::experimental(2, 1)
    }
}

/// Algorithm 9 — Identify-Core: the `size` cluster members with the highest
/// "closer to the center than others" Count scores, best first.
///
/// The whole `|C|²` committee election goes out as one batched round: every
/// query is anchored at the center, so the oracle's `le_batch` evaluates
/// each `d(center, x)` once for the entire election.
fn identify_core<O: QuadrupletOracle>(
    oracle: &mut O,
    cluster: &[usize],
    center: usize,
    size: usize,
) -> Vec<usize> {
    debug_assert!(cluster.contains(&center));
    // Count(u) = #{x in C : O(center, x, center, u) == No}
    //          = #{x : the oracle deems x farther from the center}.
    let mut round: Vec<[usize; 4]> = Vec::new();
    for &u in cluster {
        round.extend(
            cluster
                .iter()
                .filter(|&&x| x != u)
                .map(|&x| [center, x, center, u]),
        );
    }
    let mut answers = Vec::with_capacity(round.len());
    oracle.le_batch(&round, &mut answers);
    let mut answers = answers.iter();
    let mut scored: Vec<(usize, u32)> = cluster
        .iter()
        .map(|&u| {
            let c = cluster
                .iter()
                .filter(|&&x| x != u)
                .filter(|_| !*answers.next().expect("one answer per query"))
                .count() as u32;
            (u, c)
        })
        .collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(size.min(scored.len()).max(1));
    scored.into_iter().map(|(u, _)| u).collect()
}

/// `sqrt(|R|)`-sized prefix used for cross-cluster ClusterComp votes.
fn rtilde(core: &[usize]) -> Vec<usize> {
    let s = (core.len() as f64).sqrt().ceil() as usize;
    core[..s.clamp(1, core.len())].to_vec()
}

/// Algorithm 10 — ClusterComp as a [`Comparator`]: items are sampled
/// points, keys are their (unknown) distances to their assigned centers.
struct ClusterCmp<'a, O> {
    oracle: &'a mut O,
    cores: &'a [Vec<usize>],
    rtildes: &'a [Vec<usize>],
    membership: &'a [usize],
    threshold: f64,
    /// Reused committee-round buffers (one vote = one batched round).
    round: Vec<[usize; 4]>,
    answers: Vec<bool>,
}

impl<O: QuadrupletOracle> Comparator<usize> for ClusterCmp<'_, O> {
    fn le(&mut self, u: usize, v: usize) -> bool {
        let (cu, cv) = (self.membership[u], self.membership[v]);
        // Each ClusterComp vote is one batched round over its committee
        // (or committee product): d(u, x) / d(v, y) evaluations are shared
        // across the round by the oracle.
        self.round.clear();
        self.answers.clear();
        let comparisons = if cu == cv {
            let core = &self.cores[cu];
            self.round.extend(core.iter().map(|&x| [u, x, v, x]));
            core.len()
        } else {
            let (ra, rb) = (&self.rtildes[cu], &self.rtildes[cv]);
            for &x in ra {
                self.round.extend(rb.iter().map(|&y| [u, x, v, y]));
            }
            ra.len() * rb.len()
        };
        self.oracle.le_batch(&self.round, &mut self.answers);
        let fcount = self.answers.iter().filter(|&&yes| yes).count();
        fcount as f64 >= self.threshold * comparisons as f64
    }

    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

/// ACount vote (Algorithm 8 / Assign-Final): does `u` look closer to the
/// prospective center `cand` than to the committee `core` of its current
/// cluster? One batched round per vote — `d(u, cand)` is evaluated once
/// for the whole committee — with caller-provided round buffers so the
/// Assign / Assign-Final loops vote allocation-free.
fn acount_with<O: QuadrupletOracle>(
    oracle: &mut O,
    u: usize,
    cand: usize,
    core: &[usize],
    round: &mut Vec<[usize; 4]>,
    answers: &mut Vec<bool>,
) -> f64 {
    round.clear();
    answers.clear();
    round.extend(core.iter().map(|&x| [u, cand, u, x]));
    oracle.le_batch(round, answers);
    let yes = answers.iter().filter(|&&a| a).count();
    yes as f64 / core.len() as f64
}

/// Algorithm 7: k-center under probabilistic persistent noise.
///
/// # Panics
/// Panics if `k == 0`, `k > oracle.n()` or `m == 0`.
pub fn kcenter_prob<O, R>(params: &KCenterProbParams, oracle: &mut O, rng: &mut R) -> Clustering
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    kcenter_prob_with_progress(params, oracle, rng, &mut 0)
}

/// [`kcenter_prob`] with a clean-progress watermark; see
/// [`super::kcenter_adv_with_progress`] for the `clean` contract
/// (`clean` = leading centers selected and fully assigned on real
/// answers, query/rng sequences unchanged).
///
/// # Panics
/// Panics if `k == 0`, `k > oracle.n()` or `m == 0`.
pub fn kcenter_prob_with_progress<O, R>(
    params: &KCenterProbParams,
    oracle: &mut O,
    rng: &mut R,
    clean: &mut usize,
) -> Clustering
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    let k = params.k;
    assert!(k >= 1 && k <= n, "need 1 <= k <= n (k = {k}, n = {n})");
    assert!(params.m >= 1, "minimum cluster size m must be positive");

    // Phase 1a: Bernoulli sample V~.
    let p_sample = (params.gamma * params.ln_term(n) / params.m as f64).min(1.0);
    let mut in_sample = vec![false; n];
    let mut sampled: Vec<usize> = Vec::new();
    for (v, flag) in in_sample.iter_mut().enumerate() {
        if rng.random_bool(p_sample) {
            *flag = true;
            sampled.push(v);
        }
    }
    if let Some(f) = params.first_center {
        assert!(f < n, "first center out of range");
        if !in_sample[f] {
            in_sample[f] = true;
            sampled.push(f);
        }
    }
    // The theorem guarantees a large sample; at tiny n the Bernoulli draw
    // can fall short of k usable points, so top up uniformly.
    let need = (2 * k).max(8).min(n);
    let mut v = 0usize;
    while sampled.len() < need && v < n {
        if !in_sample[v] {
            in_sample[v] = true;
            sampled.push(v);
        }
        v += 1;
    }

    // Phase 1b: greedy over the sample with cores.
    let first = params
        .first_center
        .unwrap_or_else(|| sampled[rng.random_range(0..sampled.len())]);
    let core_size = params.core_size(n);

    let mut centers: Vec<usize> = vec![first];
    let mut clusters: Vec<Vec<usize>> = vec![sampled.clone()];
    let mut membership: Vec<usize> = vec![usize::MAX; n];
    for &u in &sampled {
        membership[u] = 0;
    }
    let mut cores: Vec<Vec<usize>> = vec![identify_core(oracle, &clusters[0], first, core_size)];
    let mut rtildes: Vec<Vec<usize>> = vec![rtilde(&cores[0])];
    let mut is_center = vec![false; n];
    is_center[first] = true;
    if !oracle.doomed() {
        *clean = 1; // first center + core committed on real answers
    }
    // Committee-vote round buffers reused by every ClusterComp / ACount.
    let mut vote_round: Vec<[usize; 4]> = Vec::new();
    let mut vote_answers: Vec<bool> = Vec::new();

    for _ in 1..k {
        // Approx-Farthest via Max-Adv + ClusterComp.
        let items: Vec<usize> = sampled.iter().copied().filter(|&u| !is_center[u]).collect();
        let far = {
            let mut cmp = ClusterCmp {
                oracle,
                cores: &cores,
                rtildes: &rtildes,
                membership: &membership,
                threshold: params.threshold,
                round: std::mem::take(&mut vote_round),
                answers: std::mem::take(&mut vote_answers),
            };
            let far = max_adv(&items, &params.farthest, &mut cmp, rng)
                .expect("sample guaranteed to exceed k points");
            vote_round = cmp.round;
            vote_answers = cmp.answers;
            far
        };

        // Open the new cluster.
        let new_pos = centers.len();
        let old = membership[far];
        clusters[old].retain(|&u| u != far);
        centers.push(far);
        is_center[far] = true;
        clusters.push(vec![far]);
        membership[far] = new_pos;

        // Assign (Algorithm 8): ACount vote of every member. Core members
        // are movable too: the fixed core size can exceed a cluster's true
        // sampled population, in which case the committee absorbs the
        // nearest *foreign* points — exempting them would pin them to the
        // wrong cluster for good (they can never out-vote their own
        // committee seat), which breaks the Theorem 4.4 objective even
        // under an exact oracle.
        let mut moves: Vec<usize> = Vec::new();
        for j in 0..new_pos {
            let core = &cores[j];
            for &u in &clusters[j] {
                if is_center[u] {
                    continue;
                }
                if acount_with(oracle, u, far, core, &mut vote_round, &mut vote_answers)
                    > params.threshold
                {
                    moves.push(u);
                }
            }
        }
        let mut stale_cores: Vec<bool> = vec![false; new_pos];
        for &u in &moves {
            let from = membership[u];
            if cores[from].contains(&u) {
                stale_cores[from] = true;
            }
            clusters[from].retain(|&x| x != u);
            clusters[new_pos].push(u);
            membership[u] = new_pos;
        }
        // A committee that lost a member no longer represents its cluster;
        // re-elect it from the surviving membership.
        for (j, stale) in stale_cores.iter().enumerate() {
            if *stale {
                cores[j] = identify_core(oracle, &clusters[j], centers[j], core_size);
                rtildes[j] = rtilde(&cores[j]);
            }
        }

        cores.push(identify_core(oracle, &clusters[new_pos], far, core_size));
        rtildes.push(rtilde(&cores[new_pos]));
        if !oracle.doomed() {
            *clean = centers.len();
        }
    }

    // Phase 2: Assign-Final for the unsampled points.
    let mut assignment: Vec<usize> = vec![usize::MAX; n];
    for (j, cl) in clusters.iter().enumerate() {
        for &u in cl {
            assignment[u] = j;
        }
    }
    for (j, &c) in centers.iter().enumerate() {
        assignment[c] = j;
    }
    for (u, slot) in assignment.iter_mut().enumerate() {
        if *slot != usize::MAX {
            continue;
        }
        let mut cur = 0usize;
        for (t, &cand) in centers.iter().enumerate().skip(1) {
            if acount_with(
                oracle,
                u,
                cand,
                &cores[cur],
                &mut vote_round,
                &mut vote_answers,
            ) >= params.threshold
            {
                cur = t;
            }
        }
        *slot = cur;
    }

    let clustering = Clustering {
        centers,
        assignment,
    };
    clustering.validate();
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::stats::kcenter_objective;
    use nco_metric::EuclideanMetric;
    use nco_oracle::probabilistic::ProbQuadOracle;
    use nco_oracle::TrueQuadOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Four well-separated blobs of 40 points each.
    fn blobs() -> (EuclideanMetric, Vec<usize>) {
        let centers = [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)];
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for p in 0..40 {
                let a = p as f64;
                pts.push(vec![cx + (a * 0.9).sin() * 2.0, cy + (a * 1.7).cos() * 2.0]);
                labels.push(ci);
            }
        }
        (EuclideanMetric::from_points(&pts), labels)
    }

    fn cluster_purity(assignment: &[usize], labels: &[usize], k: usize) -> f64 {
        let mut correct = 0usize;
        for c in 0..k {
            let members: Vec<usize> = (0..labels.len()).filter(|&v| assignment[v] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mut counts = std::collections::HashMap::new();
            for &v in &members {
                *counts.entry(labels[v]).or_insert(0usize) += 1;
            }
            correct += counts.values().max().copied().unwrap_or(0);
        }
        correct as f64 / labels.len() as f64
    }

    #[test]
    fn identify_core_ranks_by_closeness() {
        let m = EuclideanMetric::from_points(&(0..12).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let mut o = TrueQuadOracle::new(m);
        let cluster: Vec<usize> = (0..12).collect();
        let core = identify_core(&mut o, &cluster, 0, 4);
        assert_eq!(core, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rtilde_is_a_sqrt_prefix() {
        assert_eq!(rtilde(&[9, 8, 7, 6]), vec![9, 8]);
        assert_eq!(rtilde(&[5]), vec![5]);
        assert_eq!(rtilde(&(0..16).collect::<Vec<_>>()).len(), 4);
    }

    #[test]
    fn perfect_oracle_recovers_separated_blobs() {
        let (m, labels) = blobs();
        let mut o = TrueQuadOracle::new(m.clone());
        let params = KCenterProbParams {
            first_center: Some(0),
            ..KCenterProbParams::experimental(4, 40)
        };
        let c = kcenter_prob(&params, &mut o, &mut rng(5));
        c.validate();
        let purity = cluster_purity(&c.assignment, &labels, 4);
        assert!(purity > 0.95, "purity {purity}");
        let obj = kcenter_objective(&m, &c.centers, &c.assignment);
        assert!(obj < 10.0, "objective {obj} must be intra-blob");
    }

    /// Committee sizes matter under persistent noise: a core of size `c`
    /// leaks a home-cluster point with probability `P(Binom(c, p) > 0.3c)`
    /// per iteration — the reason Theorem 4.4 proves with `gamma = 450`.
    /// `gamma = 8` saturates the sampling here, giving the maximal
    /// `8m/9`-member cores; the ablation bench sweeps this trade-off.
    #[test]
    fn noisy_oracle_still_recovers_blobs() {
        let (m, labels) = blobs();
        let trials = 10;
        let mut good = 0;
        for seed in 0..trials {
            let mut o = ProbQuadOracle::new(m.clone(), 0.15, 60 + seed);
            let params = KCenterProbParams {
                gamma: 8.0,
                ..KCenterProbParams::experimental(4, 40)
            };
            let c = kcenter_prob(&params, &mut o, &mut rng(90 + seed));
            if cluster_purity(&c.assignment, &labels, 4) > 0.9 {
                good += 1;
            }
        }
        assert!(
            good >= trials * 7 / 10,
            "only {good}/{trials} pure clusterings"
        );
    }

    #[test]
    fn theorem_4_4_objective_constant_factor() {
        let (m, _) = blobs();
        // Exact greedy reference.
        let g = super::super::gonzalez(&m, 4, Some(0));
        let g_obj = kcenter_objective(&m, &g.centers, &g.assignment);
        let trials = 8;
        let mut ok = 0;
        for seed in 0..trials {
            let mut o = ProbQuadOracle::new(m.clone(), 0.1, 700 + seed);
            let params = KCenterProbParams {
                gamma: 8.0,
                ..KCenterProbParams::experimental(4, 40)
            };
            let c = kcenter_prob(&params, &mut o, &mut rng(seed));
            let obj = kcenter_objective(&m, &c.centers, &c.assignment);
            if obj <= 8.0 * g_obj.max(1.0) {
                ok += 1;
            }
        }
        assert!(ok >= trials * 3 / 4, "{ok}/{trials} within constant factor");
    }

    #[test]
    fn all_points_assigned_and_centers_distinct() {
        let (m, _) = blobs();
        let mut o = ProbQuadOracle::new(m, 0.1, 42);
        let c = kcenter_prob(&KCenterProbParams::experimental(6, 40), &mut o, &mut rng(3));
        c.validate();
        assert_eq!(c.n(), 160);
        let mut cs = c.centers.clone();
        cs.sort_unstable();
        cs.dedup();
        assert_eq!(cs.len(), 6);
    }

    #[test]
    fn k_equals_one() {
        let (m, _) = blobs();
        let mut o = TrueQuadOracle::new(m);
        let c = kcenter_prob(&KCenterProbParams::experimental(1, 40), &mut o, &mut rng(1));
        assert_eq!(c.k(), 1);
        assert!(c.assignment.iter().all(|&a| a == 0));
    }
}
