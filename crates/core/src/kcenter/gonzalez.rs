//! Gonzalez's greedy k-center on true distances — the paper's `TDist`
//! reference (a 2-approximation of the NP-hard optimum, which is also the
//! best polynomial-time factor unless P = NP).

use super::Clustering;
use nco_metric::Metric;

/// Exact greedy k-center: repeatedly add the true farthest point as a new
/// center, then assign every point to its true closest center.
///
/// # Panics
/// Panics if `k == 0` or `k > metric.len()`.
pub fn gonzalez<M: Metric>(metric: &M, k: usize, first_center: Option<usize>) -> Clustering {
    let n = metric.len();
    assert!(k >= 1 && k <= n, "need 1 <= k <= n (k = {k}, n = {n})");
    let first = first_center.unwrap_or(0);
    assert!(first < n, "first center out of range");

    let mut centers = Vec::with_capacity(k);
    centers.push(first);
    // dist_to_center[v] = distance to the closest chosen center.
    let mut nearest_dist: Vec<f64> = (0..n).map(|v| metric.dist(v, first)).collect();
    let mut assignment: Vec<usize> = vec![0; n];

    while centers.len() < k {
        // True farthest point from the current centers.
        let far = (0..n)
            .max_by(|&a, &b| nearest_dist[a].total_cmp(&nearest_dist[b]))
            .expect("non-empty point set");
        let pos = centers.len();
        centers.push(far);
        for v in 0..n {
            let d = metric.dist(v, far);
            if d < nearest_dist[v] {
                nearest_dist[v] = d;
                assignment[v] = pos;
            }
        }
    }
    let c = Clustering {
        centers,
        assignment,
    };
    c.validate();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::stats::kcenter_objective;
    use nco_metric::{EuclideanMetric, MatrixMetric};

    #[test]
    fn line_example_puts_centers_at_extremes() {
        // Points 0, 1, 2, 10: with k = 2 starting at 0, the farthest is 10.
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]]);
        let c = gonzalez(&m, 2, Some(0));
        assert_eq!(c.centers, vec![0, 3]);
        assert_eq!(c.assignment, vec![0, 0, 0, 1]);
        assert_eq!(kcenter_objective(&m, &c.centers, &c.assignment), 2.0);
    }

    /// Example 4.1 of the paper (on the Figure 2 line): optimal centers are
    /// u and t with radius 51; greedy from w picks t (true farthest), then
    /// the radius is 51 <= 2 * OPT.
    #[test]
    fn paper_example_4_1_exact_greedy() {
        // s=0, u=51, v=101, w=102, t=202 -> indices 0..5
        let m = EuclideanMetric::from_points(&[
            vec![0.0],
            vec![51.0],
            vec![101.0],
            vec![102.0],
            vec![202.0],
        ]);
        let c = gonzalez(&m, 2, Some(3)); // start at w
        let obj = kcenter_objective(&m, &c.centers, &c.assignment);
        assert!(obj <= 2.0 * 51.0, "objective {obj} within 2x OPT");
    }

    #[test]
    fn k_equals_n_gives_zero_objective() {
        let m = MatrixMetric::from_fn(5, |i, j| (i + j) as f64);
        let c = gonzalez(&m, 5, None);
        assert_eq!(kcenter_objective(&m, &c.centers, &c.assignment), 0.0);
        let mut centers = c.centers.clone();
        centers.sort_unstable();
        assert_eq!(centers, vec![0, 1, 2, 3, 4]);
    }

    /// The classic 2-approximation guarantee, spot-checked against brute
    /// force on small instances.
    #[test]
    fn two_approximation_against_brute_force() {
        let m = EuclideanMetric::from_points(
            &(0..10)
                .map(|i| vec![((i * 7) % 10) as f64, ((i * 3) % 7) as f64])
                .collect::<Vec<_>>(),
        );
        let k = 3;
        // Brute force optimum over all center triples.
        let mut opt = f64::INFINITY;
        for a in 0..10 {
            for b in (a + 1)..10 {
                for c in (b + 1)..10 {
                    opt = opt.min(nco_metric::stats::kcenter_objective_best_assignment(
                        &m,
                        &[a, b, c],
                    ));
                }
            }
        }
        for first in 0..10 {
            let g = gonzalez(&m, k, Some(first));
            let obj = kcenter_objective(&m, &g.centers, &g.assignment);
            assert!(
                obj <= 2.0 * opt + 1e-9,
                "greedy {obj} vs opt {opt} (first {first})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn rejects_zero_k() {
        let m = MatrixMetric::from_fn(3, |_, _| 1.0);
        let _ = gonzalez(&m, 0, None);
    }
}
