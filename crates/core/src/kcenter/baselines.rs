//! k-center baselines of the paper's evaluation (Section 6.1, Table 1,
//! Figure 6):
//!
//! * [`kcenter_tour2`] — greedy k-center where Approx-Farthest is a binary
//!   tournament and assignment is a naive running minimum (one query per
//!   point per new center). This is the strategy Section 3's worst-case
//!   example shows "can be arbitrarily worse even for small error".
//! * [`kcenter_samp`] — the `Samp` baseline: greedy over a sample of
//!   `k * log2(n)` points with quadratic Count-Max farthest searches, then
//!   every remaining point is assigned by querying it against every pair
//!   of centers (MCount).
//! * [`oq_clustering`] — the *optimal cluster query* strawman of
//!   Section 6.2.2: pairwise "same cluster?" answers, positive edges,
//!   connected components. High precision / low recall behaviour comes
//!   from the oracle model (`nco_oracle::cluster_query`).

use super::adversarial::AssignedDistCmp;
use super::Clustering;
use crate::maxfind::{count_max, tournament};
use nco_oracle::cluster_query::ClusterQueryOracle;
use nco_oracle::QuadrupletOracle;
use rand::seq::SliceRandom;
use rand::Rng;

/// `Tour2` k-center: binary-tournament farthest + running-minimum assign.
///
/// # Panics
/// Panics if `k == 0` or `k > oracle.n()`.
pub fn kcenter_tour2<O, R>(
    k: usize,
    first_center: Option<usize>,
    oracle: &mut O,
    rng: &mut R,
) -> Clustering
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    assert!(k >= 1 && k <= n, "need 1 <= k <= n (k = {k}, n = {n})");
    let first = first_center.unwrap_or_else(|| rng.random_range(0..n));

    let mut centers = vec![first];
    let mut assignment = vec![0usize; n];
    let mut is_center = vec![false; n];
    is_center[first] = true;

    while centers.len() < k {
        let items: Vec<usize> = (0..n).filter(|&v| !is_center[v]).collect();
        let far = {
            let mut cmp = AssignedDistCmp {
                oracle,
                centers: &centers,
                assignment: &assignment,
            };
            tournament(&items, 2, &mut cmp, rng).expect("non-empty candidates")
        };
        let pos = centers.len();
        centers.push(far);
        is_center[far] = true;
        assignment[far] = pos;
        // Naive reassignment: one query per point against the incumbent.
        for v in 0..n {
            if is_center[v] {
                continue;
            }
            let cur = centers[assignment[v]];
            if oracle.le(far, v, cur, v) {
                assignment[v] = pos;
            }
        }
    }
    let c = Clustering {
        centers,
        assignment,
    };
    c.validate();
    c
}

/// `Samp` k-center: greedy over a `k * log2(n)` sample, then MCount
/// assignment of every point against all center pairs.
///
/// # Panics
/// Panics if `k == 0` or `k > oracle.n()`.
pub fn kcenter_samp<O, R>(
    k: usize,
    first_center: Option<usize>,
    oracle: &mut O,
    rng: &mut R,
) -> Clustering
where
    O: QuadrupletOracle,
    R: Rng + ?Sized,
{
    let n = oracle.n();
    assert!(k >= 1 && k <= n, "need 1 <= k <= n (k = {k}, n = {n})");

    // Sample k * log2(n) points (always at least k).
    let target = (k * (n.max(2) as f64).log2().ceil() as usize).clamp(k, n);
    let mut sample: Vec<usize> = (0..n).collect();
    sample.shuffle(rng);
    sample.truncate(target);
    let first = match first_center {
        Some(f) => {
            if !sample.contains(&f) {
                sample[0] = f;
            }
            f
        }
        None => sample[0],
    };

    // Greedy over the sample: Count-Max farthest, MCount assign.
    let mut centers = vec![first];
    let mut s_assign: Vec<usize> = vec![0; n]; // positions for sampled points
    let mut is_center = vec![false; n];
    is_center[first] = true;

    while centers.len() < k {
        let items: Vec<usize> = sample.iter().copied().filter(|&v| !is_center[v]).collect();
        let far = {
            let mut cmp = AssignedDistCmp {
                oracle,
                centers: &centers,
                assignment: &s_assign,
            };
            count_max(&items, &mut cmp).expect("sample larger than k")
        };
        let pos = centers.len();
        centers.push(far);
        is_center[far] = true;
        s_assign[far] = pos;
        for &v in &sample {
            if is_center[v] {
                continue;
            }
            let cur = centers[s_assign[v]];
            if oracle.le(far, v, cur, v) {
                s_assign[v] = pos;
            }
        }
    }

    // Final MCount assignment of every point against every center pair.
    let mut assignment = vec![0usize; n];
    for v in 0..n {
        if is_center[v] {
            assignment[v] = centers.iter().position(|&c| c == v).expect("is a center");
            continue;
        }
        let kk = centers.len();
        let mut wins = vec![0u32; kk];
        for a in 0..kk {
            for b in (a + 1)..kk {
                if oracle.le(centers[a], v, centers[b], v) {
                    wins[a] += 1;
                } else {
                    wins[b] += 1;
                }
            }
        }
        assignment[v] = wins
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.cmp(y.1).then(y.0.cmp(&x.0)))
            .map(|(j, _)| j)
            .expect("k >= 1");
    }
    let c = Clustering {
        centers,
        assignment,
    };
    c.validate();
    c
}

/// Uniformly samples `count` distinct record pairs (for the `Oq` baseline's
/// query budget; the paper's user study labelled 150 pairs).
pub fn sample_pairs<R: Rng + ?Sized>(n: usize, count: usize, rng: &mut R) -> Vec<(usize, usize)> {
    assert!(n >= 2, "need at least two records");
    let total = n * (n - 1) / 2;
    if count >= total {
        let mut all = Vec::with_capacity(total);
        for i in 0..n {
            for j in (i + 1)..n {
                all.push((i, j));
            }
        }
        return all;
    }
    let mut seen = std::collections::HashSet::with_capacity(count * 2);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j {
            continue;
        }
        let p = (i.min(j), i.max(j));
        if seen.insert(p) {
            out.push(p);
        }
    }
    out
}

/// The `Oq` baseline: query the given pairs against the same-cluster
/// oracle and return connected components of the positive edges as cluster
/// labels (`0..c`).
pub fn oq_clustering(oracle: &mut ClusterQueryOracle, pairs: &[(usize, usize)]) -> Vec<usize> {
    let n = oracle.n();
    let mut uf = UnionFind::new(n);
    for &(i, j) in pairs {
        if oracle.same_cluster(i, j) {
            uf.union(i, j);
        }
    }
    uf.labels()
}

/// Minimal union-find with path compression (used by `Oq`).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }

    /// Component labels compacted to `0..c` in first-seen order.
    fn labels(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut map = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for v in 0..n {
            let r = self.find(v);
            let next = map.len();
            out.push(*map.entry(r).or_insert(next));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::stats::kcenter_objective;
    use nco_metric::EuclideanMetric;
    use nco_oracle::TrueQuadOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn blobs() -> EuclideanMetric {
        let centers = [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)];
        let mut pts = Vec::new();
        for &(cx, cy) in &centers {
            for p in 0..20 {
                let a = p as f64;
                pts.push(vec![cx + (a * 0.9).sin(), cy + (a * 1.3).cos()]);
            }
        }
        EuclideanMetric::from_points(&pts)
    }

    #[test]
    fn tour2_perfect_oracle_matches_greedy_shape() {
        let m = blobs();
        let mut o = TrueQuadOracle::new(m.clone());
        let c = kcenter_tour2(3, Some(0), &mut o, &mut rng(1));
        c.validate();
        let obj = kcenter_objective(&m, &c.centers, &c.assignment);
        assert!(obj < 5.0, "objective {obj}: one center per blob expected");
    }

    #[test]
    fn samp_perfect_oracle_is_reasonable() {
        let m = blobs();
        let mut o = TrueQuadOracle::new(m.clone());
        let c = kcenter_samp(3, Some(0), &mut o, &mut rng(2));
        c.validate();
        let obj = kcenter_objective(&m, &c.centers, &c.assignment);
        assert!(obj < 60.0, "objective {obj}");
    }

    #[test]
    fn sample_pairs_distinct_and_complete() {
        let mut r = rng(3);
        let pairs = sample_pairs(10, 20, &mut r);
        assert_eq!(pairs.len(), 20);
        let mut dedup = pairs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
        let all = sample_pairs(5, 100, &mut r);
        assert_eq!(all.len(), 10); // C(5,2)
    }

    #[test]
    fn oq_with_perfect_answers_recovers_components() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        let mut o = ClusterQueryOracle::new(labels.clone(), 0.0, 0.0, 7);
        let mut r = rng(5);
        let pairs = sample_pairs(6, 15, &mut r);
        let got = oq_clustering(&mut o, &pairs);
        // Same partition up to relabelling.
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(got[i] == got[j], labels[i] == labels[j], "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn oq_low_recall_splits_clusters() {
        // With heavy false negatives and few sampled pairs, ground-truth
        // clusters shatter — the Table 1 phenomenon.
        let n = 60;
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let mut o = ClusterQueryOracle::new(labels, 0.6, 0.0, 11);
        let mut r = rng(6);
        let pairs = sample_pairs(n, 150, &mut r);
        let got = oq_clustering(&mut o, &pairs);
        let clusters = got.iter().copied().max().unwrap() + 1;
        assert!(clusters > 3, "expected shattering, got {clusters} clusters");
    }
}
