//! # criterion (offline shim)
//!
//! The build environment has no cargo registry access, so this path crate
//! stands in for the `criterion` benchmark harness. It implements the API
//! subset `crates/bench/benches/micro.rs` uses — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`criterion_group!`], [`criterion_main!`] — and reports
//! a median wall-clock time per iteration. It performs no statistical
//! analysis, saves no baselines and draws no plots; swap in the real
//! crate for publication-grade numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Hint about per-iteration setup cost (accepted for API compatibility;
/// the shim runs every batch at size 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; upstream batches many per allocation.
    SmallInput,
    /// Setup output is large.
    LargeInput,
    /// Batch size 1.
    PerIteration,
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters);
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        samples.sort_unstable();
        match samples.get(samples.len() / 2) {
            Some(median) => println!(
                "{id:<28} median {median:>12.2?} ({} samples)",
                samples.len()
            ),
            None => println!("{id:<28} no samples"),
        }
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` on fresh un-timed `setup` output each iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions
/// into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `fn main` running the
/// given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        group.bench_function("iter", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.bench_function("iter_batched", |b| {
            b.iter_batched(
                || vec![1u8; 16],
                |v| {
                    calls += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(calls >= 1);
    }
}
