//! `perfsuite` — the reproducible performance suite behind the repo's
//! perf trajectory (`BENCH_*.json`).
//!
//! Sixteen pinned, fully seeded workloads cover the paper's hot paths:
//!
//! | name | shape |
//! |---|---|
//! | `count_max_prob_n4096` | Algorithm 12 maximum over 4096 hidden values, persistent `p = 0.2` |
//! | `neighbor_n2048` | 12 farthest + 12 nearest searches (Alg. 13/15), 128-d points, persistent `p = 0.15` |
//! | `neighbor_d64_n2048` | 16 farthest + 16 nearest searches over 64-d points, persistent `p = 0.15` |
//! | `slink_n512` | Algorithm 11 single-linkage hierarchy over 512 128-d points, persistent `p = 0.05` |
//! | `slink_n1024` | counter-stream SLINK on the **shared-scaffold search plane** (PR 10): from-scratch scaffold vs cached scaffold + fan-out |
//! | `slink_n2048` | the same scaffold head-to-head at 2048 points |
//! | `slink_complete_n1024` | complete-linkage SLINK, **from-scratch sweep vs incremental merge plane + scaffolded pointer repair** (PR 5, PR 10) |
//! | `slink_complete_n2048` | the same complete-linkage head-to-head at 2048 points |
//! | `slink_crowd_n512` | single-linkage SLINK under the 3-worker crowd oracle, **scalar loop vs `le_batch` committee rounds** (PR 5) |
//! | `kcenter_n1024` | Algorithm 6 greedy 32-center over 1024 128-d points, adversarial `mu = 0.2` |
//! | `session_kcenter_n1024` | the same greedy 32-center routed through the facade's `Session` front door (zero-overhead check) |
//! | `serve_mixed_n512` | a sustained mixed request stream, **sequential solo sessions vs the concurrent serving plane** (PR 6): shared-memo backend + cross-request round coalescing |
//! | `serve_faulty_n512` | the serving plane under a seeded fault storm (PR 7): **fault-free serving vs injected faults masked by bounded retry** — answers must stay bit-identical, the overhead of masking is the measurement |
//! | `adaptive_noise_n512` | the adaptive noise plane under a misspecified rate (PR 8): **silently fixed-rate sessions vs probe + `AdaptPolicy::Escalate`** — the probing/adaptation overhead is the measurement, misspecification detection and probe-off bit-identity are the acceptance checks |
//! | `sort_n1024` | full noisy sort (skeleton insertion + polish) over 1024 hidden values, persistent `p = 0.2` (PR 9): **scalar comparator loop vs `le_batch` rounds** — bit-identical outputs and query counts, the round coalescing is the measurement |
//! | `select_n2048` | k-th selection (sample–score–narrow) over 2048 hidden values, `k = 256`, persistent `p = 0.2` (PR 9): same scalar-vs-batched contract |
//!
//! Each workload runs twice: a **baseline** configuration and an
//! **optimized** configuration. Both runs draw the same seeds; the suite
//! *verifies* that outputs are bit-identical (and, where the two
//! configurations do the same logical work, that oracle-query totals are
//! equal) before reporting, so a speedup can never come from doing
//! different work. For the `slink_n*` and `slink_complete_n*` workloads
//! the baseline is the from-scratch reference (`hier_oracle_par_scratch`
//! / `hier_oracle_scratch`) and the optimized run reuses the cached
//! scaffold/merge-plane state — there the *dendrogram equality* is the
//! decision-identity acceptance check and the query totals intentionally
//! differ (that saving is the optimization).
//!
//! Usage:
//!
//! ```text
//! perfsuite [--smoke] [--out PATH] [--check-baseline PATH]
//! ```
//!
//! `--smoke` shrinks every workload (~16x fewer queries) for CI;
//! `--out` defaults to `BENCH_PR10.json` in the current directory;
//! `--check-baseline` compares this run's query counts against a
//! committed baseline JSON and exits non-zero on any regression
//! (count > baseline) — the CI guard for the pinned workloads.

use nco_core::comparator::{Comparator, ValueCmp};
use nco_core::hier::{
    hier_oracle, hier_oracle_par_scratch, hier_oracle_par_stats, hier_oracle_scratch,
    hier_oracle_stats, Dendrogram, HierParams, Linkage,
};
use nco_core::kcenter::{kcenter_adv, KCenterAdvParams};
use nco_core::maxfind::{max_prob, AdvParams, ProbParams};
use nco_core::neighbor::{farthest_adv, nearest_adv};
use nco_core::order::{select_prob, sort_prob, OrderProbParams};
use nco_metric::{CachedMetric, EuclideanMetric, SquareMetric};
use nco_oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
use nco_oracle::counting::{Counting, SharedCounting};
use nco_oracle::probabilistic::{ProbQuadOracle, ProbValueOracle};
use rand::rngs::{CounterRng, StdRng};
use rand::{Rng, RngCore, SeedableRng};
use std::time::Instant;

struct WorkloadReport {
    name: String,
    n: usize,
    reps: usize,
    baseline_ms: f64,
    optimized_ms: f64,
    queries: u64,
    /// Worker threads the optimized configuration fanned out across
    /// (1 = serial; multi-host bench trajectories compare through this).
    threads: usize,
    optimization: &'static str,
    outputs_match: bool,
    /// Free-form extra measurements (latency percentiles, backend
    /// tallies); rendered into the JSON only when present. Must never
    /// contain a quoted JSON key (`"x":`) — `extract_workloads` scans
    /// the raw text.
    detail: Option<String>,
}

impl WorkloadReport {
    fn speedup(&self) -> f64 {
        if self.optimized_ms > 0.0 {
            self.baseline_ms / self.optimized_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Per-rep seeds derived from one workload seed through a counter stream —
/// deterministic, and independent across reps and workloads.
fn rep_seeds(workload_seed: u64, reps: usize) -> Vec<(u64, u64)> {
    let mut stream = CounterRng::new(0xBE5C_0BE5, workload_seed);
    (0..reps)
        .map(|_| (stream.next_u64(), stream.next_u64()))
        .collect()
}

/// Seeded Gaussian-ish mixture in `dim` dimensions: `k` well-spread
/// cluster centers, points scattered around them.
fn mixture_points(n: usize, dim: usize, k: usize, seed: u64) -> EuclideanMetric {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dim).map(|_| rng.random_range(-50.0..50.0)).collect())
        .collect();
    let mut flat = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = &centers[i % k];
        for &coord in c.iter() {
            flat.push(coord + rng.random_range(-4.0..4.0));
        }
    }
    EuclideanMetric::from_flat(flat, dim)
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

// ---------------------------------------------------------------------
// Workload 1: Count-Max-Prob over hidden values.
// ---------------------------------------------------------------------

fn run_count_max_prob(n: usize, reps: usize) -> WorkloadReport {
    let mut values: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    {
        use rand::seq::SliceRandom;
        values.shuffle(&mut StdRng::seed_from_u64(0xC0DE));
    }
    let params = ProbParams::experimental();
    let seeds = rep_seeds(0xA1, reps);

    // Baseline: the serial scoring rounds.
    let start = Instant::now();
    let mut queries = 0u64;
    let mut serial_winners = Vec::with_capacity(reps);
    for &(oracle_seed, rng_seed) in &seeds {
        let mut oracle = Counting::new(ProbValueOracle::new(values.clone(), 0.2, oracle_seed));
        let items: Vec<usize> = (0..n).collect();
        let w = max_prob(
            &items,
            &params,
            &mut ValueCmp::new(&mut oracle),
            &mut StdRng::seed_from_u64(rng_seed),
        );
        queries += oracle.queries();
        serial_winners.push(w);
    }
    let baseline_ms = ms(start);

    // Optimized: thread fan-out of each scoring round when compiled with
    // `parallel` *and* more than one worker is available (bit-identical
    // to serial; with one core, the serial engine — already the fastest
    // single-thread shape — runs instead).
    let fan_out = cfg!(feature = "parallel") && threads() > 1;
    let start = Instant::now();
    let mut opt_queries = 0u64;
    let mut opt_winners = Vec::with_capacity(reps);
    for &(oracle_seed, rng_seed) in &seeds {
        let items: Vec<usize> = (0..n).collect();
        #[cfg(feature = "parallel")]
        if fan_out {
            use nco_core::parallel::{default_threads, AtomicCountingCmp, SharedValueCmp};
            let oracle = ProbValueOracle::new(values.clone(), 0.2, oracle_seed);
            let cmp = AtomicCountingCmp::new(SharedValueCmp::new(&oracle));
            let w = nco_core::maxfind::max_prob_par(
                &items,
                &params,
                &cmp,
                &mut StdRng::seed_from_u64(rng_seed),
                default_threads(),
            );
            opt_queries += cmp.calls();
            opt_winners.push(w);
            continue;
        }
        let mut oracle = Counting::new(ProbValueOracle::new(values.clone(), 0.2, oracle_seed));
        let w = max_prob(
            &items,
            &params,
            &mut ValueCmp::new(&mut oracle),
            &mut StdRng::seed_from_u64(rng_seed),
        );
        opt_queries += oracle.queries();
        opt_winners.push(w);
    }
    let optimized_ms = ms(start);

    WorkloadReport {
        name: format!("count_max_prob_n{n}"),
        n,
        reps,
        baseline_ms,
        optimized_ms,
        queries,
        threads: if fan_out { threads() } else { 1 },
        optimization: if fan_out {
            "std::thread::scope fan-out of scoring rounds (bit-identical)"
        } else {
            "serial rounds (single worker available; fan-out needs --features parallel and >1 core)"
        },
        outputs_match: serial_winners == opt_winners && queries == opt_queries,
        detail: None,
    }
}

// ---------------------------------------------------------------------
// Workloads 2 & 3: farthest/nearest neighbour searches (128-d and 64-d).
// ---------------------------------------------------------------------

fn neighbor_searches<O: nco_oracle::QuadrupletOracle>(
    oracle: &mut O,
    n: usize,
    searches: usize,
    params: &AdvParams,
    rng_seed: u64,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(2 * searches);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    for s in 0..searches {
        let q = (s * 97) % n;
        out.push(farthest_adv(oracle, q, params, &mut rng).expect("n >= 2"));
        out.push(nearest_adv(oracle, q, params, &mut rng).expect("n >= 2"));
    }
    out
}

fn run_neighbor(
    name_prefix: &str,
    n: usize,
    dim: usize,
    searches: usize,
    workload_seed: (u64, u64),
) -> WorkloadReport {
    let metric = mixture_points(n, dim, 16, workload_seed.0);
    let params = AdvParams::with_confidence(0.1);
    let (oracle_seed, rng_seed) = rep_seeds(workload_seed.1, 1)[0];

    // Baseline: every query re-computes two `dim`-d distances.
    let start = Instant::now();
    let mut oracle = Counting::new(ProbQuadOracle::new(metric.clone(), 0.15, oracle_seed));
    let base_out = neighbor_searches(&mut oracle, n, searches, &params, rng_seed);
    let queries = oracle.queries();
    let baseline_ms = ms(start);

    // Optimized: DistCache — the searches are anchored at a handful of
    // query points, so only ~searches * n of the n^2/2 pairs are ever
    // touched; each is evaluated once and every le_batch round after that
    // is table lookups + noise hashes. (PR 2 materialised the full
    // condensed matrix here; the cache replaces ~n^2/2 eager evaluations
    // with only the touched ones, which is where the PR 3 speedup on this
    // workload comes from.)
    let start = Instant::now();
    let cached = CachedMetric::new(metric);
    let mut oracle = Counting::new(ProbQuadOracle::new(&cached, 0.15, oracle_seed));
    let opt_out = neighbor_searches(&mut oracle, n, searches, &params, rng_seed);
    let optimized_ms = ms(start);

    WorkloadReport {
        name: format!("{name_prefix}_n{n}"),
        n,
        reps: searches,
        baseline_ms,
        optimized_ms,
        queries,
        threads: 1,
        optimization: "DistCache: touched-pair distance memoisation behind batched oracle rounds",
        outputs_match: base_out == opt_out && queries == oracle.queries(),
        detail: None,
    }
}

// ---------------------------------------------------------------------
// Workload 4: SLINK agglomeration (serial engine, dense materialisation).
// ---------------------------------------------------------------------

fn run_slink(n: usize) -> WorkloadReport {
    let dim = 128;
    let metric = mixture_points(n, dim, 8, 0x511A);
    let params = HierParams::experimental(Linkage::Single);
    let (oracle_seed, rng_seed) = rep_seeds(0x51, 1)[0];

    let start = Instant::now();
    let mut oracle = Counting::new(ProbQuadOracle::new(metric.clone(), 0.05, oracle_seed));
    let base: Dendrogram = hier_oracle(&params, &mut oracle, &mut StdRng::seed_from_u64(rng_seed));
    let queries = oracle.queries();
    let baseline_ms = ms(start);

    let start = Instant::now();
    let dense = SquareMetric::from_metric(&metric);
    let mut oracle = Counting::new(ProbQuadOracle::new(dense, 0.05, oracle_seed));
    let opt = hier_oracle(&params, &mut oracle, &mut StdRng::seed_from_u64(rng_seed));
    let optimized_ms = ms(start);

    WorkloadReport {
        name: format!("slink_n{n}"),
        n,
        reps: 1,
        baseline_ms,
        optimized_ms,
        queries,
        threads: 1,
        optimization: "full-grid materialisation (both configs run the incremental merge plane)",
        outputs_match: base == opt && queries == oracle.queries(),
        detail: None,
    }
}

// ---------------------------------------------------------------------
// Workload 5: counter-stream SLINK — the parallel-initialisation variant.
// ---------------------------------------------------------------------

fn run_slink_par(n: usize) -> WorkloadReport {
    let dim = 64;
    let metric = mixture_points(n, dim, 8, 0x511B);
    // PR 10: both configurations run on the shared-scaffold search plane —
    // one bucket deal + one persistent sample shared by all row-anchored
    // searches (initial pointers and pointer repairs alike).
    let params = HierParams::experimental(Linkage::Single).scaffolded();
    let (oracle_seed, rng_seed) = rep_seeds(0x52, 1)[0];
    let dense = SquareMetric::from_metric(&metric);

    // Baseline: the from-scratch reference — identical structure
    // evolution, but every sweep replays every bucket duel and re-asks
    // every pool pair instead of reading the caches. Under persistent
    // noise the two are decision-identical by construction, which is what
    // `outputs_match` verifies below.
    let start = Instant::now();
    let mut oracle = SharedCounting::new(ProbQuadOracle::new(dense.clone(), 0.05, oracle_seed));
    let base = hier_oracle_par_scratch(
        &params,
        &mut oracle,
        &mut StdRng::seed_from_u64(rng_seed),
        1,
    );
    let scratch_queries = oracle.queries();
    let baseline_ms = ms(start);

    // Optimized: the cached scaffold (row sweeps reuse bracket winners,
    // pair outcomes and Count-Min scores; merges dirty only the touched
    // buckets) with the initial row sweeps fanned out across all
    // available workers — bit-identical at any worker count because the
    // deal is drawn serially and the sweeps consume no randomness.
    let start = Instant::now();
    let mut oracle = SharedCounting::new(ProbQuadOracle::new(dense, 0.05, oracle_seed));
    let (opt, stats) = hier_oracle_par_stats(
        &params,
        &mut oracle,
        &mut StdRng::seed_from_u64(rng_seed),
        threads(),
    );
    let optimized_ms = ms(start);

    WorkloadReport {
        name: format!("slink_n{n}"),
        n,
        reps: 1,
        baseline_ms,
        optimized_ms,
        // Report the *optimized* tally (the number worth guarding); the
        // from-scratch baseline deliberately issues more — the saving is
        // the PR 10 optimization.
        queries: oracle.queries(),
        threads: threads(),
        optimization:
            "shared-scaffold search plane: cached row sweeps + counter-stream fan-out (PR 10)",
        outputs_match: base == opt && oracle.queries() <= scratch_queries,
        detail: Some(format!(
            "scratch_queries={scratch_queries} scaffold_hits={} repair_contests={} \
             repair_fallbacks={}",
            stats.scaffold_hits, stats.repair_contests, stats.repair_fallbacks,
        )),
    }
}

// ---------------------------------------------------------------------
// Workload 6: complete-linkage SLINK — from-scratch sweep vs the
// incremental merge plane (the PR 5 tentpole, measured head to head).
// ---------------------------------------------------------------------

fn run_slink_complete(n: usize) -> WorkloadReport {
    let dim = 64;
    let metric = mixture_points(n, dim, 8, 0x511C);
    // PR 10: complete linkage recomputes every stale pointer after every
    // merge, so its repairs dominate the query bill — the scaffold turns
    // each repair into a dirty-set re-contest over cached winner
    // structure (with a full-row fallback on a dirty majority).
    let params = HierParams::experimental(Linkage::Complete).scaffolded();
    let (oracle_seed, rng_seed) = rep_seeds(0x53, 1)[0];
    let dense = SquareMetric::from_metric(&metric);

    // Baseline: the from-scratch reference — every merge re-runs the full
    // closest-pair sweep over the (persistent-random) winner structure
    // and every pointer repair replays its full row.
    let start = Instant::now();
    let mut oracle = Counting::new(ProbQuadOracle::new(dense.clone(), 0.05, oracle_seed));
    let base = hier_oracle_scratch(&params, &mut oracle, &mut StdRng::seed_from_u64(rng_seed));
    let scratch_queries = oracle.queries();
    let baseline_ms = ms(start);

    // Optimized: the incremental merge plane (only dirty candidates
    // re-contest the cached incumbent structure) + the cached scaffold
    // for every pointer repair.
    let start = Instant::now();
    let mut oracle = Counting::new(ProbQuadOracle::new(dense, 0.05, oracle_seed));
    let (opt, stats) =
        hier_oracle_stats(&params, &mut oracle, &mut StdRng::seed_from_u64(rng_seed));
    let optimized_ms = ms(start);

    WorkloadReport {
        name: format!("slink_complete_n{n}"),
        n,
        reps: 1,
        baseline_ms,
        optimized_ms,
        // Report the *optimized* tally (the number worth guarding); the
        // from-scratch baseline deliberately issues more — the saving is
        // the optimization. outputs_match is the decision-identity check.
        queries: oracle.queries(),
        threads: 1,
        optimization:
            "incremental merge plane + scaffolded pointer repair vs from-scratch sweep (PR 5, PR 10)",
        outputs_match: base == opt && oracle.queries() <= scratch_queries,
        detail: Some(format!(
            "scratch_queries={scratch_queries} scaffold_hits={} repair_contests={} \
             repair_fallbacks={}",
            stats.scaffold_hits, stats.repair_contests, stats.repair_fallbacks,
        )),
    }
}

// ---------------------------------------------------------------------
// Workload 7: SLINK under the crowd oracle — scalar committee loop vs
// the `le_batch` override's batched committee rounds.
// ---------------------------------------------------------------------

/// Defeats an oracle's `le_batch` override: only `le` is forwarded, so
/// rounds fall back to the trait's scalar loop — the pre-override shape.
struct ScalarRounds<O>(O);

impl<O: nco_oracle::QuadrupletOracle> nco_oracle::QuadrupletOracle for ScalarRounds<O> {
    fn n(&self) -> usize {
        self.0.n()
    }
    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.0.le(a, b, c, d)
    }
}

impl<O: nco_oracle::PersistentNoise> nco_oracle::PersistentNoise for ScalarRounds<O> {}

fn run_slink_crowd(n: usize) -> WorkloadReport {
    use nco_oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
    let dim = 128;
    // Deliberately lazy distances: every committee decision re-derives its
    // two 128-d distances unless the round amortises them, which is
    // exactly what the override is for.
    let metric = mixture_points(n, dim, 8, 0x511D);
    let params = HierParams::experimental(Linkage::Single);
    let (oracle_seed, rng_seed) = rep_seeds(0x54, 1)[0];
    let profile = AccuracyProfile::caltech_like();

    // Baseline: the scalar committee loop (override defeated).
    let start = Instant::now();
    let mut oracle = Counting::new(ScalarRounds(CrowdQuadOracle::new(
        metric.clone(),
        profile,
        3,
        oracle_seed,
    )));
    let base = hier_oracle(&params, &mut oracle, &mut StdRng::seed_from_u64(rng_seed));
    let queries = oracle.queries();
    let baseline_ms = ms(start);

    // Optimized: the crowd `le_batch` override — per-round distance dedup
    // and committee-answer dedup, worker draws in serial query order.
    let start = Instant::now();
    let mut oracle = Counting::new(CrowdQuadOracle::new(metric, profile, 3, oracle_seed));
    let opt = hier_oracle(&params, &mut oracle, &mut StdRng::seed_from_u64(rng_seed));
    let optimized_ms = ms(start);

    WorkloadReport {
        name: format!("slink_crowd_n{n}"),
        n,
        reps: 1,
        baseline_ms,
        optimized_ms,
        queries,
        threads: 1,
        optimization: "crowd le_batch override: per-round distance + committee-answer dedup",
        outputs_match: base == opt && queries == oracle.queries(),
        detail: None,
    }
}

// ---------------------------------------------------------------------
// Workload 6: greedy k-center under adversarial noise.
// ---------------------------------------------------------------------

fn run_kcenter(n: usize, k: usize, reps: usize) -> WorkloadReport {
    let dim = 128;
    let metric = mixture_points(n, dim, k, 0x6C3E);
    let seeds = rep_seeds(0x6C, reps);

    let start = Instant::now();
    let mut queries = 0u64;
    let mut base_out = Vec::with_capacity(reps);
    for &(_, rng_seed) in &seeds {
        let mut oracle = Counting::new(AdversarialQuadOracle::new(
            metric.clone(),
            0.2,
            InvertAdversary,
        ));
        let c = kcenter_adv(
            &KCenterAdvParams::experimental(k),
            &mut oracle,
            &mut StdRng::seed_from_u64(rng_seed),
        );
        queries += oracle.queries();
        base_out.push((c.centers, c.assignment));
    }
    let baseline_ms = ms(start);

    // Optimized: one DistCache shared across the reps (the realistic
    // shape — many clustering requests over one corpus). The queries only
    // touch (point, center) pairs, a small slice of the triangle PR 2
    // paid n^2/2 eager evaluations to materialise.
    let start = Instant::now();
    let cached = CachedMetric::new(metric);
    let mut opt_queries = 0u64;
    let mut opt_out = Vec::with_capacity(reps);
    for &(_, rng_seed) in &seeds {
        let mut oracle = Counting::new(AdversarialQuadOracle::new(&cached, 0.2, InvertAdversary));
        let c = kcenter_adv(
            &KCenterAdvParams::experimental(k),
            &mut oracle,
            &mut StdRng::seed_from_u64(rng_seed),
        );
        opt_queries += oracle.queries();
        opt_out.push((c.centers, c.assignment));
    }
    let optimized_ms = ms(start);

    WorkloadReport {
        name: format!("kcenter_n{n}"),
        n,
        reps,
        baseline_ms,
        optimized_ms,
        queries,
        threads: 1,
        optimization: "DistCache shared across reps: touched (point, center) pairs only",
        outputs_match: base_out == opt_out && queries == opt_queries,
        detail: None,
    }
}

// ---------------------------------------------------------------------
// Workload 7: the same greedy k-center routed through the facade's
// `Session` front door — the zero-overhead proof for the engine API.
// ---------------------------------------------------------------------

fn run_session_kcenter(n: usize, k: usize, reps: usize) -> WorkloadReport {
    use noisy_oracle::data::AnyMetric;
    use noisy_oracle::{Engine, Noise, Session, Task};

    let dim = 128;
    let metric = mixture_points(n, dim, k, 0x6C3E);
    // Same rep seeds as `kcenter_n1024`: this workload's baseline is
    // exactly that workload's optimized configuration, so its query
    // count must reproduce bit-for-bit across the two reports.
    let seeds = rep_seeds(0x6C, reps);

    // Baseline: the direct call over a shared DistCache (PR 3's optimized
    // shape of the kcenter workload).
    let start = Instant::now();
    let cached = CachedMetric::new(metric.clone());
    let mut queries = 0u64;
    let mut base_out = Vec::with_capacity(reps);
    for &(_, rng_seed) in &seeds {
        let mut oracle = Counting::new(AdversarialQuadOracle::new(&cached, 0.2, InvertAdversary));
        let c = kcenter_adv(
            &KCenterAdvParams::experimental(k),
            &mut oracle,
            &mut StdRng::seed_from_u64(rng_seed),
        );
        queries += oracle.queries();
        base_out.push((c.centers, c.assignment));
    }
    let baseline_ms = ms(start);

    // "Optimized": the identical runs through `Session::run` on one
    // shared `Engine`. The facade must add nothing — same answers, same
    // query counts (checked below via outputs_match), wall time within
    // noise of the direct loop.
    let start = Instant::now();
    let engine = Engine::from_metric(AnyMetric::Euclidean(metric), true);
    let mut opt_queries = 0u64;
    let mut opt_out = Vec::with_capacity(reps);
    for &(_, rng_seed) in &seeds {
        let session = Session::builder()
            .engine(engine.clone())
            .noise(Noise::Adversarial { mu: 0.2 })
            .seed(rng_seed)
            .build()
            .expect("valid session configuration");
        let outcome = session
            .run(Task::KCenter { k })
            .expect("unbudgeted run cannot fail");
        let c = outcome
            .answer
            .clustering()
            .expect("KCenter returns a clustering")
            .clone();
        opt_queries += outcome.report.queries;
        opt_out.push((c.centers, c.assignment));
    }
    let optimized_ms = ms(start);

    WorkloadReport {
        name: format!("session_kcenter_n{n}"),
        n,
        reps,
        baseline_ms,
        optimized_ms,
        queries,
        threads: 1,
        optimization: "Session front door over a shared Engine (zero-overhead facade check)",
        outputs_match: base_out == opt_out && queries == opt_queries,
        detail: None,
    }
}

// ---------------------------------------------------------------------
// Workload 10: the concurrent serving plane under a sustained mixed
// request stream (the PR 6 tentpole, measured head to head).
// ---------------------------------------------------------------------

fn run_serve_mixed(n: usize, batches: usize) -> WorkloadReport {
    use noisy_oracle::data::AnyMetric;
    use noisy_oracle::{Engine, Noise, Request, Server, Session, Task};

    let dim = 64;
    let metric = mixture_points(n, dim, 8, 0x5E12);
    let noise = Noise::Probabilistic {
        p: 0.1,
        seed: 0x5EED,
    };
    // A realistic stream: nearest/farthest probes anchored at a rotating
    // handful of query points plus periodic clustering requests. Seeds
    // repeat across batches, so the stream re-asks earlier questions —
    // the shape cross-request memoisation exists for.
    let requests: Vec<Request> = (0..batches)
        .flat_map(|b| {
            let seed = 100 + (b % 3) as u64;
            [
                Request {
                    task: Task::Nearest { q: (b * 37) % 5 },
                    seed,
                },
                Request {
                    task: Task::Farthest { q: (b * 53) % 7 },
                    seed: seed + 7,
                },
                Request {
                    task: Task::KCenter { k: 8 },
                    seed: seed + 13,
                },
            ]
        })
        .collect();

    // Baseline: the pre-serving shape — each request is a solo
    // `Session::run`, sequentially, over one shared engine.
    let start = Instant::now();
    let engine = Engine::from_metric(AnyMetric::Euclidean(metric.clone()), true);
    let mut solo = Vec::with_capacity(requests.len());
    let mut base_walls = Vec::with_capacity(requests.len());
    for r in &requests {
        let outcome = Session::builder()
            .engine(engine.clone())
            .noise(noise)
            .seed(r.seed)
            .build()
            .expect("valid session configuration")
            .run(r.task)
            .expect("unbudgeted run cannot fail");
        base_walls.push(outcome.report.wall.as_secs_f64() * 1e3);
        solo.push(outcome);
    }
    let baseline_ms = ms(start);
    let queries: u64 = solo.iter().map(|o| o.report.queries).sum();

    // Optimized: the same stream submitted up front to the serving
    // plane — a worker pool over one memoised backend, concurrent
    // rounds coalesced into shared batches. Per-request answers and
    // bills stay bit-identical to the solo runs (checked below); the
    // backend answers every cross-request repeat from the shared memo.
    // Worker pool scaled to the host (like every fan-out workload): on a
    // single-core host one worker drains the stream and the win is the
    // shared backend memo alone; with real cores the pool overlaps
    // requests and the coalescer merges their concurrent rounds.
    let workers = host_logical_cores().min(4);
    let start = Instant::now();
    let template = Session::builder()
        .engine(Engine::from_metric(AnyMetric::Euclidean(metric), true))
        .noise(noise)
        .build()
        .expect("valid session configuration");
    let server = Server::builder(template)
        .workers(workers)
        .queue(requests.len())
        .build()
        .expect("valid server configuration");
    let handles: Vec<_> = requests
        .iter()
        .map(|&r| server.submit(r).expect("queue sized to the stream"))
        .collect();
    let served: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("unbudgeted request cannot fail"))
        .collect();
    let stats = server.shutdown();
    let optimized_ms = ms(start);

    let identical = requests.len() == served.len()
        && solo.iter().zip(&served).all(|(s, o)| {
            s.answer == o.answer
                && s.report.queries == o.report.queries
                && s.report.rounds == o.report.rounds
        });

    let mut serve_walls: Vec<f64> = served
        .iter()
        .map(|o| o.report.wall.as_secs_f64() * 1e3)
        .collect();
    serve_walls.sort_by(f64::total_cmp);
    base_walls.sort_by(f64::total_cmp);
    let pct = |sorted: &[f64], q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    let per_request = |total: u64| total as f64 / requests.len() as f64;

    WorkloadReport {
        name: format!("serve_mixed_n{n}"),
        n,
        reps: requests.len(),
        baseline_ms,
        optimized_ms,
        queries,
        threads: workers,
        optimization: if workers > 1 {
            "concurrent serving plane: worker pool + shared-memo backend + coalesced rounds"
        } else {
            "serving plane on one worker: shared-memo backend (pool overlap needs >1 core)"
        },
        // The serving plane must not change what any single request
        // computes or is billed — and the shared backend must actually
        // save work on the wire (strictly fewer oracle queries than the
        // requests' solo bills sum to).
        outputs_match: identical && stats.backend_queries < queries,
        detail: Some(format!(
            "solo_p50_ms={:.3} solo_p99_ms={:.3} served_p50_ms={:.3} served_p99_ms={:.3} \
             queries_per_request_solo={:.1} queries_per_request_backend={:.1} \
             backend_memo_hits={} coalesced_rounds={}",
            pct(&base_walls, 0.50),
            pct(&base_walls, 0.99),
            pct(&serve_walls, 0.50),
            pct(&serve_walls, 0.99),
            per_request(queries),
            per_request(stats.backend_queries),
            stats.memo_hits,
            stats.coalesced_rounds,
        )),
    }
}

// ---------------------------------------------------------------------
// Workload 11: the serving plane under a seeded fault storm (PR 7).
// ---------------------------------------------------------------------

fn run_serve_faulty(n: usize, batches: usize) -> WorkloadReport {
    use noisy_oracle::data::AnyMetric;
    use noisy_oracle::{Engine, FaultPlan, Noise, Request, RetryPolicy, Server, Session, Task};

    let dim = 64;
    let metric = mixture_points(n, dim, 8, 0xFA17);
    let noise = Noise::Probabilistic {
        p: 0.1,
        seed: 0xFEED,
    };
    let requests: Vec<Request> = (0..batches)
        .flat_map(|b| {
            let seed = 300 + (b % 3) as u64;
            [
                Request {
                    task: Task::Nearest { q: (b * 29) % 5 },
                    seed,
                },
                Request {
                    task: Task::KCenter { k: 8 },
                    seed: seed + 11,
                },
            ]
        })
        .collect();

    let serve = |plan: Option<FaultPlan>| {
        let mut builder = Session::builder()
            .engine(Engine::from_metric(
                AnyMetric::Euclidean(metric.clone()),
                true,
            ))
            .noise(noise);
        if let Some(plan) = plan {
            builder = builder.fault_plan(plan).retry_policy(RetryPolicy::new(12));
        }
        let template = builder.build().expect("valid session configuration");
        let server = Server::builder(template)
            .workers(host_logical_cores().min(4))
            .queue(requests.len())
            .build()
            .expect("valid server configuration");
        let handles: Vec<_> = requests
            .iter()
            .map(|&r| server.submit(r).expect("queue sized to the stream"))
            .collect();
        let outcomes: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("masked faults cannot fail a request"))
            .collect();
        (outcomes, server.shutdown())
    };

    // Baseline: the fault-free serving plane from workload 10.
    let start = Instant::now();
    let (clean, clean_stats) = serve(None);
    let baseline_ms = ms(start);
    let queries: u64 = clean.iter().map(|o| o.report.queries).sum();

    // Optimized configuration (here: the *robust* configuration): the
    // same stream under a seeded storm of transients, stalls, burst
    // outages and dead worker lanes, every fault masked by bounded
    // retry. The acceptance check is the PR 7 guarantee — answers stay
    // bit-identical to the fault-free run, and the storm genuinely
    // exercised the retry path.
    let plan = FaultPlan::new(0xFA57)
        .transient(0.04)
        .stalls(0.02, 200)
        .outages(2048, 3)
        .dead_workers(16, 1);
    let start = Instant::now();
    let (faulty, faulty_stats) = serve(Some(plan));
    let optimized_ms = ms(start);

    let identical =
        clean.len() == faulty.len() && clean.iter().zip(&faulty).all(|(c, f)| c.answer == f.answer);
    let masked = faulty_stats.retries > 0
        && faulty_stats.faults_masked > 0
        && faulty_stats.panics == 0
        && faulty_stats.deadline_kills == 0;
    let faulty_bill: u64 = faulty.iter().map(|o| o.report.queries).sum();

    WorkloadReport {
        name: format!("serve_faulty_n{n}"),
        n,
        reps: requests.len(),
        baseline_ms,
        optimized_ms,
        queries,
        threads: host_logical_cores().min(4),
        optimization:
            "fault plane: seeded injection fully masked by bounded retry, answers bit-identical",
        outputs_match: identical && masked && faulty_bill >= queries,
        detail: Some(format!(
            "retries={} faults_masked={} bill_clean={} bill_faulty={} \
             backend_queries_clean={} backend_queries_faulty={}",
            faulty_stats.retries,
            faulty_stats.faults_masked,
            queries,
            faulty_bill,
            clean_stats.backend_queries,
            faulty_stats.backend_queries,
        )),
    }
}

// ---------------------------------------------------------------------
// Workload 12: the adaptive noise plane under a misspecified rate (PR 8).
// ---------------------------------------------------------------------

fn run_adaptive_noise(n: usize, reps: usize) -> WorkloadReport {
    use noisy_oracle::{AdaptPolicy, NcoError, Noise, Session, Task};

    let values: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    let p = 0.40; // the real (persistent) flip rate
    let assumed = 0.20; // the rate every session's parameters are derived for
    let seeds = rep_seeds(0xAD, reps);

    let build = |noise_seed: u64, rng_seed: u64, probe: Option<f64>, adapt: bool| {
        let mut b = Session::builder()
            .values(values.clone())
            .noise(Noise::Probabilistic {
                p,
                seed: noise_seed,
            })
            .assume_noise_rate(assumed)
            .seed(rng_seed);
        if let Some(rate) = probe {
            b = b.probe_noise(rate);
        }
        if adapt {
            b = b.adapt_noise(AdaptPolicy::Escalate);
        }
        b.build().expect("valid session configuration")
    };
    let deficit = |item: usize| n - 1 - item;

    // Baseline: silently misspecified fixed-rate sessions. They
    // complete — on repetition parameters derived for half the real
    // rate — and never learn anything is wrong.
    let start = Instant::now();
    let mut fixed = Vec::with_capacity(reps);
    for &(noise_seed, rng_seed) in &seeds {
        let o = build(noise_seed, rng_seed, None, false)
            .run(Task::Max)
            .expect("unguarded run cannot fail");
        fixed.push(o);
    }
    let baseline_ms = ms(start);
    let fixed_deficit: usize = fixed
        .iter()
        .map(|o| deficit(o.answer.item().expect("Max returns an item")))
        .sum();

    // Robust configuration: billed probe triangles estimate the live
    // rate, the guard detects the misspecification, and `Escalate`
    // re-derives the parameters and re-runs on the spot. The overhead of
    // probing + the escalated attempt is the measurement.
    let start = Instant::now();
    let mut adaptive = Vec::with_capacity(reps);
    for &(noise_seed, rng_seed) in &seeds {
        let o = build(noise_seed, rng_seed, Some(0.10), true)
            .run(Task::Max)
            .expect("adaptive run recovers instead of failing");
        adaptive.push(o);
    }
    let optimized_ms = ms(start);
    let adaptive_deficit: usize = adaptive
        .iter()
        .map(|o| deficit(o.answer.item().expect("Max returns an item")))
        .sum();
    let probes: u64 = adaptive.iter().map(|o| o.report.probes.unwrap_or(0)).sum();
    let queries: u64 = adaptive.iter().map(|o| o.report.queries).sum();
    let adapted = adaptive
        .iter()
        .all(|o| o.report.adaptations == 1 && o.report.probes.is_some_and(|b| b > 0));

    // Acceptance 1: the same probed configuration without the adaptive
    // policy must detect the 2x misspecification and fail typed.
    let (noise_seed, rng_seed) = seeds[0];
    let guard_fires = matches!(
        build(noise_seed, rng_seed, Some(0.10), false).run(Task::Max),
        Err(NcoError::NoiseMisspecified { .. })
    );

    // Acceptance 2: `probe_noise(0.0)` is bit-identical to never
    // enabling the layer — same answers, same query/round meters.
    let probe_off = build(noise_seed, rng_seed, Some(0.0), false)
        .run(Task::Max)
        .expect("probe-off run cannot fail");
    let probe_off_identical = probe_off.answer == fixed[0].answer
        && probe_off.report.queries == fixed[0].report.queries
        && probe_off.report.rounds == fixed[0].report.rounds
        && probe_off.report.probes.is_none();

    WorkloadReport {
        name: format!("adaptive_noise_n{n}"),
        n,
        reps,
        baseline_ms,
        optimized_ms,
        queries,
        threads: 1,
        optimization:
            "online probe estimation + misspecification guard + Escalate re-derivation (PR 8)",
        outputs_match: adapted && guard_fires && probe_off_identical,
        detail: Some(format!(
            "true_p={p} assumed_p={assumed} probes={probes} \
             fixed_rank_deficit={fixed_deficit} adaptive_rank_deficit={adaptive_deficit}",
        )),
    }
}

// ---------------------------------------------------------------------
// Workloads 13 & 14: the ordering subsystem (PR 9) — the same engine
// driven scalar (one oracle query per pair) vs through le_batch rounds.
// ---------------------------------------------------------------------

/// A deliberately unbatched value comparator: every pair reaches the
/// oracle through scalar `le`, one query at a time (the trait-default
/// `le_round` loop). The `le_batch` contract pins batched answers to the
/// scalar sequence, so the optimized run must match bit-for-bit in both
/// outputs and query counts.
struct ScalarValueCmp<'a, O> {
    oracle: &'a mut O,
}

impl<O: nco_oracle::ComparisonOracle> Comparator<usize> for ScalarValueCmp<'_, O> {
    fn le(&mut self, a: usize, b: usize) -> bool {
        self.oracle.le(a, b)
    }
    fn doomed(&self) -> bool {
        self.oracle.doomed()
    }
}

fn shuffled_values(n: usize, seed: u64) -> Vec<f64> {
    use rand::seq::SliceRandom;
    let mut values: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    values.shuffle(&mut StdRng::seed_from_u64(seed));
    values
}

fn run_sort(n: usize, reps: usize) -> WorkloadReport {
    let values = shuffled_values(n, 0x50F7);
    let params = OrderProbParams::experimental();
    let seeds = rep_seeds(0x50, reps);
    let items: Vec<usize> = (0..n).collect();

    // Baseline: scalar comparator loop.
    let start = Instant::now();
    let mut queries = 0u64;
    let mut scalar_orders = Vec::with_capacity(reps);
    for &(oracle_seed, _) in &seeds {
        let mut oracle = Counting::new(ProbValueOracle::new(values.clone(), 0.2, oracle_seed));
        let order = sort_prob(
            &items,
            &params,
            &mut ScalarValueCmp {
                oracle: &mut oracle,
            },
        );
        queries += oracle.queries();
        scalar_orders.push(order);
    }
    let baseline_ms = ms(start);

    // Optimized: the same engine through le_batch rounds.
    let start = Instant::now();
    let mut opt_queries = 0u64;
    let mut opt_orders = Vec::with_capacity(reps);
    for &(oracle_seed, _) in &seeds {
        let mut oracle = Counting::new(ProbValueOracle::new(values.clone(), 0.2, oracle_seed));
        let order = sort_prob(&items, &params, &mut ValueCmp::new(&mut oracle));
        opt_queries += oracle.queries();
        opt_orders.push(order);
    }
    let optimized_ms = ms(start);

    WorkloadReport {
        name: format!("sort_n{n}"),
        n,
        reps,
        baseline_ms,
        optimized_ms,
        queries,
        threads: 1,
        optimization: "wave binary-search steps + polish scoring coalesced into le_batch rounds",
        outputs_match: scalar_orders == opt_orders && queries == opt_queries,
        detail: None,
    }
}

fn run_select(n: usize, reps: usize) -> WorkloadReport {
    let values = shuffled_values(n, 0x5E1E);
    let k = n / 8;
    let params = OrderProbParams::experimental();
    let seeds = rep_seeds(0x51, reps);
    let items: Vec<usize> = (0..n).collect();

    // Baseline: scalar comparator loop.
    let start = Instant::now();
    let mut queries = 0u64;
    let mut scalar_picks = Vec::with_capacity(reps);
    for &(oracle_seed, rng_seed) in &seeds {
        let mut oracle = Counting::new(ProbValueOracle::new(values.clone(), 0.2, oracle_seed));
        let pick = select_prob(
            &items,
            k,
            &params,
            &mut ScalarValueCmp {
                oracle: &mut oracle,
            },
            &mut StdRng::seed_from_u64(rng_seed),
        );
        queries += oracle.queries();
        scalar_picks.push(pick);
    }
    let baseline_ms = ms(start);

    // Optimized: the same engine through le_batch rounds.
    let start = Instant::now();
    let mut opt_queries = 0u64;
    let mut opt_picks = Vec::with_capacity(reps);
    for &(oracle_seed, rng_seed) in &seeds {
        let mut oracle = Counting::new(ProbValueOracle::new(values.clone(), 0.2, oracle_seed));
        let pick = select_prob(
            &items,
            k,
            &params,
            &mut ValueCmp::new(&mut oracle),
            &mut StdRng::seed_from_u64(rng_seed),
        );
        opt_queries += oracle.queries();
        opt_picks.push(pick);
    }
    let optimized_ms = ms(start);

    WorkloadReport {
        name: format!("select_n{n}"),
        n,
        reps,
        baseline_ms,
        optimized_ms,
        queries,
        threads: 1,
        optimization: "sample scoring + resolving scan coalesced into le_batch rounds",
        outputs_match: scalar_picks == opt_picks && queries == opt_queries,
        detail: Some(format!("k={k}")),
    }
}

fn write_json(path: &str, mode: &str, reports: &[WorkloadReport]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"nco-perfsuite/v3\",\n");
    s.push_str("  \"pr\": \"PR10\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"parallel_feature\": {},\n",
        cfg!(feature = "parallel")
    ));
    s.push_str(&format!(
        "  \"host_logical_cores\": {},\n",
        host_logical_cores()
    ));
    s.push_str("  \"workloads\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"n\": {},\n", r.n));
        s.push_str(&format!("      \"reps\": {},\n", r.reps));
        s.push_str(&format!("      \"threads\": {},\n", r.threads));
        s.push_str(&format!(
            "      \"baseline_wall_ms\": {:.3},\n",
            r.baseline_ms
        ));
        s.push_str(&format!(
            "      \"optimized_wall_ms\": {:.3},\n",
            r.optimized_ms
        ));
        s.push_str(&format!("      \"speedup\": {:.3},\n", r.speedup()));
        s.push_str(&format!("      \"queries\": {},\n", r.queries));
        s.push_str(&format!(
            "      \"optimization\": \"{}\",\n",
            r.optimization
        ));
        if let Some(detail) = &r.detail {
            s.push_str(&format!("      \"detail\": \"{detail}\",\n"));
        }
        s.push_str(&format!("      \"outputs_match\": {}\n", r.outputs_match));
        s.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"total_queries\": {}\n",
        reports.iter().map(|r| r.queries).sum::<u64>()
    ));
    s.push_str("}\n");
    std::fs::write(path, s)
}

/// Logical cores of the host, independent of the `parallel` feature —
/// recorded in the JSON so bench trajectories from different machines are
/// comparable.
fn host_logical_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        nco_core::parallel::default_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Pulls `(name, n, queries)` triples out of a perfsuite JSON file using
/// plain string scanning — the file format is our own, and the binary
/// must stay dependency-free (no serde in the offline build). Works for
/// both the v1 and v2 schemas (the scanned fields are common to both).
fn extract_workloads(json: &str) -> Vec<(String, u64, u64)> {
    fn field_u64(segment: &str, key: &str) -> Option<u64> {
        let at = segment.find(&format!("\"{key}\":"))?;
        let rest = &segment[at + key.len() + 3..];
        let digits: String = rest
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    }
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\":") {
        rest = &rest[at + 7..];
        let open = match rest.find('"') {
            Some(i) => i,
            None => break,
        };
        let close = match rest[open + 1..].find('"') {
            Some(i) => open + 1 + i,
            None => break,
        };
        let name = rest[open + 1..close].to_string();
        let segment_end = rest.find("\"name\":").unwrap_or(rest.len());
        let segment = &rest[..segment_end];
        if let (Some(n), Some(queries)) = (field_u64(segment, "n"), field_u64(segment, "queries")) {
            out.push((name, n, queries));
        }
    }
    out
}

fn check_baseline(path: &str, reports: &[WorkloadReport]) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let baseline = extract_workloads(&text);
    for r in reports {
        let Some((_, base_n, base_queries)) = baseline.iter().find(|(name, _, _)| *name == r.name)
        else {
            return Err(format!("workload {} missing from baseline {path}", r.name));
        };
        if *base_n != r.n as u64 {
            return Err(format!(
                "workload {}: baseline pinned n = {base_n} but this run used n = {} — \
                 regenerate the baseline",
                r.name, r.n
            ));
        }
        if r.queries > *base_queries {
            return Err(format!(
                "workload {}: {} oracle queries regress past the baseline's {base_queries}",
                r.name, r.queries
            ));
        }
    }
    Ok(())
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_PR10.json");
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--check-baseline" => {
                baseline_path = Some(args.next().expect("--check-baseline requires a path"));
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: perfsuite [--smoke] [--out PATH] [--check-baseline PATH]");
                std::process::exit(2);
            }
        }
    }

    let mode = if smoke { "smoke" } else { "full" };
    eprintln!(
        "perfsuite: mode = {mode}, threads = {}, host cores = {}, parallel = {}",
        threads(),
        host_logical_cores(),
        cfg!(feature = "parallel")
    );

    let reports = if smoke {
        vec![
            run_count_max_prob(1024, 2),
            run_neighbor("neighbor", 512, 128, 4, (0x4E16, 0x4E)),
            run_neighbor("neighbor_d64", 512, 64, 6, (0x4E64, 0x4D)),
            run_slink(128),
            run_slink_par(256),
            run_slink_par(512),
            run_slink_complete(256),
            run_slink_complete(512),
            run_slink_crowd(128),
            run_kcenter(256, 16, 2),
            run_session_kcenter(256, 16, 2),
            run_serve_mixed(128, 4),
            run_serve_faulty(128, 4),
            run_adaptive_noise(128, 2),
            run_sort(256, 2),
            run_select(512, 2),
        ]
    } else {
        vec![
            run_count_max_prob(4096, 6),
            run_neighbor("neighbor", 2048, 128, 12, (0x4E16, 0x4E)),
            run_neighbor("neighbor_d64", 2048, 64, 16, (0x4E64, 0x4D)),
            run_slink(512),
            run_slink_par(1024),
            run_slink_par(2048),
            run_slink_complete(1024),
            run_slink_complete(2048),
            run_slink_crowd(512),
            run_kcenter(1024, 32, 4),
            run_session_kcenter(1024, 32, 4),
            run_serve_mixed(512, 8),
            run_serve_faulty(512, 8),
            run_adaptive_noise(512, 4),
            run_sort(1024, 3),
            run_select(2048, 3),
        ]
    };

    let mut ok = true;
    for r in &reports {
        eprintln!(
            "  {:22} n={:5} reps={:2} threads={:2}  baseline {:9.2} ms  optimized {:9.2} ms  \
             speedup {:5.2}x  queries {:>10}  match={}",
            r.name,
            r.n,
            r.reps,
            r.threads,
            r.baseline_ms,
            r.optimized_ms,
            r.speedup(),
            r.queries,
            r.outputs_match
        );
        ok &= r.outputs_match;
    }

    write_json(&out_path, mode, &reports).expect("cannot write BENCH json");
    eprintln!("perfsuite: wrote {out_path}");

    if !ok {
        eprintln!("perfsuite: FAILED — an optimized configuration changed outputs or counts");
        std::process::exit(1);
    }
    if let Some(path) = baseline_path {
        if let Err(msg) = check_baseline(&path, &reports) {
            eprintln!("perfsuite: baseline check FAILED — {msg}");
            std::process::exit(1);
        }
        eprintln!("perfsuite: query counts within baseline {path}");
    }
}
