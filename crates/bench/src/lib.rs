//! # nco-bench — shared harness for the table/figure benches
//!
//! Every target under `benches/` regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the index) and prints the same rows/series
//! the paper reports. Absolute numbers differ (our substrate is a
//! simulator at a reduced scale); the *shape* — who wins, by roughly what
//! factor, where crossovers fall — is the reproduction target, and
//! EXPERIMENTS.md records paper-vs-measured for each.
//!
//! Two environment knobs keep the full suite laptop-sized:
//!
//! * `NCO_SCALE` (float, default 1.0) multiplies every dataset size;
//! * `NCO_REPS` (integer) overrides the repetition counts.

use nco_data::Dataset;
use nco_metric::stats::Buckets;
use nco_metric::Metric;
use nco_oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
use nco_oracle::QuadrupletOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The dataset-size multiplier from `NCO_SCALE`.
pub fn scale() -> f64 {
    std::env::var("NCO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a default size by [`scale`], keeping a sane floor.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(100)
}

/// Repetition count: `NCO_REPS` override or the given default.
pub fn reps(default: usize) -> usize {
    std::env::var("NCO_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// Standard bench instances of the five dataset analogues (seeds fixed so
/// every bench target sees the same data).
pub fn bench_cities(n: usize) -> Dataset {
    nco_data::cities(n, 0xC1)
}
/// `caltech` bench instance.
pub fn bench_caltech(n: usize) -> Dataset {
    nco_data::caltech(n, 0xCA)
}
/// `amazon` bench instance.
pub fn bench_amazon(n: usize) -> Dataset {
    nco_data::amazon(n, 0xA2)
}
/// `monuments` bench instance.
pub fn bench_monuments(n: usize) -> Dataset {
    nco_data::monuments(n, 0x40)
}
/// `dblp` bench instance.
pub fn bench_dblp(n: usize) -> Dataset {
    nco_data::dblp(n, 0xDB)
}

/// The crowd accuracy profile the user study associates with a dataset
/// (Section 6.2.1 / Fig. 4).
pub fn crowd_profile(name: &str) -> AccuracyProfile {
    match name {
        "caltech" => AccuracyProfile::caltech_like(),
        "cities" => AccuracyProfile::cities_like(),
        "monuments" => AccuracyProfile::monuments_like(),
        "amazon" => AccuracyProfile::amazon_like(),
        other => panic!("no crowd profile for dataset {other}"),
    }
}

/// A fresh 3-worker crowd oracle over a dataset, per the user-study setup.
pub fn crowd_oracle(d: &Dataset, seed: u64) -> CrowdQuadOracle<&nco_data::AnyMetric> {
    CrowdQuadOracle::new(&d.metric, crowd_profile(d.name), 3, seed)
}

/// Crowd accuracy over distance-bucket pairs — the Figure 4 measurement.
///
/// Returns `matrix[i][j] = Some(accuracy)` for bucket pairs that received
/// at least `queries_per_cell / 2` queries.
pub fn accuracy_matrix<M: Metric>(
    metric: M,
    profile: AccuracyProfile,
    buckets: usize,
    queries_per_cell: usize,
    seed: u64,
) -> Vec<Vec<Option<f64>>> {
    let n = metric.len();
    // Bucket over the *observed* distance range, not [0, diameter]:
    // hierarchy metrics only occupy the top of the range and would leave
    // most of the heatmap empty otherwise.
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = metric.dist(i, j);
            lo = lo.min(d);
            hi = hi.max(d);
        }
    }
    let b = Buckets::equal_width((hi - lo).max(1e-9), buckets);
    let mut crowd = CrowdQuadOracle::new(&metric, profile, 3, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf19);

    let mut hits = vec![vec![0usize; buckets]; buckets];
    let mut total = vec![vec![0usize; buckets]; buckets];
    for _ in 0..queries_per_cell * buckets * buckets * 8 {
        let (a, b1, c, d) = (
            rng.random_range(0..n),
            rng.random_range(0..n),
            rng.random_range(0..n),
            rng.random_range(0..n),
        );
        if a == b1 || c == d || (a.min(b1), a.max(b1)) == (c.min(d), c.max(d)) {
            continue;
        }
        let d1 = metric.dist(a, b1);
        let d2 = metric.dist(c, d);
        let (i, j) = (b.index_of(d1 - lo), b.index_of(d2 - lo));
        if total[i][j] >= queries_per_cell {
            continue;
        }
        total[i][j] += 1;
        if crowd.le(a, b1, c, d) == (d1 <= d2) {
            hits[i][j] += 1;
        }
    }
    (0..buckets)
        .map(|i| {
            (0..buckets)
                .map(|j| {
                    (total[i][j] >= queries_per_cell / 2)
                        .then(|| hits[i][j] as f64 / total[i][j] as f64)
                })
                .collect()
        })
        .collect()
}

/// Renders an accuracy matrix as the textual heatmap printed by the Fig. 4
/// bench ("--" marks bucket pairs with no mass).
pub fn render_matrix(m: &[Vec<Option<f64>>]) -> String {
    let mut out = String::new();
    for row in m {
        let cells: Vec<String> = row
            .iter()
            .map(|c| {
                c.map(|a| format!("{a:.2}"))
                    .unwrap_or_else(|| "  --".into())
            })
            .collect();
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_have_sane_defaults() {
        assert!(scale() > 0.0);
        assert!(scaled(2000) >= 100);
        assert_eq!(reps(7).max(1), reps(7));
    }

    #[test]
    fn profiles_cover_the_four_study_datasets() {
        for name in ["cities", "caltech", "monuments", "amazon"] {
            let _ = crowd_profile(name);
        }
    }

    #[test]
    #[should_panic(expected = "no crowd profile")]
    fn unknown_dataset_panics() {
        let _ = crowd_profile("dblp");
    }

    #[test]
    fn accuracy_matrix_is_well_formed() {
        let d = bench_monuments(100);
        let m = accuracy_matrix(&d.metric, crowd_profile("monuments"), 4, 30, 3);
        assert_eq!(m.len(), 4);
        for row in &m {
            assert_eq!(row.len(), 4);
            for cell in row.iter().flatten() {
                assert!((0.0..=1.0).contains(cell));
            }
        }
        let rendered = render_matrix(&m);
        assert_eq!(rendered.lines().count(), 4);
    }
}
