//! Criterion micro-benchmarks: wall-clock cost of each primitive at fixed
//! sizes (complements the query-count columns of the table/figure benches
//! with time-per-call measurements).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nco_bench::bench_dblp;
use nco_core::comparator::ValueCmp;
use nco_core::hier::{hier_oracle, HierParams, Linkage};
use nco_core::kcenter::{kcenter_adv, KCenterAdvParams};
use nco_core::maxfind::{count_max, max_adv, max_prob, tournament, AdvParams, ProbParams};
use nco_core::neighbor::farthest_adv;
use nco_oracle::adversarial::{AdversarialQuadOracle, AdversarialValueOracle, InvertAdversary};
use nco_oracle::probabilistic::ProbValueOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn values(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 131) % 7919) as f64 + 1.0).collect()
}

fn bench_maxfind(c: &mut Criterion) {
    let n = 1024usize;
    let items: Vec<usize> = (0..n).collect();
    let mut group = c.benchmark_group("maxfind_n1024");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("count_max", |b| {
        b.iter_batched(
            || AdversarialValueOracle::new(values(n), 0.5, InvertAdversary),
            |mut o| count_max(&items, &mut ValueCmp::new(&mut o)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("tournament_l2", |b| {
        b.iter_batched(
            || {
                (
                    AdversarialValueOracle::new(values(n), 0.5, InvertAdversary),
                    StdRng::seed_from_u64(1),
                )
            },
            |(mut o, mut rng)| tournament(&items, 2, &mut ValueCmp::new(&mut o), &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("max_adv_t1", |b| {
        b.iter_batched(
            || {
                (
                    AdversarialValueOracle::new(values(n), 0.5, InvertAdversary),
                    StdRng::seed_from_u64(2),
                )
            },
            |(mut o, mut rng)| {
                max_adv(
                    &items,
                    &AdvParams::experimental(),
                    &mut ValueCmp::new(&mut o),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("max_prob", |b| {
        b.iter_batched(
            || {
                (
                    ProbValueOracle::new(values(n), 0.2, 3),
                    StdRng::seed_from_u64(3),
                )
            },
            |(mut o, mut rng)| {
                max_prob(
                    &items,
                    &ProbParams::experimental(),
                    &mut ValueCmp::new(&mut o),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let d = bench_dblp(400);
    let mut group = c.benchmark_group("pipelines_dblp400");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("farthest_adv", |b| {
        b.iter_batched(
            || {
                (
                    AdversarialQuadOracle::new(&d.metric, 1.0, InvertAdversary),
                    StdRng::seed_from_u64(4),
                )
            },
            |(mut o, mut rng)| farthest_adv(&mut o, 0, &AdvParams::experimental(), &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("kcenter_adv_k10", |b| {
        b.iter_batched(
            || {
                (
                    AdversarialQuadOracle::new(&d.metric, 1.0, InvertAdversary),
                    StdRng::seed_from_u64(5),
                )
            },
            |(mut o, mut rng)| kcenter_adv(&KCenterAdvParams::experimental(10), &mut o, &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.finish();

    let small = bench_dblp(160);
    let mut group = c.benchmark_group("hier_dblp160");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("hier_oracle_single", |b| {
        b.iter_batched(
            || {
                (
                    AdversarialQuadOracle::new(&small.metric, 1.0, InvertAdversary),
                    StdRng::seed_from_u64(6),
                )
            },
            |(mut o, mut rng)| {
                hier_oracle(&HierParams::experimental(Linkage::Single), &mut o, &mut rng)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_maxfind, bench_pipelines);
criterion_main!(benches);
