//! Figure 8 — farthest-point identification on `cities` vs. the noise
//! level, simulated oracle: (a) adversarial mu in {0, 0.5, 1, 2};
//! (b) probabilistic p in {0, 0.1, 0.3}.
//!
//! Paper result: `Far` finds the correct farthest for mu < 1 and stays
//! within 4x at every mu; `Far_p` stays near `TDist` for every p while
//! `Samp` is >4x smaller at p = 0.3 and `Tour2` declines beyond p = 0.1.

use nco_bench::{bench_cities, reps, scaled};
use nco_core::maxfind::AdvParams;
use nco_core::neighbor::baselines::{farthest_samp, farthest_tour2};
use nco_core::neighbor::{farthest_adv, farthest_prob};
use nco_eval::experiment::{run_reps, RepOutcome};
use nco_eval::Table;
use nco_metric::stats::exact_farthest;
use nco_metric::Metric;
use nco_oracle::adversarial::{AdversarialQuadOracle, PersistentRandomAdversary};
use nco_oracle::counting::Counting;
use nco_oracle::probabilistic::ProbQuadOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled(2000);
    let r = reps(10);
    let d = bench_cities(n);
    let metric = &d.metric;
    let q = 0usize;
    let (_, d_opt) = exact_farthest(metric, q, 0..n).unwrap();
    println!("cities analogue n = {n}; true farthest distance from record {q} = {d_opt:.1}\n");

    let mut table = Table::new(
        "Figure 8(a) — farthest vs. adversarial noise (TDist = 1.000)",
        &["mu", "Far (ours)", "Tour2", "Samp", "Far queries"],
    );
    for mu in [0.0, 0.5, 1.0, 2.0] {
        let ours = run_reps(r, 31, |seed| {
            let mut o = Counting::new(AdversarialQuadOracle::new(
                metric,
                mu,
                PersistentRandomAdversary::new(seed),
            ));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_adv(&mut o, q, &AdvParams::experimental(), &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: o.queries(),
            }
        });
        let t2 = run_reps(r, 31, |seed| {
            let mut o =
                AdversarialQuadOracle::new(metric, mu, PersistentRandomAdversary::new(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_tour2(&mut o, q, &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: 0,
            }
        });
        let sp = run_reps(r, 31, |seed| {
            let mut o =
                AdversarialQuadOracle::new(metric, mu, PersistentRandomAdversary::new(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_samp(&mut o, q, &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: 0,
            }
        });
        table.row(&[
            format!("{mu:.1}"),
            format!("{:.3}", ours.value.mean),
            format!("{:.3}", t2.value.mean),
            format!("{:.3}", sp.value.mean),
            format!("{:.0}", ours.mean_queries),
        ]);
    }
    println!("{table}");

    let mut table = Table::new(
        "Figure 8(b) — farthest vs. probabilistic noise (TDist = 1.000)",
        &["p", "Far_p (ours)", "Tour2", "Samp", "Far_p queries"],
    );
    for p in [0.0, 0.1, 0.3] {
        let ours = run_reps(r, 77, |seed| {
            let mut o = Counting::new(ProbQuadOracle::new(metric, p, seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_prob(&mut o, q, 0.1, &AdvParams::experimental(), &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: o.queries(),
            }
        });
        let t2 = run_reps(r, 77, |seed| {
            let mut o = ProbQuadOracle::new(metric, p, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_tour2(&mut o, q, &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: 0,
            }
        });
        let sp = run_reps(r, 77, |seed| {
            let mut o = ProbQuadOracle::new(metric, p, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_samp(&mut o, q, &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: 0,
            }
        });
        table.row(&[
            format!("{p:.1}"),
            format!("{:.3}", ours.value.mean),
            format!("{:.3}", t2.value.mean),
            format!("{:.3}", sp.value.mean),
            format!("{:.0}", ours.mean_queries),
        ]);
    }
    println!("{table}");
    println!("paper shape: Far/Far_p ~1.0 at every noise level; Tour2 fine until p > 0.1;");
    println!("Samp far below 1.0 on cities at all levels (skewed distances, unique optimum).");
}
