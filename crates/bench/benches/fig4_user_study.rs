//! Figure 4 — the user study: crowd accuracy per distance-bucket pair.
//!
//! Paper result: `caltech` (4a) shows a sharp cliff — near coin-flip on the
//! diagonal, (close to) zero noise once the distance ratio clears ~1.45 —
//! identifying the adversarial model; `amazon` (4b) shows substantial noise
//! across all ranges, identifying the probabilistic model.

use nco_bench::{
    accuracy_matrix, bench_amazon, bench_caltech, crowd_profile, render_matrix, scaled,
};

fn main() {
    let n = scaled(600);
    let buckets = 8;
    let per_cell = 60;

    println!("Figure 4 — simulated AMT user study (3-worker majority per query)\n");

    let caltech = bench_caltech(n);
    let m = accuracy_matrix(
        &caltech.metric,
        crowd_profile("caltech"),
        buckets,
        per_cell,
        4,
    );
    println!("(a) caltech-like: accuracy per (bucket_i, bucket_j)");
    print!("{}", render_matrix(&m));
    let diag: Vec<f64> = (0..buckets).filter_map(|i| m[i][i]).collect();
    let off: Vec<f64> = (0..buckets)
        .flat_map(|i| {
            (0..buckets)
                .filter(move |j| i.abs_diff(*j) >= 2)
                .map(move |j| (i, j))
        })
        .filter_map(|(i, j)| m[i][j])
        .collect();
    println!(
        "diagonal mean = {:.3} (comparable pairs: noisy); separated-bucket mean = {:.3} (cliff cleared: clean)",
        mean(&diag),
        mean(&off)
    );
    println!("=> adversarial model fits caltech (paper Fig. 4a)\n");

    let amazon = bench_amazon(n);
    let m = accuracy_matrix(
        &amazon.metric,
        crowd_profile("amazon"),
        buckets,
        per_cell,
        5,
    );
    println!("(b) amazon-like: accuracy per (bucket_i, bucket_j)");
    print!("{}", render_matrix(&m));
    let all: Vec<f64> = m.iter().flatten().flatten().copied().collect();
    println!(
        "overall mean = {:.3}; noise persists at every distance range",
        mean(&all)
    );
    println!("=> probabilistic model fits amazon (paper Fig. 4b; avg accuracy > 0.83)");
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}
