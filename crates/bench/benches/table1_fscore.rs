//! Table 1 — F-score of k-center clusterings under the crowd oracle:
//! `kC` vs `Tour2` vs `Samp` vs `Oq` on caltech (k = 10/15/20),
//! monuments and amazon (k = 7/14).
//!
//! Paper numbers: kC >= 0.92 everywhere (1.0 on caltech k=10/15,
//! monuments); Tour2 0.66–0.95; Samp 0.54–0.97; Oq 0.45–0.77 (computed on
//! a 150-pair sample, as here). Per §6.3, caltech/monuments run the
//! adversarial algorithm, amazon the probabilistic one.
//!
//! Deviations at our scale (see EXPERIMENTS.md): the monuments analogue
//! has 10 ground-truth sites, so its row uses k = 10 (the paper's k = 5
//! implies a 5-cluster ground truth we don't reproduce); caltech k = 15
//! sits between the 10/20 label granularities, capping its best
//! achievable score below 1 by construction.

use nco_bench::{bench_amazon, bench_caltech, bench_monuments, crowd_oracle, reps, scaled};
use nco_core::kcenter::baselines::{kcenter_samp, kcenter_tour2, sample_pairs};
use nco_core::kcenter::{kcenter_adv, kcenter_prob, KCenterAdvParams, KCenterProbParams};
use nco_data::Dataset;
use nco_eval::experiment::{run_reps, RepOutcome};
use nco_eval::{pair_f_score, Table};
use nco_oracle::cluster_query::ClusterQueryOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Config {
    dataset: Dataset,
    k: usize,
    probabilistic: bool,
    coarse: bool, // score against the coarse label granularity
}

fn main() {
    let r = reps(5);
    let caltech = bench_caltech(scaled(400));
    let monuments = bench_monuments(100);
    let amazon = bench_amazon(scaled(350));

    // Each row scores against the ground-truth granularity matching its k
    // (coarse = 10 caltech groups / 7 amazon departments; fine = 20 / 14
    // leaf categories). caltech k=15 sits between granularities, so its
    // best achievable F-score is < 1 by construction — reported as-is.
    let configs = vec![
        Config {
            dataset: caltech.clone(),
            k: 10,
            probabilistic: false,
            coarse: true,
        },
        Config {
            dataset: caltech.clone(),
            k: 15,
            probabilistic: false,
            coarse: false,
        },
        Config {
            dataset: caltech.clone(),
            k: 20,
            probabilistic: false,
            coarse: false,
        },
        Config {
            dataset: monuments.clone(),
            k: 10,
            probabilistic: false,
            coarse: false,
        },
        Config {
            dataset: amazon.clone(),
            k: 7,
            probabilistic: true,
            coarse: true,
        },
        Config {
            dataset: amazon.clone(),
            k: 14,
            probabilistic: true,
            coarse: false,
        },
    ];

    let mut table = Table::new(
        "Table 1 — k-center pair F-score under the crowd oracle",
        &["dataset (k)", "kC", "Tour2", "Samp", "Oq*"],
    );

    for cfg in &configs {
        let d = &cfg.dataset;
        let truth: &[usize] = if cfg.coarse {
            cfg.dataset.coarse_labels.as_ref().unwrap()
        } else {
            cfg.dataset.labels.as_ref().unwrap()
        };
        let k = cfg.k;

        let fscore = |method: &str, seed0: u64| -> f64 {
            run_reps(r, seed0, |seed| {
                let mut oracle = crowd_oracle(d, seed);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xab1e);
                let labels: Vec<usize> = match method {
                    "kc" if cfg.probabilistic => kcenter_prob(
                        &KCenterProbParams {
                            gamma: 4.0,
                            ..KCenterProbParams::experimental(k, d.min_cluster_size)
                        },
                        &mut oracle,
                        &mut rng,
                    )
                    .labels()
                    .to_vec(),
                    "kc" => kcenter_adv(&KCenterAdvParams::experimental(k), &mut oracle, &mut rng)
                        .labels()
                        .to_vec(),
                    "t2" => kcenter_tour2(k, None, &mut oracle, &mut rng)
                        .labels()
                        .to_vec(),
                    "sp" => kcenter_samp(k, None, &mut oracle, &mut rng)
                        .labels()
                        .to_vec(),
                    "oq" => {
                        // The paper's Oq row is "computed on a sample of 150
                        // pairwise queries to the crowd": F-score of the
                        // yes/no answers over the queried pairs themselves.
                        let mut oq = ClusterQueryOracle::crowd_like(truth.to_vec(), seed);
                        let pairs = sample_pairs(d.n(), 150, &mut rng);
                        let (mut tp, mut fp, mut fne) = (0usize, 0usize, 0usize);
                        for &(i, j) in &pairs {
                            let ans = oq.same_cluster(i, j);
                            let t = truth[i] == truth[j];
                            match (ans, t) {
                                (true, true) => tp += 1,
                                (true, false) => fp += 1,
                                (false, true) => fne += 1,
                                _ => {}
                            }
                        }
                        let prec = if tp + fp == 0 {
                            1.0
                        } else {
                            tp as f64 / (tp + fp) as f64
                        };
                        let rec = if tp + fne == 0 {
                            1.0
                        } else {
                            tp as f64 / (tp + fne) as f64
                        };
                        let f1 = if prec + rec == 0.0 {
                            0.0
                        } else {
                            2.0 * prec * rec / (prec + rec)
                        };
                        return RepOutcome {
                            value: f1,
                            queries: 0,
                        };
                    }
                    other => unreachable!("{other}"),
                };
                RepOutcome {
                    value: pair_f_score(&labels, truth).f1,
                    queries: 0,
                }
            })
            .value
            .mean
        };

        table.row(&[
            format!("{} (k={})", d.name, k),
            format!("{:.2}", fscore("kc", 1)),
            format!("{:.2}", fscore("t2", 2)),
            format!("{:.2}", fscore("sp", 3)),
            format!("{:.2}", fscore("oq", 4)),
        ]);
    }
    println!("{table}");
    println!("* Oq computed on a 150-pair crowd sample, as in the paper.");
    println!("paper shape: kC >= 0.92 everywhere and best in every row; Oq worst (low recall).");
}
