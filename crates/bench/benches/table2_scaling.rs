//! Table 2 — running time and #comparisons on `dblp` under adversarial
//! noise (mu = 1): Farthest / Nearest / k-center / single & complete
//! linkage, for Ours vs Tour2 vs Samp.
//!
//! The paper runs the 1.8M-record dblp (Far/NN in ~0.1 min and ~2M
//! comparisons; kC k=50 in 450 min / 120M; SL/CL in ~1900 min / ~1B with
//! Tour2 DNF after 48 hrs). We run the analogue at a laptop scale and
//! report the same rows — seconds and raw comparisons at our n, with
//! Tour2's DNF modelled as a 10x-our-cost query budget. EXPERIMENTS.md
//! compares the *shapes* (linear Far/NN, ~n k^2 kC, ~n^2 HC, cubic Tour2
//! HC).

use nco_bench::{bench_dblp, scaled};
use nco_core::hier::baselines::{hier_samp, hier_tour2, Tour2Outcome};
use nco_core::hier::{hier_oracle, HierParams, Linkage};
use nco_core::kcenter::baselines::{kcenter_samp, kcenter_tour2};
use nco_core::kcenter::{kcenter_adv, KCenterAdvParams};
use nco_core::maxfind::AdvParams;
use nco_core::neighbor::baselines::{farthest_samp, farthest_tour2, nearest_samp, nearest_tour2};
use nco_core::neighbor::{farthest_adv, nearest_adv};
use nco_eval::Table;
use nco_oracle::adversarial::{AdversarialQuadOracle, PersistentRandomAdversary};
use nco_oracle::counting::Counting;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

type BenchOracle<'a> =
    Counting<AdversarialQuadOracle<&'a nco_data::AnyMetric, PersistentRandomAdversary>>;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

fn cell(secs: f64, queries: u64) -> String {
    format!("{secs:.2}s / {}", fmt_q(queries))
}

fn fmt_q(q: u64) -> String {
    if q >= 1_000_000 {
        format!("{:.1}M", q as f64 / 1e6)
    } else if q >= 1_000 {
        format!("{:.0}k", q as f64 / 1e3)
    } else {
        q.to_string()
    }
}

fn main() {
    let n = scaled(1500);
    let k = 50usize.min(n / 10);
    let mu = 1.0;
    let d = bench_dblp(n);
    let metric = &d.metric;
    let mk_oracle = |seed: u64| -> BenchOracle<'_> {
        Counting::new(AdversarialQuadOracle::new(
            metric,
            mu,
            PersistentRandomAdversary::new(seed),
        ))
    };
    println!("dblp analogue: n = {n}, mu = {mu}, k = {k} (paper: n = 1.8M, k = 50)\n");

    let mut table = Table::new(
        "Table 2 — wall time / #quadruplet comparisons",
        &["problem", "Ours", "Tour2", "Samp"],
    );
    let mut rng = StdRng::seed_from_u64(2);

    // Farthest.
    let mut o = mk_oracle(1);
    let (_, t) = timed(|| farthest_adv(&mut o, 0, &AdvParams::experimental(), &mut rng).unwrap());
    let ours = cell(t, o.queries());
    let mut o = mk_oracle(1);
    let (_, t) = timed(|| farthest_tour2(&mut o, 0, &mut rng).unwrap());
    let tour2 = cell(t, o.queries());
    let mut o = mk_oracle(1);
    let (_, t) = timed(|| farthest_samp(&mut o, 0, &mut rng).unwrap());
    table.row(&["Farthest".into(), ours, tour2, cell(t, o.queries())]);

    // Nearest.
    let mut o = mk_oracle(2);
    let (_, t) = timed(|| nearest_adv(&mut o, 0, &AdvParams::experimental(), &mut rng).unwrap());
    let ours = cell(t, o.queries());
    let mut o = mk_oracle(2);
    let (_, t) = timed(|| nearest_tour2(&mut o, 0, &mut rng).unwrap());
    let tour2 = cell(t, o.queries());
    let mut o = mk_oracle(2);
    let (_, t) = timed(|| nearest_samp(&mut o, 0, &mut rng).unwrap());
    table.row(&["Nearest".into(), ours, tour2, cell(t, o.queries())]);

    // k-center.
    let mut o = mk_oracle(3);
    let (_, t) = timed(|| kcenter_adv(&KCenterAdvParams::experimental(k), &mut o, &mut rng));
    let ours = cell(t, o.queries());
    let mut o = mk_oracle(3);
    let (_, t) = timed(|| kcenter_tour2(k, None, &mut o, &mut rng));
    let tour2 = cell(t, o.queries());
    let mut o = mk_oracle(3);
    let (_, t) = timed(|| kcenter_samp(k, None, &mut o, &mut rng));
    table.row(&[format!("kC (k={k})"), ours, tour2, cell(t, o.queries())]);

    // Single & complete linkage (HC is the expensive row; Tour2 gets a
    // 10x-our-queries budget and reports DNF beyond it, as in the paper).
    for (label, linkage) in [
        ("Single Linkage", Linkage::Single),
        ("Complete Linkage", Linkage::Complete),
    ] {
        let mut o = mk_oracle(4);
        let (_, t) = timed(|| hier_oracle(&HierParams::experimental(linkage), &mut o, &mut rng));
        let our_queries = o.queries();
        let ours = cell(t, our_queries);

        let mut o = mk_oracle(4);
        let (outcome, t) =
            timed(|| hier_tour2(linkage, our_queries.saturating_mul(10), &mut o, &mut rng));
        let tour2 = match outcome {
            Tour2Outcome::Finished(_) => cell(t, o.queries()),
            Tour2Outcome::DidNotFinish { queries_spent, .. } => {
                format!("DNF (> {})", fmt_q(queries_spent))
            }
        };

        let mut o = mk_oracle(4);
        let (_, t) = timed(|| hier_samp(linkage, &mut o, &mut rng));
        table.row(&[label.into(), ours, tour2, cell(t, o.queries())]);
    }

    println!("{table}");
    println!("paper shape: Far/NN linear in n; kC ~ n k^2; SL/CL ~ n^2 with Tour2 DNF (cubic).");
}
