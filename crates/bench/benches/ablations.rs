//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **PairwiseComp threshold** (0.3 as printed vs. majority 0.5): the
//!    paper's 0.3 makes symmetric decisions degenerate as p -> 0.3; the
//!    majority variant holds for every p < 1/2 (DESIGN.md §6).
//! 2. **Max-Adv rounds `t`**: quality/queries trade-off behind the
//!    `t = 2 log(2/delta)` choice of Theorem 3.6.
//! 3. **Tournament arity λ**: the approximation/query trade-off of
//!    Lemma 3.3 (`(1+mu)^{2 log_λ n}` vs `O(nλ)` queries).
//! 4. **Algorithm 7's `gamma`** (core size): leak probability of the
//!    ACount committee vote vs. sampling cost.

use nco_bench::{bench_cities, reps, scaled};
use nco_core::comparator::ValueCmp;
use nco_core::kcenter::{kcenter_prob, KCenterProbParams};
use nco_core::maxfind::{max_adv, tournament, AdvParams};
use nco_core::neighbor::PairwiseCmp;
use nco_eval::experiment::{run_reps, RepOutcome};
use nco_eval::{pair_f_score, Table};
use nco_metric::stats::exact_farthest;
use nco_metric::{EuclideanMetric, Metric};
use nco_oracle::adversarial::{AdversarialValueOracle, InvertAdversary};
use nco_oracle::counting::Counting;
use nco_oracle::probabilistic::ProbQuadOracle;
use nco_oracle::TrueQuadOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let r = reps(8);
    threshold_ablation(r);
    rounds_ablation(r);
    arity_ablation(r);
    gamma_ablation(reps(4));
}

/// 1. The PairwiseComp threshold cliff at p = 0.3.
fn threshold_ablation(r: usize) {
    let n = scaled(800);
    let d = bench_cities(n);
    let metric = &d.metric;
    let q = 0usize;
    let (_, d_opt) = exact_farthest(metric, q, 0..n).unwrap();
    // A tight core near q (Theorem 3.10's premise).
    let mut core_oracle = TrueQuadOracle::new(metric);
    let mut rng = StdRng::seed_from_u64(1);
    let cands: Vec<usize> = (0..n).filter(|&v| v != q).collect();
    let core =
        nco_core::neighbor::core_set::build_core(&mut core_oracle, q, &cands, 40, 60, &mut rng);

    let mut table = Table::new(
        "Ablation 1 — PairwiseComp threshold vs. p (farthest quality, TDist = 1.0)",
        &["p", "thr=0.3 (paper)", "thr=0.4", "thr=0.5 (majority)"],
    );
    for p in [0.1, 0.2, 0.3, 0.4] {
        let run = |thr: f64, seed0: u64| {
            run_reps(r, seed0, |seed| {
                let mut o = ProbQuadOracle::new(metric, p, seed);
                let mut rng = StdRng::seed_from_u64(seed);
                let items: Vec<usize> = (0..n).filter(|&v| v != q).collect();
                let mut cmp = PairwiseCmp::new(&mut o, &core).with_threshold(thr);
                let got = max_adv(&items, &AdvParams::experimental(), &mut cmp, &mut rng).unwrap();
                RepOutcome {
                    value: metric.dist(q, got) / d_opt,
                    queries: 0,
                }
            })
            .value
            .mean
        };
        table.row(&[
            format!("{p:.1}"),
            format!("{:.3}", run(0.3, 11)),
            format!("{:.3}", run(0.4, 12)),
            format!("{:.3}", run(0.5, 13)),
        ]);
    }
    println!("{table}");
    println!("shape: 0.3 collapses as p -> 0.3; majority holds to p = 0.4.\n");
}

/// 2. Max-Adv rounds t: quality and queries.
fn rounds_ablation(r: usize) {
    let n = scaled(2000);
    let mu = 1.0;
    let values: Vec<f64> = (0..n)
        .map(|i| (1.0 + mu * 0.3f64).powi((i % 40) as i32) * (1.0 + i as f64 * 1e-5))
        .collect();
    let vmax = values.iter().cloned().fold(0.0, f64::max);
    let items: Vec<usize> = (0..n).collect();

    let mut table = Table::new(
        "Ablation 2 — Max-Adv rounds t (mu = 1, worst-case adversary)",
        &["t", "approx ratio", "mean queries", "within (1+mu)^3"],
    );
    for t in [1usize, 2, 4, 8] {
        let params = AdvParams {
            rounds: t,
            partitions: None,
            sample_size: None,
        };
        let mut within = 0usize;
        let stats = run_reps(r, 33, |seed| {
            let mut o = Counting::new(AdversarialValueOracle::new(
                values.clone(),
                mu,
                InvertAdversary,
            ));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = max_adv(&items, &params, &mut ValueCmp::new(&mut o), &mut rng).unwrap();
            let ratio = vmax / values[got];
            if ratio <= (1.0 + mu).powi(3) + 1e-9 {
                within += 1;
            }
            RepOutcome {
                value: ratio,
                queries: o.queries(),
            }
        });
        table.row(&[
            t.to_string(),
            format!("{:.3}", stats.value.mean),
            format!("{:.0}", stats.mean_queries),
            format!("{within}/{r}"),
        ]);
    }
    println!("{table}");
    println!("shape: quality saturates fast; queries grow ~quadratically in t (sample^2).\n");
}

/// 3. Tournament arity λ.
fn arity_ablation(r: usize) {
    let n = scaled(1024);
    let mu = 0.5;
    let values: Vec<f64> = (0..n)
        .map(|i| (1.0 + mu * 0.35f64).powi((i % 48) as i32) * (1.0 + i as f64 * 1e-5))
        .collect();
    let vmax = values.iter().cloned().fold(0.0, f64::max);
    let items: Vec<usize> = (0..n).collect();

    let mut table = Table::new(
        "Ablation 3 — tournament arity λ (mu = 0.5, worst-case adversary)",
        &["λ", "approx ratio", "queries"],
    );
    for lambda in [2usize, 4, 16, 64] {
        let stats = run_reps(r, 55, |seed| {
            let mut o = Counting::new(AdversarialValueOracle::new(
                values.clone(),
                mu,
                InvertAdversary,
            ));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = tournament(&items, lambda, &mut ValueCmp::new(&mut o), &mut rng).unwrap();
            RepOutcome {
                value: vmax / values[got],
                queries: o.queries(),
            }
        });
        table.row(&[
            lambda.to_string(),
            format!("{:.3}", stats.value.mean),
            format!("{:.0}", stats.mean_queries),
        ]);
    }
    println!("{table}");
    println!("shape: Lemma 3.3 — larger λ buys approximation with O(nλ) queries.\n");
}

/// 4. Algorithm 7's gamma (core committee size) vs. clustering quality.
fn gamma_ablation(r: usize) {
    let n = 240usize;
    let mut pts = Vec::new();
    let mut labels = Vec::new();
    for (ci, &(cx, cy)) in [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)]
        .iter()
        .enumerate()
    {
        for p in 0..n / 4 {
            let a = p as f64;
            pts.push(vec![cx + (a * 0.9).sin() * 2.0, cy + (a * 1.7).cos() * 2.0]);
            labels.push(ci);
        }
    }
    let metric = EuclideanMetric::from_points(&pts);
    let p_noise = 0.15;

    let mut table = Table::new(
        format!("Ablation 4 — Algorithm 7 gamma (4 blobs, p = {p_noise})"),
        &["gamma", "core size", "mean F-score"],
    );
    for gamma in [1.0, 2.0, 4.0, 8.0] {
        let params = KCenterProbParams {
            gamma,
            first_center: Some(0),
            ..KCenterProbParams::experimental(4, n / 4)
        };
        // Reach into the same formula the algorithm uses for display.
        let ln_term = (n as f64 / params.delta).ln();
        let core = ((8.0 * (gamma * ln_term).min((n / 4) as f64) / 9.0).ceil()) as usize;
        let stats = run_reps(r, 66, |seed| {
            let mut o = ProbQuadOracle::new(&metric, p_noise, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let c = kcenter_prob(&params, &mut o, &mut rng);
            RepOutcome {
                value: pair_f_score(c.labels(), &labels).f1,
                queries: 0,
            }
        });
        table.row(&[
            format!("{gamma:.0}"),
            core.to_string(),
            format!("{:.3}", stats.value.mean),
        ]);
    }
    println!("{table}");
    println!("shape: bigger committees kill the ACount leak tail (why Thm 4.4 uses gamma = 450).");
}
