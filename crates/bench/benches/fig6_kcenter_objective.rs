//! Figure 6 — k-center objective vs. k under synthetic noise, four panels:
//! (a) cities mu=1, (b) dblp mu=0.5 (adversarial); (c) cities p=0.1,
//! (d) dblp p=0.1 (probabilistic).
//!
//! Paper result: `kC` stays close to `TDist` for all k and both noise
//! models; `Tour2`/`Samp` are comparable under adversarial noise but
//! considerably worse under probabilistic noise.

use nco_bench::{bench_cities, bench_dblp, reps, scaled};
use nco_core::kcenter::baselines::{kcenter_samp, kcenter_tour2};
use nco_core::kcenter::{gonzalez, kcenter_adv, kcenter_prob, KCenterAdvParams, KCenterProbParams};
use nco_data::Dataset;
use nco_eval::experiment::{run_reps, RepOutcome};
use nco_eval::Table;
use nco_metric::stats::kcenter_objective;
use nco_oracle::adversarial::{AdversarialQuadOracle, PersistentRandomAdversary};
use nco_oracle::probabilistic::ProbQuadOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

enum Noise {
    Adversarial(f64),
    Probabilistic(f64),
}

fn panel(tag: &str, d: &Dataset, noise: Noise, ks: &[usize], r: usize) {
    let metric = &d.metric;
    let title = match &noise {
        Noise::Adversarial(mu) => format!("Figure 6{tag} — {} (adversarial mu = {mu})", d.name),
        Noise::Probabilistic(p) => format!("Figure 6{tag} — {} (probabilistic p = {p})", d.name),
    };
    let mut table = Table::new(title, &["k", "TDist", "kC", "Tour2", "Samp"]);

    for &k in ks {
        let g = gonzalez(metric, k, Some(0));
        let obj_t = kcenter_objective(metric, &g.centers, &g.assignment);

        let objective = |method: &str, seed0: u64| -> f64 {
            run_reps(r, seed0, |seed| {
                let mut rng = StdRng::seed_from_u64(seed ^ (k as u64) << 8);
                let c = match &noise {
                    Noise::Adversarial(mu) => {
                        let mut o = AdversarialQuadOracle::new(
                            metric,
                            *mu,
                            PersistentRandomAdversary::new(seed),
                        );
                        match method {
                            "kc" => kcenter_adv(
                                &KCenterAdvParams {
                                    first_center: Some(0),
                                    ..KCenterAdvParams::experimental(k)
                                },
                                &mut o,
                                &mut rng,
                            ),
                            "t2" => kcenter_tour2(k, Some(0), &mut o, &mut rng),
                            "sp" => kcenter_samp(k, Some(0), &mut o, &mut rng),
                            other => unreachable!("{other}"),
                        }
                    }
                    Noise::Probabilistic(p) => {
                        let mut o = ProbQuadOracle::new(metric, *p, seed);
                        // Theorem 4.4's regime assumes comparable cluster
                        // sizes (m = Omega(log^3)); at laptop scale that
                        // means m ~ n/k rather than the literal smallest
                        // ground-truth cluster (see EXPERIMENTS.md).
                        let m = (d.n() / (4 * k)).max(10);
                        match method {
                            "kc" => kcenter_prob(
                                &KCenterProbParams {
                                    first_center: Some(0),
                                    gamma: 4.0,
                                    ..KCenterProbParams::experimental(k, m)
                                },
                                &mut o,
                                &mut rng,
                            ),
                            "t2" => kcenter_tour2(k, Some(0), &mut o, &mut rng),
                            "sp" => kcenter_samp(k, Some(0), &mut o, &mut rng),
                            other => unreachable!("{other}"),
                        }
                    }
                };
                RepOutcome {
                    value: kcenter_objective(metric, &c.centers, &c.assignment),
                    queries: 0,
                }
            })
            .value
            .mean
        };

        table.row(&[
            k.to_string(),
            format!("{obj_t:.1}"),
            format!("{:.1}", objective("kc", 100)),
            format!("{:.1}", objective("t2", 200)),
            format!("{:.1}", objective("sp", 300)),
        ]);
    }
    println!("{table}");
}

fn main() {
    let r = reps(3);
    let ks_adv = [10usize, 25, 50, 75, 100];
    // The probabilistic panels stay in the theorem's n/k regime (the paper
    // runs n = 36K with k <= 100, i.e. n/k >= 360; we keep n/k >= 75).
    let ks_prob = [5usize, 10, 15, 20];

    let cities = bench_cities(scaled(1500));
    let dblp = bench_dblp(scaled(1500));
    panel("(a)", &cities, Noise::Adversarial(1.0), &ks_adv, r);
    panel("(b)", &dblp, Noise::Adversarial(0.5), &ks_adv, r);

    let cities_p = bench_cities(scaled(1000));
    let dblp_p = bench_dblp(scaled(1000));
    panel("(c)", &cities_p, Noise::Probabilistic(0.1), &ks_prob, r);
    panel("(d)", &dblp_p, Noise::Probabilistic(0.1), &ks_prob, r);

    println!("paper shape: kC tracks TDist at every k; gap to Tour2/Samp widens under p-noise.");
}
