//! Figure 5 — farthest and nearest neighbour quality under the crowd
//! oracle, across the four user-study datasets.
//!
//! Paper result (values normalised per dataset): `Far`/`NN` track `TDist`
//! everywhere; `Tour2` beats `Samp` on `cities` (skewed distances, unique
//! optimum) but not on `caltech`/`monuments`/`amazon` (many near-optimal
//! records); `Samp` is poor for NN on every dataset.
//!
//! Per §6.3 we run the adversarial algorithm on cities/caltech/monuments
//! and the probabilistic one on amazon.

use nco_bench::{
    bench_amazon, bench_caltech, bench_cities, bench_monuments, crowd_oracle, reps, scaled,
};
use nco_core::maxfind::AdvParams;
use nco_core::neighbor::baselines::{farthest_samp, farthest_tour2, nearest_samp, nearest_tour2};
use nco_core::neighbor::{farthest_adv, farthest_prob, nearest_adv, nearest_prob};
use nco_data::Dataset;
use nco_eval::experiment::{run_reps, RepOutcome};
use nco_eval::Table;
use nco_metric::stats::{exact_farthest, exact_nearest};
use nco_metric::Metric;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let datasets: Vec<(Dataset, bool)> = vec![
        (bench_cities(scaled(800)), false),
        (bench_caltech(scaled(600)), false),
        (bench_monuments(100), false),
        (bench_amazon(scaled(500)), true), // probabilistic per Fig. 4b
    ];
    let r = reps(8);
    let q = 0usize;

    let mut far_table = Table::new(
        "Figure 5(a) — farthest distance, normalised to TDist = 1.000 (higher is better)",
        &["dataset", "Far (ours)", "Tour2", "Samp"],
    );
    let mut nn_table = Table::new(
        "Figure 5(b) — NN distance, normalised to TDist = 1.000 (lower is better)",
        &["dataset", "NN (ours)", "Tour2", "Samp"],
    );

    for (d, probabilistic) in &datasets {
        let metric = &d.metric;
        let (_, d_far) = exact_farthest(metric, q, 0..d.n()).unwrap();
        let (_, d_near) = exact_nearest(metric, q, 0..d.n()).unwrap();

        let run = |which: &str, seed0: u64| {
            let probabilistic = *probabilistic;
            run_reps(r, seed0, |seed| {
                let mut oracle = crowd_oracle(d, seed);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
                let params = AdvParams::experimental();
                let got = match which {
                    "far" if probabilistic => {
                        farthest_prob(&mut oracle, q, 0.1, &params, &mut rng).unwrap()
                    }
                    "far" => farthest_adv(&mut oracle, q, &params, &mut rng).unwrap(),
                    "far2" => farthest_tour2(&mut oracle, q, &mut rng).unwrap(),
                    "farS" => farthest_samp(&mut oracle, q, &mut rng).unwrap(),
                    "nn" if probabilistic => {
                        nearest_prob(&mut oracle, q, 0.1, &params, &mut rng).unwrap()
                    }
                    "nn" => nearest_adv(&mut oracle, q, &params, &mut rng).unwrap(),
                    "nn2" => nearest_tour2(&mut oracle, q, &mut rng).unwrap(),
                    "nnS" => nearest_samp(&mut oracle, q, &mut rng).unwrap(),
                    other => unreachable!("{other}"),
                };
                RepOutcome {
                    value: metric.dist(q, got),
                    queries: 0,
                }
            })
            .value
            .mean
        };

        far_table.row(&[
            d.name.into(),
            format!("{:.3}", run("far", 10) / d_far),
            format!("{:.3}", run("far2", 20) / d_far),
            format!("{:.3}", run("farS", 30) / d_far),
        ]);
        nn_table.row(&[
            d.name.into(),
            format!("{:.3}", run("nn", 40) / d_near),
            format!("{:.3}", run("nn2", 50) / d_near),
            format!("{:.3}", run("nnS", 60) / d_near),
        ]);
    }
    println!("{far_table}");
    println!("{nn_table}");
    println!("paper shape: ours ~1.0 everywhere; Tour2 > Samp on cities only; Samp worst for NN.");
}
