//! Criterion micro-benchmarks for the PR 3 distance plane: the scalar
//! kernel vs the blocked batch kernel vs the (rejected) norm-expansion
//! kernel vs `DistCache`-backed lookups, across the dimensionalities the
//! paper's datasets span (2-d cities, 8-d mid-range embeddings, 64-d
//! dblp-style embeddings).
//!
//! What to expect: the row scans are **load-bound** (two coordinate
//! streams per dimension), so `dist_sq_batch` matches the scalar kernel's
//! throughput while guaranteeing bit-equal outputs, and the
//! `‖a‖² + ‖b‖² − 2a·b` expansion — fewer flops on paper — buys nothing
//! (it measured ~2x *slower* here, which is why production kept the
//! bit-exact subtract-square form; this bench keeps that negative result
//! honest). A warm `DistCache` answers in O(1) regardless of `dim`,
//! which is why the oracle query plane caches distances and reserves the
//! kernels for first-touch evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use nco_metric::{CachedMetric, EuclideanMetric, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const N: usize = 512;

/// The rejected norm-expansion kernel, kept bench-local (with its own
/// precomputed norms — production dropped them along with the kernel):
/// squared distance via `‖a‖² + ‖b‖² − 2a·b`.
fn norm_expansion_row(
    metric: &EuclideanMetric,
    sq_norms: &[f64],
    anchor: usize,
    candidates: &[usize],
) -> f64 {
    let a = metric.point(anchor);
    let na = sq_norms[anchor];
    let mut acc = 0.0f64;
    for &c in candidates {
        let dot: f64 = a.iter().zip(metric.point(c)).map(|(x, y)| x * y).sum();
        acc += (na + sq_norms[c] - 2.0 * dot).max(0.0);
    }
    acc
}

fn points(dim: usize) -> EuclideanMetric {
    let mut rng = StdRng::seed_from_u64(0xD157 ^ dim as u64);
    let flat: Vec<f64> = (0..N * dim)
        .map(|_| rng.random_range(-50.0..50.0))
        .collect();
    EuclideanMetric::from_flat(flat, dim)
}

fn bench_dim(c: &mut Criterion, dim: usize) {
    let metric = points(dim);
    let candidates: Vec<usize> = (0..N).collect();
    let mut group = c.benchmark_group(&format!("dist_plane_d{dim}_n{N}"));
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    // One full anchor row (N squared distances), scalar kernel.
    group.bench_function("dist_sq_scalar_row", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &c in &candidates {
                acc += metric.dist_sq(7, c);
            }
            acc
        })
    });

    // Same row through the blocked batch kernel (bit-identical outputs).
    group.bench_function("dist_sq_batch_row", |b| {
        let mut out = Vec::with_capacity(N);
        b.iter(|| {
            out.clear();
            metric.dist_sq_batch(7, &candidates, &mut out);
            out.iter().sum::<f64>()
        })
    });

    // The rejected ‖a‖²+‖b‖²−2a·b form, for the record.
    group.bench_function("norm_expansion_row", |b| {
        let sq_norms: Vec<f64> = (0..N)
            .map(|i| metric.point(i).iter().map(|x| x * x).sum())
            .collect();
        b.iter(|| norm_expansion_row(&metric, &sq_norms, 7, &candidates))
    });

    // Same row answered by a warm DistCache (the steady-state shape of
    // every oracle query after the first touch).
    group.bench_function("dist_cache_warm_row", |b| {
        let cached = CachedMetric::new(metric.clone());
        for &c in &candidates {
            if c != 7 {
                let _ = cached.dist(7, c);
            }
        }
        b.iter(|| {
            let mut acc = 0.0f64;
            for &c in &candidates {
                acc += cached.dist(7, c);
            }
            acc
        })
    });

    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    for dim in [2usize, 8, 64] {
        bench_dim(c, dim);
    }
}

criterion_group!(dist_kernels, bench_kernels);
criterion_main!(dist_kernels);
