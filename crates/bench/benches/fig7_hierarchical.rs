//! Figure 7 — agglomerative hierarchical clustering quality under the
//! crowd oracle: mean true distance between merged clusters, normalised to
//! the exact (`TDist`) agglomeration, for single and complete linkage.
//!
//! Paper result: `HC` beats `Samp` and `Tour2` on every dataset;
//! `monuments` is easy for everyone (low noise); `Tour2` DNFs on `cities`
//! (its per-merge search is cubic overall). We model the paper's 48-hour
//! wall with a query budget of 10x our algorithm's own cost.

use nco_bench::{bench_amazon, bench_caltech, bench_cities, bench_monuments, crowd_oracle, scaled};
use nco_core::hier::baselines::{hier_samp, hier_tour2, Tour2Outcome};
use nco_core::hier::{hier_exact, hier_oracle, HierParams, Linkage};
use nco_data::Dataset;
use nco_eval::hier_eval::mean_merge_distance;
use nco_eval::Table;
use nco_oracle::counting::Counting;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // cities is the large one: big enough that the cubic Tour2 blows its
    // budget, mirroring the paper's DNF.
    let datasets: Vec<Dataset> = vec![
        bench_cities(scaled(900)),
        bench_caltech(scaled(350)),
        bench_monuments(100),
        bench_amazon(scaled(350)),
    ];

    for linkage in [Linkage::Single, Linkage::Complete] {
        let title = match linkage {
            Linkage::Single => "Figure 7(a) — single linkage, mean merge distance / TDist",
            Linkage::Complete => "Figure 7(b) — complete linkage, mean merge distance / TDist",
        };
        let mut table = Table::new(title, &["dataset", "TDist", "HC (ours)", "Tour2", "Samp"]);

        for d in &datasets {
            let metric = &d.metric;
            let exact = hier_exact(metric, linkage);
            let base = mean_merge_distance(&exact, metric, linkage).max(1e-12);

            let mut rng = StdRng::seed_from_u64(17);
            let mut oracle = Counting::new(crowd_oracle(d, 71));
            let ours = hier_oracle(&HierParams::experimental(linkage), &mut oracle, &mut rng);
            let ours_norm = mean_merge_distance(&ours, metric, linkage) / base;
            let our_queries = oracle.queries();

            let mut oracle = crowd_oracle(d, 72);
            let tour2_cell = match hier_tour2(
                linkage,
                our_queries.saturating_mul(10),
                &mut oracle,
                &mut rng,
            ) {
                Tour2Outcome::Finished(t) => {
                    format!("{:.2}", mean_merge_distance(&t, metric, linkage) / base)
                }
                Tour2Outcome::DidNotFinish { merges_done, .. } => {
                    format!("DNF({merges_done}m)")
                }
            };

            let mut oracle = crowd_oracle(d, 73);
            let samp = hier_samp(linkage, &mut oracle, &mut rng);
            let samp_norm = mean_merge_distance(&samp, metric, linkage) / base;

            table.row(&[
                format!("{} (n={})", d.name, d.n()),
                "1.00".into(),
                format!("{ours_norm:.2}"),
                tour2_cell,
                format!("{samp_norm:.2}"),
            ]);
        }
        println!("{table}");
    }
    println!("paper shape: HC closest to 1.00 on all datasets; monuments easy for everyone;");
    println!("Tour2 DNF on the large dataset (cities) at 10x our query budget (paper: 48 hrs).");
}
