//! Figure 9 — nearest-neighbour identification on `cities` vs. the noise
//! level (lower is better): (a) adversarial mu in {0, 0.5, 1, 2};
//! (b) probabilistic p in {0, 0.1, 0.3}.
//!
//! Paper result: `NN` is superior to `Tour2` at every noise level and its
//! quality does not worsen with the error; `Samp` is omitted from the
//! paper's plots ("as bad as 700 even in the absence of error") — we print
//! it anyway for completeness. The paper also reports ~53k queries for NN
//! on the 36K-record cities; our query column shows the same near-linear
//! scaling at our n.

use nco_bench::{bench_cities, reps, scaled};
use nco_core::maxfind::AdvParams;
use nco_core::neighbor::baselines::{nearest_samp, nearest_tour2};
use nco_core::neighbor::{nearest_adv, nearest_prob};
use nco_eval::experiment::{run_reps, RepOutcome};
use nco_eval::Table;
use nco_metric::stats::exact_nearest;
use nco_metric::Metric;
use nco_oracle::adversarial::{AdversarialQuadOracle, PersistentRandomAdversary};
use nco_oracle::counting::Counting;
use nco_oracle::probabilistic::ProbQuadOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled(2000);
    let r = reps(10);
    let d = bench_cities(n);
    let metric = &d.metric;
    let q = 0usize;
    let (_, d_opt) = exact_nearest(metric, q, 0..n).unwrap();
    println!("cities analogue n = {n}; true NN distance from record {q} = {d_opt:.3} (TDist)\n");

    let mut table = Table::new(
        "Figure 9(a) — NN distance vs. adversarial noise (absolute; TDist row first)",
        &["mu", "TDist", "NN (ours)", "Tour2", "Samp", "NN queries"],
    );
    for mu in [0.0, 0.5, 1.0, 2.0] {
        let ours = run_reps(r, 13, |seed| {
            let mut o = Counting::new(AdversarialQuadOracle::new(
                metric,
                mu,
                PersistentRandomAdversary::new(seed),
            ));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = nearest_adv(&mut o, q, &AdvParams::experimental(), &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got),
                queries: o.queries(),
            }
        });
        let t2 = run_reps(r, 13, |seed| {
            let mut o =
                AdversarialQuadOracle::new(metric, mu, PersistentRandomAdversary::new(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = nearest_tour2(&mut o, q, &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got),
                queries: 0,
            }
        });
        let sp = run_reps(r, 13, |seed| {
            let mut o =
                AdversarialQuadOracle::new(metric, mu, PersistentRandomAdversary::new(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = nearest_samp(&mut o, q, &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got),
                queries: 0,
            }
        });
        table.row(&[
            format!("{mu:.1}"),
            format!("{d_opt:.3}"),
            format!("{:.3}", ours.value.mean),
            format!("{:.3}", t2.value.mean),
            format!("{:.3}", sp.value.mean),
            format!("{:.0}", ours.mean_queries),
        ]);
    }
    println!("{table}");

    let mut table = Table::new(
        "Figure 9(b) — NN distance vs. probabilistic noise (absolute)",
        &["p", "TDist", "NN_p (ours)", "Tour2", "Samp", "NN_p queries"],
    );
    for p in [0.0, 0.1, 0.3] {
        let ours = run_reps(r, 19, |seed| {
            let mut o = Counting::new(ProbQuadOracle::new(metric, p, seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = nearest_prob(&mut o, q, 0.1, &AdvParams::experimental(), &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got),
                queries: o.queries(),
            }
        });
        let t2 = run_reps(r, 19, |seed| {
            let mut o = ProbQuadOracle::new(metric, p, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let got = nearest_tour2(&mut o, q, &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got),
                queries: 0,
            }
        });
        let sp = run_reps(r, 19, |seed| {
            let mut o = ProbQuadOracle::new(metric, p, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let got = nearest_samp(&mut o, q, &mut rng).unwrap();
            RepOutcome {
                value: metric.dist(q, got),
                queries: 0,
            }
        });
        table.row(&[
            format!("{p:.1}"),
            format!("{d_opt:.3}"),
            format!("{:.3}", ours.value.mean),
            format!("{:.3}", t2.value.mean),
            format!("{:.3}", sp.value.mean),
            format!("{:.0}", ours.mean_queries),
        ]);
    }
    println!("{table}");
    println!("paper shape: NN stays flat as noise grows; Tour2 grows with the error;");
    println!("Samp is catastrophic for NN (omitted from the paper's plots).");
}
