//! # nco-data — synthetic analogues of the paper's evaluation datasets
//!
//! The VLDB'21 evaluation (Section 6) runs on five real datasets: `cities`
//! (36K US cities), `caltech` (Caltech-256 images, 20 categories), `amazon`
//! (7K products with a catalog hierarchy), `monuments` (100 photos of 10
//! landmarks) and `dblp` (1.8M paper titles with word2vec embeddings). None
//! of those can be redistributed here, and the crowd answers that define
//! their oracles are gone — so, per the reproduction plan (DESIGN.md §3.3),
//! each is replaced by a **seeded generator that preserves the property the
//! paper's analysis leans on**:
//!
//! * [`cities`] — a *skewed* 2-D distance distribution with a near-unique
//!   farthest point (why `Samp` fails and `Tour2` does well there);
//! * [`caltech`] — a balanced 20-leaf category tree whose inter/intra
//!   distance ratio clears the crowd-accuracy cliff of Fig. 4(a)
//!   (adversarial noise model fits);
//! * [`amazon`] — an unbalanced catalog tree with heavy jitter and many
//!   near-ties at all ranges (probabilistic noise model fits, Fig. 4(b));
//! * [`monuments`] — 10 tight, well-separated clusters of 10 points;
//! * [`dblp`] — a high-dimensional Gaussian-mixture embedding cloud used for
//!   scaling experiments (Fig. 6(b,d), Table 2), size-configurable.
//!
//! Every generator is deterministic in `(n, seed)` and returns a
//! [`Dataset`]: the hidden metric, ground-truth cluster labels at one or two
//! granularities, and the minimum optimal-cluster size `m` that Algorithm 7
//! takes as a parameter.

pub mod generators;

pub use generators::{amazon, caltech, cities, dblp, monuments};

use nco_metric::{EuclideanMetric, MatrixMetric, Metric, TreeMetric};

/// A concrete metric that can back a dataset (keeps [`Dataset`] clonable
/// without trait objects).
#[derive(Debug, Clone)]
pub enum AnyMetric {
    /// Dense Euclidean points.
    Euclidean(EuclideanMetric),
    /// Category-hierarchy (jittered ultrametric) distances.
    Tree(TreeMetric),
    /// Explicit distance matrix.
    Matrix(MatrixMetric),
}

impl Metric for AnyMetric {
    fn len(&self) -> usize {
        match self {
            Self::Euclidean(m) => m.len(),
            Self::Tree(m) => m.len(),
            Self::Matrix(m) => m.len(),
        }
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        match self {
            Self::Euclidean(m) => m.dist(i, j),
            Self::Tree(m) => m.dist(i, j),
            Self::Matrix(m) => m.dist(i, j),
        }
    }
}

/// A generated dataset: hidden metric plus ground truth for evaluation.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short dataset name (`"cities"`, ...), used in experiment tables.
    pub name: &'static str,
    /// The hidden metric space. Algorithms access it only through oracles.
    pub metric: AnyMetric,
    /// Fine-grained ground-truth cluster labels (one per record), when the
    /// source defines them.
    pub labels: Option<Vec<usize>>,
    /// Coarser second granularity (e.g. top-level catalog categories),
    /// when the hierarchy defines one.
    pub coarse_labels: Option<Vec<usize>>,
    /// Size of the smallest ground-truth cluster — Algorithm 7's `m`.
    pub min_cluster_size: usize,
}

impl Dataset {
    /// Number of records.
    pub fn n(&self) -> usize {
        self.metric.len()
    }

    /// Number of distinct fine-grained clusters (0 when unlabeled).
    pub fn k_true(&self) -> usize {
        self.labels.as_ref().map(|l| distinct(l)).unwrap_or(0)
    }

    /// Number of distinct coarse clusters (0 when absent).
    pub fn k_coarse(&self) -> usize {
        self.coarse_labels
            .as_ref()
            .map(|l| distinct(l))
            .unwrap_or(0)
    }
}

fn distinct(labels: &[usize]) -> usize {
    let mut seen: Vec<usize> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_accessors() {
        let d = monuments(100, 7);
        assert_eq!(d.n(), 100);
        assert_eq!(d.k_true(), 10);
        assert_eq!(d.min_cluster_size, 10);
        assert_eq!(d.name, "monuments");
        assert_eq!(d.k_coarse(), 0);
    }
}
