//! Seeded dataset generators. See the crate docs for the mapping between
//! each generator and the real dataset it substitutes.

use crate::{AnyMetric, Dataset};
use nco_metric::{EuclideanMetric, TreeMetric, TreeMetricBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard normal via Box–Muller (keeps us off the `rand_distr` crate).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn min_cluster_size(labels: &[usize]) -> usize {
    let k = labels.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    counts.into_iter().filter(|&c| c > 0).min().unwrap_or(0)
}

/// `cities` analogue: skewed 2-D point cloud (metros + remote outposts).
///
/// Mirrors the US-cities geometry the paper relies on: most records sit in a
/// handful of dense metro areas inside a "continental" box, while a small
/// remote group (the Alaska/Hawaii role) creates a heavily skewed pairwise
/// distance distribution and a near-unique answer to farthest-point queries
/// — the reason `Samp` misses the optimum there (Section 6.3).
///
/// # Panics
/// Panics if `n < 40`.
pub fn cities(n: usize, seed: u64) -> Dataset {
    assert!(n >= 40, "cities needs n >= 40, got {n}");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc171_e500);
    // ~12 metros with Zipf-ish weights inside [0, 100]^2.
    let metros = 12usize;
    let centers: Vec<(f64, f64)> = (0..metros)
        .map(|_| (rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
        .collect();
    let weights: Vec<f64> = (1..=metros).map(|r| 1.0 / r as f64).collect();
    let wsum: f64 = weights.iter().sum();

    // A remote outpost far outside the box: ~1% of records, at least 5.
    let outpost = (420.0, 380.0);
    let n_outpost = (n / 100).max(5);
    let n_metro = n - n_outpost;

    let mut pts = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n_metro {
        let mut pick = rng.random::<f64>() * wsum;
        let mut m = 0;
        while m + 1 < metros && pick > weights[m] {
            pick -= weights[m];
            m += 1;
        }
        let (cx, cy) = centers[m];
        pts.push(vec![
            cx + 1.5 * normal(&mut rng),
            cy + 1.5 * normal(&mut rng),
        ]);
        labels.push(m);
    }
    for _ in 0..n_outpost {
        pts.push(vec![
            outpost.0 + 1.5 * normal(&mut rng),
            outpost.1 + 1.5 * normal(&mut rng),
        ]);
        labels.push(metros);
    }

    let min = min_cluster_size(&labels);
    Dataset {
        name: "cities",
        metric: AnyMetric::Euclidean(EuclideanMetric::from_points(&pts)),
        labels: Some(labels),
        coarse_labels: None,
        min_cluster_size: min,
    }
}

/// `caltech` analogue: a balanced 20-category hierarchy with sharp
/// separation.
///
/// Ten top-level groups of two leaf categories each, so both the paper's
/// `k = 10` and `k = 20` Table 1 settings have a matching ground-truth
/// granularity (coarse and fine labels). Level distances are chosen so
/// that any cross-category comparison clears the crowd-accuracy cliff at
/// ratio 1.45 (Fig. 4(a)): intra-leaf distances stay below
/// `1 + jitter <= 1.4` while the next level starts at 4.0.
///
/// # Panics
/// Panics if `n < 40` (need at least two records per leaf category).
pub fn caltech(n: usize, seed: u64) -> Dataset {
    assert!(n >= 40, "caltech needs n >= 40, got {n}");
    let mut b = TreeMetricBuilder::new(vec![10.0, 4.0, 1.0])
        .jitter(0.4)
        .seed(seed ^ 0x0ca1_7ec4);
    let mut labels = Vec::with_capacity(n);
    let mut coarse = Vec::with_capacity(n);
    for i in 0..n {
        // Round-robin over 20 leaves keeps categories balanced like
        // Caltech-256 subsets.
        let leaf = i % 20;
        let (top, sub) = ((leaf / 2) as u16, (leaf % 2) as u16);
        b.record(&[top, sub]);
        labels.push(leaf);
        coarse.push(leaf / 2);
    }
    let min = min_cluster_size(&labels);
    Dataset {
        name: "caltech",
        metric: AnyMetric::Tree(finish_tree(b)),
        labels: Some(labels),
        coarse_labels: Some(coarse),
        min_cluster_size: min,
    }
}

/// `amazon` analogue: an unbalanced catalog hierarchy with pervasive
/// near-ties.
///
/// Seven departments with two leaf categories each (so the paper's Table 1
/// settings `k = 7` and `k = 14` align with the coarse and fine labels).
/// Department sizes are Zipf-skewed, level gaps are narrow and the jitter is
/// large, producing comparable distances at *every* range — the regime the
/// paper identifies as probabilistic noise (Fig. 4(b)).
///
/// # Panics
/// Panics if `n < 70`.
pub fn amazon(n: usize, seed: u64) -> Dataset {
    assert!(n >= 70, "amazon needs n >= 70, got {n}");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00a3_a20e);
    let mut b = TreeMetricBuilder::new(vec![8.0, 6.6, 5.4])
        .jitter(1.1)
        .seed(seed ^ 0x00a3_a20f);
    let deps = 7usize;
    let weights: Vec<f64> = (1..=deps).map(|r| 1.0 / (r as f64).sqrt()).collect();
    let wsum: f64 = weights.iter().sum();
    let mut labels = Vec::with_capacity(n);
    let mut coarse = Vec::with_capacity(n);
    // Guarantee >= 5 records per leaf first, then fill Zipf-style.
    let mut plan: Vec<usize> = Vec::with_capacity(n);
    for leaf in 0..(deps * 2) {
        plan.extend(std::iter::repeat_n(leaf, 5));
    }
    while plan.len() < n {
        let mut pick = rng.random::<f64>() * wsum;
        let mut d = 0;
        while d + 1 < deps && pick > weights[d] {
            pick -= weights[d];
            d += 1;
        }
        let leaf = d * 2 + rng.random_range(0..2usize);
        plan.push(leaf);
    }
    plan.truncate(n);
    for &leaf in &plan {
        let (top, sub) = ((leaf / 2) as u16, (leaf % 2) as u16);
        b.record(&[top, sub]);
        labels.push(leaf);
        coarse.push(leaf / 2);
    }
    let min = min_cluster_size(&labels);
    Dataset {
        name: "amazon",
        metric: AnyMetric::Tree(finish_tree(b)),
        labels: Some(labels),
        coarse_labels: Some(coarse),
        min_cluster_size: min,
    }
}

/// `monuments` analogue: 10 tight, well-separated landmark clusters.
///
/// # Panics
/// Panics if `n < 20`.
pub fn monuments(n: usize, seed: u64) -> Dataset {
    assert!(n >= 20, "monuments needs n >= 20, got {n}");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0a0b_0c0d);
    let k = 10usize;
    let mut pts = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        let angle = std::f64::consts::TAU * c as f64 / k as f64;
        let (cx, cy) = (50.0 * angle.cos(), 50.0 * angle.sin());
        pts.push(vec![cx + normal(&mut rng), cy + normal(&mut rng)]);
        labels.push(c);
    }
    let min = min_cluster_size(&labels);
    Dataset {
        name: "monuments",
        metric: AnyMetric::Euclidean(EuclideanMetric::from_points(&pts)),
        labels: Some(labels),
        coarse_labels: None,
        min_cluster_size: min,
    }
}

/// `dblp` analogue: high-dimensional Gaussian-mixture embeddings.
///
/// Stands in for the word2vec phrase embeddings of the 1.8M-title corpus;
/// `n` is configurable so Table 2's scaling harness can sweep it. Fifty
/// topic components in 16 dimensions give the moderate cluster structure of
/// embedding spaces (no sharp separations, no extreme skew).
///
/// # Panics
/// Panics if `n < 100`.
pub fn dblp(n: usize, seed: u64) -> Dataset {
    assert!(n >= 100, "dblp needs n >= 100, got {n}");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdb17);
    let dim = 16usize;
    let topics = 50usize;
    let means: Vec<Vec<f64>> = (0..topics)
        .map(|_| (0..dim).map(|_| 6.0 * normal(&mut rng)).collect())
        .collect();
    let mut pts = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let t = i % topics;
        let p: Vec<f64> = means[t]
            .iter()
            .map(|&m| m + 1.5 * normal(&mut rng))
            .collect();
        pts.push(p);
        labels.push(t);
    }
    let min = min_cluster_size(&labels);
    Dataset {
        name: "dblp",
        metric: AnyMetric::Euclidean(EuclideanMetric::from_points(&pts)),
        labels: Some(labels),
        coarse_labels: None,
        min_cluster_size: min,
    }
}

fn finish_tree(b: TreeMetricBuilder) -> TreeMetric {
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::stats::distance_skew_sample;
    use nco_metric::Metric;

    #[test]
    fn generators_are_deterministic() {
        let a = cities(200, 5);
        let b = cities(200, 5);
        for i in 0..10 {
            assert_eq!(a.metric.dist(i, i + 10), b.metric.dist(i, i + 10));
        }
        let c = cities(200, 6);
        assert!((0..10).any(|i| a.metric.dist(i, i + 10) != c.metric.dist(i, i + 10)));
    }

    #[test]
    fn cities_is_skewed_amazon_is_not() {
        let c = cities(600, 1);
        let a = amazon(600, 1);
        let skew_c = distance_skew_sample(&c.metric, 4000, 9);
        let skew_a = distance_skew_sample(&a.metric, 4000, 9);
        assert!(
            skew_c > 2.0 * skew_a,
            "cities skew {skew_c} should dwarf amazon skew {skew_a}"
        );
    }

    #[test]
    fn caltech_clears_the_crowd_cliff() {
        let d = caltech(200, 3);
        let labels = d.labels.as_ref().unwrap();
        let mut max_intra = 0.0f64;
        let mut min_inter = f64::INFINITY;
        for i in 0..d.n() {
            for j in (i + 1)..d.n() {
                let dist = d.metric.dist(i, j);
                if labels[i] == labels[j] {
                    max_intra = max_intra.max(dist);
                } else {
                    min_inter = min_inter.min(dist);
                }
            }
        }
        assert!(
            min_inter / max_intra > 1.45,
            "caltech separation {min_inter}/{max_intra} must clear the 1.45 cliff"
        );
    }

    #[test]
    fn amazon_has_near_ties_at_all_ranges() {
        let d = amazon(300, 3);
        // Cross-department and within-department distances overlap: the
        // largest intra-leaf distance exceeds the smallest cross-department
        // distance divided by the 1.45 cliff -> persistent confusion.
        let t = match &d.metric {
            AnyMetric::Tree(t) => t,
            _ => unreachable!(),
        };
        let mut max_leaf = 0.0f64;
        let mut min_cross = f64::INFINITY;
        for i in 0..d.n() {
            for j in (i + 1)..d.n() {
                let dist = d.metric.dist(i, j);
                match t.lca_depth(i, j) {
                    2 => max_leaf = max_leaf.max(dist),
                    0 => min_cross = min_cross.min(dist),
                    _ => {}
                }
            }
        }
        assert!(
            min_cross / max_leaf < 1.45,
            "amazon must stay confusable: {min_cross} / {max_leaf}"
        );
    }

    #[test]
    fn label_granularities_line_up() {
        let d = amazon(300, 2);
        assert_eq!(d.k_true(), 14);
        assert_eq!(d.k_coarse(), 7);
        let c = caltech(200, 2);
        assert_eq!(c.k_true(), 20);
        assert_eq!(c.k_coarse(), 10);
        assert!(d.min_cluster_size >= 5);
    }

    #[test]
    fn dblp_sizes_scale() {
        let d = dblp(500, 4);
        assert_eq!(d.n(), 500);
        assert_eq!(d.k_true(), 50);
        assert!(d.min_cluster_size >= 10);
    }

    #[test]
    fn cities_outpost_dominates_farthest_queries() {
        let d = cities(400, 8);
        let labels = d.labels.as_ref().unwrap();
        let outpost_label = *labels.iter().max().unwrap();
        // The true farthest point from any metro record is in the outpost.
        let q = labels.iter().position(|&l| l != outpost_label).unwrap();
        let far = nco_metric::stats::exact_farthest(&d.metric, q, 0..d.n()).unwrap();
        assert_eq!(labels[far.0], outpost_label);
    }
}
