//! # nco-oracle — noisy comparison and quadruplet oracles
//!
//! This crate implements the oracle substrate of *How to Design Robust
//! Algorithms using Noisy Comparison Oracle* (VLDB 2021): the only interface
//! through which the paper's algorithms may touch the ground truth.
//!
//! Two query interfaces (Definitions 2.1 and 2.3 of the paper):
//!
//! * [`ComparisonOracle`] — `le(i, j)` answers *"is value(i) <= value(j)?"*
//!   over records with hidden scalar values;
//! * [`QuadrupletOracle`] — `le(a, b, c, d)` answers *"is d(a,b) <= d(c,d)?"*
//!   over records in a hidden metric space.
//!
//! Three noise regimes (Section 2.2), each available for both interfaces:
//!
//! * **exact** ([`value::TrueValueOracle`], [`quadruplet::TrueQuadOracle`]) —
//!   always correct; the `mu = 0` / `p = 0` degenerate case;
//! * **adversarial** ([`adversarial`]) — answers may be arbitrarily wrong
//!   whenever the two compared quantities are within a multiplicative
//!   `(1 + mu)` band (an additive-band variant lives in [`additive`]); the
//!   in-band behaviour is delegated to a pluggable, possibly stateful
//!   [`adversarial::Adversary`] strategy;
//! * **probabilistic persistent** ([`probabilistic`]) — each distinct query
//!   is wrong with probability `p < 1/2`, and *re-asking it returns the same
//!   answer*, so repetition cannot boost confidence.
//!
//! [`crowd`] simulates the paper's AMT user study (Section 6.2): worker
//! accuracy is a function of the ratio between the compared distances, and a
//! majority over three persistent workers answers each query. It also stands
//! in for the actively-trained classifier the paper uses at scale.
//! [`cluster_query`] provides the noisy *optimal cluster* ("same cluster?")
//! pairwise oracle used by the `Oq` baseline, [`counting`] wraps any
//! oracle to meter query complexity, and [`budget`] adds a hard query
//! budget on top of the meter (the enforcement layer behind the facade's
//! `Session` front door).

pub mod additive;
pub mod adversarial;
pub mod budget;
pub mod cluster_query;
pub mod counting;
pub mod crowd;
pub mod fault;
pub mod memo;
pub mod persistent;
pub mod probabilistic;
pub mod probe;
pub mod quadruplet;
pub mod value;

pub use budget::{BudgetPool, Budgeted, SharedBudgeted, OVER_BUDGET_ANSWER};
pub use counting::{Counting, SharedCounting};
pub use fault::{FaultPlan, FaultStats, FaultyOracle, QueryFault, RetryPolicy, Retrying};
pub use memo::MemoOracle;
pub use persistent::{PersistentNoise, SharedComparisonOracle, SharedQuadrupletOracle};
pub use probe::{NoiseEstimate, ProbeOracle, ProbePlan, ProbeStats};
pub use quadruplet::TrueQuadOracle;
pub use value::TrueValueOracle;

/// A (possibly noisy) comparison oracle over records with hidden values
/// (Definition 2.1).
pub trait ComparisonOracle {
    /// Number of records the oracle knows about.
    fn n(&self) -> usize;

    /// Answers *"is value(i) <= value(j)?"* — `true` encodes the paper's
    /// `Yes`. Answers may be noisy; for persistent models, identical queries
    /// always return identical answers.
    fn le(&mut self, i: usize, j: usize) -> bool;

    /// Answers one **round** of queries, appending one answer per query to
    /// `out` in query order.
    ///
    /// The paper's algorithms already issue their comparisons in rounds
    /// (scoring triangles, committee votes, candidate scans); this is the
    /// entry point that lets an oracle amortise shared work across the
    /// round. The contract is strict: the answers (and, for metered
    /// oracles, the query count) must be **bit-identical** to calling
    /// [`ComparisonOracle::le`] once per query in order — the default does
    /// exactly that, and every override is pinned against it in
    /// `tests/perf_equivalence.rs`.
    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        out.reserve(queries.len());
        for &(i, j) in queries {
            let ans = self.le(i, j);
            out.push(ans);
        }
    }

    /// Fallible variant of [`ComparisonOracle::le`]: an unreliable oracle
    /// may refuse an ask with a [`QueryFault`] instead of answering.
    ///
    /// The default never fails — every pre-existing oracle is perfectly
    /// available and compiles untouched. Only [`fault::FaultyOracle`]
    /// surfaces faults, and only recovery layers ([`fault::Retrying`])
    /// need to call this; metering wrappers forward it so fault-aware and
    /// infallible stacks bill identically.
    fn try_le(&mut self, i: usize, j: usize) -> Result<bool, QueryFault> {
        Ok(self.le(i, j))
    }

    /// Fallible variant of [`ComparisonOracle::le_batch`]: appends one
    /// `Result` per query in query order; individual lanes may fault
    /// while the rest of the round answers.
    ///
    /// Same contract as `le_batch` on the `Ok` lanes, and the default —
    /// one infallible round, every lane `Ok` — keeps every existing
    /// oracle compiling untouched.
    fn try_le_batch(
        &mut self,
        queries: &[(usize, usize)],
        out: &mut Vec<Result<bool, QueryFault>>,
    ) {
        let mut answers = Vec::with_capacity(queries.len());
        self.le_batch(queries, &mut answers);
        out.reserve(answers.len());
        out.extend(answers.into_iter().map(Ok));
    }

    /// `true` once this oracle stack can no longer return real answers —
    /// the run is *doomed*: a budget cap or deadline tripped, a retry
    /// policy exhausted its attempts, or a serving pool starved. From that
    /// point every answer is a deterministic refusal constant, so callers
    /// tracking "clean progress" watermarks should stop advancing them.
    ///
    /// Purely observational: implementations must not issue queries or
    /// mutate state. The default — never doomed — keeps every infallible
    /// oracle compiling untouched; enforcement layers ([`Budgeted`],
    /// [`Retrying`]) override it and metering wrappers forward it.
    fn doomed(&self) -> bool {
        false
    }
}

/// A (possibly noisy) quadruplet oracle over records in a hidden metric
/// space (Definition 2.3).
pub trait QuadrupletOracle {
    /// Number of records the oracle knows about.
    fn n(&self) -> usize;

    /// Answers *"is d(a,b) <= d(c,d)?"* — `true` encodes the paper's `Yes`.
    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool;

    /// Answers one **round** of quadruplet queries `[a, b, c, d]`,
    /// appending one answer per query to `out` in query order.
    ///
    /// Same contract as [`ComparisonOracle::le_batch`]: bit-identical to
    /// the scalar loop, which the default is. Distance-backed oracles
    /// override this to evaluate each distinct record pair's distance once
    /// per round (distances are pure functions of the pair, so deduplicating
    /// them cannot change a truth bit), while noise coins are drawn in
    /// serial query order so transcripts are unchanged.
    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        out.reserve(queries.len());
        for &[a, b, c, d] in queries {
            let ans = self.le(a, b, c, d);
            out.push(ans);
        }
    }

    /// Fallible variant of [`QuadrupletOracle::le`]; see
    /// [`ComparisonOracle::try_le`]. The default never fails.
    fn try_le(&mut self, a: usize, b: usize, c: usize, d: usize) -> Result<bool, QueryFault> {
        Ok(self.le(a, b, c, d))
    }

    /// Fallible variant of [`QuadrupletOracle::le_batch`]; see
    /// [`ComparisonOracle::try_le_batch`]. The default answers one
    /// infallible round with every lane `Ok`.
    fn try_le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<Result<bool, QueryFault>>) {
        let mut answers = Vec::with_capacity(queries.len());
        self.le_batch(queries, &mut answers);
        out.reserve(answers.len());
        out.extend(answers.into_iter().map(Ok));
    }

    /// `true` once this oracle stack can no longer return real answers;
    /// see [`ComparisonOracle::doomed`]. The default is never doomed.
    fn doomed(&self) -> bool {
        false
    }
}

impl<O: ComparisonOracle + ?Sized> ComparisonOracle for &mut O {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn le(&mut self, i: usize, j: usize) -> bool {
        (**self).le(i, j)
    }
    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        (**self).le_batch(queries, out);
    }
    fn try_le(&mut self, i: usize, j: usize) -> Result<bool, QueryFault> {
        (**self).try_le(i, j)
    }
    fn try_le_batch(
        &mut self,
        queries: &[(usize, usize)],
        out: &mut Vec<Result<bool, QueryFault>>,
    ) {
        (**self).try_le_batch(queries, out);
    }
    fn doomed(&self) -> bool {
        (**self).doomed()
    }
}

impl<O: QuadrupletOracle + ?Sized> QuadrupletOracle for &mut O {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        (**self).le(a, b, c, d)
    }
    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        (**self).le_batch(queries, out);
    }
    fn try_le(&mut self, a: usize, b: usize, c: usize, d: usize) -> Result<bool, QueryFault> {
        (**self).try_le(a, b, c, d)
    }
    fn try_le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<Result<bool, QueryFault>>) {
        (**self).try_le_batch(queries, out);
    }
    fn doomed(&self) -> bool {
        (**self).doomed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutable_reference_forwarding() {
        let mut o = TrueValueOracle::new(vec![1.0, 2.0]);
        fn takes_oracle<O: ComparisonOracle>(o: &mut O) -> bool {
            o.le(0, 1)
        }
        assert!(takes_oracle(&mut &mut o));
        assert_eq!(o.n(), 2);
    }
}
