//! The exact quadruplet oracle over a hidden metric space.

use crate::persistent::{PersistentNoise, SharedQuadrupletOracle};
use crate::QuadrupletOracle;
use nco_metric::Metric;

/// A perfect quadruplet oracle: compares true pairwise distances.
#[derive(Debug, Clone)]
pub struct TrueQuadOracle<M> {
    metric: M,
}

impl<M: Metric> TrueQuadOracle<M> {
    /// Builds an oracle over the given hidden metric.
    pub fn new(metric: M) -> Self {
        Self { metric }
    }

    /// The hidden metric (for evaluators and tests only).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Consumes the oracle, returning the metric.
    pub fn into_metric(self) -> M {
        self.metric
    }
}

impl<M: Metric> QuadrupletOracle for TrueQuadOracle<M> {
    fn n(&self) -> usize {
        self.metric.len()
    }

    #[inline]
    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.metric.dist(a, b) <= self.metric.dist(c, d)
    }

    /// Batched round. Distance sharing lives one layer down (wrap the
    /// metric in `nco_metric::DistCache`); this loop keeps the answer
    /// sequence trivially identical to the scalar path.
    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        out.reserve(queries.len());
        for &[a, b, c, d] in queries {
            let ans = self.metric.dist(a, b) <= self.metric.dist(c, d);
            out.push(ans);
        }
    }
}

impl<M: Metric + Sync> SharedQuadrupletOracle for TrueQuadOracle<M> {
    #[inline]
    fn le_shared(&self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.metric.dist(a, b) <= self.metric.dist(c, d)
    }
}

impl<M: Metric> PersistentNoise for TrueQuadOracle<M> {}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;

    #[test]
    fn compares_true_distances() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![5.0]]);
        let mut o = TrueQuadOracle::new(m);
        assert_eq!(o.n(), 3);
        assert!(o.le(0, 1, 0, 2)); // 1 <= 5
        assert!(!o.le(0, 2, 1, 2)); // 5 > 4
        assert!(o.le(1, 0, 0, 1)); // symmetric pairs tie -> Yes
        assert_eq!(o.metric().len(), 3);
    }
}
