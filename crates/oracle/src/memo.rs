//! Query memoisation — semantically exact caching under persistent noise.
//!
//! Under the persistent models of Section 2.2, repeating a query returns
//! the same bit, so a cache in front of the oracle changes *nothing* but
//! speed: the algorithms see the identical answer sequence while repeated
//! queries skip the (hash / distance-evaluation / crowd-simulation) work.
//! [`MemoOracle`] is that cache; its constructor requires the
//! [`PersistentNoise`] marker so a
//! non-persistent oracle cannot be wrapped by accident.
//!
//! Storage is sized to the query space:
//!
//! * **comparison queries** live in a condensed triangular table with one
//!   nibble per unordered record pair — 2 bits (`known`, `answer`) for
//!   each of the two query directions, `n (n - 1) / 4` bytes total. No
//!   complement assumption is made between `le(i, j)` and `le(j, i)`: the
//!   two directions are cached independently, which keeps the cache exact
//!   even for adversarial in-band behaviour where mirrored queries need
//!   not be complementary (e.g. ties under `InvertAdversary`).
//! * **quadruplet queries** range over pairs of record pairs — far too
//!   many for a dense triangle at interesting `n` — so they live in an
//!   open-addressed table keyed by the four indices packed into one `u64`
//!   (16 bits each). Only the *within-pair* order is canonicalised
//!   (`d` is symmetric for every metric), never the pair-of-pairs order.

use crate::fault::QueryFault;
use crate::persistent::PersistentNoise;
use crate::{ComparisonOracle, QuadrupletOracle};

/// Condensed triangular nibble table: per unordered pair `i < j`, bits
/// `known`/`answer` for the forward query `(i, j)` and the reverse query
/// `(j, i)`.
#[derive(Debug, Clone)]
struct PairMemo {
    n: usize,
    nibbles: Vec<u8>,
}

const FWD_KNOWN: u8 = 0b0001;
const FWD_ANS: u8 = 0b0010;
const REV_KNOWN: u8 = 0b0100;
const REV_ANS: u8 = 0b1000;

impl PairMemo {
    fn new(n: usize) -> Self {
        let pairs = n * n.saturating_sub(1) / 2;
        Self {
            n,
            nibbles: vec![0u8; pairs.div_ceil(2)],
        }
    }

    /// Condensed index of the unordered pair `i < j`.
    #[inline]
    fn tri(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    #[inline]
    fn get(&self, t: usize, forward: bool) -> Option<bool> {
        let nib = (self.nibbles[t >> 1] >> ((t & 1) << 2)) & 0xF;
        let (known, ans) = if forward {
            (FWD_KNOWN, FWD_ANS)
        } else {
            (REV_KNOWN, REV_ANS)
        };
        if nib & known != 0 {
            Some(nib & ans != 0)
        } else {
            None
        }
    }

    #[inline]
    fn set(&mut self, t: usize, forward: bool, answer: bool) {
        let (known, ans) = if forward {
            (FWD_KNOWN, FWD_ANS)
        } else {
            (REV_KNOWN, REV_ANS)
        };
        let bits = known | if answer { ans } else { 0 };
        self.nibbles[t >> 1] |= bits << ((t & 1) << 2);
    }
}

/// Open-addressed (linear probing) map from packed quadruplet keys to one
/// answer bit. Keys pack four 16-bit indices; `u64::MAX` is the empty
/// sentinel (unreachable: it would require the two canonical pairs to be
/// identical, which is short-circuited before lookup).
#[derive(Debug, Clone)]
struct QuadMemo {
    keys: Vec<u64>,
    answers: Vec<u64>,
    len: usize,
}

const EMPTY: u64 = u64::MAX;

#[inline]
fn hash_key(key: u64) -> u64 {
    nco_metric::hashing::splitmix64(key)
}

impl QuadMemo {
    fn new() -> Self {
        Self {
            keys: vec![EMPTY; 64],
            answers: vec![0; 1],
            len: 0,
        }
    }

    #[inline]
    fn get(&self, key: u64) -> Option<bool> {
        let mask = self.keys.len() - 1;
        let mut slot = (hash_key(key) as usize) & mask;
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(self.answers[slot >> 6] >> (slot & 63) & 1 != 0);
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    #[inline]
    fn insert(&mut self, key: u64, answer: bool) {
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = (hash_key(key) as usize) & mask;
        while self.keys[slot] != EMPTY {
            debug_assert_ne!(self.keys[slot], key, "double insert");
            slot = (slot + 1) & mask;
        }
        self.keys[slot] = key;
        if answer {
            self.answers[slot >> 6] |= 1u64 << (slot & 63);
        }
        self.len += 1;
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_answers = std::mem::take(&mut self.answers);
        let cap = old_keys.len() * 2;
        self.keys = vec![EMPTY; cap];
        self.answers = vec![0u64; cap.div_ceil(64)];
        self.len = 0;
        for (slot, &k) in old_keys.iter().enumerate() {
            if k != EMPTY {
                let ans = old_answers[slot >> 6] >> (slot & 63) & 1 != 0;
                self.insert(k, ans);
            }
        }
    }
}

/// A memoising decorator for persistent oracles.
///
/// Exact by construction: a cache hit returns the bit the wrapped oracle
/// is guaranteed (by [`PersistentNoise`]) to have produced again, so an
/// algorithm running over `MemoOracle<O>` makes exactly the decisions it
/// would make over `O` — only faster. Degenerate self-comparisons
/// (`le(i, i)`, identical canonical pairs) are forwarded uncached; they
/// cost the wrapped oracle nothing anyway.
#[derive(Debug, Clone)]
pub struct MemoOracle<O> {
    inner: O,
    pairs: Option<PairMemo>,
    quads: Option<QuadMemo>,
    hits: u64,
    lookups: u64,
}

impl<O: PersistentNoise> MemoOracle<O> {
    /// Wraps a persistent oracle with an (initially empty) answer cache.
    ///
    /// Tables are allocated lazily per interface: wrapping a comparison
    /// oracle costs `n (n - 1) / 4` bytes on first query; quadruplet
    /// queries grow a hash table with the distinct-query count.
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            pairs: None,
            quads: None,
            hits: 0,
            lookups: 0,
        }
    }

    /// Cache hits so far (queries answered without touching the oracle).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total cacheable lookups so far (hits plus misses).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Immutable access to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the oracle, dropping the cache.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

/// A query's fate within one batched round: answered from the memo, or
/// waiting on slot `k` of the deduplicated miss round.
enum Slot {
    Done(bool),
    Pending(usize),
}

impl<O: ComparisonOracle + PersistentNoise> ComparisonOracle for MemoOracle<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, i: usize, j: usize) -> bool {
        if i == j {
            return self.inner.le(i, j);
        }
        let n = self.inner.n();
        let memo = self.pairs.get_or_insert_with(|| PairMemo::new(n));
        let forward = i < j;
        let t = if forward {
            memo.tri(i, j)
        } else {
            memo.tri(j, i)
        };
        self.lookups += 1;
        if let Some(ans) = memo.get(t, forward) {
            self.hits += 1;
            return ans;
        }
        let ans = self.inner.le(i, j);
        self.pairs
            .as_mut()
            .expect("just inserted")
            .set(t, forward, ans);
        ans
    }

    /// One memoised round: cached queries answer from the table, the
    /// remaining **first occurrences** (plus uncached degenerates) forward
    /// as a single deduplicated inner round, in query order. Exactly one
    /// inner `le_batch` per outer call — even when every query hits — so a
    /// round-billing layer *inside* the memo (the facade's `Budgeted`)
    /// counts the same rounds it would without memoisation. Answers, hit
    /// and lookup tallies, and the cached table state are bit-identical to
    /// the scalar decomposition: a duplicate later in the batch counts as
    /// the hit it would have been against the freshly cached first answer.
    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        if queries.is_empty() {
            self.inner.le_batch(queries, out);
            return;
        }
        if self.pairs.is_none() {
            self.pairs = Some(PairMemo::new(self.inner.n()));
        }
        let memo = self.pairs.as_ref().expect("inserted above");
        let mut slots: Vec<Slot> = Vec::with_capacity(queries.len());
        let mut misses: Vec<(usize, usize)> = Vec::new();
        // Miss slot -> table cell it fills afterwards (None: degenerate,
        // forwarded uncached), plus a batch-local index for dedup.
        let mut cache_into: Vec<Option<(usize, bool)>> = Vec::new();
        let mut open: std::collections::HashMap<(usize, bool), usize> =
            std::collections::HashMap::new();
        let (mut lookups, mut hits) = (0u64, 0u64);
        for &(i, j) in queries {
            if i == j {
                cache_into.push(None);
                slots.push(Slot::Pending(misses.len()));
                misses.push((i, j));
                continue;
            }
            let forward = i < j;
            let t = if forward {
                memo.tri(i, j)
            } else {
                memo.tri(j, i)
            };
            lookups += 1;
            if let Some(ans) = memo.get(t, forward) {
                hits += 1;
                slots.push(Slot::Done(ans));
            } else if let Some(&k) = open.get(&(t, forward)) {
                hits += 1;
                slots.push(Slot::Pending(k));
            } else {
                open.insert((t, forward), misses.len());
                cache_into.push(Some((t, forward)));
                slots.push(Slot::Pending(misses.len()));
                misses.push((i, j));
            }
        }
        self.lookups += lookups;
        self.hits += hits;
        let mut answers = Vec::with_capacity(misses.len());
        self.inner.le_batch(&misses, &mut answers);
        let memo = self.pairs.as_mut().expect("inserted above");
        for (k, target) in cache_into.iter().enumerate() {
            if let Some((t, forward)) = *target {
                memo.set(t, forward, answers[k]);
            }
        }
        out.reserve(queries.len());
        out.extend(slots.iter().map(|s| match *s {
            Slot::Done(ans) => ans,
            Slot::Pending(k) => answers[k],
        }));
    }

    /// Fallible twin of the scalar path: a hit answers for free, a miss
    /// forwards the fallible ask, and — crucially — a faulted miss is
    /// **never cached**, so a retry layer outside the memo re-asks and
    /// caches the real bit instead of poisoning the table.
    fn try_le(&mut self, i: usize, j: usize) -> Result<bool, QueryFault> {
        if i == j {
            return self.inner.try_le(i, j);
        }
        let n = self.inner.n();
        let memo = self.pairs.get_or_insert_with(|| PairMemo::new(n));
        let forward = i < j;
        let t = if forward {
            memo.tri(i, j)
        } else {
            memo.tri(j, i)
        };
        self.lookups += 1;
        if let Some(ans) = memo.get(t, forward) {
            self.hits += 1;
            return Ok(ans);
        }
        let ans = self.inner.try_le(i, j)?;
        self.pairs
            .as_mut()
            .expect("just inserted")
            .set(t, forward, ans);
        Ok(ans)
    }

    /// Fallible twin of the batched round: same single deduplicated inner
    /// round and identical tallies on the all-`Ok` path, but only `Ok`
    /// miss lanes are cached, and every duplicate of a faulted miss
    /// reports that lane's fault.
    fn try_le_batch(
        &mut self,
        queries: &[(usize, usize)],
        out: &mut Vec<Result<bool, QueryFault>>,
    ) {
        if queries.is_empty() {
            self.inner.try_le_batch(queries, out);
            return;
        }
        if self.pairs.is_none() {
            self.pairs = Some(PairMemo::new(self.inner.n()));
        }
        let memo = self.pairs.as_ref().expect("inserted above");
        let mut slots: Vec<Slot> = Vec::with_capacity(queries.len());
        let mut misses: Vec<(usize, usize)> = Vec::new();
        let mut cache_into: Vec<Option<(usize, bool)>> = Vec::new();
        let mut open: std::collections::HashMap<(usize, bool), usize> =
            std::collections::HashMap::new();
        let (mut lookups, mut hits) = (0u64, 0u64);
        for &(i, j) in queries {
            if i == j {
                cache_into.push(None);
                slots.push(Slot::Pending(misses.len()));
                misses.push((i, j));
                continue;
            }
            let forward = i < j;
            let t = if forward {
                memo.tri(i, j)
            } else {
                memo.tri(j, i)
            };
            lookups += 1;
            if let Some(ans) = memo.get(t, forward) {
                hits += 1;
                slots.push(Slot::Done(ans));
            } else if let Some(&k) = open.get(&(t, forward)) {
                hits += 1;
                slots.push(Slot::Pending(k));
            } else {
                open.insert((t, forward), misses.len());
                cache_into.push(Some((t, forward)));
                slots.push(Slot::Pending(misses.len()));
                misses.push((i, j));
            }
        }
        self.lookups += lookups;
        self.hits += hits;
        let mut answers: Vec<Result<bool, QueryFault>> = Vec::with_capacity(misses.len());
        self.inner.try_le_batch(&misses, &mut answers);
        let memo = self.pairs.as_mut().expect("inserted above");
        for (k, target) in cache_into.iter().enumerate() {
            if let (Some((t, forward)), Ok(ans)) = (*target, answers[k]) {
                memo.set(t, forward, ans);
            }
        }
        out.reserve(queries.len());
        out.extend(slots.iter().map(|s| match *s {
            Slot::Done(ans) => Ok(ans),
            Slot::Pending(k) => answers[k],
        }));
    }

    fn doomed(&self) -> bool {
        self.inner.doomed()
    }
}

impl<O: QuadrupletOracle + PersistentNoise> QuadrupletOracle for MemoOracle<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        // Release-mode guard: an index above 16 bits would shift out of
        // the packed key and silently alias two distinct queries — the
        // exact corruption this type exists to rule out. One predictable
        // branch per query, negligible next to the table probe.
        assert!(
            self.inner.n() <= 1 << 16,
            "quadruplet memoisation packs indices into 16 bits (n = {})",
            self.inner.n()
        );
        let p1 = if a <= b { (a, b) } else { (b, a) };
        let p2 = if c <= d { (c, d) } else { (d, c) };
        if p1 == p2 {
            return self.inner.le(a, b, c, d);
        }
        let key =
            ((p1.0 as u64) << 48) | ((p1.1 as u64) << 32) | ((p2.0 as u64) << 16) | p2.1 as u64;
        let memo = self.quads.get_or_insert_with(QuadMemo::new);
        self.lookups += 1;
        if let Some(ans) = memo.get(key) {
            self.hits += 1;
            return ans;
        }
        let ans = self.inner.le(a, b, c, d);
        self.quads.as_mut().expect("just inserted").insert(key, ans);
        ans
    }

    /// Quadruplet twin of the comparison-round override: see
    /// [`ComparisonOracle::le_batch`] on `MemoOracle` for the contract
    /// (one deduplicated inner round per outer round, scalar-identical
    /// answers and tallies, table inserts in miss order).
    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        if queries.is_empty() {
            self.inner.le_batch(queries, out);
            return;
        }
        assert!(
            self.inner.n() <= 1 << 16,
            "quadruplet memoisation packs indices into 16 bits (n = {})",
            self.inner.n()
        );
        let memo = self.quads.get_or_insert_with(QuadMemo::new);
        let mut slots: Vec<Slot> = Vec::with_capacity(queries.len());
        let mut misses: Vec<[usize; 4]> = Vec::new();
        let mut cache_into: Vec<Option<u64>> = Vec::new();
        let mut open: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let (mut lookups, mut hits) = (0u64, 0u64);
        for &[a, b, c, d] in queries {
            let p1 = if a <= b { (a, b) } else { (b, a) };
            let p2 = if c <= d { (c, d) } else { (d, c) };
            if p1 == p2 {
                cache_into.push(None);
                slots.push(Slot::Pending(misses.len()));
                misses.push([a, b, c, d]);
                continue;
            }
            let key =
                ((p1.0 as u64) << 48) | ((p1.1 as u64) << 32) | ((p2.0 as u64) << 16) | p2.1 as u64;
            lookups += 1;
            if let Some(ans) = memo.get(key) {
                hits += 1;
                slots.push(Slot::Done(ans));
            } else if let Some(&k) = open.get(&key) {
                hits += 1;
                slots.push(Slot::Pending(k));
            } else {
                open.insert(key, misses.len());
                cache_into.push(Some(key));
                slots.push(Slot::Pending(misses.len()));
                misses.push([a, b, c, d]);
            }
        }
        self.lookups += lookups;
        self.hits += hits;
        let mut answers = Vec::with_capacity(misses.len());
        self.inner.le_batch(&misses, &mut answers);
        let memo = self.quads.as_mut().expect("inserted above");
        for (k, target) in cache_into.iter().enumerate() {
            if let Some(key) = *target {
                memo.insert(key, answers[k]);
            }
        }
        out.reserve(queries.len());
        out.extend(slots.iter().map(|s| match *s {
            Slot::Done(ans) => ans,
            Slot::Pending(k) => answers[k],
        }));
    }

    /// See the comparison-side [`ComparisonOracle::try_le`] on
    /// `MemoOracle`: hits are free, faulted misses are never cached.
    fn try_le(&mut self, a: usize, b: usize, c: usize, d: usize) -> Result<bool, QueryFault> {
        assert!(
            self.inner.n() <= 1 << 16,
            "quadruplet memoisation packs indices into 16 bits (n = {})",
            self.inner.n()
        );
        let p1 = if a <= b { (a, b) } else { (b, a) };
        let p2 = if c <= d { (c, d) } else { (d, c) };
        if p1 == p2 {
            return self.inner.try_le(a, b, c, d);
        }
        let key =
            ((p1.0 as u64) << 48) | ((p1.1 as u64) << 32) | ((p2.0 as u64) << 16) | p2.1 as u64;
        let memo = self.quads.get_or_insert_with(QuadMemo::new);
        self.lookups += 1;
        if let Some(ans) = memo.get(key) {
            self.hits += 1;
            return Ok(ans);
        }
        let ans = self.inner.try_le(a, b, c, d)?;
        self.quads.as_mut().expect("just inserted").insert(key, ans);
        Ok(ans)
    }

    /// See the comparison-side [`ComparisonOracle::try_le_batch`] on
    /// `MemoOracle`: one deduplicated fallible inner round, only `Ok`
    /// lanes cached.
    fn try_le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<Result<bool, QueryFault>>) {
        if queries.is_empty() {
            self.inner.try_le_batch(queries, out);
            return;
        }
        assert!(
            self.inner.n() <= 1 << 16,
            "quadruplet memoisation packs indices into 16 bits (n = {})",
            self.inner.n()
        );
        let memo = self.quads.get_or_insert_with(QuadMemo::new);
        let mut slots: Vec<Slot> = Vec::with_capacity(queries.len());
        let mut misses: Vec<[usize; 4]> = Vec::new();
        let mut cache_into: Vec<Option<u64>> = Vec::new();
        let mut open: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let (mut lookups, mut hits) = (0u64, 0u64);
        for &[a, b, c, d] in queries {
            let p1 = if a <= b { (a, b) } else { (b, a) };
            let p2 = if c <= d { (c, d) } else { (d, c) };
            if p1 == p2 {
                cache_into.push(None);
                slots.push(Slot::Pending(misses.len()));
                misses.push([a, b, c, d]);
                continue;
            }
            let key =
                ((p1.0 as u64) << 48) | ((p1.1 as u64) << 32) | ((p2.0 as u64) << 16) | p2.1 as u64;
            lookups += 1;
            if let Some(ans) = memo.get(key) {
                hits += 1;
                slots.push(Slot::Done(ans));
            } else if let Some(&k) = open.get(&key) {
                hits += 1;
                slots.push(Slot::Pending(k));
            } else {
                open.insert(key, misses.len());
                cache_into.push(Some(key));
                slots.push(Slot::Pending(misses.len()));
                misses.push([a, b, c, d]);
            }
        }
        self.lookups += lookups;
        self.hits += hits;
        let mut answers: Vec<Result<bool, QueryFault>> = Vec::with_capacity(misses.len());
        self.inner.try_le_batch(&misses, &mut answers);
        let memo = self.quads.as_mut().expect("inserted above");
        for (k, target) in cache_into.iter().enumerate() {
            if let (Some(key), Ok(ans)) = (*target, answers[k]) {
                memo.insert(key, ans);
            }
        }
        out.reserve(queries.len());
        out.extend(slots.iter().map(|s| match *s {
            Slot::Done(ans) => Ok(ans),
            Slot::Pending(k) => answers[k],
        }));
    }

    fn doomed(&self) -> bool {
        self.inner.doomed()
    }
}

impl<O: PersistentNoise> PersistentNoise for MemoOracle<O> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::{AdversarialValueOracle, InvertAdversary};
    use crate::counting::Counting;
    use crate::probabilistic::{ProbQuadOracle, ProbValueOracle};
    use nco_metric::EuclideanMetric;

    #[test]
    fn comparison_memo_is_bit_identical_and_saves_queries() {
        let values: Vec<f64> = (0..60).map(|i| ((i * 37) % 61) as f64).collect();
        let mut raw = ProbValueOracle::new(values.clone(), 0.3, 42);
        let mut memo = MemoOracle::new(Counting::new(ProbValueOracle::new(values, 0.3, 42)));
        for round in 0..3 {
            for i in 0..60 {
                for j in 0..60 {
                    if i == j {
                        continue;
                    }
                    assert_eq!(memo.le(i, j), raw.le(i, j), "round {round} ({i},{j})");
                }
            }
        }
        // Each ordered query hit the inner oracle exactly once across all
        // three rounds; the two later rounds were pure cache hits.
        assert_eq!(memo.inner().queries(), 60 * 59);
        assert_eq!(memo.hits(), 2 * 60 * 59);
        assert_eq!(memo.lookups(), 3 * 60 * 59);
    }

    #[test]
    fn memo_preserves_noncomplementary_tie_behaviour() {
        // InvertAdversary answers both directions of an in-band tie with
        // `false` — mirrored queries are NOT complementary, which is why
        // directions are cached independently.
        let mk = || AdversarialValueOracle::new(vec![1.0, 1.0], 1.0, InvertAdversary);
        let mut raw = mk();
        let mut memo = MemoOracle::new(mk());
        for _ in 0..3 {
            assert_eq!(memo.le(0, 1), raw.le(0, 1));
            assert_eq!(memo.le(1, 0), raw.le(1, 0));
        }
        assert!(!memo.le(0, 1) && !memo.le(1, 0));
    }

    #[test]
    fn quad_memo_is_bit_identical_and_saves_queries() {
        let m = EuclideanMetric::from_points(
            &(0..24)
                .map(|i| vec![(i * i % 29) as f64, i as f64])
                .collect::<Vec<_>>(),
        );
        // Offsets 3 and 7 guarantee the two unordered pairs never tie, so
        // every tuple below is a cacheable query.
        let mut quads = Vec::new();
        for a in 0..24usize {
            for c in 0..24usize {
                quads.push((a, (a + 3) % 24, c, (c + 7) % 24));
            }
        }
        let distinct: std::collections::HashSet<(usize, usize, usize, usize)> = quads
            .iter()
            .map(|&(a, b, c, d)| (a.min(b), a.max(b), c.min(d), c.max(d)))
            .collect();

        let mut raw = ProbQuadOracle::new(m.clone(), 0.25, 7);
        let mut memo = MemoOracle::new(Counting::new(ProbQuadOracle::new(m, 0.25, 7)));
        for _ in 0..2 {
            for &(a, b, c, d) in &quads {
                assert_eq!(memo.le(a, b, c, d), raw.le(a, b, c, d), "({a},{b},{c},{d})");
                // The within-pair mirror resolves to the same cached entry.
                assert_eq!(memo.le(b, a, c, d), raw.le(b, a, c, d));
            }
        }
        // One inner query per distinct canonical tuple; everything else
        // (replays and within-pair mirrors) was a cache hit.
        assert_eq!(memo.inner().queries(), distinct.len() as u64);
        assert_eq!(memo.lookups(), 4 * quads.len() as u64);
        assert_eq!(memo.hits(), memo.lookups() - distinct.len() as u64);
    }

    #[test]
    fn batched_comparison_memo_matches_scalar_decomposition() {
        let values: Vec<f64> = (0..30).map(|i| ((i * 11) % 31) as f64).collect();
        // Duplicates within a batch, mirrored directions, and degenerate
        // (i, i) queries all mixed together.
        let mut batch = Vec::new();
        for i in 0..30usize {
            batch.push((i, (i + 4) % 30));
            batch.push(((i + 4) % 30, i));
            batch.push((i, (i + 4) % 30)); // within-batch duplicate
            batch.push((i, i)); // degenerate, forwarded uncached
        }
        let mut scalar =
            MemoOracle::new(Counting::new(ProbValueOracle::new(values.clone(), 0.3, 9)));
        let mut expect = Vec::new();
        for &(i, j) in &batch {
            expect.push(scalar.le(i, j));
        }
        let mut batched = MemoOracle::new(Counting::new(ProbValueOracle::new(values, 0.3, 9)));
        let mut got = Vec::new();
        batched.le_batch(&batch, &mut got);
        assert_eq!(got, expect);
        assert_eq!(batched.inner().queries(), scalar.inner().queries());
        assert_eq!(batched.lookups(), scalar.lookups());
        assert_eq!(batched.hits(), scalar.hits());
        // Replaying the same batch is now all hits plus the degenerates.
        got.clear();
        batched.le_batch(&batch, &mut got);
        assert_eq!(got, expect);
        assert_eq!(batched.inner().queries(), scalar.inner().queries() + 30);
    }

    #[test]
    fn batched_quad_memo_matches_scalar_decomposition() {
        let m = EuclideanMetric::from_points(
            &(0..20)
                .map(|i| vec![(i * 13 % 23) as f64, i as f64])
                .collect::<Vec<_>>(),
        );
        let mut batch = Vec::new();
        for a in 0..20usize {
            let (b, c, d) = ((a + 3) % 20, (a + 1) % 20, (a + 9) % 20);
            batch.push([a, b, c, d]);
            batch.push([b, a, d, c]); // canonical duplicate via mirrors
            batch.push([a, b, a, b]); // degenerate pair, forwarded uncached
        }
        let mut scalar = MemoOracle::new(Counting::new(ProbQuadOracle::new(m.clone(), 0.25, 5)));
        let mut expect = Vec::new();
        for &[a, b, c, d] in &batch {
            expect.push(scalar.le(a, b, c, d));
        }
        let mut batched = MemoOracle::new(Counting::new(ProbQuadOracle::new(m, 0.25, 5)));
        let mut got = Vec::new();
        batched.le_batch(&batch, &mut got);
        assert_eq!(got, expect);
        assert_eq!(batched.inner().queries(), scalar.inner().queries());
        assert_eq!(batched.lookups(), scalar.lookups());
        assert_eq!(batched.hits(), scalar.hits());
    }

    #[test]
    fn batched_memo_bills_one_inner_round_per_outer_round() {
        use crate::budget::Budgeted;
        let values: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut memo = MemoOracle::new(Budgeted::new(ProbValueOracle::new(values, 0.2, 1), None));
        let batch: Vec<(usize, usize)> = (0..15).map(|i| (i, i + 1)).collect();
        let mut out = Vec::new();
        memo.le_batch(&batch, &mut out);
        assert_eq!(memo.inner().rounds(), 1);
        // A fully-memoised replay still counts as a round: the budget
        // meter sits inside the memo and sees one (empty) inner batch.
        out.clear();
        memo.le_batch(&batch, &mut out);
        assert_eq!(memo.inner().rounds(), 2);
        // ...and so does an empty outer batch, matching `Budgeted` alone.
        out.clear();
        memo.le_batch(&[], &mut out);
        assert_eq!(memo.inner().rounds(), 3);
        assert!(out.is_empty());
    }

    #[test]
    fn fallible_memo_round_matches_infallible_on_the_ok_path() {
        let values: Vec<f64> = (0..30).map(|i| ((i * 11) % 31) as f64).collect();
        let mut batch = Vec::new();
        for i in 0..30usize {
            batch.push((i, (i + 4) % 30));
            batch.push(((i + 4) % 30, i));
            batch.push((i, (i + 4) % 30));
            batch.push((i, i));
        }
        let mut plain =
            MemoOracle::new(Counting::new(ProbValueOracle::new(values.clone(), 0.3, 9)));
        let mut expect = Vec::new();
        plain.le_batch(&batch, &mut expect);
        let mut fallible = MemoOracle::new(Counting::new(ProbValueOracle::new(values, 0.3, 9)));
        let mut got = Vec::new();
        fallible.try_le_batch(&batch, &mut got);
        let got: Vec<bool> = got.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, expect);
        assert_eq!(fallible.inner().queries(), plain.inner().queries());
        assert_eq!(fallible.hits(), plain.hits());
        assert_eq!(fallible.lookups(), plain.lookups());
    }

    #[test]
    fn quad_memo_grows_past_initial_capacity() {
        let m = EuclideanMetric::from_points(
            &(0..40).map(|i| vec![i as f64 * 1.7]).collect::<Vec<_>>(),
        );
        let mut memo = MemoOracle::new(ProbQuadOracle::new(m.clone(), 0.2, 3));
        let mut reference = ProbQuadOracle::new(m, 0.2, 3);
        let mut checked = 0usize;
        for a in 0..40usize {
            for c in 0..40usize {
                let (b, d) = ((a + 1) % 40, (c + 2) % 40);
                assert_eq!(memo.le(a, b, c, d), reference.le(a, b, c, d));
                checked += 1;
            }
        }
        assert!(checked > 64, "must exceed the initial table capacity");
        // Replay: everything is now cached and still identical.
        for a in 0..40usize {
            for c in 0..40usize {
                let (b, d) = ((a + 1) % 40, (c + 2) % 40);
                assert_eq!(memo.le(a, b, c, d), reference.le(a, b, c, d));
            }
        }
    }
}
