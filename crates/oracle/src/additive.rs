//! Additive-band adversarial noise (the Ajtai et al. model).
//!
//! Section 3.1 of the paper contrasts its scale-invariant multiplicative
//! band with the *additive* model of Ajtai, Feldman, Hassidim and Nelson
//! ("Sorting and selection with imprecise comparisons"): a comparison of `x`
//! and `y` may be adversarial when `|x - y| <= theta`. The paper notes its
//! algorithms also apply under this model (Theorem 3.10's reduction turns
//! PairwiseComp answers into an additive-band oracle with `theta = 2*alpha`),
//! so we ship it for both oracle kinds — it is also the model used by the
//! farthest-point analysis tests.

use crate::adversarial::Adversary;
use crate::{ComparisonOracle, QuadrupletOracle};
use nco_metric::Metric;

/// Is `|x - y| <= theta` (the additive confusion band)?
#[inline]
pub fn in_additive_band(x: f64, y: f64, theta: f64) -> bool {
    (x - y).abs() <= theta
}

/// Additive-band adversarial comparison oracle over hidden values.
#[derive(Debug, Clone)]
pub struct AdditiveValueOracle<A> {
    values: Vec<f64>,
    theta: f64,
    adversary: A,
}

impl<A: Adversary> AdditiveValueOracle<A> {
    /// Builds the oracle with additive slack `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `theta` is negative/non-finite or values are non-finite.
    pub fn new(values: Vec<f64>, theta: f64, adversary: A) -> Self {
        assert!(theta >= 0.0 && theta.is_finite());
        assert!(values.iter().all(|v| v.is_finite()));
        Self {
            values,
            theta,
            adversary,
        }
    }

    /// The band width `theta`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Ground-truth values (evaluation only).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl<A: Adversary> ComparisonOracle for AdditiveValueOracle<A> {
    fn n(&self) -> usize {
        self.values.len()
    }

    fn le(&mut self, i: usize, j: usize) -> bool {
        let (vi, vj) = (self.values[i], self.values[j]);
        if !in_additive_band(vi, vj, self.theta) {
            vi <= vj
        } else {
            self.adversary.decide(&[i as u64], &[j as u64], vi, vj)
        }
    }
}

/// Additive-band adversarial quadruplet oracle over a hidden metric.
#[derive(Debug, Clone)]
pub struct AdditiveQuadOracle<M, A> {
    metric: M,
    theta: f64,
    adversary: A,
}

impl<M: Metric, A: Adversary> AdditiveQuadOracle<M, A> {
    /// Builds the oracle with additive slack `theta >= 0`.
    pub fn new(metric: M, theta: f64, adversary: A) -> Self {
        assert!(theta >= 0.0 && theta.is_finite());
        Self {
            metric,
            theta,
            adversary,
        }
    }

    /// The band width `theta`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The hidden metric (evaluation only).
    pub fn metric(&self) -> &M {
        &self.metric
    }
}

impl<M: Metric, A: Adversary> QuadrupletOracle for AdditiveQuadOracle<M, A> {
    fn n(&self) -> usize {
        self.metric.len()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        let d1 = self.metric.dist(a, b);
        let d2 = self.metric.dist(c, d);
        if !in_additive_band(d1, d2, self.theta) {
            d1 <= d2
        } else {
            let p1 = if a <= b {
                [a as u64, b as u64]
            } else {
                [b as u64, a as u64]
            };
            let p2 = if c <= d {
                [c as u64, d as u64]
            } else {
                [d as u64, c as u64]
            };
            self.adversary.decide(&p1, &p2, d1, d2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::InvertAdversary;
    use nco_metric::EuclideanMetric;

    #[test]
    fn additive_band_membership() {
        assert!(in_additive_band(1.0, 1.5, 0.5));
        assert!(!in_additive_band(1.0, 1.51, 0.5));
        assert!(in_additive_band(5.0, 5.0, 0.0));
    }

    #[test]
    fn value_oracle_lies_only_in_band() {
        let mut o = AdditiveValueOracle::new(vec![1.0, 1.4, 9.0], 0.5, InvertAdversary);
        assert!(!o.le(0, 1)); // |1.0 - 1.4| <= 0.5 -> inverted
        assert!(o.le(0, 2)); // far apart -> truthful
        assert_eq!(o.theta(), 0.5);
    }

    #[test]
    fn quad_oracle_lies_only_in_band() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![1.3], vec![10.0]]);
        let mut o = AdditiveQuadOracle::new(m, 0.5, InvertAdversary);
        // d(0,1) = 1.0 vs d(0,2) = 1.3: in band -> inverted (says No).
        assert!(!o.le(0, 1, 0, 2));
        // d(0,1) = 1.0 vs d(0,3) = 10.0: out of band -> truthful.
        assert!(o.le(0, 1, 0, 3));
    }

    #[test]
    fn scale_dependence_contrast_with_multiplicative() {
        // The paper's point: the additive model treats (0.001, 0.002) as
        // confusable only if theta >= 0.001, while the multiplicative band
        // always confuses a fixed ratio. Document the difference in a test.
        assert!(!in_additive_band(0.001, 0.4, 0.3));
        assert!(crate::adversarial::in_band(0.3, 0.4, 0.5));
        assert!(in_additive_band(0.3, 0.4, 0.3));
    }
}
