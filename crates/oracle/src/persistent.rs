//! Persistence markers and shared (`&self`) query access.
//!
//! Section 2.2's noise models are **persistent**: the answer to a query is
//! a pure function of the (canonicalised) query, so repeating it returns
//! the same bit. Two pieces of infrastructure build on that property and
//! need a way to require it in the type system:
//!
//! * [`crate::memo::MemoOracle`] caches answers — exact only when the
//!   wrapped oracle would have answered the repeat identically;
//! * the `parallel` feature of `nco-core` fans query rounds across
//!   threads — sound only when answers don't depend on a mutable cursor,
//!   so the oracle can be queried through `&self` from many threads.
//!
//! [`PersistentNoise`] is the marker for the first property;
//! [`SharedComparisonOracle`] / [`SharedQuadrupletOracle`] witness the
//! second by exposing the same answer function through a shared
//! reference. Every implementation in this crate routes its `&mut self`
//! trait method through the `&self` path, so the two can never diverge.

use crate::{ComparisonOracle, QuadrupletOracle};

/// Marker: the oracle's answers are a pure function of the canonical
/// query (the persistent-noise property of Section 2.2).
///
/// Implementing this for an oracle whose answers depend on query history
/// or other mutable state is a logic error: memoisation would silently
/// change its behaviour.
pub trait PersistentNoise {}

/// A comparison oracle whose queries can be answered through `&self`
/// (persistent answers, no mutable cursor) — the substrate for the
/// `parallel` feature's multi-threaded query rounds.
pub trait SharedComparisonOracle: ComparisonOracle + Sync {
    /// Same answer as [`ComparisonOracle::le`], through a shared reference.
    fn le_shared(&self, i: usize, j: usize) -> bool;

    /// Declares that the `le_shared` calls issued since the previous
    /// `note_round` formed one adaptive round. Fan-out drivers that
    /// answer a round query-by-query through the shared path call this
    /// once per round so round meters (e.g. `SharedBudgeted`) bill the
    /// same rounds a [`ComparisonOracle::le_batch`] call would have.
    /// Default: no-op — plain oracles keep no round state.
    fn note_round(&self) {}
}

/// Quadruplet twin of [`SharedComparisonOracle`].
pub trait SharedQuadrupletOracle: QuadrupletOracle + Sync {
    /// Same answer as [`QuadrupletOracle::le`], through a shared reference.
    fn le_shared(&self, a: usize, b: usize, c: usize, d: usize) -> bool;

    /// See [`SharedComparisonOracle::note_round`].
    fn note_round(&self) {}
}

impl<O: PersistentNoise + ?Sized> PersistentNoise for &mut O {}

impl<O: SharedComparisonOracle + ?Sized> SharedComparisonOracle for &mut O {
    fn le_shared(&self, i: usize, j: usize) -> bool {
        (**self).le_shared(i, j)
    }

    fn note_round(&self) {
        (**self).note_round()
    }
}

impl<O: SharedQuadrupletOracle + ?Sized> SharedQuadrupletOracle for &mut O {
    fn le_shared(&self, a: usize, b: usize, c: usize, d: usize) -> bool {
        (**self).le_shared(a, b, c, d)
    }

    fn note_round(&self) {
        (**self).note_round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::{
        AdversarialQuadOracle, AdversarialValueOracle, ConsistentAdversary, InvertAdversary,
        PersistentRandomAdversary,
    };
    use crate::crowd::{AccuracyProfile, CrowdQuadOracle};
    use crate::probabilistic::{ProbQuadOracle, ProbValueOracle};
    use crate::{TrueQuadOracle, TrueValueOracle};
    use nco_metric::EuclideanMetric;

    fn assert_shared_matches_mut<O: SharedComparisonOracle>(mut o: O) {
        let n = o.n();
        for i in 0..n {
            for j in 0..n {
                let shared = o.le_shared(i, j);
                assert_eq!(o.le(i, j), shared, "({i},{j})");
            }
        }
    }

    fn assert_quad_shared_matches_mut<O: SharedQuadrupletOracle>(mut o: O) {
        let n = o.n();
        for a in 0..n {
            for c in 0..n {
                let (b, d) = ((a + 1) % n, (c + 2) % n);
                let shared = o.le_shared(a, b, c, d);
                assert_eq!(o.le(a, b, c, d), shared, "({a},{b},{c},{d})");
                // Mirror and within-pair swaps too.
                assert_eq!(o.le(b, a, d, c), o.le_shared(b, a, d, c));
            }
        }
    }

    #[test]
    fn shared_access_agrees_with_mut_access() {
        assert_shared_matches_mut(TrueValueOracle::new(vec![3.0, 1.0, 2.0]));
        assert_shared_matches_mut(ProbValueOracle::new(
            (0..40).map(f64::from).collect(),
            0.3,
            99,
        ));
    }

    /// The adversarial oracles duplicate their decision logic between
    /// `le` and `le_shared` (the `&mut` path must also serve stateful
    /// adversaries), so agreement is pinned here for every shipped
    /// in-band strategy — a divergence would make parallel runs silently
    /// differ from serial ones.
    #[test]
    fn adversarial_shared_access_agrees_with_mut_access() {
        // Values inside one (1 + mu) band so the adversary decides often.
        let values: Vec<f64> = (0..30).map(|i| 10.0 + 0.1 * i as f64).collect();
        assert_shared_matches_mut(AdversarialValueOracle::new(
            values.clone(),
            0.5,
            InvertAdversary,
        ));
        assert_shared_matches_mut(AdversarialValueOracle::new(
            values.clone(),
            0.5,
            PersistentRandomAdversary::new(7),
        ));
        assert_shared_matches_mut(AdversarialValueOracle::new(
            values,
            0.5,
            ConsistentAdversary::new(3, 0.5),
        ));
    }

    #[test]
    fn quadruplet_shared_access_agrees_with_mut_access() {
        let m = EuclideanMetric::from_points(
            &(0..20)
                .map(|i| vec![(i * 7 % 13) as f64, i as f64 * 0.6])
                .collect::<Vec<_>>(),
        );
        assert_quad_shared_matches_mut(TrueQuadOracle::new(m.clone()));
        assert_quad_shared_matches_mut(ProbQuadOracle::new(m.clone(), 0.25, 11));
        assert_quad_shared_matches_mut(AdversarialQuadOracle::new(m.clone(), 0.4, InvertAdversary));
        assert_quad_shared_matches_mut(AdversarialQuadOracle::new(
            m.clone(),
            0.4,
            PersistentRandomAdversary::new(5),
        ));
        assert_quad_shared_matches_mut(CrowdQuadOracle::new(
            m,
            AccuracyProfile::caltech_like(),
            3,
            21,
        ));
    }
}
