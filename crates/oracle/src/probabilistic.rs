//! Probabilistic **persistent** noise model — Section 2.2.
//!
//! Every distinct query is answered incorrectly with probability `p < 1/2`,
//! and repeating the query returns the *same* answer, so the standard
//! repeat-and-majority-vote trick is useless (the crucial difficulty the
//! paper's probabilistic algorithms are designed around).
//!
//! We realise persistence without memoising a query table: the error coin of
//! a query is a seeded hash of its canonical form. Two consequences that
//! match a persistent human/classifier oracle:
//!
//! * asking the same question twice gives the same answer, bit for bit;
//! * asking the *mirrored* question (`le(j,i)` instead of `le(i,j)`) gives
//!   the complementary answer — the oracle holds one consistent (possibly
//!   wrong) belief about each unordered comparison.

use crate::persistent::{PersistentNoise, SharedComparisonOracle, SharedQuadrupletOracle};
use crate::{ComparisonOracle, QuadrupletOracle};
use nco_metric::hashing;
use nco_metric::Metric;

fn validate_p(p: f64) {
    assert!(
        (0.0..0.5).contains(&p),
        "error probability p = {p} must lie in [0, 0.5)"
    );
}

/// Persistent probabilistic comparison oracle over hidden values.
#[derive(Debug, Clone)]
pub struct ProbValueOracle {
    values: Vec<f64>,
    p: f64,
    /// Precomputed seed-absorption round ([`hashing::mix_seed`]) — one
    /// splitmix round saved on every coin, digest-identical.
    seed_h: u64,
}

impl ProbValueOracle {
    /// Builds the oracle with per-query error probability `p in [0, 0.5)`.
    ///
    /// # Panics
    /// Panics if `p` is out of range or any value is non-finite.
    pub fn new(values: Vec<f64>, p: f64, seed: u64) -> Self {
        validate_p(p);
        assert!(values.iter().all(|v| v.is_finite()));
        Self {
            values,
            p,
            seed_h: hashing::mix_seed(seed),
        }
    }

    /// The error probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Ground-truth values (evaluation only).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl ComparisonOracle for ProbValueOracle {
    fn n(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn le(&mut self, i: usize, j: usize) -> bool {
        self.le_shared(i, j)
    }
}

impl SharedComparisonOracle for ProbValueOracle {
    #[inline]
    fn le_shared(&self, i: usize, j: usize) -> bool {
        if i == j {
            return true; // degenerate self-comparison: trivially Yes
        }
        let swapped = i > j;
        let (a, b) = if swapped { (j, i) } else { (i, j) };
        let truth = self.values[a] <= self.values[b];
        // `mix2_from` is the unrolled, digest-identical form of
        // `bernoulli(seed, &[a, b], p)` — this is the hottest line in the
        // probabilistic workloads.
        let flip = hashing::unit_f64(hashing::mix2_from(self.seed_h, a as u64, b as u64)) < self.p;
        (truth ^ flip) ^ swapped
    }
}

impl PersistentNoise for ProbValueOracle {}

/// Persistent probabilistic quadruplet oracle over a hidden metric.
#[derive(Debug, Clone)]
pub struct ProbQuadOracle<M> {
    metric: M,
    p: f64,
    /// Precomputed seed-absorption round ([`hashing::mix_seed`]) — one
    /// splitmix round saved on every coin, digest-identical.
    seed_h: u64,
}

impl<M: Metric> ProbQuadOracle<M> {
    /// Builds the oracle with per-query error probability `p in [0, 0.5)`.
    pub fn new(metric: M, p: f64, seed: u64) -> Self {
        validate_p(p);
        Self {
            metric,
            p,
            seed_h: hashing::mix_seed(seed),
        }
    }

    /// The error probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The hidden metric (evaluation only).
    pub fn metric(&self) -> &M {
        &self.metric
    }
}

impl<M: Metric> QuadrupletOracle for ProbQuadOracle<M> {
    fn n(&self) -> usize {
        self.metric.len()
    }

    #[inline]
    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.answer(a, b, c, d)
    }

    /// Batched round: the split between distance evaluation and noise
    /// coins is architectural — truth bits come from `Metric::dist`, which
    /// is where batching/sharing lives (wrap the metric in
    /// `nco_metric::DistCache` and one evaluation serves every query of
    /// every round touching the pair, including the sequential tournament
    /// duels no round can batch), while the coins are derived here in
    /// serial query order, so the answer transcript is bit-identical to
    /// the scalar loop. A per-round dedup map was measured at this layer
    /// and rejected: over a cached metric a probe costs more than the
    /// lookup it saves, and over a lazy metric it cannot help the duels.
    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        out.reserve(queries.len());
        for &[a, b, c, d] in queries {
            let ans = self.answer(a, b, c, d);
            out.push(ans);
        }
    }
}

impl<M: Metric + Sync> SharedQuadrupletOracle for ProbQuadOracle<M> {
    #[inline]
    fn le_shared(&self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.answer(a, b, c, d)
    }
}

impl<M: Metric> ProbQuadOracle<M> {
    /// Canonicalise each unordered pair, order the two pairs, and answer —
    /// the pure-function core shared by `le` and `le_shared`.
    #[inline]
    fn answer(&self, a: usize, b: usize, c: usize, d: usize) -> bool {
        let p1 = if a <= b { (a, b) } else { (b, a) };
        let p2 = if c <= d { (c, d) } else { (d, c) };
        if p1 == p2 {
            return true; // identical pairs tie: trivially Yes
        }
        let swapped = p1 > p2;
        let (q1, q2) = if swapped { (p2, p1) } else { (p1, p2) };
        let truth = self.metric.dist(q1.0, q1.1) <= self.metric.dist(q2.0, q2.1);
        // Unrolled, digest-identical form of `bernoulli(seed, &[..4], p)`.
        let flip = hashing::unit_f64(hashing::mix4_from(
            self.seed_h,
            q1.0 as u64,
            q1.1 as u64,
            q2.0 as u64,
            q2.1 as u64,
        )) < self.p;
        (truth ^ flip) ^ swapped
    }
}

impl<M: Metric> PersistentNoise for ProbQuadOracle<M> {}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;

    #[test]
    fn zero_noise_is_exact() {
        let mut o = ProbValueOracle::new(vec![1.0, 2.0, 3.0], 0.0, 9);
        assert!(o.le(0, 1));
        assert!(!o.le(2, 0));
        assert!(o.le(1, 1));
    }

    #[test]
    fn answers_are_persistent_and_complementary() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut o = ProbValueOracle::new(values, 0.3, 1234);
        for i in 0..50 {
            for j in (i + 1)..50 {
                let a = o.le(i, j);
                assert_eq!(o.le(i, j), a, "persistence violated at ({i},{j})");
                assert_eq!(o.le(j, i), !a, "complement violated at ({i},{j})");
            }
        }
    }

    #[test]
    fn error_rate_approximates_p() {
        let n = 400usize;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut o = ProbValueOracle::new(values.clone(), 0.2, 777);
        let mut wrong = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                if o.le(i, j) != (values[i] <= values[j]) {
                    wrong += 1;
                }
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!((rate - 0.2).abs() < 0.01, "observed error rate {rate}");
    }

    #[test]
    fn quad_oracle_persistent_and_pair_symmetric() {
        let m = EuclideanMetric::from_points(&(0..20).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let mut o = ProbQuadOracle::new(m, 0.3, 5);
        let a = o.le(0, 3, 1, 5);
        // Pair-order within a pair must not matter (d is symmetric).
        assert_eq!(o.le(3, 0, 1, 5), a);
        assert_eq!(o.le(0, 3, 5, 1), a);
        assert_eq!(o.le(3, 0, 5, 1), a);
        // Mirrored query is complementary.
        assert_eq!(o.le(1, 5, 0, 3), !a);
        // Identical pairs tie.
        assert!(o.le(4, 7, 7, 4));
    }

    #[test]
    fn quad_error_rate_approximates_p() {
        let m = EuclideanMetric::from_points(
            &(0..40).map(|i| vec![(i * i) as f64]).collect::<Vec<_>>(),
        );
        let mut o = ProbQuadOracle::new(m, 0.25, 99);
        let mut wrong = 0usize;
        let mut total = 0usize;
        for a in 0..40usize {
            for c in 0..40usize {
                for delta in 1..4usize {
                    let b = (a + delta) % 40;
                    let d = (c + 2 * delta) % 40;
                    let p1 = (a.min(b), a.max(b));
                    let p2 = (c.min(d), c.max(d));
                    if p1 >= p2 {
                        continue;
                    }
                    total += 1;
                    let truth = o.metric().dist(a, b) <= o.metric().dist(c, d);
                    if o.le(a, b, c, d) != truth {
                        wrong += 1;
                    }
                }
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!(
            (rate - 0.25).abs() < 0.03,
            "observed error rate {rate} over {total}"
        );
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 0.5)")]
    fn rejects_p_half() {
        let _ = ProbValueOracle::new(vec![0.0], 0.5, 0);
    }
}
