//! The exact comparison oracle over hidden scalar values.

use crate::persistent::{PersistentNoise, SharedComparisonOracle};
use crate::ComparisonOracle;

/// A perfect comparison oracle: answers every query truthfully.
///
/// This is the `mu = 0` / `p = 0` case of the noise models and the ground
/// truth that every noisy oracle in this crate wraps.
#[derive(Debug, Clone)]
pub struct TrueValueOracle {
    values: Vec<f64>,
}

impl TrueValueOracle {
    /// Builds an oracle over the given hidden values.
    ///
    /// # Panics
    /// Panics if any value is non-finite (the paper assumes a total order).
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "hidden values must be finite"
        );
        Self { values }
    }

    /// Ground-truth values (for evaluators and tests only — algorithms must
    /// never read these).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Ground-truth value of a single record.
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }
}

impl ComparisonOracle for TrueValueOracle {
    fn n(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn le(&mut self, i: usize, j: usize) -> bool {
        self.le_shared(i, j)
    }
}

impl SharedComparisonOracle for TrueValueOracle {
    #[inline]
    fn le_shared(&self, i: usize, j: usize) -> bool {
        self.values[i] <= self.values[j]
    }
}

impl PersistentNoise for TrueValueOracle {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_truthfully() {
        let mut o = TrueValueOracle::new(vec![3.0, 1.0, 2.0]);
        assert!(!o.le(0, 1));
        assert!(o.le(1, 2));
        assert!(o.le(1, 1)); // <= on equal values is Yes
        assert_eq!(o.n(), 3);
        assert_eq!(o.value(2), 2.0);
        assert_eq!(o.values(), &[3.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_values() {
        let _ = TrueValueOracle::new(vec![0.0, f64::INFINITY]);
    }
}
