//! Noisy *optimal cluster* (same-cluster) pairwise oracle — the `Oq`
//! baseline's query model (Sections 1, 6.2.2).
//!
//! The bulk of prior oracle-clustering work queries *"do u and v belong to
//! the same optimal cluster?"*. The paper argues (and measures, Table 1)
//! that such queries are hard to answer without a holistic view: its crowd
//! study observed **high precision but low recall** — workers answer "No"
//! whenever two records are not literally the same entity, splitting
//! coarse-granularity clusters. We model that with asymmetric error rates:
//! a false-negative rate for same-cluster pairs (typically large) and a
//! false-positive rate for cross-cluster pairs (typically small). Answers
//! are persistent, like every other oracle here.

use nco_metric::hashing;

/// Persistent noisy same-cluster oracle over ground-truth labels.
#[derive(Debug, Clone)]
pub struct ClusterQueryOracle {
    labels: Vec<usize>,
    false_negative: f64,
    false_positive: f64,
    seed: u64,
    queries: u64,
}

impl ClusterQueryOracle {
    /// Builds the oracle over ground-truth cluster labels.
    ///
    /// `false_negative` is the probability a same-cluster pair is answered
    /// "No"; `false_positive` the probability a cross-cluster pair is
    /// answered "Yes".
    ///
    /// # Panics
    /// Panics if either rate is outside `[0, 1)`.
    pub fn new(labels: Vec<usize>, false_negative: f64, false_positive: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&false_negative));
        assert!((0.0..1.0).contains(&false_positive));
        Self {
            labels,
            false_negative,
            false_positive,
            seed,
            queries: 0,
        }
    }

    /// The crowd behaviour observed in the paper's user study: precision
    /// above 0.9 (few false positives) but recall as low as 0.3–0.5 (many
    /// false negatives on coarse clusters).
    pub fn crowd_like(labels: Vec<usize>, seed: u64) -> Self {
        Self::new(labels, 0.45, 0.03, seed)
    }

    /// Number of records.
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Queries issued so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Answers *"are i and j in the same optimal cluster?"* (persistent).
    pub fn same_cluster(&mut self, i: usize, j: usize) -> bool {
        self.queries += 1;
        if i == j {
            return true;
        }
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        let truth = self.labels[a] == self.labels[b];
        let err_rate = if truth {
            self.false_negative
        } else {
            self.false_positive
        };
        let flip = hashing::bernoulli(self.seed, &[a as u64, b as u64], err_rate);
        truth ^ flip
    }

    /// Ground-truth labels (evaluation only).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, k: usize) -> Vec<usize> {
        (0..n).map(|i| i % k).collect()
    }

    #[test]
    fn noiseless_oracle_tells_the_truth() {
        let mut o = ClusterQueryOracle::new(labels(20, 4), 0.0, 0.0, 1);
        assert!(o.same_cluster(0, 4));
        assert!(!o.same_cluster(0, 1));
        assert!(o.same_cluster(3, 3));
        assert_eq!(o.queries(), 3);
        assert_eq!(o.n(), 20);
    }

    #[test]
    fn answers_are_persistent_and_symmetric() {
        let mut o = ClusterQueryOracle::crowd_like(labels(40, 5), 9);
        for i in 0..40 {
            for j in (i + 1)..40 {
                let a = o.same_cluster(i, j);
                assert_eq!(o.same_cluster(j, i), a);
                assert_eq!(o.same_cluster(i, j), a);
            }
        }
    }

    #[test]
    fn asymmetric_rates_show_up_as_precision_vs_recall() {
        let lab = labels(200, 4);
        let mut o = ClusterQueryOracle::crowd_like(lab.clone(), 3);
        let (mut tp, mut fp, mut fn_, mut tn) = (0u32, 0u32, 0u32, 0u32);
        for i in 0..200 {
            for j in (i + 1)..200 {
                let truth = lab[i] == lab[j];
                let ans = o.same_cluster(i, j);
                match (truth, ans) {
                    (true, true) => tp += 1,
                    (false, true) => fp += 1,
                    (true, false) => fn_ += 1,
                    (false, false) => tn += 1,
                }
            }
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / (tp + fn_) as f64;
        assert!(precision > 0.85, "precision {precision}");
        assert!(recall > 0.45 && recall < 0.65, "recall {recall}");
        assert!(tn > 0);
    }
}
