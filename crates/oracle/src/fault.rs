//! Deterministic fault injection and bounded-retry recovery.
//!
//! The noise models of Section 2.2 corrupt *answers*; a production
//! oracle platform additionally loses them: crowd workers stall or go
//! dark, batch backends have burst outages, an RPC returns garbage. This
//! module makes that failure surface first-class while keeping every
//! run replayable:
//!
//! * [`FaultPlan`] — a seeded, deterministic schedule of faults over the
//!   oracle's global *attempt* counter (every fallible ask advances it,
//!   so a retry of a faulted query lands on a fresh attempt index and
//!   can succeed);
//! * [`FaultyOracle`] — wraps any oracle and surfaces the plan's faults
//!   through the fallible [`ComparisonOracle::try_le`] /
//!   [`QuadrupletOracle::try_le_batch`] interface, while the infallible
//!   `le`/`le_batch` methods keep answering fault-free (recovery layers
//!   opt in to fallibility; legacy call sites compile and behave
//!   untouched);
//! * [`Retrying`] — the recovery layer: bounded per-query retry with
//!   deterministic exponential-backoff accounting, per-round
//!   *partial-batch* retry (only faulted lanes re-ask), and a doomed-run
//!   constant answer once a fault outlives the [`RetryPolicy`] (callers
//!   check [`Retrying::failed`] after the run, mirroring
//!   [`crate::Budgeted::exceeded`]).
//!
//! Because every shipped noise model is persistent
//! ([`PersistentNoise`]), a fault that the retry policy masks is
//! *answer-invariant*: the re-ask returns the identical bit the first
//! ask would have, so a fully masked run makes bit-identical decisions
//! to the fault-free run — it just pays more. The facade's chaos suite
//! (`tests/fault_plane.rs`) pins exactly that equivalence.
//!
//! ```
//! use nco_oracle::fault::{FaultPlan, FaultyOracle, RetryPolicy, Retrying};
//! use nco_oracle::{Budgeted, ComparisonOracle, TrueValueOracle};
//!
//! // A seeded storm: 10% transient failures, a 2-attempt outage every
//! // 64 attempts, stalls billed as 500us of latency debt.
//! let plan = FaultPlan::new(42)
//!     .transient(0.10)
//!     .outages(64, 2)
//!     .stalls(0.05, 500);
//!
//! let raw = TrueValueOracle::new((0..32).map(f64::from).collect());
//! let metered = Budgeted::new(FaultyOracle::new(raw, plan), None);
//! let mut oracle = Retrying::new(metered, RetryPolicy::new(8));
//!
//! for i in 0..31 {
//!     // Masked faults are invisible in the answers...
//!     assert!(oracle.le(i, i + 1));
//! }
//! assert!(oracle.failed().is_none());
//! // ...but every retry attempt was billed by the meter underneath.
//! assert_eq!(oracle.inner().queries(), 31 + oracle.retries());
//! ```

use crate::budget::OVER_BUDGET_ANSWER;
use crate::persistent::PersistentNoise;
use crate::{ComparisonOracle, QuadrupletOracle};
use nco_metric::hashing::splitmix64;

/// Why a single oracle ask came back unusable. Carried by
/// [`ComparisonOracle::try_le`] / [`QuadrupletOracle::try_le`]; a
/// recovery layer ([`Retrying`]) decides whether to re-ask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryFault {
    /// A one-off transient failure (dropped RPC, worker timeout).
    Transient,
    /// The ask landed inside a burst outage window of the backend.
    Outage,
    /// The worker stalled past its answer deadline; the ask is abandoned
    /// and its wait is accounted as latency debt
    /// ([`FaultStats::latency_debt_us`]).
    Stalled,
    /// The ask was routed to a stuck worker whose fixed answer failed the
    /// platform's attention checks — detected and discarded, never
    /// returned as a real bit.
    DeadWorker,
}

/// A seeded, deterministic fault schedule.
///
/// Faults are keyed by the wrapped oracle's global **attempt counter**
/// (not by the query), so re-asking a faulted query lands on a fresh
/// attempt index and draws a fresh fate — exactly how a retry against a
/// real flaky backend behaves, but replayable bit-for-bit from the seed.
///
/// All probabilities are per-attempt; every decision is a pure function
/// of `(seed, attempt index)` via splitmix64.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_p: f64,
    outage_every: u64,
    outage_len: u64,
    stall_p: f64,
    stall_debt_us: u64,
    workers: u32,
    dead_workers: u32,
    panic_at: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: no faults, ever. [`FaultyOracle`] short-circuits
    /// to a transparent forwarder under it.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// A fresh plan with no faults enabled; chain the builder methods to
    /// switch fault classes on.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            transient_p: 0.0,
            outage_every: 0,
            outage_len: 0,
            stall_p: 0.0,
            stall_debt_us: 0,
            workers: 0,
            dead_workers: 0,
            panic_at: None,
        }
    }

    /// Each attempt independently fails [`QueryFault::Transient`] with
    /// probability `p`.
    ///
    /// # Panics
    /// If `p` is not within `[0, 1]`.
    pub fn transient(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "transient probability {p}");
        self.transient_p = p;
        self
    }

    /// Burst outages: the first `len` of every `every` consecutive
    /// attempts fail [`QueryFault::Outage`]. A retry policy with more
    /// than `len` attempts always crosses the burst.
    ///
    /// # Panics
    /// If `every == 0` or `len > every`.
    pub fn outages(mut self, every: u64, len: u64) -> Self {
        assert!(every > 0 && len <= every, "outage window {len}/{every}");
        self.outage_every = every;
        self.outage_len = len;
        self
    }

    /// Each attempt independently stalls with probability `p`, abandoning
    /// the ask ([`QueryFault::Stalled`]) and accruing `debt_us`
    /// microseconds of latency debt in [`FaultStats`].
    ///
    /// # Panics
    /// If `p` is not within `[0, 1]`.
    pub fn stalls(mut self, p: f64, debt_us: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "stall probability {p}");
        self.stall_p = p;
        self.stall_debt_us = debt_us;
        self
    }

    /// Routes each attempt to one of `pool` simulated workers (seeded
    /// hash of the attempt index); `dead` of them are stuck and every ask
    /// routed to one fails [`QueryFault::DeadWorker`].
    ///
    /// # Panics
    /// If `pool == 0` or `dead > pool`.
    pub fn dead_workers(mut self, pool: u32, dead: u32) -> Self {
        assert!(pool > 0 && dead <= pool, "dead workers {dead}/{pool}");
        self.workers = pool;
        self.dead_workers = dead;
        self
    }

    /// Panics the oracle on exactly attempt `attempt` (once — the
    /// counter advances past it). Simulates a buggy backend; used to
    /// exercise the serving plane's `catch_unwind` isolation.
    pub fn panic_at(mut self, attempt: u64) -> Self {
        self.panic_at = Some(attempt);
        self
    }

    /// `true` if any fault class is enabled. [`FaultyOracle`] under an
    /// inactive plan forwards without touching the attempt counter.
    pub fn is_active(&self) -> bool {
        self.transient_p > 0.0
            || self.outage_len > 0
            || self.stall_p > 0.0
            || self.dead_workers > 0
            || self.panic_at.is_some()
    }

    #[inline]
    fn u01(&self, attempt: u64, salt: u64) -> f64 {
        let h = splitmix64(self.seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The fate of attempt `attempt` — a pure function of the plan.
    fn decide(&self, attempt: u64) -> Option<QueryFault> {
        if self.panic_at == Some(attempt) {
            panic!("injected fault-plan panic at attempt {attempt}");
        }
        if self.outage_len > 0 && attempt % self.outage_every < self.outage_len {
            return Some(QueryFault::Outage);
        }
        if self.dead_workers > 0 {
            let lane = splitmix64(self.seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD)
                % u64::from(self.workers);
            if lane < u64::from(self.dead_workers) {
                return Some(QueryFault::DeadWorker);
            }
        }
        if self.transient_p > 0.0 && self.u01(attempt, 0x7A17) < self.transient_p {
            return Some(QueryFault::Transient);
        }
        if self.stall_p > 0.0 && self.u01(attempt, 0x57A1) < self.stall_p {
            return Some(QueryFault::Stalled);
        }
        None
    }
}

/// What a [`FaultyOracle`] injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FaultStats {
    /// Fallible asks that consulted the plan (the attempt counter).
    pub attempts: u64,
    /// [`QueryFault::Transient`] faults injected.
    pub transient: u64,
    /// [`QueryFault::Outage`] faults injected.
    pub outages: u64,
    /// [`QueryFault::Stalled`] faults injected.
    pub stalls: u64,
    /// [`QueryFault::DeadWorker`] faults injected.
    pub dead_workers: u64,
    /// Microseconds of simulated wait abandoned to stalled workers.
    pub latency_debt_us: u64,
}

/// Wraps any oracle with a deterministic [`FaultPlan`].
///
/// Faults surface **only** through the fallible `try_le` /
/// `try_le_batch` interface — the infallible `le` / `le_batch` methods
/// forward untouched, so metering and memo wrappers stacked on top
/// behave exactly as without the fault layer until a recovery layer
/// ([`Retrying`]) opts in to fallibility. Since the wrapped answers are
/// unchanged, `FaultyOracle` preserves [`PersistentNoise`].
#[derive(Debug, Clone)]
pub struct FaultyOracle<O> {
    inner: O,
    plan: FaultPlan,
    attempts: u64,
    stats: FaultStats,
}

impl<O> FaultyOracle<O> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: O, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            attempts: 0,
            stats: FaultStats::default(),
        }
    }

    /// The configured plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Immutable access to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Consults the plan for the next attempt; records what it injects.
    fn inject(&mut self) -> Option<QueryFault> {
        if !self.plan.is_active() {
            return None;
        }
        let attempt = self.attempts;
        self.attempts += 1;
        self.stats.attempts += 1;
        let fault = self.plan.decide(attempt);
        match fault {
            Some(QueryFault::Transient) => self.stats.transient += 1,
            Some(QueryFault::Outage) => self.stats.outages += 1,
            Some(QueryFault::Stalled) => {
                self.stats.stalls += 1;
                self.stats.latency_debt_us += self.plan.stall_debt_us;
            }
            Some(QueryFault::DeadWorker) => self.stats.dead_workers += 1,
            None => {}
        }
        fault
    }
}

impl<O: PersistentNoise> PersistentNoise for FaultyOracle<O> {}

impl<O: ComparisonOracle> ComparisonOracle for FaultyOracle<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, i: usize, j: usize) -> bool {
        self.inner.le(i, j)
    }

    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        self.inner.le_batch(queries, out);
    }

    fn try_le(&mut self, i: usize, j: usize) -> Result<bool, QueryFault> {
        match self.inject() {
            Some(fault) => Err(fault),
            None => Ok(self.inner.le(i, j)),
        }
    }

    fn try_le_batch(
        &mut self,
        queries: &[(usize, usize)],
        out: &mut Vec<Result<bool, QueryFault>>,
    ) {
        if !self.plan.is_active() {
            let mut answers = Vec::with_capacity(queries.len());
            self.inner.le_batch(queries, &mut answers);
            out.extend(answers.into_iter().map(Ok));
            return;
        }
        // Decide every lane's fate first, then forward the clean lanes as
        // one inner round (answers are per-query pure under persistence,
        // so the subset sees the same bits the full round would).
        let fates: Vec<Option<QueryFault>> = queries.iter().map(|_| self.inject()).collect();
        let clean: Vec<(usize, usize)> = queries
            .iter()
            .zip(&fates)
            .filter(|(_, f)| f.is_none())
            .map(|(&q, _)| q)
            .collect();
        let mut answers = Vec::with_capacity(clean.len());
        self.inner.le_batch(&clean, &mut answers);
        let mut next = answers.into_iter();
        out.reserve(queries.len());
        for fate in fates {
            match fate {
                Some(fault) => out.push(Err(fault)),
                None => out.push(Ok(next.next().expect("one answer per clean lane"))),
            }
        }
    }

    fn doomed(&self) -> bool {
        self.inner.doomed()
    }
}

impl<O: QuadrupletOracle> QuadrupletOracle for FaultyOracle<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.inner.le(a, b, c, d)
    }

    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        self.inner.le_batch(queries, out);
    }

    fn try_le(&mut self, a: usize, b: usize, c: usize, d: usize) -> Result<bool, QueryFault> {
        match self.inject() {
            Some(fault) => Err(fault),
            None => Ok(self.inner.le(a, b, c, d)),
        }
    }

    fn try_le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<Result<bool, QueryFault>>) {
        if !self.plan.is_active() {
            let mut answers = Vec::with_capacity(queries.len());
            self.inner.le_batch(queries, &mut answers);
            out.extend(answers.into_iter().map(Ok));
            return;
        }
        let fates: Vec<Option<QueryFault>> = queries.iter().map(|_| self.inject()).collect();
        let clean: Vec<[usize; 4]> = queries
            .iter()
            .zip(&fates)
            .filter(|(_, f)| f.is_none())
            .map(|(&q, _)| q)
            .collect();
        let mut answers = Vec::with_capacity(clean.len());
        self.inner.le_batch(&clean, &mut answers);
        let mut next = answers.into_iter();
        out.reserve(queries.len());
        for fate in fates {
            match fate {
                Some(fault) => out.push(Err(fault)),
                None => out.push(Ok(next.next().expect("one answer per clean lane"))),
            }
        }
    }

    fn doomed(&self) -> bool {
        self.inner.doomed()
    }
}

/// How hard [`Retrying`] fights a fault before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total asks per query (first try + retries); `0` is treated as `1`.
    pub max_attempts: u32,
    /// Base of the deterministic exponential backoff, in microseconds:
    /// retry round `r` (1-based) accrues `base << (r - 1)` of
    /// [`Retrying::backoff_debt_us`]. Pure accounting — nothing sleeps.
    pub backoff_base_us: u64,
}

impl RetryPolicy {
    /// `max_attempts` asks per query with the default 100us backoff base.
    pub fn new(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            backoff_base_us: 100,
        }
    }

    /// Replaces the backoff base.
    pub fn backoff_base_us(mut self, base: u64) -> Self {
        self.backoff_base_us = base;
        self
    }

    #[inline]
    fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    #[inline]
    fn backoff_for(&self, retry_round: u32) -> u64 {
        // Cap the shift: past 2^16 x base the debt is saturated anyway.
        self.backoff_base_us
            .saturating_mul(1u64 << (retry_round.saturating_sub(1)).min(16))
    }
}

impl Default for RetryPolicy {
    /// Four asks per query, 100us backoff base.
    fn default() -> Self {
        Self::new(4)
    }
}

/// Bounded-retry recovery over a fallible oracle chain.
///
/// `Retrying` drives its inner chain exclusively through the fallible
/// `try_le` / `try_le_batch` interface. A faulted ask is re-asked up to
/// [`RetryPolicy::max_attempts`] times total; batched rounds retry only
/// the faulted lanes (each retry round is a fresh inner round, so a
/// meter inside bills exactly the re-asked lanes). Retries of persistent
/// oracles are answer-invariant, so a fully masked run is bit-identical
/// to the fault-free run.
///
/// When a fault outlives the policy the oracle is **doomed**: the
/// [`Retrying::failed`] flag latches, the inner chain is never touched
/// again, and every subsequent answer is the fixed
/// [`OVER_BUDGET_ANSWER`] refusal bit — the same discard-the-run pattern
/// as [`crate::Budgeted`], surfaced by the facade as a typed
/// `OracleFailed` error.
#[derive(Debug, Clone)]
pub struct Retrying<O> {
    inner: O,
    policy: RetryPolicy,
    retries: u64,
    masked: u64,
    backoff_debt_us: u64,
    failed: Option<u32>,
}

impl<O> Retrying<O> {
    /// Wraps a fallible oracle chain under `policy`.
    pub fn new(inner: O, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            retries: 0,
            masked: 0,
            backoff_debt_us: 0,
            failed: None,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Re-ask attempts issued so far (beyond each query's first ask).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Queries that faulted at least once and then succeeded — faults
    /// the policy fully masked.
    pub fn faults_masked(&self) -> u64 {
        self.masked
    }

    /// Deterministic backoff debt accrued by retry rounds, in
    /// microseconds (accounting only; nothing sleeps).
    pub fn backoff_debt_us(&self) -> u64 {
        self.backoff_debt_us
    }

    /// `Some(attempts)` once any query exhausted the policy — the run is
    /// doomed and must be discarded by the caller.
    pub fn failed(&self) -> Option<u32> {
        self.failed
    }

    /// Immutable access to the wrapped oracle chain.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the oracle chain.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

/// Masked retries return the persistent inner answer; once `failed`
/// latches the run is doomed and discarded — the same argument as
/// [`crate::Budgeted`]'s impl.
impl<O: PersistentNoise> PersistentNoise for Retrying<O> {}

macro_rules! retry_scalar {
    ($self:ident, $($q:ident),+) => {{
        if $self.failed.is_some() {
            return OVER_BUDGET_ANSWER;
        }
        let max = $self.policy.attempts();
        for attempt in 1..=max {
            if attempt > 1 {
                $self.retries += 1;
                $self.backoff_debt_us = $self
                    .backoff_debt_us
                    .saturating_add($self.policy.backoff_for(attempt - 1));
            }
            match $self.inner.try_le($($q),+) {
                Ok(ans) => {
                    if attempt > 1 {
                        $self.masked += 1;
                    }
                    return ans;
                }
                Err(_) => continue,
            }
        }
        $self.failed = Some(max);
        OVER_BUDGET_ANSWER
    }};
}

macro_rules! retry_batch {
    ($self:ident, $queries:ident, $out:ident, $qty:ty) => {{
        if $queries.is_empty() {
            // Forward the empty round so round meters inside still tick.
            let mut results = Vec::new();
            $self.inner.try_le_batch($queries, &mut results);
            return;
        }
        if $self.failed.is_some() {
            $out.extend(std::iter::repeat_n(OVER_BUDGET_ANSWER, $queries.len()));
            return;
        }
        let max = $self.policy.attempts();
        let mut results: Vec<Result<bool, QueryFault>> = Vec::with_capacity($queries.len());
        $self.inner.try_le_batch($queries, &mut results);
        let mut answers: Vec<bool> = Vec::with_capacity($queries.len());
        let mut pending: Vec<usize> = Vec::new();
        for (slot, r) in results.iter().enumerate() {
            match r {
                Ok(ans) => answers.push(*ans),
                Err(_) => {
                    answers.push(OVER_BUDGET_ANSWER);
                    pending.push(slot);
                }
            }
        }
        let mut round = 1u32;
        while !pending.is_empty() && round < max {
            round += 1;
            // Partial-batch retry: only the faulted lanes re-ask, as one
            // fresh inner round. Lanes share the round's backoff wait.
            $self.retries += pending.len() as u64;
            $self.backoff_debt_us = $self
                .backoff_debt_us
                .saturating_add($self.policy.backoff_for(round - 1));
            let sub: Vec<$qty> = pending.iter().map(|&slot| $queries[slot]).collect();
            let mut sub_results: Vec<Result<bool, QueryFault>> = Vec::with_capacity(sub.len());
            $self.inner.try_le_batch(&sub, &mut sub_results);
            let mut still = Vec::new();
            for (&slot, r) in pending.iter().zip(&sub_results) {
                match r {
                    Ok(ans) => {
                        answers[slot] = *ans;
                        $self.masked += 1;
                    }
                    Err(_) => still.push(slot),
                }
            }
            pending = still;
        }
        if !pending.is_empty() {
            // Doomed: the constant placeholder already sits in `answers`.
            $self.failed = Some(max);
        }
        $out.extend(answers);
    }};
}

impl<O: ComparisonOracle> ComparisonOracle for Retrying<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, i: usize, j: usize) -> bool {
        retry_scalar!(self, i, j)
    }

    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        retry_batch!(self, queries, out, (usize, usize))
    }

    fn doomed(&self) -> bool {
        self.failed.is_some() || self.inner.doomed()
    }
}

impl<O: QuadrupletOracle> QuadrupletOracle for Retrying<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        retry_scalar!(self, a, b, c, d)
    }

    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        retry_batch!(self, queries, out, [usize; 4])
    }

    fn doomed(&self) -> bool {
        self.failed.is_some() || self.inner.doomed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budgeted;
    use crate::counting::Counting;
    use crate::probabilistic::ProbValueOracle;
    use crate::{MemoOracle, TrueQuadOracle, TrueValueOracle};
    use nco_metric::EuclideanMetric;

    fn values(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37) % (n + 1)) as f64).collect()
    }

    #[test]
    fn plans_are_deterministic_and_none_is_inactive() {
        let plan = FaultPlan::new(7).transient(0.3).stalls(0.2, 10);
        let a: Vec<_> = (0..200).map(|t| plan.decide(t)).collect();
        let b: Vec<_> = (0..200).map(|t| plan.decide(t)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|f| f.is_some()));
        assert!(a.iter().any(|f| f.is_none()));
        assert!(!FaultPlan::none().is_active());
        assert!(plan.is_active());
    }

    #[test]
    fn outage_windows_fail_deterministically() {
        let plan = FaultPlan::new(0).outages(10, 3);
        for t in 0..40u64 {
            let expect_fault = t % 10 < 3;
            assert_eq!(
                plan.decide(t),
                expect_fault.then_some(QueryFault::Outage),
                "attempt {t}"
            );
        }
    }

    #[test]
    fn infallible_path_is_fault_free() {
        let plan = FaultPlan::new(3).transient(1.0);
        let mut faulty = FaultyOracle::new(TrueValueOracle::new(values(16)), plan);
        let mut clean = TrueValueOracle::new(values(16));
        for i in 0..15 {
            assert_eq!(faulty.le(i, i + 1), clean.le(i, i + 1));
        }
        assert_eq!(faulty.stats().attempts, 0, "le() never consults the plan");
        assert!(faulty.try_le(0, 1).is_err());
        assert_eq!(faulty.stats().attempts, 1);
    }

    #[test]
    fn masked_retries_return_the_persistent_answer_and_bill() {
        let vals = values(40);
        let plan = FaultPlan::new(11)
            .transient(0.25)
            .outages(50, 2)
            .dead_workers(8, 1)
            .stalls(0.1, 250);
        let mut clean = ProbValueOracle::new(vals.clone(), 0.3, 5);
        let faulty = FaultyOracle::new(ProbValueOracle::new(vals, 0.3, 5), plan);
        let mut oracle = Retrying::new(Counting::new(faulty), RetryPolicy::new(16));
        for i in 0..40 {
            for j in 0..40 {
                assert_eq!(oracle.le(i, j), clean.le(i, j), "({i},{j})");
            }
        }
        assert!(oracle.failed().is_none());
        assert!(oracle.retries() > 0, "the storm must actually fault");
        assert!(oracle.faults_masked() > 0);
        assert!(oracle.backoff_debt_us() > 0);
        // Every retry attempt passed through the meter.
        assert_eq!(oracle.inner().queries(), 40 * 40 + oracle.retries());
        let stats = oracle.inner().inner().stats();
        assert!(stats.stalls > 0 && stats.latency_debt_us == stats.stalls * 250);
    }

    #[test]
    fn batch_retries_only_failed_lanes() {
        let m = EuclideanMetric::from_points(
            &(0..24).map(|i| vec![i as f64 * 1.3]).collect::<Vec<_>>(),
        );
        let plan = FaultPlan::new(9).transient(0.3);
        let queries: Vec<[usize; 4]> = (0..23).map(|i| [i, i + 1, 0, 23]).collect();
        let mut clean_out = Vec::new();
        TrueQuadOracle::new(m.clone()).le_batch(&queries, &mut clean_out);

        let faulty = FaultyOracle::new(TrueQuadOracle::new(m), plan);
        let mut oracle = Retrying::new(Counting::new(faulty), RetryPolicy::new(12));
        let mut out = Vec::new();
        oracle.le_batch(&queries, &mut out);
        assert_eq!(out, clean_out);
        assert!(oracle.failed().is_none());
        assert!(oracle.retries() > 0);
        // Bill = every lane once + exactly the re-asked lanes.
        assert_eq!(
            oracle.inner().queries(),
            queries.len() as u64 + oracle.retries()
        );
    }

    #[test]
    fn exhausted_policy_latches_failed_and_stops_spending() {
        // A permanent outage no bounded policy can cross.
        let plan = FaultPlan::new(0).outages(10, 10);
        let faulty = FaultyOracle::new(TrueValueOracle::new(values(8)), plan);
        let mut oracle = Retrying::new(Counting::new(faulty), RetryPolicy::new(3));
        assert_eq!(oracle.le(0, 1), OVER_BUDGET_ANSWER);
        assert_eq!(oracle.failed(), Some(3));
        let spent = oracle.inner().queries();
        // Doomed: later queries cost nothing and answer the constant.
        assert_eq!(oracle.le(1, 2), OVER_BUDGET_ANSWER);
        let mut out = Vec::new();
        oracle.le_batch(&[(0, 1), (2, 3)], &mut out);
        assert_eq!(out, vec![OVER_BUDGET_ANSWER; 2]);
        assert_eq!(oracle.inner().queries(), spent);
    }

    #[test]
    fn retrying_is_transparent_without_faults() {
        let vals = values(30);
        let mut plain = Budgeted::new(ProbValueOracle::new(vals.clone(), 0.2, 3), Some(500));
        let faulty = FaultyOracle::new(ProbValueOracle::new(vals, 0.2, 3), FaultPlan::none());
        let mut wrapped = Retrying::new(Budgeted::new(faulty, Some(500)), RetryPolicy::default());
        let batch: Vec<(usize, usize)> = (0..29).map(|i| (i, i + 1)).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        plain.le_batch(&batch, &mut a);
        wrapped.le_batch(&batch, &mut b);
        for i in 0..20 {
            a.push(plain.le(i, 29 - i));
            b.push(wrapped.le(i, 29 - i));
        }
        assert_eq!(a, b);
        assert_eq!(plain.queries(), wrapped.inner().queries());
        assert_eq!(plain.rounds(), wrapped.inner().rounds());
        assert_eq!(wrapped.retries(), 0);
        assert_eq!(wrapped.inner().inner().stats().attempts, 0);
    }

    #[test]
    fn memo_inside_retry_does_not_cache_faulted_lanes() {
        // Retrying<MemoOracle<FaultyOracle<...>>>: a faulted miss must not
        // poison the memo — the retry re-asks and caches the real bit.
        let vals = values(20);
        let plan = FaultPlan::new(5).transient(0.4);
        let faulty = FaultyOracle::new(ProbValueOracle::new(vals.clone(), 0.25, 8), plan);
        let mut oracle = Retrying::new(MemoOracle::new(faulty), RetryPolicy::new(16));
        let mut clean = ProbValueOracle::new(vals, 0.25, 8);
        for _ in 0..2 {
            for i in 0..20 {
                for j in 0..20 {
                    if i != j {
                        assert_eq!(oracle.le(i, j), clean.le(i, j), "({i},{j})");
                    }
                }
            }
        }
        assert!(oracle.failed().is_none());
        assert!(oracle.retries() > 0);
    }

    #[test]
    #[should_panic(expected = "injected fault-plan panic")]
    fn panic_at_fires_on_the_exact_attempt() {
        let plan = FaultPlan::new(0).panic_at(2);
        let mut faulty = FaultyOracle::new(TrueValueOracle::new(values(4)), plan);
        let _ = faulty.try_le(0, 1);
        let _ = faulty.try_le(1, 2);
        let _ = faulty.try_le(2, 3); // attempt index 2 panics
    }
}
