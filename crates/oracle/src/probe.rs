//! Online flip-rate estimation via seeded, billed transitivity probes.
//!
//! The paper's guarantees (Theorems 3.6/3.7/4.2/5.2) assume the flip rate
//! `p` is known; production oracles rarely honour the configured value.
//! [`ProbeOracle`] interleaves *probe triangles* into the live query
//! stream and maintains a running estimate of the rate actually observed,
//! with a confidence interval, so a session can detect — and react to —
//! noise misspecification while it runs.
//!
//! # Why triangles, not mirror pairs
//!
//! The shipped persistent models derive each answer from a canonical-coin
//! hash of the *unordered* query ([`nco_metric::hashing`]): re-asking a
//! query returns the identical bit and asking its mirror returns the
//! complement, **by construction, at any flip rate**. Mirror/duplicate
//! probes therefore measure exactly `0.0` forever on every shipped
//! backend — the placeholder bug this module replaces.
//!
//! A *transitivity triangle* does carry signal. Draw three distinct
//! records `i, j, k` (or, for the quadruplet interface, three distinct
//! record pairs) and ask the three distinct canonical queries
//!
//! ```text
//! x = le(i, j)    y = le(j, k)    z = le(i, k)
//! ```
//!
//! Whatever the hidden total (pre)order says, the true bits are
//! transitively consistent; the observed pattern is *cyclic* —
//! `(1, 1, 0)` or `(0, 0, 1)` — only through flips. With three
//! independent per-query coins of rate `p`, every consistent ground
//! truth yields the same cyclic probability
//!
//! ```text
//! r = p(1 - p)^2 + p^2 (1 - p) = p(1 - p)
//! ```
//!
//! which inverts monotonically on `p ∈ [0, 1/2]`:
//!
//! ```text
//! p = (1 - sqrt(1 - 4 r)) / 2
//! ```
//!
//! The estimator counts cyclic triangles, puts a Wilson score interval
//! on `r`, and maps the point and both endpoints through the inversion.
//! Ties in the hidden values cannot bias it: a total preorder is still
//! transitive, so tied truths never look cyclic.
//!
//! # Determinism and billing
//!
//! Probe scheduling is a pure function of `(seed, real-query counter)`
//! exactly like [`crate::FaultPlan`]: the same session replayed issues
//! the same probes at the same offsets. Probe queries go through the
//! wrapped oracle like any other ask, so they are **billed** by the
//! meters below this layer and masked by any retry layer below it.
//! Injection pauses while the inner stack reports
//! [`ComparisonOracle::doomed`] — a killed run stops spending on probes,
//! and the estimate is never polluted by refusal constants.

use crate::persistent::PersistentNoise;
use crate::{ComparisonOracle, QuadrupletOracle, QueryFault};
use nco_metric::hashing::splitmix64;

/// Width multiplier for the estimate's confidence interval: the normal
/// z-score for two-sided 95% coverage, used by the Wilson interval on
/// the cyclic-triangle rate.
pub const PROBE_CI_Z: f64 = 1.96;

/// When and where [`ProbeOracle`] injects probe triangles — a pure
/// function of `(seed, counter)`, like [`crate::FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbePlan {
    seed: u64,
    rate: f64,
}

impl ProbePlan {
    /// The empty plan: no probes, ever. [`ProbeOracle`] under it is a
    /// transparent forwarder.
    pub fn none() -> Self {
        Self { seed: 0, rate: 0.0 }
    }

    /// A plan that injects one probe triangle (three billed queries)
    /// after each real query independently with probability `rate`.
    ///
    /// # Panics
    /// If `rate` is not within `[0, 1]`.
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "probe rate {rate}");
        Self { seed, rate }
    }

    /// `true` if the plan ever fires. [`ProbeOracle`] under an inactive
    /// plan forwards without touching its counter.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// The configured injection rate (probe triangles per real query).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    #[inline]
    fn hash(&self, counter: u64, salt: u64) -> u64 {
        splitmix64(self.seed ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt)
    }

    #[inline]
    fn u01(&self, counter: u64, salt: u64) -> f64 {
        (self.hash(counter, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether a probe triangle fires after real query `counter`.
    #[inline]
    fn fires(&self, counter: u64) -> bool {
        self.rate > 0.0 && self.u01(counter, 0x9B0B) < self.rate
    }

    /// Deterministic index draw in `[0, n)` for triangle `counter`,
    /// `nonce` disambiguating the (re)draws within one triangle.
    #[inline]
    fn draw(&self, counter: u64, nonce: u64, n: usize) -> usize {
        (self.hash(counter, 0x7B1A ^ nonce) % n as u64) as usize
    }
}

/// What a [`ProbeOracle`] spent and saw so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ProbeStats {
    /// Probe queries issued through the inner oracle (three per
    /// completed triangle). Billed like real queries.
    pub probes: u64,
    /// Probe triangles completed.
    pub triangles: u64,
    /// Triangles whose observed pattern was cyclic (intransitive).
    pub cyclic: u64,
}

/// A flip-rate estimate derived from probe triangles.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct NoiseEstimate {
    /// Point estimate of the per-query flip rate, in `[0, 1/2]`.
    pub p_hat: f64,
    /// Lower end of the ~95% confidence interval on the flip rate.
    pub p_lo: f64,
    /// Upper end of the ~95% confidence interval on the flip rate.
    pub p_hi: f64,
    /// Probe triangles the estimate is based on.
    pub triangles: u64,
    /// Probe queries spent to gather them.
    pub probes: u64,
}

/// Wilson score interval for a binomial proportion, `z = PROBE_CI_Z`.
fn wilson(successes: u64, trials: u64) -> (f64, f64) {
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = PROBE_CI_Z * PROBE_CI_Z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = PROBE_CI_Z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Inverts the cyclic-triangle rate `r = p(1 - p)` to the flip rate `p`,
/// monotone on `r ∈ [0, 1/4]`; rates at or beyond `1/4` saturate to the
/// maximal `p = 1/2`.
fn invert_cyclic_rate(r: f64) -> f64 {
    if r >= 0.25 {
        0.5
    } else {
        (1.0 - (1.0 - 4.0 * r.max(0.0)).sqrt()) / 2.0
    }
}

impl ProbeStats {
    /// The flip-rate estimate over the triangles seen so far, or `None`
    /// before the first completed triangle.
    pub fn estimate(&self) -> Option<NoiseEstimate> {
        if self.triangles == 0 {
            return None;
        }
        let r_hat = self.cyclic as f64 / self.triangles as f64;
        let (r_lo, r_hi) = wilson(self.cyclic, self.triangles);
        Some(NoiseEstimate {
            p_hat: invert_cyclic_rate(r_hat),
            p_lo: invert_cyclic_rate(r_lo),
            p_hi: invert_cyclic_rate(r_hi),
            triangles: self.triangles,
            probes: self.probes,
        })
    }
}

/// Injects seeded, billed probe triangles into a live query stream and
/// estimates the flip rate actually observed. See the module docs for
/// the estimator; place this layer **outermost** in an oracle chain so
/// probes are metered, budgeted and retry-masked like real queries.
///
/// Requires at least three records (comparison interface) or at least
/// three distinct record pairs (quadruplet interface; `n >= 3` gives
/// plenty); under smaller universes the oracle forwards transparently
/// and never completes a triangle.
///
/// Probes are extra queries against **persistent** noise models: they
/// cannot change the answer any real query receives, so a probed run
/// returns bit-identical answers to an unprobed one — only the meters
/// differ. Under a memoising layer, a probe that collides with an
/// earlier query is deduplicated like any other repeat.
#[derive(Debug)]
pub struct ProbeOracle<O> {
    inner: O,
    plan: ProbePlan,
    /// Real queries forwarded so far — the probe-schedule counter.
    asked: u64,
    stats: ProbeStats,
}

impl<O> ProbeOracle<O> {
    /// Wraps `inner`, probing per `plan`.
    pub fn new(inner: O, plan: ProbePlan) -> Self {
        Self {
            inner,
            plan,
            asked: 0,
            stats: ProbeStats::default(),
        }
    }

    /// Probe spend and observations so far.
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// The flip-rate estimate so far; `None` before the first triangle.
    pub fn estimate(&self) -> Option<NoiseEstimate> {
        self.stats.estimate()
    }

    /// Shared view of the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the probe layer.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: ComparisonOracle> ProbeOracle<O> {
    /// Runs the probe triangles due after real queries
    /// `[self.asked, self.asked + upcoming)`, then advances the counter.
    fn probe_cmp(&mut self, upcoming: usize) {
        let n = self.inner.n();
        if self.plan.is_active() && n >= 3 {
            for c in self.asked..self.asked + upcoming as u64 {
                if !self.plan.fires(c) || self.inner.doomed() {
                    continue;
                }
                let i = self.plan.draw(c, 0, n);
                let mut j = self.plan.draw(c, 1, n);
                let mut nonce = 2u64;
                while j == i {
                    j = self.plan.draw(c, nonce, n);
                    nonce += 1;
                }
                let mut k = self.plan.draw(c, nonce, n);
                while k == i || k == j {
                    nonce += 1;
                    k = self.plan.draw(c, nonce, n);
                }
                let x = self.inner.le(i, j);
                let y = self.inner.le(j, k);
                let z = self.inner.le(i, k);
                self.stats.probes += 3;
                self.stats.triangles += 1;
                if (x && y && !z) || (!x && !y && z) {
                    self.stats.cyclic += 1;
                }
            }
        }
        self.asked += upcoming as u64;
    }
}

impl<O: QuadrupletOracle> ProbeOracle<O> {
    /// Quadruplet twin of `probe_cmp`: the three triangle "records" are
    /// distinct unordered record pairs, compared pairwise by distance.
    fn probe_quad(&mut self, upcoming: usize) {
        let n = self.inner.n();
        if self.plan.is_active() && n >= 3 {
            for c in self.asked..self.asked + upcoming as u64 {
                if !self.plan.fires(c) || self.inner.doomed() {
                    continue;
                }
                // Three distinct unordered pairs over a deterministic
                // record draw; n >= 3 always yields them.
                let mut pairs: [(usize, usize); 3] = [(0, 0); 3];
                let mut found = 0;
                let mut nonce = 0u64;
                while found < 3 {
                    let a = self.plan.draw(c, nonce, n);
                    let b = self.plan.draw(c, nonce + 1, n);
                    nonce += 2;
                    if a == b {
                        continue;
                    }
                    let pair = (a.min(b), a.max(b));
                    if pairs[..found].contains(&pair) {
                        continue;
                    }
                    pairs[found] = pair;
                    found += 1;
                }
                let [p1, p2, p3] = pairs;
                let x = self.inner.le(p1.0, p1.1, p2.0, p2.1);
                let y = self.inner.le(p2.0, p2.1, p3.0, p3.1);
                let z = self.inner.le(p1.0, p1.1, p3.0, p3.1);
                self.stats.probes += 3;
                self.stats.triangles += 1;
                if (x && y && !z) || (!x && !y && z) {
                    self.stats.cyclic += 1;
                }
            }
        }
        self.asked += upcoming as u64;
    }
}

impl<O: ComparisonOracle> ComparisonOracle for ProbeOracle<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, i: usize, j: usize) -> bool {
        self.probe_cmp(1);
        self.inner.le(i, j)
    }

    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        // Probes due within the batch's counter range are issued as
        // scalar asks up front, then the round is forwarded unchanged:
        // against persistent inner models the answers are bit-identical
        // to the scalar loop, and round meters below see one round.
        self.probe_cmp(queries.len());
        self.inner.le_batch(queries, out);
    }

    fn try_le(&mut self, i: usize, j: usize) -> Result<bool, QueryFault> {
        self.probe_cmp(1);
        self.inner.try_le(i, j)
    }

    fn try_le_batch(
        &mut self,
        queries: &[(usize, usize)],
        out: &mut Vec<Result<bool, QueryFault>>,
    ) {
        self.probe_cmp(queries.len());
        self.inner.try_le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.inner.doomed()
    }
}

impl<O: QuadrupletOracle> QuadrupletOracle for ProbeOracle<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.probe_quad(1);
        self.inner.le(a, b, c, d)
    }

    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        self.probe_quad(queries.len());
        self.inner.le_batch(queries, out);
    }

    fn try_le(&mut self, a: usize, b: usize, c: usize, d: usize) -> Result<bool, QueryFault> {
        self.probe_quad(1);
        self.inner.try_le(a, b, c, d)
    }

    fn try_le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<Result<bool, QueryFault>>) {
        self.probe_quad(queries.len());
        self.inner.try_le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.inner.doomed()
    }
}

// Probing forwards real queries unchanged, so persistence of the inner
// model is preserved: identical real queries keep identical answers.
impl<O: PersistentNoise> PersistentNoise for ProbeOracle<O> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::Counting;
    use crate::probabilistic::{ProbQuadOracle, ProbValueOracle};
    use crate::value::TrueValueOracle;
    use nco_metric::EuclideanMetric;

    fn values(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn inactive_plan_is_transparent() {
        let mut probed = ProbeOracle::new(
            Counting::new(TrueValueOracle::new(values(8))),
            ProbePlan::none(),
        );
        for i in 0..7 {
            assert!(probed.le(i, i + 1));
        }
        assert_eq!(probed.stats().probes, 0);
        assert_eq!(probed.inner().queries(), 7);
        assert!(probed.estimate().is_none());
    }

    #[test]
    fn probes_are_billed_and_deterministic() {
        let run = || {
            let mut probed = ProbeOracle::new(
                Counting::new(ProbValueOracle::new(values(32), 0.2, 11)),
                ProbePlan::new(5, 0.5),
            );
            let mut answers = Vec::new();
            for i in 0..31 {
                answers.push(probed.le(i, i + 1));
            }
            (answers, probed.stats(), probed.inner().queries())
        };
        let (a1, s1, q1) = run();
        let (a2, s2, q2) = run();
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
        assert_eq!(q1, q2);
        assert!(s1.triangles > 0, "rate 0.5 over 31 queries must fire");
        // Every probe ask hits the meter below the probe layer.
        assert_eq!(q1, 31 + s1.probes);
        assert_eq!(s1.probes, 3 * s1.triangles);
    }

    #[test]
    fn probed_answers_match_unprobed_answers() {
        // Persistent inner model: probes cannot perturb real answers.
        let mut plain = ProbValueOracle::new(values(16), 0.3, 7);
        let mut probed = ProbeOracle::new(
            ProbValueOracle::new(values(16), 0.3, 7),
            ProbePlan::new(9, 1.0),
        );
        for i in 0..16 {
            for j in 0..16 {
                if i != j {
                    assert_eq!(plain.le(i, j), probed.le(i, j));
                }
            }
        }
        assert!(probed.stats().triangles > 0);
    }

    #[test]
    fn batch_matches_scalar_loop() {
        let queries: Vec<(usize, usize)> = (0..64).map(|i| (i % 16, (i * 7 + 1) % 16)).collect();
        let mut scalar = ProbeOracle::new(
            Counting::new(ProbValueOracle::new(values(16), 0.25, 3)),
            ProbePlan::new(4, 0.7),
        );
        let mut scalar_out = Vec::new();
        for &(i, j) in &queries {
            scalar_out.push(scalar.le(i, j));
        }
        let mut batched = ProbeOracle::new(
            Counting::new(ProbValueOracle::new(values(16), 0.25, 3)),
            ProbePlan::new(4, 0.7),
        );
        let mut batched_out = Vec::new();
        batched.le_batch(&queries, &mut batched_out);
        assert_eq!(scalar_out, batched_out);
        assert_eq!(scalar.stats(), batched.stats());
        assert_eq!(scalar.inner().queries(), batched.inner().queries());
    }

    #[test]
    fn exact_oracle_estimates_zero() {
        let mut probed = ProbeOracle::new(TrueValueOracle::new(values(32)), ProbePlan::new(1, 1.0));
        for i in 0..31 {
            probed.le(i, i + 1);
        }
        let est = probed.estimate().expect("triangles fired");
        assert_eq!(est.p_hat, 0.0);
        assert!(est.p_lo == 0.0 && est.p_hi < 0.5);
    }

    #[test]
    fn estimate_converges_to_configured_p() {
        for (p, seed) in [(0.1, 1u64), (0.2, 2), (0.3, 3)] {
            let mut probed = ProbeOracle::new(
                ProbValueOracle::new(values(256), p, seed),
                ProbePlan::new(seed ^ 0xAB, 1.0),
            );
            // Drive enough real traffic for ~4000 triangles.
            for t in 0..4000usize {
                probed.le(t % 256, (t * 31 + 1) % 256);
            }
            let est = probed.estimate().unwrap();
            assert!(
                est.p_lo <= p && p <= est.p_hi,
                "p = {p}: CI [{}, {}] missed (p_hat {})",
                est.p_lo,
                est.p_hi,
                est.p_hat
            );
            assert!(
                (est.p_hat - p).abs() < 0.05,
                "p = {p}, p_hat = {}",
                est.p_hat
            );
        }
    }

    #[test]
    fn quadruplet_triangles_converge_too() {
        let points: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![(i * i % 97) as f64, i as f64])
            .collect();
        let metric = EuclideanMetric::from_points(&points);
        let p = 0.25;
        let mut probed =
            ProbeOracle::new(ProbQuadOracle::new(metric, p, 17), ProbePlan::new(23, 1.0));
        for t in 0..4000usize {
            let (a, b, c, d) = (t % 64, (t + 1) % 64, (t * 5 + 2) % 64, (t * 11 + 3) % 64);
            if a != b && c != d {
                QuadrupletOracle::le(&mut probed, a, b, c, d);
            }
        }
        let est = probed.estimate().unwrap();
        assert!(
            est.p_lo <= p && p <= est.p_hi,
            "CI [{}, {}] missed p = {p}",
            est.p_lo,
            est.p_hi
        );
    }

    #[test]
    fn doomed_inner_pauses_probing() {
        struct Doomed(TrueValueOracle);
        impl ComparisonOracle for Doomed {
            fn n(&self) -> usize {
                self.0.n()
            }
            fn le(&mut self, i: usize, j: usize) -> bool {
                self.0.le(i, j)
            }
            fn doomed(&self) -> bool {
                true
            }
        }
        let mut probed = ProbeOracle::new(
            Doomed(TrueValueOracle::new(values(8))),
            ProbePlan::new(2, 1.0),
        );
        for i in 0..7 {
            probed.le(i, i + 1);
        }
        assert_eq!(probed.stats().probes, 0, "doomed stacks stop probing");
    }

    #[test]
    fn small_universe_disables_probing() {
        let mut probed = ProbeOracle::new(TrueValueOracle::new(values(2)), ProbePlan::new(3, 1.0));
        assert!(probed.le(0, 1));
        assert_eq!(probed.stats().triangles, 0);
    }

    #[test]
    fn wilson_interval_is_sane() {
        let (lo, hi) = wilson(21, 100);
        assert!(lo < 0.21 && 0.21 < hi);
        assert!(hi - lo < 0.2);
        let (lo0, _) = wilson(0, 50);
        assert_eq!(lo0, 0.0);
    }

    #[test]
    fn cyclic_inversion_round_trips() {
        for p in [0.0, 0.05, 0.1, 0.25, 0.4, 0.49] {
            let r = p * (1.0 - p);
            assert!((invert_cyclic_rate(r) - p).abs() < 1e-12);
        }
        assert_eq!(invert_cyclic_rate(0.3), 0.5);
    }
}
